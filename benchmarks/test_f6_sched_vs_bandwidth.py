"""Benchmark for EXP-F6: schedulability ratio vs external bandwidth.

Draws are paired across bandwidth points, so per-workload monotonicity
is meaningful: more bandwidth must not reduce RT-MDM admission overall.
"""

from conftest import bench_experiment


def test_f6_sched_vs_bandwidth(benchmark):
    result = bench_experiment(benchmark, "EXP-F6", n_sets=24)
    rtmdm = result.column("rtmdm")
    assert rtmdm[-1] >= rtmdm[0], "8x bandwidth should beat 0.25x"
