"""Compared systems: derive each baseline's task set from a generated case.

Every system sees the *same* drawn workload (models, periods, deadlines,
DM priorities); only the execution strategy differs.  ``derive_taskset``
returns the system's simulatable task set plus the analysis method used
for its admission decision.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.baselines import sequentialize, single_buffered, whole_job, xip_task
from repro.baselines.xip import xip_segments
from repro.core.pipeline import isolated_latency
from repro.core.segcache import cached_analyze
from repro.sched import vecrta
from repro.sched.task import TaskSet
from repro.workload.taskset import GeneratedCase

#: System keys, in the order figures report them.
SYSTEMS = (
    "rtmdm",
    "rtmdm-oblivious",
    "single-buffer",
    "sequential",
    "np-whole",
    "xip",
)

#: Short labels for figure legends.
LABELS = {
    "rtmdm": "RT-MDM",
    "rtmdm-oblivious": "RT-MDM (susp.-oblivious)",
    "single-buffer": "Single buffer (no prefetch)",
    "sequential": "Sequential (busy-wait)",
    "np-whole": "Non-preemptive whole-DNN",
    "xip": "Execute-in-place",
}


def derive_taskset(system: str, case: GeneratedCase) -> Tuple[TaskSet, str]:
    """The system's task set and its admission analysis method.

    Raises:
        ValueError: for unknown system keys.
        RuntimeError: if the case is infeasible (check ``case.feasible``).
    """
    if case.taskset is None:
        raise RuntimeError("case is infeasible; no task set to derive")
    base = case.taskset
    if system == "rtmdm":
        return base, "rtmdm"
    if system == "rtmdm-oblivious":
        return base, "oblivious"
    if system == "single-buffer":
        return TaskSet.of(single_buffered(t) for t in base), "rtmdm"
    if system == "sequential":
        return TaskSet.of(sequentialize(t) for t in base), "rtmdm"
    if system == "np-whole":
        return TaskSet.of(whole_job(t) for t in base), "rtmdm"
    if system == "xip":
        tasks = []
        for task in base:
            model = case.refined[task.name]
            tasks.append(
                xip_task(
                    name=task.name,
                    model=model,
                    platform=case.platform,
                    period=task.period,
                    deadline=task.deadline,
                    priority=task.priority,
                    quant=case.quant,
                )
            )
        return TaskSet.of(tasks), "rtmdm"
    raise ValueError(f"unknown system {system!r}; choose from {SYSTEMS}")


def admit(system: str, case: GeneratedCase) -> bool:
    """Offline admission verdict of ``system`` for ``case``.

    Infeasible cases (SRAM cannot hold the workload) are rejected by
    every staging system; XIP needs no staging buffers and is judged on
    timing alone.
    """
    if not case.feasible:
        return False
    taskset, method = derive_taskset(system, case)
    return cached_analyze(taskset, method).schedulable


# ----------------------------------------------------------------------
# Fused struct-of-arrays admission (vectorized sweep core)
# ----------------------------------------------------------------------
#
# ``admit`` above materializes each baseline's task set (Segment tuples,
# PeriodicTask property churn, per-task _View construction) before a
# handful of fixpoints run.  For sweeps that is most of the admission
# cost, so the batched path below derives each system's per-task
# *aggregate columns* (total/max compute and load, segment counts,
# pipeline latency) directly in array space and packs one
# :class:`~repro.sched.vecrta.ChainBatch` for a whole batch of cases.
# Every column equals what the scalar derivation computes — sequential
# folds loads into compute, np-whole collapses to one latency-long
# section, XIP takes the memoized per-layer segments — so verdicts are
# bit-identical to per-case ``admit`` (property-tested by
# ``tests/test_vecrta_identity.py``).


# xip_segments memoizes on a deep structural model fingerprint; hashing
# that key costs more than everything else in the packer combined.  The
# refined model objects themselves are shared across a sweep's cases
# (the refine cache returns the same instance), so a thin identity memo
# in front pays the fingerprint lookup once per distinct model object.
# Values pin their key objects so the ids stay valid.
_XIP_COLS: Dict[Tuple[int, int, int], Tuple[object, ...]] = {}


def _xip_cols(name, model, platform, quant) -> Tuple[int, int, int]:
    """(total, max, count) of per-layer XIP compute cycles for a model."""
    key = (id(model), id(platform), id(quant))
    hit = _XIP_COLS.get(key)
    if hit is not None:
        return hit[3]
    segs = xip_segments(name, model, platform, quant)
    total = mx = 0
    for s in segs:
        cc = s.compute_cycles
        total += cc
        if cc > mx:
            mx = cc
    if len(_XIP_COLS) >= 4096:
        _XIP_COLS.clear()
    cols = (total, mx, len(segs))
    _XIP_COLS[key] = (model, platform, quant, cols)
    return cols


def _pack_case(
    batch: "vecrta.ChainBatch", case: GeneratedCase, systems: Sequence[str]
) -> List[Tuple[str, Dict[str, int]]]:
    """Plan every system's admission chains for one feasible case.

    Hand-inlined hot path: one segment pass per task computes every
    aggregate each baseline derivation needs; ``buffers == 1`` pipeline
    latencies degenerate to the serialized sum (with one buffer a load
    can only start after the previous compute finished, so nothing ever
    overlaps), which removes the per-task latency recurrences for the
    single-buffer, sequential, and XIP columns.  A single per-case
    magnitude screen stands in for the per-chain checks.
    """
    tasks = sorted(case.taskset, key=lambda t: (t.priority, t.name))
    n = len(tasks)
    if n == 0:
        raise vecrta.StandDown("empty task set")
    priorities = [t.priority for t in tasks]
    if len(set(priorities)) != len(priorities):
        # The scalar path raises inside analyze(); stand down so the
        # fallback reproduces its exact error behavior.
        raise vecrta.StandDown("duplicate priorities")
    periods = [t.period for t in tasks]
    deadlines = [t.deadline for t in tasks]
    tc = [0] * n    # total compute
    tl = [0] * n    # total load
    ns = [0] * n    # segments
    nl = [0] * n    # segments with a load leg
    mc = [0] * n    # max segment compute
    ml = [0] * n    # max segment load
    msum = [0] * n  # max folded (compute + load) segment
    lat = [0] * n   # isolated pipelined latency at the task's depth
    bufs = [0] * n
    for i, task in enumerate(tasks):
        a = b = c = d = e = loads = 0
        for s in task.segments:
            cc = s.compute_cycles
            ll = s.load_cycles
            a += cc
            b += ll
            if cc > c:
                c = cc
            if ll > d:
                d = ll
            if cc + ll > e:
                e = cc + ll
            if ll > 0:
                loads += 1
        tc[i], tl[i], mc[i], ml[i], msum[i], nl[i] = a, b, c, d, e, loads
        ns[i] = len(task.segments)
        bufs[i] = task.buffers
        lat[i] = isolated_latency(task.segments, task.buffers)
    serial = [c + l for c, l in zip(tc, tl)]

    xtc = xmc = xns = None
    if "xip" in systems:
        xtc, xmc, xns = [0] * n, [0] * n, [0] * n
        for i, task in enumerate(tasks):
            xtc[i], xmc[i], xns[i] = _xip_cols(
                task.name, case.refined[task.name], case.platform, case.quant
            )

    # One coarse magnitude screen covering every chain packed below:
    # owns and interferences are bounded by serial/xip totals, blocking
    # by (segments per job) * (largest section) on both resources.
    if min(periods) <= 0 or min(deadlines) <= 0:
        raise vecrta.StandDown("non-positive period or deadline")
    big = max(max(serial), max(xtc) if xtc else 0, 1)
    segs_max = max(max(ns), max(xns) if xns else 1)
    d_max = max(deadlines)
    ceiling = big + 2 * segs_max * big + sum(
        ((2 * d_max) // t + 1) * max(s, x)
        for t, s, x in zip(periods, serial, xtc or serial)
    )
    if ceiling >= vecrta._INT64_LIMIT:
        raise vecrta.StandDown("demand ceiling exceeds int64 headroom")

    zeros = [0] * n
    falses = [False] * n
    lp_c = vecrta._suffix_max(mc)
    lp_l = vecrta._suffix_max(ml)
    lp_c1 = [lp_c[i + 1] for i in range(n)]
    lp_l1 = [lp_l[i + 1] for i in range(n)]
    bl_base = [ns[i] * lp_c1[i] + nl[i] * lp_l1[i] for i in range(n)]

    plan: List[Tuple[str, Dict[str, int]]] = []
    for system in systems:
        if system == "rtmdm":
            plan.append(("rtmdm", {
                "ovl": batch.add_simple(
                    lat, bl_base, serial, periods, deadlines, check=False),
                "hol": batch.add_holistic(
                    tl, tc, lat, lp_l1, lp_c1, bl_base,
                    [bufs[i] < ns[i] for i in range(n)],
                    periods, deadlines, check=False),
            }))
        elif system == "rtmdm-oblivious":
            plan.append(("oblivious", {
                "obl": batch.add_simple(
                    serial, bl_base, serial, periods, deadlines, check=False),
            }))
        elif system == "single-buffer":
            # Same segments at depth 1: latency degenerates to serial.
            plan.append(("rtmdm", {
                "ovl": batch.add_simple(
                    serial, bl_base, serial, periods, deadlines, check=False),
                "hol": batch.add_holistic(
                    tl, tc, serial, lp_l1, lp_c1, bl_base,
                    [1 < ns[i] for i in range(n)],
                    periods, deadlines, check=False),
            }))
        elif system == "sequential":
            # Loads folded into compute, depth 1, no DMA legs.
            lp_m = vecrta._suffix_max(msum)
            lp_m1 = [lp_m[i + 1] for i in range(n)]
            bl_seq = [ns[i] * lp_m1[i] for i in range(n)]
            plan.append(("rtmdm", {
                "ovl": batch.add_simple(
                    serial, bl_seq, serial, periods, deadlines, check=False),
                "hol": batch.add_holistic(
                    zeros, serial, serial, zeros, lp_m1, bl_seq,
                    [1 < ns[i] for i in range(n)],
                    periods, deadlines, check=False),
            }))
        elif system == "np-whole":
            # One latency-long section per job, no DMA leg, depth kept
            # (never gated: one segment needs one buffer).
            lp_w = vecrta._suffix_max(lat)
            lp_w1 = [lp_w[i + 1] for i in range(n)]
            plan.append(("rtmdm", {
                "ovl": batch.add_simple(
                    lat, lp_w1, lat, periods, deadlines, check=False),
                "hol": batch.add_holistic(
                    zeros, lat, lat, zeros, lp_w1, lp_w1, falses,
                    periods, deadlines, check=False),
            }))
        elif system == "xip":
            # Per-layer XIP segments: zero loads, depth 1.
            lp_x = vecrta._suffix_max(xmc)
            lp_x1 = [lp_x[i + 1] for i in range(n)]
            bl_x = [xns[i] * lp_x1[i] for i in range(n)]
            plan.append(("rtmdm", {
                "ovl": batch.add_simple(
                    xtc, bl_x, xtc, periods, deadlines, check=False),
                "hol": batch.add_holistic(
                    zeros, xtc, xtc, zeros, lp_x1, bl_x,
                    [1 < xns[i] for i in range(n)],
                    periods, deadlines, check=False),
            }))
        else:
            raise ValueError(f"unknown system {system!r}; choose from {SYSTEMS}")
    return plan


_FALLBACK = object()


def admit_batch(
    cases: Iterable[GeneratedCase],
    systems: Sequence[str] = SYSTEMS,
) -> List[Tuple[bool, ...]]:
    """Batched :func:`admit` over many cases for every system at once.

    Returns one verdict tuple per case (ordered like ``systems``),
    bit-identical to ``tuple(admit(s, case) for s in systems)``.  With
    the vectorized engine enabled, system derivation and response-time
    fixpoints run in fused struct-of-arrays form; otherwise (or per-case
    on a :class:`~repro.sched.vecrta.StandDown`) the scalar path runs.
    """
    cases = list(cases)
    systems = tuple(systems)
    if not vecrta.enabled():
        return [tuple(admit(s, case) for s in systems) for case in cases]
    start = time.perf_counter()
    batch = vecrta.ChainBatch()
    plans: List[object] = [None] * len(cases)
    fallback: List[int] = []
    for idx, case in enumerate(cases):
        if not case.feasible:
            continue  # plans[idx] stays None: every system rejects
        try:
            plans[idx] = _pack_case(batch, case, systems)
        except vecrta.StandDown:
            vecrta._count_stand_down()
            plans[idx] = _FALLBACK
            fallback.append(idx)
    vecrta._PROFILE["pack_s"] += time.perf_counter() - start
    try:
        batch.solve()
    except vecrta.StandDown:  # pragma: no cover - needs ~1e6 fixpoint steps
        vecrta._count_stand_down()
        return [tuple(admit(s, case) for s in systems) for case in cases]
    start = time.perf_counter()
    rejected = tuple(False for _ in systems)
    out: List[Tuple[bool, ...]] = [rejected] * len(cases)
    for idx, plan in enumerate(plans):
        if plan is None or plan is _FALLBACK:
            continue
        out[idx] = tuple(
            vecrta.chains_schedulable(batch, handles, method)
            for method, handles in plan
        )
    vecrta._PROFILE["unpack_s"] += time.perf_counter() - start
    for idx in fallback:
        out[idx] = tuple(admit(s, cases[idx]) for s in systems)
    return out
