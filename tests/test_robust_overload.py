"""Tests for overload policies (repro.robust.overload) and EXP-R1.

The acceptance scenario: a transiently overloaded two-task set where the
managed policies must *strictly* beat the CONTINUE baseline on miss
ratio, deterministically (same seed → same metrics).
"""

import pytest

from repro.robust import (
    DegradeConfig,
    FaultConfig,
    InflationModel,
    OverloadManager,
    OverrunPolicy,
    degraded_variant,
    miss_ratio,
    robustness_summary,
)
from repro.sched.policies import CpuPolicy
from repro.sched.simulator import SimConfig, simulate
from repro.sched.task import PeriodicTask, Segment, TaskSet


def _task(name, pairs, period, deadline, priority, buffers, phase=0):
    return PeriodicTask(
        name,
        tuple(Segment(f"{name}{i}", l, c) for i, (l, c) in enumerate(pairs)),
        period=period,
        deadline=deadline,
        priority=priority,
        buffers=buffers,
        phase=phase,
    )


def _overload_taskset():
    """Fits nominally; a 2x WCET inflation overloads the low task, whose
    long non-preemptive runs then also knock the high task late."""
    return TaskSet.of([
        _task("hi", [(0, 200)], 1000, 500, 0, 1),
        _task("lo", [(100, 900)], 2000, 1200, 1, 1, phase=100),
    ])


_FAULTS = FaultConfig(inflation=InflationModel.FIXED, inflation_factor=2.0,
                      seed=3)


def _run(policy, ts=None, record_trace=False):
    ts = ts or _overload_taskset()
    degrade = None
    if policy is OverrunPolicy.DEGRADE:
        degrade = DegradeConfig(
            fallbacks={t.name: degraded_variant(t, 0.5) for t in ts},
            miss_threshold=1,
            recover_after=2,
        )
    return simulate(
        ts,
        SimConfig(policy=CpuPolicy.FP_NP, horizon=20000, faults=_FAULTS,
                  overrun=policy, degrade=degrade,
                  record_trace=record_trace),
    )


# ----------------------------------------------------------------------
# Acceptance: managed policies strictly beat CONTINUE, deterministically
# ----------------------------------------------------------------------
def test_abort_and_degrade_strictly_reduce_miss_ratio():
    baseline = miss_ratio(_run(OverrunPolicy.CONTINUE))
    assert baseline > 0
    assert miss_ratio(_run(OverrunPolicy.ABORT_AT_DEADLINE)) < baseline
    assert miss_ratio(_run(OverrunPolicy.DEGRADE)) < baseline


@pytest.mark.parametrize("policy", list(OverrunPolicy))
def test_same_seed_runs_produce_identical_metrics(policy):
    assert robustness_summary(_run(policy)) == robustness_summary(_run(policy))


def test_abort_frees_resources_and_counts_aborts():
    cont = _run(OverrunPolicy.CONTINUE)
    abort = _run(OverrunPolicy.ABORT_AT_DEADLINE, record_trace=True)
    # Every late lo job is killed at its deadline instead of completing.
    assert abort.stats["lo"].aborts > 0
    assert abort.stats["lo"].misses == 0
    # The freed CPU time rescues hi jobs that CONTINUE made late.
    assert abort.stats["hi"].misses < cont.stats["hi"].misses
    assert abort.trace.points("abort")
    # Aborted jobs never report a response, so the accounting still adds up.
    lo = abort.stats["lo"]
    assert lo.jobs == len(lo.responses) + lo.aborts + lo.unfinished


def test_skip_next_suppresses_releases():
    cont = _run(OverrunPolicy.CONTINUE)
    skip = _run(OverrunPolicy.SKIP_NEXT, record_trace=True)
    assert skip.stats["lo"].skips > 0
    assert skip.trace.points("skip")
    # Skipped releases never become jobs.
    released = sum(s.jobs for s in skip.stats.values())
    assert released < sum(s.jobs for s in cont.stats.values())


def test_degrade_runs_fallback_and_recovers():
    result = _run(OverrunPolicy.DEGRADE, record_trace=True)
    assert result.stats["lo"].degraded_jobs > 0
    degrades = result.trace.points("degrade")
    recovers = result.trace.points("recover")
    assert degrades and recovers  # full degrade -> recover cycling
    # Residency is a proper fraction: some jobs ran degraded, not all.
    summary = robustness_summary(result)
    assert 0 < summary["degraded_residency"] < 1


def test_continue_matches_nominal_when_no_faults():
    ts = _overload_taskset()
    plain = simulate(ts, SimConfig(policy=CpuPolicy.FP_NP, horizon=20000))
    managed = simulate(
        ts,
        SimConfig(policy=CpuPolicy.FP_NP, horizon=20000,
                  overrun=OverrunPolicy.CONTINUE, faults=FaultConfig()),
    )
    for name in ("hi", "lo"):
        assert plain.stats[name].responses == managed.stats[name].responses


# ----------------------------------------------------------------------
# OverloadManager unit behavior
# ----------------------------------------------------------------------
def test_degrade_policy_requires_config():
    with pytest.raises(ValueError):
        OverloadManager(OverrunPolicy.DEGRADE, None)
    with pytest.raises(ValueError):
        SimConfig(horizon=100, overrun=OverrunPolicy.DEGRADE)


def test_mode_state_machine_transitions():
    task = _task("t", [(10, 100)], 1000, 1000, 0, 1)
    manager = OverloadManager(
        OverrunPolicy.DEGRADE,
        DegradeConfig(fallbacks={"t": degraded_variant(task)},
                      miss_threshold=2, recover_after=2),
    )
    assert manager.segments_for(task) is task.segments
    assert manager.job_finished("t", missed=True) is None
    assert manager.job_finished("t", missed=True) == "degrade"
    assert manager.is_degraded("t")
    assert manager.segments_for(task) != task.segments
    assert manager.job_finished("t", missed=False) is None
    assert manager.job_finished("t", missed=False) == "recover"
    assert not manager.is_degraded("t")
    assert manager.segments_for(task) is task.segments


def test_clean_job_resets_miss_streak():
    task = _task("t", [(10, 100)], 1000, 1000, 0, 1)
    manager = OverloadManager(
        OverrunPolicy.DEGRADE,
        DegradeConfig(fallbacks={"t": degraded_variant(task)},
                      miss_threshold=2, recover_after=1),
    )
    assert manager.job_finished("t", missed=True) is None
    assert manager.job_finished("t", missed=False) is None  # streak broken
    assert manager.job_finished("t", missed=True) is None
    assert manager.job_finished("t", missed=True) == "degrade"


def test_tasks_without_fallback_never_degrade():
    task = _task("t", [(10, 100)], 1000, 1000, 0, 1)
    manager = OverloadManager(
        OverrunPolicy.DEGRADE,
        DegradeConfig(fallbacks={"other": (Segment("s", 1, 1),)},
                      miss_threshold=1, recover_after=1),
    )
    for _ in range(5):
        assert manager.job_finished("t", missed=True) is None
    assert not manager.is_degraded("t")
    assert manager.segments_for(task) is task.segments


def test_degraded_variant_scales_and_validates():
    task = _task("t", [(100, 7), (0, 1)], 1000, 1000, 0, 1)
    fallback = degraded_variant(task, 0.5)
    assert [s.load_cycles for s in fallback] == [50, 0]
    assert [s.compute_cycles for s in fallback] == [4, 1]  # compute >= 1
    assert all(s.name.endswith("~") for s in fallback)
    with pytest.raises(ValueError):
        degraded_variant(task, 0.0)
    with pytest.raises(ValueError):
        degraded_variant(task, 1.5)
    with pytest.raises(ValueError):
        DegradeConfig(fallbacks={"t": ()})


# ----------------------------------------------------------------------
# EXP-R1 driver
# ----------------------------------------------------------------------
def test_exp_r1_runs_and_is_deterministic():
    from repro.eval.experiments import run_experiment

    kwargs = dict(inflations=(1.0, 1.5), n_sets=2, seed=77)
    a = run_experiment("EXP-R1", **kwargs)
    b = run_experiment("EXP-R1", **kwargs)
    assert a.columns == (
        "inflation", "miss_continue", "miss_abort", "miss_skip_next",
        "miss_degrade", "degraded_residency",
    )
    assert len(a.rows) == 2
    assert a.rows == b.rows
    assert a.notes == b.notes
