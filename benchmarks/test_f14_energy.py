"""Benchmark for EXP-F14: energy per inference (extension)."""

from conftest import bench_experiment


def test_f14_energy(benchmark):
    result = bench_experiment(benchmark, "EXP-F14")
    for row in result.rows:
        model, rtmdm, sequential, xip, ratio = row
        assert rtmdm <= sequential + 1e-9, model
        assert rtmdm <= xip + 1e-9, model
