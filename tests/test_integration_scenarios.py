"""Integration tests: every named scenario end to end.

Each scenario is planned with the framework, simulated on its platform,
and the offline guarantee is checked against the observed schedule.
These are the repository's "does the whole stack hang together" tests.
"""

import pytest

from repro.core.framework import RtMdm
from repro.hw.presets import get_platform
from repro.workload.scenarios import SCENARIOS, get_scenario


def _configure(scenario_name):
    scenario = get_scenario(scenario_name)
    platform = get_platform(scenario.platform_key)
    rt = RtMdm(platform)
    for spec in scenario.specs():
        rt.add_task(spec.name, spec.model, spec.period_s, spec.deadline_s)
    return rt.configure()


@pytest.mark.parametrize("scenario_name", sorted(SCENARIOS))
def test_scenario_plans_and_fits(scenario_name):
    config = _configure(scenario_name)
    assert config.feasible, config.infeasible_reason
    assert config.sram_plan.fits
    config.sram_plan.verify_disjoint()


@pytest.mark.parametrize("scenario_name", sorted(SCENARIOS))
def test_admitted_scenarios_never_miss_in_simulation(scenario_name):
    config = _configure(scenario_name)
    if not config.admitted:
        pytest.skip(f"{scenario_name} not admitted on its default platform")
    result = config.simulate()
    assert result.no_misses
    for task in config.taskset:
        observed = result.max_response(task.name)
        bound = config.analysis.wcrt[task.name]
        assert observed is not None and observed <= bound


def test_doorbell_is_admitted():
    """The flagship case study must be admitted outright."""
    config = _configure("doorbell")
    assert config.admitted


def test_doorbell_beats_sequential_latency():
    """RT-MDM's pipelined latency dominates the sequential baseline's,
    and load-heavy tasks see materially tighter response bounds.

    (Per-task bound dominance is NOT asserted: folding loads into compute
    removes the DMA-blocking term, which can make the sequential bound
    marginally tighter for load-light tasks — the win shows on latency
    and on the load-heavy tasks.)
    """
    from repro.baselines import sequentialize
    from repro.core.analysis import analyze
    from repro.core.pipeline import isolated_latency
    from repro.sched.task import TaskSet

    config = _configure("doorbell")
    sequential = TaskSet.of(sequentialize(t) for t in config.taskset)
    seq = analyze(sequential, "rtmdm")
    for task in config.taskset:
        seq_task = sequential.by_name(task.name)
        assert isolated_latency(task.segments, task.buffers) <= isolated_latency(
            seq_task.segments, seq_task.buffers
        )
    # The autoencoder is the load-heavy task: bounds must improve there.
    assert config.analysis.wcrt["anomaly"] < seq.wcrt["anomaly"]


def test_gantt_renders_for_case_study():
    config = _configure("doorbell")
    result = config.simulate(duration_s=1.0, record_trace=True)
    chart = result.trace.gantt(width=60)
    assert "cpu" in chart and "dma" in chart
