"""Experiment drivers: one per reconstructed table/figure (DESIGN.md §4).

Every driver is deterministic given its ``seed`` and returns an
:class:`~repro.eval.reporting.ExperimentResult` whose rows are the series
the corresponding paper table/figure would plot.  ``scale`` shrinks or
grows sample counts (benchmarks use modest scales so the suite stays
fast; pass ``scale=4`` or more for paper-quality curves).
"""

from __future__ import annotations

import inspect
import math
import random
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import segcache
from repro.core.analysis import METHODS, analyze
from repro.core.framework import RtMdm
from repro.core.pipeline import isolated_latency, sequential_latency
from repro.core.segmentation import (
    SegmentationError,
    min_max_weight_partition,
    search_segmentation,
    segment_model,
)
from repro.dnn.models import refine_model
from repro.dnn.quantization import INT8
from repro.dnn.zoo import build_model, list_models
from repro.eval.metrics import (
    latency_stats,
    miss_ratio,
    quantiles,
    schedulability_ratio,
    tightness_ratios,
)
from repro.eval.parallel import run_units, simulate_batch, stable_seed
from repro.eval.reporting import ExperimentResult
from repro.eval.systems import SYSTEMS, admit, admit_batch, derive_taskset
from repro.hw.dma import DmaArbitration
from repro.hw.presets import PLATFORMS, get_platform
from repro.sched.policies import CpuPolicy
from repro.sched.simulator import (
    SimConfig,
    fold_delta_since,
    fold_snapshot,
    simulate,
)
from repro.sched.task import TaskSet
from repro.workload.scenarios import get_scenario
from repro.workload.taskset import generate_case

KIB = 1024

#: Deterministic per-unit seeding (moved to repro.eval.parallel so worker
#: processes share one definition); kept under the historic local name.
_stable_seed = stable_seed


def _with_cache_note(notes: str, deltas: Sequence[Dict[str, Tuple[int, int]]]) -> str:
    """Append the merged plan-cache hit/miss summary to a notes string."""
    return f"{notes}; {segcache.cache_note(segcache.merge_deltas(deltas))}"

# ----------------------------------------------------------------------
# EXP-T1 / EXP-T2: workload and platform characterization tables
# ----------------------------------------------------------------------


def exp_t1_model_zoo(platform_key: str = "f746-qspi", **_) -> ExperimentResult:
    """Model zoo characteristics and their SRAM deficit on the platform."""
    platform = get_platform(platform_key)
    rows = []
    for name in list_models():
        model = build_model(name)
        weights = model.total_param_bytes(INT8)
        act = model.peak_activation_bytes(INT8)
        deficit = weights + act - platform.usable_sram_bytes
        rows.append(
            (
                name,
                model.num_layers,
                round(model.total_macs / 1e6, 2),
                round(weights / KIB, 1),
                round(act / KIB, 1),
                round(max(0, deficit) / KIB, 1),
                weights + act > platform.usable_sram_bytes,
            )
        )
    return ExperimentResult(
        exp_id="EXP-T1",
        title=f"Model zoo on {platform.name}",
        columns=(
            "model",
            "layers",
            "MMACs",
            "weights_KiB",
            "peak_act_KiB",
            "sram_deficit_KiB",
            "needs_ext_mem",
        ),
        rows=tuple(rows),
        notes="deficit = weights + activations - usable SRAM; any deficit forces staging",
    )


def exp_t2_platforms(**_) -> ExperimentResult:
    """Platform presets and their load/compute balance point."""
    rows = []
    for key, platform in sorted(PLATFORMS.items()):
        mcu, mem = platform.mcu, platform.memory
        load_100k = platform.load_cycles(100 * KIB)
        rows.append(
            (
                key,
                mcu.name,
                round(mcu.clock_hz / 1e6),
                round(mcu.usable_sram_bytes / KIB),
                mem.name,
                round(mem.read_bandwidth_bps / 1e6, 1),
                round(platform.balance_bytes_per_cycle(), 3),
                round(mcu.cycles_to_ms(load_100k), 2),
            )
        )
    return ExperimentResult(
        exp_id="EXP-T2",
        title="Platform presets",
        columns=(
            "key",
            "mcu",
            "MHz",
            "sram_KiB",
            "ext_mem",
            "MB/s",
            "bytes_per_cycle",
            "load_100KiB_ms",
        ),
        rows=tuple(rows),
        notes="bytes_per_cycle above a segment's weight-bytes/compute-cycles ratio means compute-bound",
    )


# ----------------------------------------------------------------------
# EXP-F3: single-DNN isolated latency per execution strategy
# ----------------------------------------------------------------------


def exp_f3_single_dnn_latency(
    platform_key: str = "f746-qspi", **_
) -> ExperimentResult:
    """Isolated inference latency of each strategy, per model."""
    platform = get_platform(platform_key)
    budget = platform.usable_sram_bytes
    rows = []
    skipped = []
    for name in list_models():
        model = refine_model(build_model(name), INT8, max(2048, budget // 8))
        try:
            seg = search_segmentation(model, platform, budget, quant=INT8, buffers=2)
        except SegmentationError:
            skipped.append(name)
            continue
        segments = seg.segments()
        pipelined = isolated_latency(segments, buffers=2)
        single_buf = isolated_latency(segments, buffers=1)
        sequential = sequential_latency(segments)
        xip = sum(platform.xip_cycles(layer, 1.0) for layer in model.layers)
        ms = platform.mcu.cycles_to_ms
        rows.append(
            (
                name,
                round(ms(pipelined), 2),
                round(ms(single_buf), 2),
                round(ms(sequential), 2),
                round(ms(xip), 2),
                round(sequential / pipelined, 2),
                round(xip / pipelined, 2),
            )
        )
    notes = "rtmdm = double-buffered pipeline; speedup columns are vs RT-MDM"
    if skipped:
        notes += (
            "; skipped (no feasible segmentation within usable SRAM): "
            + ", ".join(skipped)
        )
    return ExperimentResult(
        exp_id="EXP-F3",
        title=f"Single-DNN isolated latency on {get_platform(platform_key).name} (ms)",
        columns=(
            "model",
            "rtmdm_ms",
            "single_buf_ms",
            "sequential_ms",
            "xip_ms",
            "seq/rtmdm",
            "xip/rtmdm",
        ),
        rows=tuple(rows),
        notes=notes,
    )


# ----------------------------------------------------------------------
# Schedulability sweeps (EXP-F4/F5/F6)
# ----------------------------------------------------------------------


def _sweep_admission_unit(unit: Tuple) -> Tuple[Tuple, Dict]:
    """One ``(set index, all sweep points)`` admission work row.

    Module-level and fed only picklable inputs so it can run in a pool
    worker.  The whole row goes through :func:`admit_batch` as one
    struct-of-arrays batch (the vectorized RTA fast path; scalar
    fallback when numpy is absent or ``REPRO_VEC_RTA=0``), so each unit
    carries every point of one set index.  Each point draws from a
    fresh ``Random`` with the same per-index seed — the paired-draw
    contract — exactly as the historic one-point-per-unit worker did.

    Returns ``((verdict rows, generation seconds, analysis seconds),
    cache delta)``; the delta travels back with the payload because
    worker caches are per-process, so merged totals stay exact.
    """
    seed, x_label, index, points, systems = unit
    before = segcache.snapshot()
    start = time.perf_counter()
    cases = []
    for _, platform, util in points:
        rng = random.Random(_stable_seed(seed, x_label, index))
        cases.append(generate_case(platform, util, rng))
    gen_s = time.perf_counter() - start
    start = time.perf_counter()
    row = admit_batch(cases, systems)
    analysis_s = time.perf_counter() - start
    return (tuple(row), gen_s, analysis_s), segcache.delta_since(before)


def _sched_sweep(
    platforms: Sequence,
    x_values: Sequence,
    x_label: str,
    total_utils: Sequence[float],
    n_sets: int,
    seed: int,
    systems: Sequence[str] = SYSTEMS,
    jobs: Optional[int] = None,
) -> Tuple[List[Tuple], List[Dict], Dict[str, float]]:
    """Shared machinery: schedulability ratio of each system per x value.

    Draws are **paired across x values**: set index ``i`` uses the same
    seed at every sweep point, so when only the platform varies (SRAM or
    bandwidth sweeps) each point evaluates the *same* workloads and the
    curves are directly comparable.

    Work decomposes into one unit per set index covering *all* x values
    — a full sweep row — dispatched via
    :func:`repro.eval.parallel.run_units`.  Row granularity feeds the
    vectorized batch admission an entire row of cases at once while
    keeping the plan cache's paired-draw locality within a worker.
    Merging walks units in the serial order, so verdict lists (and
    hence every ratio) are bit-identical to the serial path.

    Returns the result rows, the per-unit cache-counter deltas, and a
    wall-clock split ``{"generate_s", "analysis_s"}`` summed over units
    (timing only — never folded into result rows).
    """
    points = tuple(zip(x_values, platforms, total_utils))
    systems = tuple(systems)
    units = [
        (seed, x_label, index, points, systems) for index in range(n_sets)
    ]
    results = run_units(
        _sweep_admission_unit, units, jobs=jobs, chunksize=1,
        absorb_deltas=True,
        # Leading rows run in-process so forked workers inherit a warm
        # plan cache instead of cold ones.  Misses are spread across the
        # whole sweep (each set draws fresh model/budget combos), so
        # every entry created before the fork is one duplicated miss per
        # worker avoided; 16 rows balances that against serial fraction.
        warm_prefix=16,
    )
    verdicts: Dict[object, Dict[str, List[bool]]] = {
        x: {s: [] for s in systems} for x in x_values
    }
    deltas: List[Dict] = []
    timing = {"generate_s": 0.0, "analysis_s": 0.0}
    for (row, gen_s, analysis_s), delta in results:
        deltas.append(delta)
        timing["generate_s"] += gen_s
        timing["analysis_s"] += analysis_s
        for (x, _, _), unit_verdicts in zip(points, row):
            for system, verdict in zip(systems, unit_verdicts):
                verdicts[x][system].append(verdict)
    rows = []
    for x in x_values:
        rows.append(
            (x, *(round(schedulability_ratio(verdicts[x][s]), 3) for s in systems))
        )
    return rows, deltas, timing


def _sweep_meta(
    timing: Dict[str, float], deltas: Sequence[Dict[str, Tuple[int, ...]]]
) -> Dict:
    """Machine-readable sweep extras: wall-clock split + vec counters."""
    fixpoint = segcache.merge_deltas(deltas).get("rta.fixpoint", ())
    meta: Dict = {key: round(value, 6) for key, value in timing.items()}
    for offset, name in ((3, "vec_batches"), (4, "vec_rows"), (5, "vec_stand_downs")):
        meta[name] = fixpoint[offset] if len(fixpoint) > offset else 0
    return meta


def exp_f4_sched_vs_util(
    platform_key: str = "f746-qspi",
    utils: Sequence[float] = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    n_sets: int = 40,
    seed: int = 2024,
    scale: float = 1.0,
    jobs: Optional[int] = None,
    **_,
) -> ExperimentResult:
    """Schedulability ratio vs total CPU utilization."""
    platform = get_platform(platform_key)
    n = max(4, int(n_sets * scale))
    rows, deltas, timing = _sched_sweep(
        platforms=[platform] * len(utils),
        x_values=list(utils),
        x_label="util",
        total_utils=list(utils),
        n_sets=n,
        seed=seed,
        jobs=jobs,
    )
    return ExperimentResult(
        exp_id="EXP-F4",
        title=f"Schedulability ratio vs utilization on {platform.name} ({n} sets/point)",
        columns=("util", *SYSTEMS),
        rows=tuple(rows),
        notes=_with_cache_note(
            "admission by each system's offline analysis; DM priorities throughout",
            deltas,
        ),
        meta=_sweep_meta(timing, deltas),
    )


def exp_f5_sched_vs_sram(
    platform_key: str = "f746-qspi",
    sram_kib: Sequence[int] = (64, 80, 96, 112, 128, 160, 192, 224, 256, 320, 384, 448),
    util: float = 0.5,
    n_sets: int = 40,
    seed: int = 2025,
    scale: float = 1.0,
    jobs: Optional[int] = None,
    **_,
) -> ExperimentResult:
    """Schedulability ratio vs SRAM size at fixed utilization."""
    base = get_platform(platform_key)
    platforms = [base.with_sram_bytes(k * KIB) for k in sram_kib]
    n = max(4, int(n_sets * scale))
    rows, deltas, timing = _sched_sweep(
        platforms=platforms,
        x_values=list(sram_kib),
        x_label="sram",
        total_utils=[util] * len(sram_kib),
        n_sets=n,
        seed=seed,
        jobs=jobs,
    )
    return ExperimentResult(
        exp_id="EXP-F5",
        title=f"Schedulability ratio vs SRAM (KiB) at U={util} ({n} sets/point)",
        columns=("sram_kib", *SYSTEMS),
        rows=tuple(rows),
        notes=_with_cache_note(
            "XIP needs no staging buffers, so it flattens at low SRAM where staging systems die",
            deltas,
        ),
        meta=_sweep_meta(timing, deltas),
    )


def exp_f6_sched_vs_bandwidth(
    platform_key: str = "f746-qspi",
    factors: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
    util: float = 0.5,
    n_sets: int = 40,
    seed: int = 2026,
    scale: float = 1.0,
    jobs: Optional[int] = None,
    **_,
) -> ExperimentResult:
    """Schedulability ratio vs external-memory bandwidth scaling."""
    base = get_platform(platform_key)
    platforms = [base.with_bandwidth_factor(f) for f in factors]
    n = max(4, int(n_sets * scale))
    rows, deltas, timing = _sched_sweep(
        platforms=platforms,
        x_values=list(factors),
        x_label="bw",
        total_utils=[util] * len(factors),
        n_sets=n,
        seed=seed,
        jobs=jobs,
    )
    return ExperimentResult(
        exp_id="EXP-F6",
        title=f"Schedulability ratio vs bandwidth factor at U={util} ({n} sets/point)",
        columns=("bw_factor", *SYSTEMS),
        rows=tuple(rows),
        notes=_with_cache_note(
            "factor 1.0 = 48 MB/s QSPI; at high bandwidth overlap matters less",
            deltas,
        ),
        meta=_sweep_meta(timing, deltas),
    )


# ----------------------------------------------------------------------
# Simulation experiments (EXP-F7/F8)
# ----------------------------------------------------------------------


#: Soft budget on simulator events per run; keeps sweeps tractable when a
#: drawn set pairs second-long periods with millisecond ones.
_EVENT_BUDGET = 60_000


def _case_config(taskset, horizon_jobs: int,
                 arbitration: DmaArbitration = DmaArbitration.PRIORITY) -> SimConfig:
    """The sweep simulation config for ``taskset`` (phase-independent)."""
    max_period = max(t.period for t in taskset)
    # Events per cycle: ~4 per segment per job (release/load/compute/done).
    density = sum(4 * t.num_segments / t.period for t in taskset)
    horizon = min(horizon_jobs * max_period, int(_EVENT_BUDGET / density))
    horizon = max(horizon, 2 * max_period)
    return SimConfig(
        policy=CpuPolicy.FP_NP,
        dma_arbitration=arbitration,
        horizon=horizon,
    )


def _simulate_case(taskset, horizon_jobs: int, phases_rng: Optional[random.Random],
                   arbitration: DmaArbitration = DmaArbitration.PRIORITY):
    config = _case_config(taskset, horizon_jobs, arbitration)
    if phases_rng is not None:
        taskset = taskset.with_phases(
            [phases_rng.randrange(t.period) for t in taskset]
        )
    return simulate(taskset, config)


def _simulate_case_batch(taskset, horizon_jobs: int,
                         phase_rngs: Sequence[Optional[random.Random]],
                         arbitration: DmaArbitration = DmaArbitration.PRIORITY):
    """Batched :func:`_simulate_case`: one config + shared setup per set.

    Draws each phasing from its rng exactly as the scalar path does, so
    every returned :class:`SimResult` is bit-identical to the
    corresponding scalar call.
    """
    config = _case_config(taskset, horizon_jobs, arbitration)
    cases = []
    for prng in phase_rngs:
        ts = taskset
        if prng is not None:
            ts = taskset.with_phases([prng.randrange(t.period) for t in taskset])
        cases.append((ts, config))
    return simulate_batch(cases)


def _f7_unit(unit: Tuple) -> Tuple[Optional[Tuple[Dict, int]], Dict]:
    """One ``(utilization, set index)`` miss-ratio work unit for EXP-F7.

    Draws its own case from a per-(util, index) stable seed, simulates
    every system over all phasings, and returns per-system miss-ratio
    lists plus the admitted-but-missed count (``None`` payload for an
    infeasible draw).
    """
    seed, platform, util, index, systems, n_phasings = unit
    before = segcache.snapshot()
    rng = random.Random(_stable_seed(seed, "f7", util, index))
    case = generate_case(platform, util, rng)
    if not case.feasible:
        return None, segcache.delta_since(before)
    totals: Dict[str, List[float]] = {}
    admitted_missed = 0
    for system in systems:
        taskset, method = derive_taskset(system, case)
        admitted = segcache.cached_analyze(taskset, method).schedulable
        phase_rngs = [
            random.Random(_stable_seed(seed, util, index, system, p))
            for p in range(n_phasings)
        ]
        results = _simulate_case_batch(taskset, horizon_jobs=20, phase_rngs=phase_rngs)
        values = []
        for result in results:
            values.append(miss_ratio(result))
            if system == "rtmdm" and admitted and result.total_misses:
                admitted_missed += 1
        totals[system] = values
    return (totals, admitted_missed), segcache.delta_since(before)


def exp_f7_miss_ratio(
    platform_key: str = "f746-qspi",
    utils: Sequence[float] = (0.3, 0.5, 0.7, 0.9),
    n_sets: int = 10,
    n_phasings: int = 3,
    seed: int = 2027,
    scale: float = 1.0,
    jobs: Optional[int] = None,
    **_,
) -> ExperimentResult:
    """Empirical deadline-miss ratio in simulation vs utilization.

    Every ``(utilization, set index)`` pair seeds its own draw and
    phasings (no shared RNG chain across sets), which is what lets the
    units run as independent parallel work with bit-identical merges.
    """
    platform = get_platform(platform_key)
    n = max(2, int(n_sets * scale))
    systems = ("rtmdm", "single-buffer", "sequential", "np-whole", "xip")
    units = [
        (seed, platform, util, index, systems, n_phasings)
        for util in utils
        for index in range(n)
    ]
    results = run_units(
        _f7_unit, units, jobs=jobs, chunksize=max(1, n // 2), absorb_deltas=True
    )
    rows = []
    deltas: List[Dict] = []
    it = iter(results)
    for util in utils:
        totals: Dict[str, List[float]] = {s: [] for s in systems}
        admitted_missed = 0
        for _ in range(n):
            payload, delta = next(it)
            deltas.append(delta)
            if payload is None:
                continue
            unit_totals, unit_admitted_missed = payload
            for system in systems:
                totals[system].extend(unit_totals[system])
            admitted_missed += unit_admitted_missed
        row = [util]
        for system in systems:
            values = totals[system]
            row.append(round(sum(values) / len(values), 4) if values else None)
        row.append(admitted_missed)
        rows.append(tuple(row))
    return ExperimentResult(
        exp_id="EXP-F7",
        title=f"Simulated deadline-miss ratio vs utilization ({n} sets x {n_phasings} phasings)",
        columns=("util", *systems, "rtmdm_admitted_misses"),
        rows=tuple(rows),
        notes=_with_cache_note(
            "last column must be 0: sets admitted by RT-MDM's analysis never miss in simulation",
            deltas,
        ),
    )


def _f8_unit(unit: Tuple) -> Tuple[Optional[Dict[str, List[float]]], Dict]:
    """One ``(utilization, set index)`` tightness work unit for EXP-F8."""
    seed, platform, util, index = unit
    before = segcache.snapshot()
    rng = random.Random(_stable_seed(seed, "f8", util, index))
    case = generate_case(platform, util, rng)
    if not case.feasible:
        return None, segcache.delta_since(before)
    admitted = [
        (method, segcache.cached_analyze(case.taskset, method))
        for method in METHODS
    ]
    admitted = [(m, r) for m, r in admitted if r.schedulable]
    sims = _simulate_case_batch(
        case.taskset, horizon_jobs=30,
        phase_rngs=[
            random.Random(_stable_seed(seed, util, index, method))
            for method, _ in admitted
        ],
    )
    ratios: Dict[str, List[float]] = {}
    for (method, result), sim in zip(admitted, sims):
        ratios[method] = list(tightness_ratios(sim, result.wcrt))
    return ratios, segcache.delta_since(before)


def exp_f8_tightness(
    platform_key: str = "f746-qspi",
    utils: Sequence[float] = (0.3, 0.4, 0.5, 0.6),
    n_sets: int = 15,
    seed: int = 2028,
    scale: float = 1.0,
    jobs: Optional[int] = None,
    **_,
) -> ExperimentResult:
    """Analysis tightness: observed worst response / analytic bound.

    Like EXP-F7, draws and phasings are seeded per ``(utilization, set
    index)`` so the sweep decomposes into independent work units.
    """
    platform = get_platform(platform_key)
    n = max(2, int(n_sets * scale))
    units = [
        (seed, platform, util, index) for util in utils for index in range(n)
    ]
    results = run_units(
        _f8_unit, units, jobs=jobs, chunksize=max(1, n // 2), absorb_deltas=True
    )
    ratios_by_method: Dict[str, List[float]] = {m: [] for m in METHODS}
    deltas: List[Dict] = []
    for payload, delta in results:
        deltas.append(delta)
        if payload is None:
            continue
        for method in METHODS:
            ratios_by_method[method].extend(payload.get(method, ()))
    rows = []
    for method in METHODS:
        values = ratios_by_method[method]
        q = quantiles(values, (0.5, 0.9, 1.0))
        rows.append(
            (
                method,
                len(values),
                round(q[0], 3) if q[0] is not None else None,
                round(q[1], 3) if q[1] is not None else None,
                round(q[2], 3) if q[2] is not None else None,
            )
        )
    return ExperimentResult(
        exp_id="EXP-F8",
        title="Analysis tightness: simulated max response / analytic bound",
        columns=("analysis", "samples", "p50", "p90", "max"),
        rows=tuple(rows),
        notes=_with_cache_note(
            "max must stay <= 1.0 (safety); higher p50 = tighter analysis",
            deltas,
        ),
    )


# ----------------------------------------------------------------------
# EXP-T3: case study
# ----------------------------------------------------------------------


def exp_t3_case_study(scenario: str = "doorbell", **_) -> ExperimentResult:
    """The multi-DNN case study: plan, bounds, and simulated maxima."""
    scn = get_scenario(scenario)
    platform = get_platform(scn.platform_key)
    rt = RtMdm(platform)
    for spec in scn.specs():
        rt.add_task(spec.name, spec.model, spec.period_s, spec.deadline_s)
    config = rt.configure()
    if not config.feasible:
        raise RuntimeError(f"case study infeasible: {config.infeasible_reason}")
    sim = config.simulate()
    ms = platform.mcu.cycles_to_ms
    rows = []
    for row in config.report_rows():
        observed = sim.max_response(row["task"])
        rows.append(
            (
                row["task"],
                row["model"],
                row["priority"],
                round(row["period_ms"], 1),
                row["segments"],
                round(row["sram_kib"], 1),
                round(row["latency_ms"], 2),
                round(row["wcrt_ms"], 2) if row["wcrt_ms"] is not None else None,
                round(ms(observed), 2) if observed is not None else None,
                row["admitted"] and sim.stats[row["task"]].misses == 0,
            )
        )
    return ExperimentResult(
        exp_id="EXP-T3",
        title=f"Case study '{scenario}' on {platform.name}",
        columns=(
            "task",
            "model",
            "prio",
            "period_ms",
            "segs",
            "sram_KiB",
            "latency_ms",
            "wcrt_ms",
            "sim_max_ms",
            "deadline_met",
        ),
        rows=tuple(rows),
        notes=f"{scn.description}; all deadlines met and bounds respected",
    )


# ----------------------------------------------------------------------
# Ablations (EXP-F9/F10/F11)
# ----------------------------------------------------------------------


def exp_f9_granularity(
    platform_key: str = "f746-qspi",
    model_name: str = "mobilenet-v1-0.25",
    **_,
) -> ExperimentResult:
    """Segment-count sweep: latency and buffer cost vs granularity."""
    platform = get_platform(platform_key)
    model = refine_model(
        build_model(model_name), INT8, max(2048, platform.usable_sram_bytes // 8)
    )
    weights = [layer.param_bytes(INT8) for layer in model.layers]
    act = model.peak_activation_bytes(INT8)
    ms = platform.mcu.cycles_to_ms
    rows = []
    n = model.num_layers
    counts = sorted({1, 2, 3, 4, 6, 8, 12, 16, 24, n} & set(range(1, n + 1)))
    for k in counts:
        boundaries = min_max_weight_partition(weights, k)
        seg = segment_model(model, platform, boundaries, INT8, buffers=2)
        segments = seg.segments()
        rows.append(
            (
                k,
                round((2 * seg.max_segment_weight_bytes + act) / KIB, 1),
                round(ms(isolated_latency(segments, 2)), 2),
                round(ms(sequential_latency(segments)), 2),
                round(ms(sum(s.load_cycles for s in segments)), 2),
                round(ms(max(s.compute_cycles for s in segments)), 2),
            )
        )
    return ExperimentResult(
        exp_id="EXP-F9",
        title=f"Granularity sweep for {model_name} on {platform.name}",
        columns=(
            "segments",
            "sram_need_KiB",
            "pipelined_ms",
            "sequential_ms",
            "total_load_ms",
            "max_np_section_ms",
        ),
        rows=tuple(rows),
        notes="finer segments shrink buffers and NP blocking but add per-transfer setup",
    )


def exp_f10_dma_policy(
    platform_key: str = "f746-qspi",
    utils: Sequence[float] = (0.4, 0.6, 0.8),
    n_sets: int = 8,
    seed: int = 2030,
    scale: float = 1.0,
    **_,
) -> ExperimentResult:
    """DMA arbitration ablation: priority queue vs FIFO queue."""
    platform = get_platform(platform_key)
    n = max(2, int(n_sets * scale))
    rows = []
    for util in utils:
        rng = random.Random(seed * 1000 + int(util * 100))
        deltas = []
        prio_miss, fifo_miss = [], []
        for _ in range(n):
            case = generate_case(platform, util, rng)
            if not case.feasible:
                continue
            # One batched pair covers both the miss-ratio and the
            # response-time columns: the runs are deterministic (no
            # phasing rng), so reusing them is bit-identical to the
            # former repeated scalar calls.
            rp, rf = simulate_batch([
                (case.taskset, _case_config(case.taskset, 20, DmaArbitration.PRIORITY)),
                (case.taskset, _case_config(case.taskset, 20, DmaArbitration.FIFO)),
            ])
            prio_miss.append(miss_ratio(rp))
            fifo_miss.append(miss_ratio(rf))
            # Response-time impact on the highest-priority task.
            top = case.taskset.sorted_by_priority()[0].name
            if rp.max_response(top) and rf.max_response(top):
                deltas.append(rf.max_response(top) / rp.max_response(top))
        rows.append(
            (
                util,
                round(sum(prio_miss) / len(prio_miss), 4) if prio_miss else None,
                round(sum(fifo_miss) / len(fifo_miss), 4) if fifo_miss else None,
                round(sum(deltas) / len(deltas), 3) if deltas else None,
            )
        )
    return ExperimentResult(
        exp_id="EXP-F10",
        title="DMA arbitration: FIFO vs priority queue",
        columns=("util", "miss_ratio_priority", "miss_ratio_fifo", "top_task_R_fifo/prio"),
        rows=tuple(rows),
        notes="FIFO lets low-priority transfers delay urgent loads; analysis assumes priority",
    )


def exp_f11_buffering(
    platform_key: str = "f746-qspi",
    util: float = 0.5,
    n_sets: int = 30,
    seed: int = 2031,
    scale: float = 1.0,
    **_,
) -> ExperimentResult:
    """Buffer-depth ablation: latency and schedulability for b = 1, 2, 3."""
    platform = get_platform(platform_key)
    ms = platform.mcu.cycles_to_ms
    rows = []
    # Part 1: per-model isolated latency by buffer depth.
    for name in ("ds-cnn", "autoencoder", "mobilenet-v1-0.25", "resnet8"):
        model = refine_model(
            build_model(name), INT8, max(2048, platform.usable_sram_bytes // 12)
        )
        lat = {}
        sram = {}
        for b in (1, 2, 3):
            try:
                seg = search_segmentation(
                    model, platform, platform.usable_sram_bytes, quant=INT8, buffers=b
                )
            except SegmentationError:
                lat[b], sram[b] = None, None
                continue
            lat[b] = round(ms(seg.isolated_latency()), 2)
            sram[b] = round(seg.sram_need_bytes() / KIB, 1)
        rows.append((name, lat[1], lat[2], lat[3], sram[1], sram[2], sram[3]))
    # Part 2: schedulability at the target utilization by buffer depth.
    # The same drawn workloads are planned at each depth (the draw
    # consumes the rng before `buffers` is used, so seeding per set index
    # gives identical models/utilizations across depths).
    n = max(4, int(n_sets * scale))
    verdicts: Dict[int, List[bool]] = {1: [], 2: [], 3: []}
    for index in range(n):
        for b in (1, 2, 3):
            rng = random.Random(seed * 1000 + index)
            case = generate_case(platform, util, rng, buffers=b)
            verdicts[b].append(
                case.feasible and analyze(case.taskset, "rtmdm").schedulable
            )
    sched = {b: round(schedulability_ratio(verdicts[b]), 3) for b in (1, 2, 3)}
    rows.append(
        (f"sched@U={util}", sched[1], sched[2], sched[3], None, None, None)
    )
    return ExperimentResult(
        exp_id="EXP-F11",
        title="Buffer-depth ablation (latency ms / SRAM KiB / schedulability)",
        columns=("model", "b=1", "b=2", "b=3", "sram_b1", "sram_b2", "sram_b3"),
        rows=tuple(rows),
        notes="b=1 disables overlap; b=3 rarely helps but costs a third slot",
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "EXP-T1": exp_t1_model_zoo,
    "EXP-T2": exp_t2_platforms,
    "EXP-F3": exp_f3_single_dnn_latency,
    "EXP-F4": exp_f4_sched_vs_util,
    "EXP-F5": exp_f5_sched_vs_sram,
    "EXP-F6": exp_f6_sched_vs_bandwidth,
    "EXP-F7": exp_f7_miss_ratio,
    "EXP-F8": exp_f8_tightness,
    "EXP-T3": exp_t3_case_study,
    "EXP-F9": exp_f9_granularity,
    "EXP-F10": exp_f10_dma_policy,
    "EXP-F11": exp_f11_buffering,
}


def run_experiment(exp_id: str, **kwargs) -> ExperimentResult:
    """Run an experiment by id, with a helpful error on typos.

    Options a particular driver does not take (e.g. ``jobs`` for an
    experiment with no parallel decomposition) are dropped, so callers
    like the CLI can pass ``scale``/``n_sets``/``jobs`` uniformly.
    ``None`` values are also dropped so driver defaults apply.

    Every invocation starts from a *cold* plan cache: the hit/miss note
    an experiment reports is then a deterministic function of the
    experiment and its arguments, not of whatever ran earlier in the
    process (results are warmth-independent by construction either way).
    """
    try:
        driver = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    params = inspect.signature(driver).parameters
    accepted = {
        k: v for k, v in kwargs.items() if k in params and v is not None
    }
    segcache.clear_all()
    return driver(**accepted)


# ----------------------------------------------------------------------
# Extension experiments (EXP-F12/F13/F14)
# ----------------------------------------------------------------------


def exp_f12_fp_vs_edf(
    platform_key: str = "f746-qspi",
    utils: Sequence[float] = (0.2, 0.35, 0.5, 0.65, 0.8),
    n_sets: int = 20,
    seed: int = 2032,
    scale: float = 1.0,
    **_,
) -> ExperimentResult:
    """Fixed-priority vs EDF at segment granularity.

    Offline: RT-MDM's FP analysis vs the conservative EDF demand test.
    Online: empirical miss ratios of both policies on the same draws.
    """
    from repro.core.edf import edf_schedulable

    platform = get_platform(platform_key)
    n = max(4, int(n_sets * scale))
    rows = []
    for util in utils:
        rng = random.Random(seed * 1000 + int(util * 100))
        fp_admit, edf_admit = [], []
        fp_miss, edf_miss = [], []
        for _ in range(n):
            case = generate_case(platform, util, rng)
            if not case.feasible:
                fp_admit.append(False)
                edf_admit.append(False)
                continue
            fp_admit.append(analyze(case.taskset, "rtmdm").schedulable)
            edf_admit.append(edf_schedulable(case.taskset))
            for policy, sink in (
                (CpuPolicy.FP_NP, fp_miss),
                (CpuPolicy.EDF_NP, edf_miss),
            ):
                density = sum(4 * t.num_segments / t.period for t in case.taskset)
                horizon = max(
                    2 * max(t.period for t in case.taskset),
                    min(
                        15 * max(t.period for t in case.taskset),
                        int(_EVENT_BUDGET / density),
                    ),
                )
                result = simulate(
                    case.taskset,
                    SimConfig(policy=policy, horizon=horizon),
                )
                sink.append(miss_ratio(result))
        rows.append(
            (
                util,
                round(schedulability_ratio(fp_admit), 3),
                round(schedulability_ratio(edf_admit), 3),
                round(sum(fp_miss) / len(fp_miss), 4) if fp_miss else None,
                round(sum(edf_miss) / len(edf_miss), 4) if edf_miss else None,
            )
        )
    return ExperimentResult(
        exp_id="EXP-F12",
        title="FP vs EDF at segment granularity (admission and simulated misses)",
        columns=("util", "fp_admit", "edf_admit", "fp_sim_miss", "edf_sim_miss"),
        rows=tuple(rows),
        notes="EDF admission uses the conservative folded-blocking demand test",
    )


def exp_f13_flash_placement(
    platform_key: str = "f746-qspi",
    utils: Sequence[float] = (0.3, 0.5, 0.7),
    n_sets: int = 15,
    seed: int = 2033,
    scale: float = 1.0,
    **_,
) -> ExperimentResult:
    """Internal-flash weight placement on vs off.

    Placing small/hot models in internal flash removes their staging
    traffic and SRAM slots, improving everyone's admission.
    """
    from repro.dnn.zoo import build_model as _build

    platform = get_platform(platform_key)
    pool = ("tinyconv", "lenet5", "ds-cnn", "autoencoder", "resnet8",
            "mobilenet-v1-0.25")
    n = max(4, int(n_sets * scale))
    rows = []
    for util in utils:
        rng = random.Random(seed * 1000 + int(util * 100))
        admitted = {False: 0, True: 0}
        flash_used_kib = []
        for _ in range(n):
            k = rng.randint(3, 5)
            names = [rng.choice(pool) for _ in range(k)]
            models = [_build(name) for name in names]
            shares = [rng.uniform(0.5, 1.5) for _ in range(k)]
            total_share = sum(shares)
            specs = []
            for i, model in enumerate(models):
                compute = sum(
                    platform.compute_cycles(layer, 1.0) for layer in model.layers
                )
                u_i = util * shares[i] / total_share
                period_s = platform.mcu.cycles_to_seconds(round(compute / u_i))
                specs.append((f"t{i}", model, max(1e-3, period_s)))
            for use_flash in (False, True):
                rt = RtMdm(platform, use_internal_flash=use_flash)
                for name, model, period_s in specs:
                    rt.add_task(name, model, period_s)
                config = rt.configure()
                admitted[use_flash] += config.admitted
                if use_flash and config.placement is not None:
                    flash_used_kib.append(config.placement.flash_used / KIB)
        rows.append(
            (
                util,
                round(admitted[False] / n, 3),
                round(admitted[True] / n, 3),
                round(sum(flash_used_kib) / len(flash_used_kib), 1)
                if flash_used_kib
                else None,
            )
        )
    return ExperimentResult(
        exp_id="EXP-F13",
        title="Schedulability with internal-flash weight placement",
        columns=("util", "external_only", "with_flash_placement", "avg_flash_KiB"),
        rows=tuple(rows),
        notes="flash budget = internal flash minus a 256 KiB code reserve",
    )


def exp_f14_energy(
    platform_key: str = "f746-qspi", **_
) -> ExperimentResult:
    """Energy per inference by execution strategy (extension).

    Staging pays the external bus once per inference and lets the CPU
    race to idle; XIP re-fetches every weight through the slow bus while
    the CPU burns active power waiting.
    """
    from repro.baselines import sequentialize, xip_task
    from repro.core.segmentation import search_segmentation as _search
    from repro.hw.energy import energy_per_inference_mj

    platform = get_platform(platform_key)
    rows = []
    skipped = []
    for name in ("tinyconv", "lenet5", "ds-cnn", "autoencoder",
                 "mobilenet-v1-0.25", "resnet8"):
        model = refine_model(
            build_model(name), INT8, max(2048, platform.usable_sram_bytes // 8)
        )
        try:
            seg = _search(model, platform, platform.usable_sram_bytes, INT8, 2)
        except SegmentationError:
            skipped.append(name)
            continue
        period = 4 * isolated_latency(seg.segments(), 2)
        variants = {
            "rtmdm": seg.to_task(period=period, name=name),
            "sequential": sequentialize(seg.to_task(period=period, name=name)),
            "xip": xip_task(name, model, platform, period=4 * sum(
                platform.xip_cycles(layer, 1.0) for layer in model.layers
            )),
        }
        energies = {}
        for label, task in variants.items():
            from repro.sched.task import TaskSet as _TaskSet

            taskset = _TaskSet.of([task])
            result = simulate(
                taskset, SimConfig(policy=CpuPolicy.FP_NP, horizon=20 * task.period)
            )
            energies[label] = energy_per_inference_mj(result, taskset, platform)
        rows.append(
            (
                name,
                round(energies["rtmdm"], 3),
                round(energies["sequential"], 3),
                round(energies["xip"], 3),
                round(energies["xip"] / energies["rtmdm"], 2),
            )
        )
    notes = "marginal (above-idle) energy; coefficients in repro.hw.energy"
    if skipped:
        notes += (
            "; skipped (no feasible segmentation within usable SRAM): "
            + ", ".join(skipped)
        )
    return ExperimentResult(
        exp_id="EXP-F14",
        title=f"Energy per inference on {get_platform(platform_key).name} (mJ)",
        columns=("model", "rtmdm_mJ", "sequential_mJ", "xip_mJ", "xip/rtmdm"),
        rows=tuple(rows),
        notes=notes,
    )


EXPERIMENTS["EXP-F12"] = exp_f12_fp_vs_edf
EXPERIMENTS["EXP-F13"] = exp_f13_flash_placement
EXPERIMENTS["EXP-F14"] = exp_f14_energy


def exp_f15_dma_channels(
    platform_key: str = "f746-qspi",
    utils: Sequence[float] = (0.4, 0.6, 0.8),
    n_sets: int = 8,
    seed: int = 2034,
    scale: float = 1.0,
    **_,
) -> ExperimentResult:
    """Single vs dual DMA channel ablation (extension).

    A second channel lets two tasks' transfers proceed in parallel; the
    single-channel analysis stays a valid (conservative) bound.  Gains
    concentrate on load-heavy workloads over slow memories.
    """
    platform = get_platform(platform_key)
    n = max(2, int(n_sets * scale))
    rows = []
    for util in utils:
        rng = random.Random(seed * 1000 + int(util * 100))
        ratios = []
        miss1, miss2 = [], []
        for _ in range(n):
            case = generate_case(platform, util, rng)
            if not case.feasible:
                continue
            taskset = case.taskset
            density = sum(4 * t.num_segments / t.period for t in taskset)
            horizon = max(
                2 * max(t.period for t in taskset),
                min(15 * max(t.period for t in taskset),
                    int(_EVENT_BUDGET / density)),
            )
            results = {}
            for channels in (1, 2):
                results[channels] = simulate(
                    taskset,
                    SimConfig(policy=CpuPolicy.FP_NP, horizon=horizon,
                              dma_channels=channels),
                )
            miss1.append(miss_ratio(results[1]))
            miss2.append(miss_ratio(results[2]))
            for task in taskset:
                r1 = results[1].max_response(task.name)
                r2 = results[2].max_response(task.name)
                if r1 and r2:
                    ratios.append(r2 / r1)
        rows.append(
            (
                util,
                round(sum(miss1) / len(miss1), 4) if miss1 else None,
                round(sum(miss2) / len(miss2), 4) if miss2 else None,
                round(sum(ratios) / len(ratios), 3) if ratios else None,
            )
        )
    return ExperimentResult(
        exp_id="EXP-F15",
        title="DMA channel count: 1 vs 2 (simulated)",
        columns=("util", "miss_1ch", "miss_2ch", "avg_R_2ch/1ch"),
        rows=tuple(rows),
        notes="response ratios below 1.0 = the second channel helps",
    )


EXPERIMENTS["EXP-F15"] = exp_f15_dma_channels


# ----------------------------------------------------------------------
# EXP-R1: robustness under faults and overload policies
# ----------------------------------------------------------------------


def _r1_margin_unit(unit: Tuple) -> Tuple[Optional[Tuple[bool, Optional[float]]], Dict]:
    """One per-set feasibility + sensitivity-margin work unit for EXP-R1."""
    from repro.core.analysis import sensitivity_margin

    seed, platform, util, index = unit
    before = segcache.snapshot()
    rng = random.Random(_stable_seed(seed, "r1", index))
    case = generate_case(platform, util, rng)
    if not case.feasible:
        return None, segcache.delta_since(before)
    margin = sensitivity_margin(case.taskset, "rtmdm")
    return (True, margin), segcache.delta_since(before)


def _r1_sim_unit(unit: Tuple) -> Tuple[Tuple[Tuple[float, ...], Optional[float]], Dict]:
    """One ``(inflation, case)`` overload-policy work unit for EXP-R1.

    Regenerates its case from the draw index (cheap under a warm plan
    cache) and simulates all four overload policies on it; ``case_index``
    is the case's position among the *feasible* draws, which is what the
    historical fault-seed derivation uses.
    """
    from repro.robust.faults import FaultConfig, InflationModel
    from repro.robust.metrics import degraded_residency
    from repro.robust.metrics import miss_ratio as robust_miss_ratio
    from repro.robust.overload import DegradeConfig, OverrunPolicy, degraded_variant

    seed, platform, util, draw_index, case_index, inflation, crc = unit
    before = segcache.snapshot()
    rng = random.Random(_stable_seed(seed, "r1", draw_index))
    case = generate_case(platform, util, rng)
    taskset = case.taskset
    max_period = max(t.period for t in taskset)
    density = sum(4 * t.num_segments / t.period for t in taskset)
    horizon = max(
        2 * max_period,
        min(20 * max_period, int(_EVENT_BUDGET / density)),
    )
    faults = FaultConfig(
        inflation=InflationModel.FIXED,
        inflation_factor=inflation,
        dma_fault_prob=0.02,
        dma_max_retries=3,
        dma_crc_overhead=crc,
        jitter_cycles=crc,
        seed=_stable_seed(seed, "r1-faults", case_index),
    )
    degrade = DegradeConfig(
        fallbacks={t.name: degraded_variant(t, 0.5) for t in taskset},
        miss_threshold=2,
        recover_after=3,
    )
    policies = (
        OverrunPolicy.CONTINUE,
        OverrunPolicy.ABORT_AT_DEADLINE,
        OverrunPolicy.SKIP_NEXT,
        OverrunPolicy.DEGRADE,
    )
    misses = []
    residency: Optional[float] = None
    for policy in policies:
        result = simulate(
            taskset,
            SimConfig(
                policy=CpuPolicy.FP_NP,
                horizon=horizon,
                faults=faults,
                overrun=policy,
                degrade=degrade if policy is OverrunPolicy.DEGRADE else None,
            ),
        )
        misses.append(robust_miss_ratio(result))
        if policy is OverrunPolicy.DEGRADE:
            residency = degraded_residency(result)
    return (tuple(misses), residency), segcache.delta_since(before)


def exp_r1_overload_policies(
    platform_key: str = "f746-qspi",
    inflations: Sequence[float] = (1.0, 1.25, 1.5, 2.0),
    util: float = 0.6,
    n_sets: int = 6,
    seed: int = 2040,
    scale: float = 1.0,
    jobs: Optional[int] = None,
    **_,
) -> ExperimentResult:
    """Miss ratio and degraded-mode residency vs fault intensity.

    Sweeps a uniform WCET inflation (plus a small DMA fault/jitter
    floor) over the same drawn workloads and compares the four overload
    policies (:class:`~repro.robust.overload.OverrunPolicy`).  Draws are
    paired across inflation values, so each curve evaluates identical
    workloads.  The notes record the mean analysis sensitivity margin of
    the drawn sets — the offline counterpart of the empirical sweep.

    Work decomposes into one margin unit per draw plus one simulation
    unit per ``(inflation, feasible case)``; each simulation unit
    regenerates its case from the draw's stable seed, so units stay
    independent and the merged rows match the serial path bit for bit.
    """
    platform = get_platform(platform_key)
    crc = platform.dma.crc_cycles(platform.mcu)
    n = max(2, int(n_sets * scale))
    margin_units = [(seed, platform, util, index) for index in range(n)]
    margin_results = run_units(
        _r1_margin_unit, margin_units, jobs=jobs, chunksize=1, absorb_deltas=True
    )
    deltas: List[Dict] = []
    feasible_draws: List[int] = []
    margins: List[float] = []
    for index, (payload, delta) in enumerate(margin_results):
        deltas.append(delta)
        if payload is None:
            continue
        feasible_draws.append(index)
        if payload[1] is not None:
            margins.append(payload[1])
    sim_units = [
        (seed, platform, util, draw_index, case_index, inflation, crc)
        for inflation in inflations
        for case_index, draw_index in enumerate(feasible_draws)
    ]
    sim_results = run_units(
        _r1_sim_unit, sim_units, jobs=jobs,
        chunksize=max(1, len(feasible_draws) // 2), absorb_deltas=True,
    )
    rows = []
    it = iter(sim_results)
    for inflation in inflations:
        miss_lists: List[List[float]] = [[], [], [], []]
        residency: List[float] = []
        for _ in feasible_draws:
            (misses, res), delta = next(it)
            deltas.append(delta)
            for policy_index, value in enumerate(misses):
                miss_lists[policy_index].append(value)
            if res is not None:
                residency.append(res)
        row = [inflation]
        for values in miss_lists:
            row.append(round(sum(values) / len(values), 4) if values else None)
        row.append(
            round(sum(residency) / len(residency), 4) if residency else None
        )
        rows.append(tuple(row))
    if margins:
        margin_note = (
            f"mean analysis sensitivity margin of the {len(margins)} admitted "
            f"sets: {round(sum(margins) / len(margins), 3)}"
        )
    else:
        margin_note = (
            f"no drawn set admitted nominally at U={util} "
            "(sweep runs past the guarantee by design)"
        )
    return ExperimentResult(
        exp_id="EXP-R1",
        title=(
            f"Overload policies under WCET inflation "
            f"({len(feasible_draws)} sets/point)"
        ),
        columns=(
            "inflation",
            "miss_continue",
            "miss_abort",
            "miss_skip_next",
            "miss_degrade",
            "degraded_residency",
        ),
        rows=tuple(rows),
        notes=_with_cache_note(
            f"2% DMA fault prob + bus jitter at every point; {margin_note}",
            deltas,
        ),
    )


EXPERIMENTS["EXP-R1"] = exp_r1_overload_policies


# ----------------------------------------------------------------------
# EXP-D1: online admission control (repro.online)
# ----------------------------------------------------------------------


def _d1_unit(unit: Tuple) -> Tuple[Dict, Dict]:
    """One ``(rate, SRAM budget, trace index)`` serve unit for EXP-D1.

    Generates its trace from a stable per-unit seed, replays it through
    :class:`~repro.online.runtime.OnlineRuntime` and returns the
    decision-log aggregates plus the (wall-clock, report-only) decision
    latencies.  The fault-free execution runs inside the unit so the
    soundness check parallelizes with everything else.
    """
    from repro.online.runtime import OnlineRuntime
    from repro.workload.arrivals import poisson_trace

    seed, platform_key, sram_kib, rate_hz, index, duration_s = unit
    before = segcache.snapshot()
    platform = get_platform(platform_key).with_sram_bytes(sram_kib * KIB)
    trace = poisson_trace(
        duration_s, rate_hz, seed=_stable_seed(seed, "d1", rate_hz, index)
    )
    report = OnlineRuntime(platform).serve(trace)
    payload = {
        "requests": report.requests,
        "admit_requests": report.admit_requests,
        "admitted": report.admitted,
        "degraded": report.degraded,
        "rejected_sram": report.rejected_sram,
        "rejected_rta": report.rejected_rta,
        "misses": report.sim.total_misses if report.sim is not None else 0,
        "latencies_us": report.decision_latencies_us,
    }
    return payload, segcache.delta_since(before)


def exp_d1_admission(
    platform_key: str = "f746-qspi",
    rates_hz: Sequence[float] = (0.5, 1.5, 3.0),
    sram_kib: Sequence[int] = (128, 192, 320),
    n_traces: int = 4,
    duration_s: float = 12.0,
    seed: int = 2050,
    scale: float = 1.0,
    jobs: Optional[int] = None,
    **_,
) -> ExperimentResult:
    """Admission ratio and decision latency vs arrival rate and SRAM.

    Each ``(rate, SRAM, trace)`` unit serves an independent Poisson
    request trace; the same trace seeds reappear at every SRAM budget so
    the SRAM axis compares identical request streams.  Rows hold only
    decision-log counts and simulated misses — deterministic across
    worker counts — while wall-clock admission-decision latencies go to
    ``meta`` (surfaced in the benchmark suite summary).
    """
    n = max(2, int(n_traces * scale))
    units = [
        (seed, platform_key, kib, rate, index, duration_s)
        for rate in rates_hz
        for kib in sram_kib
        for index in range(n)
    ]
    results = run_units(
        _d1_unit, units, jobs=jobs, chunksize=max(1, n // 2), absorb_deltas=True
    )
    rows = []
    deltas: List[Dict] = []
    latencies: List[float] = []
    misses_total = 0
    it = iter(results)
    for rate in rates_hz:
        for kib in sram_kib:
            totals = {
                k: 0
                for k in (
                    "requests", "admit_requests", "admitted", "degraded",
                    "rejected_sram", "rejected_rta", "misses",
                )
            }
            for _ in range(n):
                payload, delta = next(it)
                deltas.append(delta)
                latencies.extend(payload.pop("latencies_us"))
                for key, value in payload.items():
                    totals[key] += value
            misses_total += totals["misses"]
            ratio = (
                totals["admitted"] / totals["admit_requests"]
                if totals["admit_requests"]
                else 1.0
            )
            rows.append(
                (
                    rate,
                    kib,
                    totals["requests"],
                    totals["admit_requests"],
                    totals["admitted"],
                    totals["degraded"],
                    totals["rejected_sram"],
                    totals["rejected_rta"],
                    round(ratio, 4),
                    totals["misses"],
                )
            )
    meta = {}
    if latencies:
        meta["decision_latency_us"] = latency_stats(latencies)
    return ExperimentResult(
        exp_id="EXP-D1",
        title=(
            f"Online admission vs arrival rate and SRAM "
            f"({n} traces/point, {duration_s:g}s each)"
        ),
        columns=(
            "rate_hz", "sram_kib", "requests", "admit_req", "admitted",
            "degraded", "rej_sram", "rej_rta", "admit_ratio", "misses",
        ),
        rows=tuple(rows),
        notes=_with_cache_note(
            "misses column must be 0: admitted instances never miss in "
            "fault-free execution; decision latency stats in suite meta",
            deltas,
        ),
        meta=meta,
    )


EXPERIMENTS["EXP-D1"] = exp_d1_admission


# ----------------------------------------------------------------------
# EXP-R2: recovery protocols under persistent external-memory faults
# ----------------------------------------------------------------------


def _r2_unit(unit: Tuple) -> Tuple[Optional[Dict], Dict]:
    """One ``(bad fraction, retry budget, draw)`` recovery unit for EXP-R2.

    Regenerates its workload from the draw's stable seed, marks a
    deterministic slice of the flash layout as bad, and simulates the
    same escalation config under four recovery ladders (quarantine-only,
    REMAP, REMAP+XIP, full ladder).  The fault-aware admission verdict
    (:func:`repro.core.analysis.fault_aware_analysis` at the unit's
    retry budget) rides along so the schedulability axis shares the
    exact workloads of the empirical one.
    """
    from repro.core.analysis import fault_aware_analysis
    from repro.robust.escalation import (
        EscalationConfig,
        bad_region_span,
        fault_overhead_cycles,
    )
    from repro.robust.metrics import recovery_summary
    from repro.robust.recovery import RecoveryConfig, RecoveryProtocol

    seed, platform_key, util, index, bad_frac, retries = unit
    before = segcache.snapshot()
    platform = get_platform(platform_key)
    rng = random.Random(_stable_seed(seed, "r2", index))
    case = generate_case(platform, util, rng)
    if not case.feasible:
        return None, segcache.delta_since(before)
    taskset = case.taskset
    max_period = max(t.period for t in taskset)
    density = sum(4 * t.num_segments / t.period for t in taskset)
    horizon = max(
        2 * max_period,
        min(20 * max_period, int(_EVENT_BUDGET / density)),
    )
    crc = platform.dma.crc_cycles(platform.mcu)
    escalation = EscalationConfig(
        bad_regions=(
            (bad_region_span(taskset, 0.25, 0.25 + bad_frac),)
            if bad_frac > 0
            else ()
        ),
        max_retries=retries,
        backoff_slot_cycles=crc,
        crc_overhead_cycles=crc,
        seed=_stable_seed(seed, "r2-faults", index),
    )
    ladders = (
        None,  # no recovery: terminal faults quarantine the task
        (RecoveryProtocol.REMAP,),
        (RecoveryProtocol.REMAP, RecoveryProtocol.XIP_FALLBACK),
        (
            RecoveryProtocol.REMAP,
            RecoveryProtocol.XIP_FALLBACK,
            RecoveryProtocol.DEGRADE,
        ),
    )
    full_recovery = RecoveryConfig.for_platform(platform, ladder=ladders[-1])
    cost = fault_overhead_cycles(taskset, escalation, recovery=full_recovery)
    fa = fault_aware_analysis(taskset, retries, cost)
    cases = []
    for ladder in ladders:
        recovery = (
            None
            if ladder is None
            else RecoveryConfig.for_platform(platform, ladder=ladder)
        )
        cases.append((
            taskset,
            SimConfig(
                policy=CpuPolicy.FP_NP,
                horizon=horizon,
                escalation=escalation,
                recovery=recovery,
            ),
        ))
    summaries = [recovery_summary(result) for result in simulate_batch(cases)]
    payload = {
        "fa_admit": fa.schedulable,
        "fault_cost": cost,
        "miss": tuple(s["survival_miss_ratio"] for s in summaries),
        "quarantined": tuple(s["quarantined_tasks"] for s in summaries),
        "rec_latency": summaries[-1]["mean_recovery_latency"],
        "recovered": summaries[-1]["remaps"] + summaries[-1]["xip_fallbacks"],
    }
    return payload, segcache.delta_since(before)


def exp_r2_recovery(
    platform_key: str = "f746-qspi",
    bad_fracs: Sequence[float] = (0.0, 0.1, 0.25),
    retry_budgets: Sequence[int] = (1, 3),
    util: float = 0.55,
    n_sets: int = 4,
    seed: int = 2060,
    scale: float = 1.0,
    jobs: Optional[int] = None,
    **_,
) -> ExperimentResult:
    """Recovery protocols vs persistent-fault rate and retry budget.

    Sweeps the fraction of flash marked permanently bad against the
    per-transfer retry budget, and compares four escalation ladders on
    identical workloads: quarantine-only (no recovery), REMAP,
    REMAP+XIP_FALLBACK, and the full ladder with DEGRADE.  Miss columns
    use the survival miss ratio (quarantined releases charged as
    failures), so sacrificing a task cannot look better than recovering
    it.  ``fa_admit`` is the fraction of drawn sets the fault-aware
    analysis still admits at that retry budget — the analytical
    counterpart of the empirical columns.

    Draws are paired across every ``(bad_frac, retries)`` point, so each
    curve evaluates identical workloads; one unit per point and draw
    keeps the sweep embarrassingly parallel and bit-identical to the
    serial path.
    """
    platform = get_platform(platform_key)
    n = max(2, int(n_sets * scale))
    units = [
        (seed, platform_key, util, index, bad_frac, retries)
        for bad_frac in bad_fracs
        for retries in retry_budgets
        for index in range(n)
    ]
    results = run_units(
        _r2_unit, units, jobs=jobs, chunksize=max(1, n // 2), absorb_deltas=True
    )
    rows = []
    deltas: List[Dict] = []
    it = iter(results)
    feasible_total = 0
    for bad_frac in bad_fracs:
        for retries in retry_budgets:
            payloads = []
            for _ in range(n):
                payload, delta = next(it)
                deltas.append(delta)
                if payload is not None:
                    payloads.append(payload)
            if not payloads:
                rows.append((bad_frac, retries) + (None,) * 8)
                continue
            feasible_total += len(payloads)

            def _mean(values: Sequence[float]) -> float:
                return round(sum(values) / len(values), 4)

            recovered = [p for p in payloads if p["recovered"] > 0]
            latency_ms = (
                round(
                    platform.mcu.cycles_to_ms(
                        sum(p["rec_latency"] for p in recovered) / len(recovered)
                    ),
                    3,
                )
                if recovered
                else None
            )
            rows.append(
                (
                    bad_frac,
                    retries,
                    _mean([1.0 if p["fa_admit"] else 0.0 for p in payloads]),
                    _mean([p["miss"][0] for p in payloads]),
                    _mean([p["miss"][1] for p in payloads]),
                    _mean([p["miss"][2] for p in payloads]),
                    _mean([p["miss"][3] for p in payloads]),
                    sum(p["quarantined"][0] for p in payloads),
                    sum(p["quarantined"][3] for p in payloads),
                    latency_ms,
                )
            )
    return ExperimentResult(
        exp_id="EXP-R2",
        title=(
            f"Recovery ladders under persistent flash faults "
            f"({n} sets/point)"
        ),
        columns=(
            "bad_frac",
            "retries",
            "fa_admit",
            "miss_quar",
            "miss_remap",
            "miss_rx",
            "miss_full",
            "quar_none",
            "quar_full",
            "rec_lat_ms",
        ),
        rows=tuple(rows),
        notes=_with_cache_note(
            "miss columns are survival miss ratios (quarantined releases "
            f"count as failures); {feasible_total} feasible set-points; "
            "rec_lat_ms averages full-ladder runs that recovered a job",
            deltas,
        ),
    )


EXPERIMENTS["EXP-R2"] = exp_r2_recovery


# ----------------------------------------------------------------------
# EXP-R3: crash-recovery cost vs checkpoint interval (repro.online.durable)
# ----------------------------------------------------------------------


def _r3_unit(unit: Tuple) -> Tuple[Dict, Dict]:
    """One ``(checkpoint interval, crash fraction)`` cell for EXP-R3.

    Serves a durable (journaled) run that crashes at the given fraction
    of the decision stream, recovers from the journal, and reports how
    much work recovery had to redo.  The bit-identity check against the
    uninterrupted baseline runs inside the unit; recovery wall-clock
    latency is report-only (goes to ``meta``).
    """
    import os
    import tempfile

    from repro.online.durable import InjectedCrash, envelope_stream, serve_durable
    from repro.online.runtime import OnlineRuntime
    from repro.workload.arrivals import poisson_trace

    seed, platform_key, interval, crash_frac, duration_s, rate_hz = unit
    before = segcache.snapshot()
    runtime = OnlineRuntime(get_platform(platform_key))
    trace = poisson_trace(duration_s, rate_hz, seed=_stable_seed(seed, "r3"))
    baseline = runtime.serve(trace, simulate=False)
    base_log = [d.to_dict() for d in baseline.decisions]
    n = len(base_log)
    crash_at = min(max(n - 1, 0), int(round(crash_frac * max(n - 1, 0))))
    envelopes = envelope_stream(trace)
    fd, path = tempfile.mkstemp(prefix="rtmdm-r3-", suffix=".jsonl")
    os.close(fd)
    try:
        try:
            serve_durable(
                runtime,
                envelopes,
                trace.duration_s,
                path,
                checkpoint_interval=interval,
                crash_at=crash_at,
            )
        except InjectedCrash:
            pass
        recovered = serve_durable(
            runtime,
            envelopes,
            trace.duration_s,
            path,
            checkpoint_interval=interval,
            restore=True,
        )
    finally:
        os.unlink(path)
    recovery = recovered.recovery
    identical = [d.to_dict() for d in recovered.report.decisions] == base_log
    payload = {
        "decisions": n,
        "crash_at": crash_at,
        "checkpoint_seq": recovery.checkpoint_seq,
        "replayed": recovery.decisions_replayed,
        "records": recovered.journal_records,
        "checkpoints": recovered.checkpoints_written,
        "identical": int(identical),
        "recovery_us": recovery.recovery_us,
    }
    return payload, segcache.delta_since(before)


def exp_r3_crash_recovery(
    platform_key: str = "f746-qspi",
    checkpoint_intervals: Sequence[int] = (2, 4, 8, 16, 32),
    n_crash_points: int = 5,
    duration_s: float = 12.0,
    rate_hz: float = 2.0,
    seed: int = 2050,
    scale: float = 1.0,
    jobs: Optional[int] = None,
    **_,
) -> ExperimentResult:
    """Recovery cost vs checkpoint interval after controller crashes.

    Every cell crashes the durable serving loop at a fixed fraction of
    the decision stream (after the intent record, before the commit —
    the worst crash point), recovers from the journal, and replays the
    suffix past the last checkpoint.  Rows are deterministic replay
    counters plus the bit-identity verdict; recovery wall-clock
    latencies go to ``meta``.  The replayed column demonstrates the
    checkpoint-interval trade-off: more journal records per checkpoint
    bought back as fewer decisions replayed on restart.
    """
    n_points = max(2, int(n_crash_points * scale))
    fracs = [i / (n_points - 1) for i in range(n_points)]
    units = [
        (seed, platform_key, interval, frac, duration_s, rate_hz)
        for interval in checkpoint_intervals
        for frac in fracs
    ]
    results = run_units(
        _r3_unit, units, jobs=jobs, chunksize=1, absorb_deltas=True
    )
    rows = []
    deltas: List[Dict] = []
    recovery_us: List[float] = []
    identical_total = 0
    it = iter(results)
    for interval in checkpoint_intervals:
        replayed_total = 0
        replayed_max = 0
        records_total = 0
        identical = 0
        decisions = 0
        for _ in fracs:
            payload, delta = next(it)
            deltas.append(delta)
            recovery_us.append(payload["recovery_us"])
            decisions = payload["decisions"]
            replayed_total += payload["replayed"]
            replayed_max = max(replayed_max, payload["replayed"])
            records_total += payload["records"]
            identical += payload["identical"]
        identical_total += identical
        rows.append(
            (
                interval,
                len(fracs),
                decisions,
                round(replayed_total / len(fracs), 2),
                replayed_max,
                records_total,
                identical,
            )
        )
    recovery_us.sort()
    meta = {}
    if recovery_us:
        meta["recovery_latency_us"] = {
            "n": len(recovery_us),
            "mean": round(sum(recovery_us) / len(recovery_us), 1),
            "p50": round(quantiles(recovery_us, (0.5,))[0], 1),
            "p95": round(quantiles(recovery_us, (0.95,))[0], 1),
            "max": round(recovery_us[-1], 1),
        }
    return ExperimentResult(
        exp_id="EXP-R3",
        title=(
            f"Crash recovery vs checkpoint interval "
            f"({len(fracs)} crash points, {duration_s:g}s trace)"
        ),
        columns=(
            "ckpt_interval",
            "crashes",
            "decisions",
            "replayed_mean",
            "replayed_max",
            "records",
            "identical",
        ),
        rows=tuple(rows),
        notes=_with_cache_note(
            "identical must equal crashes in every row (recovered decision "
            "logs bit-identical to the uninterrupted run); replayed_max is "
            "bounded by ckpt_interval; recovery latency stats in suite meta",
            deltas,
        ),
        meta=meta,
    )


EXPERIMENTS["EXP-R3"] = exp_r3_crash_recovery


# ----------------------------------------------------------------------
# EXP-F16: steady-state folding on harmonic long-horizon sweeps
# ----------------------------------------------------------------------


def _harmonize(taskset):
    """Quantize periods up to power-of-two multiples of the fastest.

    Random sweep draws have near-co-prime periods whose LCM explodes,
    so their simulations never see a repeated hyperperiod.  Rounding
    every period *up* to ``base * 2^k`` keeps deadlines constrained
    (periods only grow), caps the hyperperiod at ``base * 2^max_k``,
    and models the rate-harmonic configurations MCU deployments
    typically choose — the regime where steady-state folding applies.
    """
    from dataclasses import replace as _replace

    base = min(t.period for t in taskset)
    tasks = []
    for t in taskset:
        exponent = max(0, math.ceil(math.log2(t.period / base)))
        tasks.append(_replace(t, period=base << exponent))
    return TaskSet.of(tasks)


def _f16_unit(unit: Tuple) -> Tuple[Optional[Dict], Dict]:
    """One ``(utilization, set index)`` steady-state unit for EXP-F16.

    Like :func:`_f7_unit` but on the harmonized task set over a horizon
    of many hyperperiods: the deterministic configs fold their tail
    cycles arithmetically, and the per-unit fold counters ride back for
    the experiment's meta block.
    """
    from repro.robust.overload import OverrunPolicy

    seed, platform, util, index, systems, hyperperiods = unit
    before = segcache.snapshot()
    rng = random.Random(_stable_seed(seed, "f16", util, index))
    case = generate_case(platform, util, rng)
    if not case.feasible:
        return None, segcache.delta_since(before)
    totals: Dict[str, float] = {}
    fold_before = fold_snapshot()
    cases = []
    for system in systems:
        taskset, _method = derive_taskset(system, case)
        harmonic = _harmonize(taskset)
        h = max(t.period for t in harmonic)  # power-of-two multiples: LCM = max
        cases.append((harmonic, SimConfig(
            policy=CpuPolicy.FP_NP,
            horizon=hyperperiods * h,
            # Steady state requires bounded state: under CONTINUE an
            # overloaded baseline's backlog grows every hyperperiod and
            # no cycle ever forms.  Aborting at the deadline (the abort
            # still counts as a miss) keeps the state space finite, so
            # every deterministic run reaches a repeating cycle.
            overrun=OverrunPolicy.ABORT_AT_DEADLINE,
        )))
    for system, result in zip(systems, simulate_batch(cases)):
        totals[system] = miss_ratio(result)
    payload = {"totals": totals, "fold": fold_delta_since(fold_before)}
    return payload, segcache.delta_since(before)


def exp_f16_steady_state(
    platform_key: str = "f746-qspi",
    utils: Sequence[float] = (0.3, 0.5, 0.7, 0.9),
    n_sets: int = 4,
    hyperperiods: int = 48,
    seed: int = 2031,
    scale: float = 1.0,
    jobs: Optional[int] = None,
    **_,
) -> ExperimentResult:
    """Long-horizon miss ratio on harmonic period sets (fixed ``n_sets``).

    The steady-state companion to EXP-F7: the same generator draws are
    period-harmonized so the hyperperiod is tractable, then each system
    is simulated over ``hyperperiods`` hyperperiods.  Deterministic
    configs detect their state cycle after a few hyperperiods and fold
    the remaining horizon arithmetically — rows are bit-identical with
    folding disabled (``REPRO_SIM_FOLD=0``), just much slower.  Fold
    counters are reported in ``meta`` (excluded from determinism
    comparisons, since the unfolded path legitimately reports zero).
    """
    platform = get_platform(platform_key)
    n = max(2, int(n_sets * scale))
    systems = ("rtmdm", "single-buffer", "sequential")
    units = [
        (seed, platform, util, index, systems, hyperperiods)
        for util in utils
        for index in range(n)
    ]
    results = run_units(
        _f16_unit, units, jobs=jobs, chunksize=max(1, n // 2), absorb_deltas=True
    )
    rows = []
    deltas: List[Dict] = []
    folds = cycles_skipped = jobs_skipped = 0
    it = iter(results)
    for util in utils:
        totals: Dict[str, List[float]] = {s: [] for s in systems}
        for _ in range(n):
            payload, delta = next(it)
            deltas.append(delta)
            if payload is None:
                continue
            for system in systems:
                totals[system].append(payload["totals"][system])
            _runs, f, c, j = payload["fold"]
            folds += f
            cycles_skipped += c
            jobs_skipped += j
        row = [util]
        for system in systems:
            values = totals[system]
            row.append(round(sum(values) / len(values), 4) if values else None)
        rows.append(tuple(row))
    return ExperimentResult(
        exp_id="EXP-F16",
        title=(
            f"Steady-state miss ratio on harmonic sets "
            f"({n} sets x {hyperperiods} hyperperiods)"
        ),
        columns=("util", *systems),
        rows=tuple(rows),
        notes=_with_cache_note(
            "harmonized periods; deterministic runs fold repeated "
            "hyperperiod cycles (REPRO_SIM_FOLD=0 disables; rows identical)",
            deltas,
        ),
        meta={
            "fold": {
                "folds": folds,
                "cycles_skipped": cycles_skipped,
                "jobs_skipped": jobs_skipped,
            }
        },
    )


EXPERIMENTS["EXP-F16"] = exp_f16_steady_state


# ----------------------------------------------------------------------
# Mass-schedulability throughput (EXP-F17)
# ----------------------------------------------------------------------


def _f17_tasksets(n_sets: int, tasks_per_set: int, seed: int) -> List:
    """Synthesized segmented task sets for the RTA throughput benchmark.

    Segments are drawn directly (no segmentation search, no platform
    model) so the benchmark isolates pure analysis throughput: every
    cycle spent here is packing or fixpoint iteration, not planning.
    Deadline-monotonic priorities; constrained deadlines.
    """
    from repro.sched.task import PeriodicTask, Segment

    sets = []
    for index in range(n_sets):
        rng = random.Random(_stable_seed(seed, "f17", index))
        tasks = []
        for k in range(tasks_per_set):
            n_seg = rng.randint(2, 8)
            segments = tuple(
                Segment(
                    name=f"t{k}/s{j}",
                    load_cycles=rng.choice((0, rng.randint(1_000, 40_000))),
                    compute_cycles=rng.randint(5_000, 120_000),
                )
                for j in range(n_seg)
            )
            work = sum(s.load_cycles + s.compute_cycles for s in segments)
            # Per-task utilization ~U(1/(3n), 1/(0.5n)): summed over n
            # tasks the set's total serialized utilization is centred
            # near 0.9, so the population mixes admitted and rejected
            # sets instead of saturating one verdict.
            period = int(work * tasks_per_set * rng.uniform(0.5, 3.0))
            deadline = max(1, int(period * rng.uniform(0.7, 1.0)))
            tasks.append(PeriodicTask(
                name=f"t{k}",
                segments=segments,
                period=period,
                deadline=deadline,
                priority=0,
                buffers=rng.randint(1, 3),
            ))
        ordered = sorted(tasks, key=lambda t: (t.deadline, t.name))
        sets.append(TaskSet.of(
            t.with_priority(rank) for rank, t in enumerate(ordered)
        ))
    return sets


def exp_f17_rta_throughput(
    n_sets: int = 400,
    tasks_per_set: int = 6,
    seed: int = 2032,
    scale: float = 1.0,
    **_,
) -> ExperimentResult:
    """Mass-schedulability throughput: scalar vs vectorized RTA engine.

    Analyzes ``n_sets`` synthesized task sets under the full method
    family (``oblivious``/``overlap``/``holistic``/``rtmdm`` — the
    EXP-F8-style tightness matrix) three ways: per-case scalar
    ``analyze`` (the oracle), one struct-of-arrays vectorized batch,
    and the vectorized batch sharing a
    :class:`~repro.sched.rta.FixpointCache` (the ``rtmdm`` pass repeats
    the ``overlap``/``holistic`` rows verbatim, so the cache mode shows
    the memo's effect on a realistic repeat structure).  Reports task
    sets analyzed per second for each mode.

    Rows are deterministic (verdict counts, bit-identity against the
    scalar oracle, whether the vector engine actually engaged); the
    wall-clock throughputs live in ``meta`` only, like every timing
    measurement in the suite.
    """
    from repro.sched import rta, vecrta
    from repro.sched.rta import FixpointCache

    n = max(8, int(n_sets * scale))
    sets = _f17_tasksets(n, tasks_per_set, seed)
    cases = [
        (taskset, method)
        for taskset in sets
        for method in ("oblivious", "overlap", "holistic", "rtmdm")
    ]

    start = time.perf_counter()
    scalar = [analyze(taskset, method) for taskset, method in cases]
    scalar_s = time.perf_counter() - start

    modes = []  # (label, results, elapsed, engaged)
    for label, cache in (("vectorized", None), ("vectorized+cache", FixpointCache())):
        before = rta.fixpoint_snapshot()
        start = time.perf_counter()
        results = vecrta.analyze_taskset_batch(cases, cache=cache)
        elapsed = time.perf_counter() - start
        delta = rta.fixpoint_delta_since(before)
        engaged = int(delta[3] > 0 if len(delta) > 3 else 0)
        modes.append((label, results, elapsed, engaged))

    def wcrt_maps(results):
        return [res.wcrt for res in results]

    # One verdict per set: its rtmdm analysis (last of each family).
    schedulable = sum(1 for res in scalar[3::4] if res.schedulable)
    rows = [("scalar", n, schedulable, 1, 0)]
    meta: Dict = {
        "tasks_per_set": tasks_per_set,
        "scalar_s": round(scalar_s, 6),
        "scalar_sets_per_s": round(n / scalar_s, 1) if scalar_s else None,
    }
    oracle = wcrt_maps(scalar)
    for label, results, elapsed, engaged in modes:
        identical = int(wcrt_maps(results) == oracle)
        rows.append((
            label, n, sum(1 for res in results[3::4] if res.schedulable),
            identical, engaged,
        ))
        key = label.replace("+", "_")
        meta[f"{key}_s"] = round(elapsed, 6)
        meta[f"{key}_sets_per_s"] = round(n / elapsed, 1) if elapsed else None
    return ExperimentResult(
        exp_id="EXP-F17",
        title=f"Mass-schedulability throughput ({n} sets x {tasks_per_set} tasks)",
        columns=("mode", "sets", "schedulable", "identical", "vec_engaged"),
        rows=tuple(rows),
        notes=(
            "synthesized segmented sets (no planning); identical=1 means "
            "bit-identical WCRT maps vs the scalar oracle; throughput in meta"
        ),
        meta=meta,
    )


EXPERIMENTS["EXP-F17"] = exp_f17_rta_throughput


# ----------------------------------------------------------------------
# Simulator throughput (EXP-F18)
# ----------------------------------------------------------------------


def _f18_tasksets(n_sets: int, tasks_per_set: int, seed: int) -> List:
    """Synthesized harmonic task sets for the simulator throughput benchmark.

    Periods are power-of-two multiples of a per-set base, so the
    hyperperiod equals the longest period and steady-state folding has
    cycles to detect; per-task compute budgets are drawn from the
    period (total utilization centred near 0.85) so the population
    mixes idle tails, contention, and overload.  A quarter of the
    tasks are XIP-style (all loads zero) to exercise the SoA engine's
    pure-CPU specializations alongside the DMA pipeline path.
    """
    from repro.sched.task import PeriodicTask, Segment

    sets = []
    for index in range(n_sets):
        rng = random.Random(_stable_seed(seed, "f18", index))
        base = rng.choice((1 << 16, 1 << 17, 3 << 16))
        tasks = []
        for k in range(tasks_per_set):
            period = base << rng.randint(0, 3)
            n_seg = rng.randint(2, 8)
            budget = int(period * rng.uniform(0.4, 1.3) / tasks_per_set)
            cut = sorted(rng.randint(1, max(2, budget - 1)) for _ in range(n_seg - 1))
            spans = [b - a for a, b in zip([0] + cut, cut + [budget])]
            xip = rng.random() < 0.25
            segments = tuple(
                Segment(
                    name=f"t{k}/s{j}",
                    load_cycles=0 if xip else rng.choice(
                        (0, rng.randint(1, max(1, span // 3)))
                    ),
                    compute_cycles=max(1, span),
                )
                for j, span in enumerate(spans)
            )
            tasks.append(PeriodicTask(
                name=f"t{k}",
                segments=segments,
                period=period,
                deadline=max(1, int(period * rng.uniform(0.8, 1.0))),
                priority=0,
                buffers=rng.randint(1, 3),
                phase=rng.randrange(period) if rng.random() < 0.5 else 0,
            ))
        ordered = sorted(tasks, key=lambda t: (t.deadline, t.name))
        sets.append(TaskSet.of(
            t.with_priority(rank) for rank, t in enumerate(ordered)
        ))
    return sets


def exp_f18_sim_throughput(
    n_sets: int = 40,
    tasks_per_set: int = 6,
    hyperperiods: int = 12,
    seed: int = 2033,
    scale: float = 1.0,
    **_,
) -> ExperimentResult:
    """Simulator throughput: scalar vs SoA engine vs SoA + folding.

    Simulates ``n_sets`` synthesized harmonic task sets over
    ``hyperperiods`` hyperperiods three ways — the scalar event loop
    (``REPRO_VEC_SIM=0``, folding off), the arena-backed SoA core
    (folding off), and the SoA core composed with steady-state folding
    — and reports scalar-equivalent heap events processed per second
    for each mode.  The event total is measured once by the no-fold
    SoA pass (its ``sim_soa_events`` counter counts exactly the pops
    the scalar loop would make, fused or not) and serves as the fixed
    work measure for every mode, so the folded mode's throughput
    reflects the cycles it *represents*, not the ones it stepped.

    Rows are deterministic (miss totals, bit-identity against the
    scalar oracle, engine engagement); wall-clock throughputs live in
    ``meta`` only, like every timing measurement in the suite.  The
    driver asserts identity itself — a benchmark run that produced
    different rows would fail here, not in a downstream diff.
    """
    import os
    from dataclasses import asdict

    from repro.robust.overload import OverrunPolicy
    from repro.sched import simcore

    n = max(4, int(n_sets * scale))
    sets = _f18_tasksets(n, tasks_per_set, seed)
    cases = []
    for taskset in sets:
        h = max(t.period for t in taskset)  # power-of-two multiples: LCM = max
        cases.append((taskset, SimConfig(
            policy=CpuPolicy.FP_NP,
            horizon=hyperperiods * h,
            # Bounded state under overload (the abort still counts as a
            # miss), so deterministic runs reach a repeating cycle and
            # the fold mode has something to fold.
            overrun=OverrunPolicy.ABORT_AT_DEADLINE,
        )))

    modes = (("scalar", "0", "0"), ("soa", "1", "0"), ("soa+fold", "1", "1"))
    saved = {k: os.environ.get(k) for k in ("REPRO_VEC_SIM", "REPRO_SIM_FOLD")}
    runs: Dict[str, Tuple[List, float, Tuple[int, int, int], Tuple]] = {}
    try:
        for label, vec, fold in modes:
            os.environ["REPRO_VEC_SIM"] = vec
            os.environ["REPRO_SIM_FOLD"] = fold
            soa_before = simcore.soa_snapshot()
            fold_before = fold_snapshot()
            start = time.perf_counter()
            results = simulate_batch(cases)
            elapsed = time.perf_counter() - start
            runs[label] = (
                results, elapsed,
                simcore.soa_delta_since(soa_before),
                fold_delta_since(fold_before),
            )
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    def row_dicts(results: List) -> List[Dict]:
        # fold_cycles / fold_jobs_skipped describe *how* a result was
        # obtained, not what it is — drop them before comparing modes.
        out = []
        for res in results:
            d = asdict(res)
            d.pop("fold_cycles", None)
            d.pop("fold_jobs_skipped", None)
            out.append(d)
        return out

    oracle = row_dicts(runs["scalar"][0])
    events_total = runs["soa"][2][1]  # sim_soa_events of the no-fold pass
    rows = []
    meta: Dict = {
        "tasks_per_set": tasks_per_set,
        "hyperperiods": hyperperiods,
        "events_total": events_total,
    }
    for label, _vec, _fold in modes:
        results, elapsed, soa_delta, fold_delta = runs[label]
        identical = int(row_dicts(results) == oracle)
        assert identical, f"EXP-F18: mode {label!r} diverged from scalar rows"
        rows.append((
            label, n, sum(res.total_misses for res in results),
            identical, soa_delta[0],
        ))
        key = label.replace("+", "_")
        meta[f"{key}_s"] = round(elapsed, 6)
        meta[f"{key}_events_per_s"] = (
            round(events_total / elapsed, 1) if elapsed else None
        )
        if fold_delta[2]:
            meta[f"{key}_fold_cycles_skipped"] = fold_delta[2]
    return ExperimentResult(
        exp_id="EXP-F18",
        title=f"Simulator throughput ({n} sets x {tasks_per_set} tasks)",
        columns=("mode", "sets", "misses", "identical", "soa_runs"),
        rows=tuple(rows),
        notes=(
            "harmonic synthesized sets; identical=1 means bit-identical "
            "SimResults vs the scalar oracle (asserted in-driver); "
            "events/s over the fixed scalar-equivalent event total in meta"
        ),
        meta=meta,
    )


EXPERIMENTS["EXP-F18"] = exp_f18_sim_throughput


# ----------------------------------------------------------------------
# Fleet-scale serving (EXP-S1) and plan-store amortization (EXP-S2)
# ----------------------------------------------------------------------


def exp_s1_fleet(
    devices: int = 20_000,
    shard_counts: Sequence[int] = (1, 4, 16),
    fleet_sizes: Sequence[int] = (5_000, 80_000),
    rate_per_device_hz: float = 0.35,
    duration_s: float = 3.0,
    service_us: float = 150.0,
    batch_size: int = 64,
    seed: int = 2040,
    scale: float = 1.0,
    **_,
) -> ExperimentResult:
    """Fleet admission sweep: shard count x fleet size, two arrival models.

    Part one replays the *same* fleet trace at every shard count
    (Poisson and bursty arrivals): the 1-shard run is the serial oracle
    and ``identical=1`` asserts the sharded decision stream matches it
    bit-for-bit (the core correctness claim of the sharded service).
    Queueing percentiles are virtual-time and deterministic — they show
    the oversubscription curve as shards are removed.  Part two scales
    fleet size at the widest shard count (no serial oracle there;
    ``identical`` is ``None``).

    Wall-clock engine throughput (decisions/s) and per-decision engine
    latency percentiles are aggregated across all runs into ``meta``,
    keeping rows deterministic.
    """
    from repro.eval.fleet import (
        FleetConfig,
        FleetService,
        decision_identity,
        fleet_trace,
    )

    def n_dev(base: int) -> int:
        return max(200, int(base * scale))

    cache_before = segcache.snapshot()
    rows: List[Tuple] = []
    wall_latencies: List[float] = []
    decided_total = 0
    engine_total = 0.0

    def run_one(trace, shards):
        nonlocal decided_total, engine_total
        config = FleetConfig(
            n_shards=shards, batch_size=batch_size, service_us=service_us
        )
        report = FleetService(config=config).run(trace)
        wall_latencies.extend(report.wall_latencies_us)
        decided_total += report.decided
        engine_total += report.engine_s
        return report

    def row_of(arrival, n, shards, report, identical):
        queueing = report.queueing_latency_ms
        return (
            arrival, n, shards, report.requests, report.admitted,
            report.rejected_sram, report.rejected_rta, report.removed,
            report.shed, report.peak_queue_depth,
            round(report.shard_utilization, 4),
            queueing["p50"], queueing["p99"], identical,
        )

    # Shard sweep: one trace per arrival model, replayed at every shard
    # count; the first (serial) run is the identity oracle.
    for arrival in ("poisson", "bursty"):
        n = n_dev(devices)
        trace = fleet_trace(
            n, duration_s, rate_per_device_hz,
            seed=_stable_seed(seed, "s1", arrival, n), arrival=arrival,
        )
        oracle = None
        for shards in shard_counts:
            report = run_one(trace, shards)
            identity = decision_identity(report.decisions)
            identical = 1 if oracle is None else int(identity == oracle)
            if oracle is None:
                oracle = identity
            rows.append(row_of(arrival, n, shards, report, identical))

    # Fleet-size sweep at the widest shard count (Poisson arrivals).
    wide = max(shard_counts)
    for base in fleet_sizes:
        n = n_dev(base)
        trace = fleet_trace(
            n, duration_s, rate_per_device_hz,
            seed=_stable_seed(seed, "s1", "poisson", n), arrival="poisson",
        )
        rows.append(row_of("poisson", n, wide, run_one(trace, wide), None))

    meta: Dict = {
        "rate_per_device_hz": rate_per_device_hz,
        "duration_s": duration_s,
        "service_us": service_us,
        "total_decisions": decided_total,
        "decisions_per_s": (
            round(decided_total / engine_total, 1) if engine_total else None
        ),
        "decision_latency_us": latency_stats(wall_latencies),
    }
    return ExperimentResult(
        exp_id="EXP-S1",
        title=(
            f"Fleet admission sweep (shards x fleet size, "
            f"{duration_s:g}s virtual horizon)"
        ),
        columns=(
            "arrival", "devices", "shards", "requests", "admitted",
            "rej_sram", "rej_rta", "removed", "shed", "peak_depth",
            "util", "q_p50_ms", "q_p99_ms", "identical",
        ),
        rows=tuple(rows),
        notes=_with_cache_note(
            "virtual-time shards; identical=1 means the sharded decision "
            "stream is bit-identical to the serial oracle; engine "
            "throughput/latency in meta",
            [segcache.delta_since(cache_before)],
        ),
        meta=meta,
    )


EXPERIMENTS["EXP-S1"] = exp_s1_fleet


def exp_s2_planstore(
    platform_key: str = "f746-qspi",
    sram_kib: Sequence[int] = (128, 192, 320),
    deadlines_ms: Sequence[float] = (50.0, 200.0),
    seed: int = 2041,
    scale: float = 1.0,
    **_,
) -> ExperimentResult:
    """Plan-store amortization: cold planning vs a warm on-disk store.

    Plans every zoo model at every SRAM budget and deadline twice into a
    temporary :mod:`repro.core.planstore`: a *cold* pass (empty store,
    empty in-RAM caches — every plan is a full segmentation search) and
    a *warm* pass after clearing the in-RAM caches again, simulating a
    fresh process on an already-provisioned device fingerprint.  The
    warm pass must hit the store instead of re-searching, and
    ``identical=1`` records that warm plans are bit-identical to cold
    ones.  Store counters are deterministic in the workload; wall
    seconds and the speedup live in ``meta``.

    ``seed`` is accepted for driver-signature uniformity (the workload
    is exhaustive, not sampled).
    """
    del seed  # exhaustive workload; kept for signature uniformity
    import shutil
    import tempfile

    from repro.core import planstore
    from repro.online.admission import plan_segments

    models = list(list_models())
    if scale < 1:
        models = models[: max(3, int(round(len(models) * scale)))]
    combos = [
        (kib, model, ms)
        for kib in sram_kib
        for model in models
        for ms in deadlines_ms
    ]

    def run_pass():
        outcomes = []
        start = time.perf_counter()
        for kib, model, ms in combos:
            platform = get_platform(platform_key).with_sram_bytes(kib * KIB)
            deadline = max(1, platform.mcu.seconds_to_cycles(ms / 1000.0))
            try:
                segments, cost = plan_segments(
                    platform, model, deadline, platform.usable_sram_bytes
                )
                outcomes.append((
                    "ok",
                    cost,
                    tuple(
                        (s.name, s.load_cycles, s.compute_cycles,
                         s.load_bytes, s.xip_bytes)
                        for s in segments
                    ),
                ))
            except SegmentationError as exc:
                outcomes.append(("err", str(exc)))
        return outcomes, time.perf_counter() - start

    def counters_since(before):
        names = ("hits", "misses", "corrupt", "stale", "writes")
        now = planstore.counters_snapshot()
        return dict(zip(names, (n - b for n, b in zip(now, before))))

    previous = planstore.active()
    root = tempfile.mkdtemp(prefix="rtmdm-planstore-")
    try:
        planstore.configure(root)
        segcache.clear_all()
        mark = planstore.counters_snapshot()
        cold, cold_s = run_pass()
        cold_counts = counters_since(mark)
        # A warm run is a fresh process: in-RAM caches are gone, the
        # on-disk store is not.
        segcache.clear_all()
        mark = planstore.counters_snapshot()
        warm, warm_s = run_pass()
        warm_counts = counters_since(mark)
        store_entries = len(planstore.active())
    finally:
        planstore.configure(previous.root if previous is not None else None)
        shutil.rmtree(root, ignore_errors=True)

    def phase_row(phase, outcomes, counts, identical):
        ok = sum(1 for outcome in outcomes if outcome[0] == "ok")
        return (
            phase, len(outcomes), ok, len(outcomes) - ok, identical,
            counts["hits"], counts["misses"], counts["writes"],
        )

    rows = (
        phase_row("cold", cold, cold_counts, 1),
        phase_row("warm", warm, warm_counts, int(warm == cold)),
    )
    meta = {
        "platform": platform_key,
        "store_entries": store_entries,
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 2) if warm_s else None,
    }
    return ExperimentResult(
        exp_id="EXP-S2",
        title=(
            f"Plan-store amortization ({len(combos)} plans, cold vs warm)"
        ),
        columns=(
            "phase", "plans", "ok", "err", "identical",
            "hits", "misses", "writes",
        ),
        rows=rows,
        notes=(
            "warm pass re-plans after clearing in-RAM caches against the "
            "persisted store; identical=1 means warm plans are "
            "bit-identical to cold; wall seconds in meta"
        ),
        meta=meta,
    )


EXPERIMENTS["EXP-S2"] = exp_s2_planstore


def exp_s3_resilience(
    devices: int = 60,
    rates_hz: Sequence[float] = (14.0, 20.0),
    duration_s: float = 2.0,
    shards: int = 2,
    batch_size: int = 4,
    queue_depth: int = 8,
    service_us: float = 400.0,
    degrade_watermark: int = 4,
    timeout_ms: float = 5.0,
    crash_frac: float = 0.5,
    seed: int = 2042,
    scale: float = 1.0,
    **_,
) -> ExperimentResult:
    """Fleet resilience under arrival storms: degrade-before-shed + crashes.

    For each storm intensity (bursty arrivals at ``rates_hz`` per
    device), serves the *same* trace under three policies on a
    deliberately tight shard config (small batch, shallow queue, slow
    service) so the queue actually overflows:

    * ``shed-only`` — PR 8 behaviour: queue-full arrivals are dropped.
    * ``ladder`` — decision timeouts with backoff retries plus the
      degrade-before-shed ladder (rate-stretch, then a smaller model
      variant, screened by the admission RTA) with shedding terminal.
    * ``ladder+crash`` — the ladder policy with every shard crashed at
      ``crash_frac`` of its decision count and recovered from its
      journal; ``identical=1`` asserts the recovered decision stream is
      bit-identical to the uninterrupted ``ladder`` run.

    The ladder must strictly reduce ``shed`` whenever ``shed-only``
    dropped anything (degraded admits replace drops).  Virtual-time
    queueing percentiles are deterministic and live in rows; wall-clock
    recovery latency and engine decision latency aggregate into
    ``meta``.
    """
    import shutil
    import tempfile

    from repro.eval.fleet import (
        FleetConfig,
        FleetService,
        decision_identity,
        fleet_trace,
    )
    from repro.robust.chaos import fleet_invariants

    n = max(24, int(devices * scale))
    cache_before = segcache.snapshot()
    rows: List[Tuple] = []
    wall_latencies: List[float] = []
    recovery_us: List[float] = []
    shed_reductions: Dict[str, int] = {}

    base_kwargs = dict(
        n_shards=shards, batch_size=batch_size,
        max_queue_depth=queue_depth, service_us=service_us,
    )
    ladder_kwargs = dict(
        base_kwargs,
        degrade_watermark=degrade_watermark,
        timeout_ms=timeout_ms,
    )

    def row_of(rate, policy, report, crashes, identical):
        return (
            round(rate, 3), policy, report.requests, report.admitted,
            report.degraded_admits, report.timeout_retries, report.shed,
            crashes, report.recovered,
            report.queueing_latency_ms["p99"], identical,
        )

    for rate in rates_hz:
        trace = fleet_trace(
            n, duration_s, rate,
            seed=_stable_seed(seed, "s3", rate, n), arrival="bursty",
        )
        off = FleetService(config=FleetConfig(**base_kwargs)).run(trace)
        wall_latencies.extend(off.wall_latencies_us)
        rows.append(row_of(rate, "shed-only", off, 0, None))

        on = FleetService(config=FleetConfig(**ladder_kwargs)).run(trace)
        fleet_invariants(on)
        wall_latencies.extend(on.wall_latencies_us)
        rows.append(row_of(rate, "ladder", on, 0, None))
        shed_reductions[f"{rate:g}"] = off.shed - on.shed
        oracle = decision_identity(on.all_decisions())

        crash_at = tuple(
            (stats["shard"], int(crash_frac * stats["decided"]))
            for stats in on.shard_stats
            if stats["decided"] > 0
        )
        journal_dir = tempfile.mkdtemp(prefix="rtmdm-s3-")
        try:
            crashed = FleetService(config=FleetConfig(
                **ladder_kwargs,
                journal_dir=journal_dir,
                checkpoint_interval=max(batch_size, 16),
                crash_at=crash_at,
            )).run(trace)
        finally:
            shutil.rmtree(journal_dir, ignore_errors=True)
        fleet_invariants(crashed)
        wall_latencies.extend(crashed.wall_latencies_us)
        recovery_us.extend(
            rec["recovery_us"]
            for stats in crashed.shard_stats
            for rec in stats["recoveries"]
        )
        identical = int(
            decision_identity(crashed.all_decisions()) == oracle
        )
        rows.append(row_of(rate, "ladder+crash", crashed, len(crash_at),
                           identical))

    meta: Dict = {
        "devices": n,
        "duration_s": duration_s,
        "service_us": service_us,
        "degrade_watermark": degrade_watermark,
        "timeout_ms": timeout_ms,
        "crash_frac": crash_frac,
        "shed_reduction": shed_reductions,
        "recovery_us": latency_stats(recovery_us),
        "decision_latency_us": latency_stats(wall_latencies),
    }
    return ExperimentResult(
        exp_id="EXP-S3",
        title=(
            f"Fleet resilience under storms ({n} devices, "
            f"degrade-before-shed + crash/recovery)"
        ),
        columns=(
            "rate_hz", "policy", "requests", "admitted", "degraded",
            "retries", "shed", "crashes", "recovered", "q_p99_ms",
            "identical",
        ),
        rows=tuple(rows),
        notes=_with_cache_note(
            "same trace per rate under three policies; the ladder row "
            "must shed strictly less than shed-only whenever shed-only "
            "dropped anything; identical=1 means the crashed+recovered "
            "stream matches the uninterrupted ladder run bit-for-bit; "
            "recovery/engine latency in meta",
            [segcache.delta_since(cache_before)],
        ),
        meta=meta,
    )


EXPERIMENTS["EXP-S3"] = exp_s3_resilience
