"""Self-validation: analysis-vs-simulation consistency sweep.

`validate()` draws random workloads, runs every admission analysis, and
simulates several release phasings of each admitted set, checking the
two safety invariants the whole framework rests on:

1. an admitted set never misses a deadline in simulation;
2. no task's observed response exceeds its analytic bound.

This is the same machinery as the adversarial test suite, packaged as a
user-facing API (and the ``rtmdm validate`` CLI command) so downstream
changes — new platforms, new timing coefficients, a modified analysis —
can be sanity-checked in seconds without running pytest.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.analysis import METHODS, analyze
from repro.hw.platform import Platform
from repro.hw.presets import get_platform
from repro.sched.policies import CpuPolicy
from repro.sched.simulator import SimConfig, simulate
from repro.sched.task import TaskSet
from repro.workload.taskset import generate_case


@dataclass
class Violation:
    """One observed safety violation (should never happen)."""

    method: str
    seed: int
    task: str
    observed: int
    bound: Optional[int]
    phases: Sequence[int]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[{self.method}] seed={self.seed} task={self.task} "
            f"observed={self.observed} bound={self.bound} phases={list(self.phases)}"
        )


@dataclass
class ValidationReport:
    """Outcome of a validation sweep."""

    cases: int = 0
    admitted_checks: int = 0
    simulations: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True iff no violation was observed."""
        return not self.violations

    def summary(self) -> str:
        """One-line human-readable result."""
        status = "PASS" if self.passed else "FAIL"
        return (
            f"{status}: {self.cases} workloads, {self.admitted_checks} admitted "
            f"(method, set) pairs, {self.simulations} simulations, "
            f"{len(self.violations)} violations"
        )


def _check_set(
    taskset: TaskSet,
    methods: Sequence[str],
    seed: int,
    phasings: int,
    report: ValidationReport,
) -> None:
    results = {m: analyze(taskset, m) for m in methods}
    if not any(r.schedulable for r in results.values()):
        return
    rng = random.Random(seed ^ 0x5EED)
    horizon = 20 * max(t.period for t in taskset)
    sims = []
    for trial in range(phasings):
        phases = (
            [0] * len(taskset)
            if trial == 0
            else [rng.randrange(t.period) for t in taskset]
        )
        sims.append(
            (
                phases,
                simulate(
                    taskset.with_phases(phases),
                    SimConfig(policy=CpuPolicy.FP_NP, horizon=horizon),
                ),
            )
        )
        report.simulations += 1
    for method, result in results.items():
        if not result.schedulable:
            continue
        report.admitted_checks += 1
        for phases, sim in sims:
            for task in taskset:
                observed = sim.max_response(task.name)
                bound = result.wcrt[task.name]
                bad_miss = not sim.no_misses
                bad_bound = (
                    observed is not None and bound is not None and observed > bound
                )
                if bad_miss or bad_bound:
                    report.violations.append(
                        Violation(
                            method=method,
                            seed=seed,
                            task=task.name,
                            observed=observed or -1,
                            bound=bound,
                            phases=phases,
                        )
                    )


def validate(
    platform: Optional[Platform] = None,
    n_cases: int = 30,
    utils: Sequence[float] = (0.3, 0.5, 0.7),
    phasings: int = 3,
    seed: int = 1,
    methods: Sequence[str] = METHODS,
) -> ValidationReport:
    """Run an analysis-vs-simulation consistency sweep.

    Args:
        platform: Target platform (default preset when omitted).
        n_cases: Workloads drawn per utilization point.
        utils: Target utilizations to draw at.
        phasings: Release phasings simulated per admitted set
            (the first is always the synchronous release).
        seed: Master seed (sweeps are exactly reproducible).
        methods: Analysis methods to check.
    """
    platform = platform or get_platform()
    report = ValidationReport()
    for util in utils:
        rng = random.Random(zlib.crc32(f"{seed}|{util}".encode()))
        for index in range(n_cases):
            case = generate_case(platform, util, rng)
            report.cases += 1
            if not case.feasible:
                continue
            _check_set(
                case.taskset,
                methods,
                seed=seed * 10_000 + index,
                phasings=phasings,
                report=report,
            )
    return report
