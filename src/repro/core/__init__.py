"""RT-MDM core: the paper's contribution, reconstructed.

Pipeline of responsibilities:

1. :mod:`repro.core.segmentation` — partition each DNN's layer chain into
   segments whose staging buffers fit the task's SRAM budget, minimizing
   pipelined latency.
2. :mod:`repro.core.buffers` — lay the staging/activation buffers of all
   tasks out in SRAM and verify the plan fits.
3. :mod:`repro.core.pipeline` — the double-buffer pipeline timing model
   and the conversion of a segmented DNN into a schedulable task.
4. :mod:`repro.core.analysis` — schedulability analyses for the
   two-resource (CPU + DMA) segmented task model.
5. :mod:`repro.core.priority` — priority assignment (DM/RM/Audsley).
6. :mod:`repro.core.framework` — :class:`~repro.core.framework.RtMdm`,
   the top-level API tying everything together.
"""

from repro.core.analysis import AnalysisResult, analyze
from repro.core.buffers import BufferPlan, SramPlan, plan_sram
from repro.core.edf import edf_schedulable
from repro.core.placement import (
    FlashPlacement,
    choose_flash_residents,
    resident_segmentation,
)
from repro.core.framework import Configuration, RtMdm, TaskSpec
from repro.core.pipeline import (
    SegmentedModel,
    isolated_latency,
    pipeline_finish_times,
    sequential_latency,
)
from repro.core.priority import audsley, deadline_monotonic, rate_monotonic
from repro.core.segmentation import (
    SegmentationError,
    coarsest_feasible_segments,
    search_segmentation,
    segment_model,
)

__all__ = [
    "SegmentedModel",
    "pipeline_finish_times",
    "isolated_latency",
    "sequential_latency",
    "segment_model",
    "search_segmentation",
    "coarsest_feasible_segments",
    "SegmentationError",
    "BufferPlan",
    "SramPlan",
    "plan_sram",
    "analyze",
    "AnalysisResult",
    "deadline_monotonic",
    "rate_monotonic",
    "audsley",
    "RtMdm",
    "TaskSpec",
    "Configuration",
    "edf_schedulable",
    "FlashPlacement",
    "choose_flash_residents",
    "resident_segmentation",
]
