"""CPU scheduling policies.

RT-MDM schedules at **segment granularity**: a segment's compute burst is
never preempted (CMSIS-NN kernels are not preemption-safe and preempting
would thrash staging buffers), but between segments the scheduler may
switch to a higher-priority job.  The fully-preemptive variants are
provided for baseline comparisons.
"""

from __future__ import annotations

import enum


class CpuPolicy(enum.Enum):
    """How the CPU picks the next segment to run.

    * ``FP_NP`` — fixed priority, non-preemptive per segment (RT-MDM
      default; this is what the analyses in :mod:`repro.core.analysis`
      bound).
    * ``FP_P`` — fixed priority, preemptive at any instant.
    * ``EDF_NP`` — earliest absolute job deadline first, non-preemptive
      per segment.
    * ``EDF_P`` — earliest deadline first, preemptive.
    """

    FP_NP = "fp-np"
    FP_P = "fp-p"
    EDF_NP = "edf-np"
    EDF_P = "edf-p"

    @property
    def preemptive(self) -> bool:
        """Whether a running segment can be preempted mid-burst."""
        return self in (CpuPolicy.FP_P, CpuPolicy.EDF_P)

    @property
    def deadline_driven(self) -> bool:
        """Whether priority is the job's absolute deadline (EDF)."""
        return self in (CpuPolicy.EDF_NP, CpuPolicy.EDF_P)
