"""Benchmark for EXP-S3: fleet resilience under arrival storms.

The resilience headline numbers: how much of the shed-only drop count
the degrade-before-shed ladder converts into screened degraded admits,
the crash/recovery identity gate (recovered decision stream must be
bit-identical to the uninterrupted ladder run), and wall-clock recovery
latency, which lands in ``meta`` and hence in BENCH_suite.json.
"""

import os

from conftest import bench_experiment


def test_s3_resilience(benchmark):
    result = bench_experiment(benchmark, "EXP-S3")
    scale = float(os.environ.get("RTMDM_BENCH_SCALE", "1.0"))
    rows = [dict(zip(result.columns, row)) for row in result.rows]
    by_policy = {}
    for row in rows:
        by_policy.setdefault(row["rate_hz"], {})[row["policy"]] = row

    for rate, policies in by_policy.items():
        off = policies["shed-only"]
        ladder = policies["ladder"]
        crashed = policies["ladder+crash"]
        # The ladder never sheds more, and wherever the shed-only
        # policy actually dropped work it must shed strictly less,
        # converting drops into screened degraded admits.
        assert ladder["shed"] <= off["shed"]
        if off["shed"] > 0:
            assert ladder["shed"] < off["shed"]
            assert ladder["degraded"] > 0
        # Crash/recovery is invisible in the decision stream: every
        # crashed shard recovered, bit-identical to the ladder run.
        assert crashed["identical"] == 1
        assert crashed["crashes"] > 0
        assert crashed["recovered"] == crashed["crashes"]
        assert (crashed["shed"], crashed["degraded"], crashed["retries"]) == (
            ladder["shed"], ladder["degraded"], ladder["retries"]
        )

    if scale >= 1.0:
        # The full-scale storms must actually overload the tight shard
        # config — otherwise the ladder assertions above are vacuous.
        assert any(r["policy"] == "shed-only" and r["shed"] > 0 for r in rows)
        assert any(r["policy"] == "ladder" and r["degraded"] > 0 for r in rows)

    recovery = result.meta["recovery_us"]
    assert recovery["p50"] > 0
    assert recovery["p50"] <= recovery["p95"] <= recovery["p99"]
    latency = result.meta["decision_latency_us"]
    assert latency["p50"] <= latency["p95"] <= latency["p99"]
