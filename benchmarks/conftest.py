"""Shared machinery for the benchmark harness.

Every reconstructed table/figure (DESIGN.md section 4) has one benchmark
module.  Each benchmark runs its experiment driver exactly once under
pytest-benchmark timing (the drivers are deterministic, so repeated
rounds would only re-measure the same computation) and prints the
rendered table — the rows/series the paper's table or figure reports.

Run with::

    pytest benchmarks/ --benchmark-only -s

Pass a larger scale for paper-quality curves::

    RTMDM_BENCH_SCALE=4 pytest benchmarks/ --benchmark-only -s
"""

import os
import pathlib

from repro.eval.experiments import run_experiment
from repro.eval.reporting import render

#: Rendered tables are also written here (one file per experiment), so
#: the rows survive pytest's output capturing.
RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmark_results"


def bench_experiment(benchmark, exp_id, **kwargs):
    """Run one experiment driver under the benchmark, print its table,
    and persist it under ``benchmark_results/``."""
    scale = float(os.environ.get("RTMDM_BENCH_SCALE", "1.0"))
    kwargs.setdefault("scale", scale)
    result = benchmark.pedantic(
        lambda: run_experiment(exp_id, **kwargs), rounds=1, iterations=1
    )
    text = render(result)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{exp_id}.txt").write_text(text + "\n", encoding="utf-8")
    return result
