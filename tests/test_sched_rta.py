"""Unit tests for the classic RTA building blocks."""

import pytest

from repro.sched.rta import (
    HYPERPERIOD_CAP,
    HyperperiodError,
    RtaTask,
    edf_demand_schedulable,
    fp_nonpreemptive_wcrt,
    fp_preemptive_wcrt,
    fp_schedulable,
    hyperperiod,
    liu_layland_bound,
    try_hyperperiod,
    utilization,
    with_np_blocking,
)


def _tasks():
    return [
        RtaTask("a", exec_cycles=2, period=10, deadline=10, priority=0),
        RtaTask("b", exec_cycles=4, period=15, deadline=15, priority=1),
        RtaTask("c", exec_cycles=5, period=35, deadline=35, priority=2),
    ]


class TestPreemptiveRta:
    def test_textbook_example(self):
        tasks = _tasks()
        assert fp_preemptive_wcrt(tasks, tasks[0]) == 2
        assert fp_preemptive_wcrt(tasks, tasks[1]) == 6
        assert fp_preemptive_wcrt(tasks, tasks[2]) == 13

    def test_blocking_adds_linearly_for_highest(self):
        tasks = [
            RtaTask("a", 2, 10, 10, 0, blocking=3),
            RtaTask("b", 4, 15, 15, 1),
        ]
        assert fp_preemptive_wcrt(tasks, tasks[0]) == 5

    def test_jitter_increases_interference(self):
        base = [
            RtaTask("a", 4, 10, 10, 0),
            RtaTask("b", 5, 20, 20, 1),
        ]
        jittered = [
            RtaTask("a", 4, 10, 10, 0, jitter=6),
            RtaTask("b", 5, 20, 20, 1),
        ]
        assert fp_preemptive_wcrt(jittered, jittered[1]) >= fp_preemptive_wcrt(
            base, base[1]
        )

    def test_overload_returns_none(self):
        tasks = [
            RtaTask("a", 9, 10, 10, 0),
            RtaTask("b", 9, 10, 10, 1),
        ]
        assert fp_preemptive_wcrt(tasks, tasks[1]) is None

    def test_busy_period_beyond_first_job(self):
        # Utilization 1.0: response of the lowest task extends past T.
        tasks = [
            RtaTask("a", 5, 10, 10, 0),
            RtaTask("b", 10, 20, 20, 1),
        ]
        wcrt = fp_preemptive_wcrt(tasks, tasks[1])
        assert wcrt == 20


class TestNonPreemptiveRta:
    def test_lowest_priority_benefits_from_np(self):
        tasks = _tasks()
        np = fp_nonpreemptive_wcrt(tasks, tasks[2])
        p = fp_preemptive_wcrt(tasks, tasks[2])
        assert np == 11 and p == 13

    def test_highest_priority_suffers_blocking(self):
        tasks = with_np_blocking(_tasks())
        assert tasks[0].blocking == 5
        wcrt = fp_nonpreemptive_wcrt(tasks, tasks[0])
        assert wcrt == 2 + 5

    def test_with_np_blocking_lowest_has_none(self):
        tasks = with_np_blocking(_tasks())
        assert tasks[2].blocking == 0

    def test_fp_schedulable_end_to_end(self):
        assert fp_schedulable(with_np_blocking(_tasks()), preemptive=False)
        heavy = [
            RtaTask("a", 9, 10, 10, 0),
            RtaTask("b", 5, 12, 12, 1),
        ]
        assert not fp_schedulable(heavy, preemptive=True)


class TestEdfDemand:
    def test_implicit_deadline_full_utilization_schedulable(self):
        tasks = [
            RtaTask("a", 5, 10, 10, 0),
            RtaTask("b", 10, 20, 20, 1),
        ]
        assert utilization(tasks) == pytest.approx(1.0)
        assert edf_demand_schedulable(tasks)

    def test_over_utilized_rejected(self):
        tasks = [
            RtaTask("a", 6, 10, 10, 0),
            RtaTask("b", 10, 20, 20, 1),
        ]
        assert not edf_demand_schedulable(tasks)

    def test_constrained_deadline_demand_violation(self):
        tasks = [
            RtaTask("a", 5, 10, 5, 0),
            RtaTask("b", 4, 20, 8, 1),
        ]
        assert not edf_demand_schedulable(tasks)

    def test_zero_exec_trivially_schedulable(self):
        tasks = [RtaTask("a", 0, 10, 10, 0)]
        assert edf_demand_schedulable(tasks)


class TestHelpers:
    def test_liu_layland_values(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)
        assert liu_layland_bound(2) == pytest.approx(0.8284, abs=1e-3)
        with pytest.raises(ValueError):
            liu_layland_bound(0)

    def test_hyperperiod(self):
        assert hyperperiod([10, 15, 35]) == 210
        with pytest.raises(ValueError):
            hyperperiod([])

    def test_hyperperiod_cap(self):
        # Large co-prime periods: pairwise LCMs explode multiplicatively.
        primes = [999999937, 998244353, 1000000007, 1000000009]
        with pytest.raises(HyperperiodError, match="cap"):
            hyperperiod(primes)
        with pytest.raises(HyperperiodError):
            hyperperiod([7, 11], cap=10)
        # cap=None disables the guard entirely.
        import math

        assert hyperperiod(primes, cap=None) == math.lcm(*primes)
        assert hyperperiod([10, 15], cap=30) == 30  # boundary: == cap is fine

    def test_hyperperiod_validation(self):
        with pytest.raises(ValueError):
            hyperperiod([10, 0])
        with pytest.raises(ValueError):
            hyperperiod([10], cap=0)

    def test_try_hyperperiod(self):
        assert try_hyperperiod([10, 15, 35]) == 210
        assert try_hyperperiod([7, 11], cap=10) is None
        assert HYPERPERIOD_CAP > 10**18
        with pytest.raises(ValueError):  # non-cap errors still raise
            try_hyperperiod([])

    def test_rta_task_validation(self):
        with pytest.raises(ValueError):
            RtaTask("x", -1, 10, 10, 0)
        with pytest.raises(ValueError):
            RtaTask("x", 1, 10, 11, 0)
        with pytest.raises(ValueError):
            RtaTask("x", 1, 0, 0, 0)
