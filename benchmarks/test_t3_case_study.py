"""Benchmark for EXP-T3 (see DESIGN.md section 4)."""

from conftest import bench_experiment


def test_t3_case_study(benchmark):
    bench_experiment(benchmark, "EXP-T3")
