"""Property-based tests for fleet crash recovery (``repro.eval.fleet``).

The load-bearing property of the resilient fleet layer: **for any
seeded crash schedule, any checkpoint interval, and any bounded
delivery perturbation, every crashed shard recovers from its journal to
a decision stream bit-identical to the uninterrupted run of the same
perturbed trace — and every retried request is decided exactly once.**
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import segcache
from repro.eval.fleet import (
    FleetConfig,
    FleetService,
    decision_identity,
    fleet_trace,
)
from repro.robust.chaos import (
    FLEET_CHAOS_MODES,
    fleet_invariants,
    perturb_fleet_trace,
)

# One fixed trace for every example: hypothesis explores the crash/
# checkpoint/perturbation space, not the workload space (EXP-S1 and
# test_fleet already sweep workloads).  The plan cache stays warm
# across examples.
_TRACE = fleet_trace(24, 1.5, 4.0, seed=5)

#: With ``slow=True`` the virtual service time dwarfs the decision
#: deadline, so timeouts and backoff retries actually fire.
_SERVICE = {False: 150.0, True: 2_000.0}

_BASELINES: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _module_caches():
    segcache.clear_all()
    yield
    segcache.clear_all()


def _config(n_shards, slow, **kwargs):
    return FleetConfig(
        n_shards=n_shards,
        batch_size=4,
        service_us=_SERVICE[slow],
        timeout_ms=1.0 if slow else None,
        max_retries=2,
        **kwargs,
    )


def _baseline(ptrace, mode, perturb_seed, n_shards, slow):
    key = (mode, perturb_seed, n_shards, slow)
    if key not in _BASELINES:
        report = FleetService(config=_config(n_shards, slow)).run(ptrace)
        _BASELINES[key] = (
            report,
            decision_identity(report.all_decisions()),
        )
    return _BASELINES[key]


@given(
    mode=st.sampled_from(FLEET_CHAOS_MODES),
    perturb_seed=st.integers(0, 50),
    n_shards=st.integers(1, 3),
    checkpoint_interval=st.integers(1, 16),
    crash_index=st.integers(0, 500),
    slow=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_any_crash_schedule_recovers_bit_identical(
    tmp_path_factory, mode, perturb_seed, n_shards,
    checkpoint_interval, crash_index, slow,
):
    ptrace = perturb_fleet_trace(_TRACE, mode, perturb_seed, holdback=8)
    base, oracle = _baseline(ptrace, mode, perturb_seed, n_shards, slow)
    crash_at = tuple(
        (stats["shard"], crash_index % stats["decided"])
        for stats in base.shard_stats
        if stats["decided"] > 0
    )
    journal_dir = str(tmp_path_factory.mktemp("fleet-prop"))
    report = FleetService(config=_config(
        n_shards, slow,
        journal_dir=journal_dir,
        checkpoint_interval=checkpoint_interval,
        crash_at=crash_at,
    )).run(ptrace)

    assert report.recovered == len(crash_at)
    assert decision_identity(report.all_decisions()) == oracle
    bound = max(checkpoint_interval, 4)  # batch_size = 4
    for stats in report.shard_stats:
        for recovery in stats["recoveries"]:
            assert recovery["decisions_replayed"] <= bound
            assert recovery["truncated_lines"] == 0
    # Exactly-once under retries: one final decision per request, every
    # retried request among them, retries bounded — fleet_invariants
    # raises on any violation.
    counts = fleet_invariants(report, max_retries=2)
    assert counts["decision-dense"] == report.requests
    if slow:
        assert report.timeout_retries == base.timeout_retries
