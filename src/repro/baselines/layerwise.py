"""Single-buffer baseline: DMA staging without prefetch overlap.

The DMA is used (the CPU is free during transfers and other tasks may
run), but with only one staging buffer the next segment's load cannot
start until the current segment's compute finished — isolating the
benefit of double buffering from the benefit of DMA offload.
"""

from __future__ import annotations

from repro.sched.task import PeriodicTask


def single_buffered(task: PeriodicTask) -> PeriodicTask:
    """The same segments with buffer depth 1 (no prefetch)."""
    return PeriodicTask(
        name=task.name,
        segments=task.segments,
        period=task.period,
        deadline=task.deadline,
        priority=task.priority,
        phase=task.phase,
        buffers=1,
    )
