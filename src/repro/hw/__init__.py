"""Hardware substrate: MCU, external memory, DMA, and layer timing models.

This package models the *timing-relevant* behaviour of a microcontroller
platform used for multi-DNN inference:

* :class:`~repro.hw.mcu.McuSpec` — CPU clock, on-chip SRAM/flash budget.
* :class:`~repro.hw.memory.ExternalMemory` — bandwidth/latency of the
  external weight store (QSPI flash, SPI/Octal PSRAM, ...).
* :class:`~repro.hw.dma.DmaEngine` — the transfer engine that moves weights
  from external memory into SRAM concurrently with compute.
* :class:`~repro.hw.timing.TimingModel` — CMSIS-NN-style cycle estimation
  for DNN layers (cycles/MAC with a memory-bound floor).
* :mod:`repro.hw.presets` — ready-made platform definitions.

All times inside the library are expressed in integer **CPU cycles** so the
discrete-event simulator and the analyses are exactly reproducible.
"""

from repro.hw.dma import DmaArbitration, DmaEngine
from repro.hw.energy import (
    EnergyBreakdown,
    PowerModel,
    energy_of_run,
    energy_per_inference_mj,
    power_model_for,
)
from repro.hw.mcu import McuSpec
from repro.hw.memory import ExternalMemory
from repro.hw.platform import Platform
from repro.hw.presets import (
    EXTERNAL_MEMORIES,
    MCUS,
    PLATFORMS,
    get_external_memory,
    get_mcu,
    get_platform,
)
from repro.hw.timing import LayerCost, TimingModel

__all__ = [
    "DmaArbitration",
    "DmaEngine",
    "McuSpec",
    "ExternalMemory",
    "Platform",
    "TimingModel",
    "LayerCost",
    "MCUS",
    "EXTERNAL_MEMORIES",
    "PLATFORMS",
    "get_mcu",
    "get_external_memory",
    "get_platform",
    "PowerModel",
    "EnergyBreakdown",
    "energy_of_run",
    "energy_per_inference_mj",
    "power_model_for",
]
