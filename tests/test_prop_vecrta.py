"""Property tests: the vectorized RTA engine equals the scalar oracle.

The tentpole contract of :mod:`repro.sched.vecrta`: for every family of
problems the engine accepts, batched array iteration returns WCRTs (and
``None`` verdicts) *bit-identical* to the scalar recurrences in
:mod:`repro.sched.rta` and :mod:`repro.core.analysis` — preemptive,
non-preemptive, fault-aware inflated, and the full segmented analysis
matrix.  Problems the engine cannot prove exact for stand down to the
scalar path, so equality must hold unconditionally.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_taskset
from repro.core.analysis import METHODS, analyze
from repro.sched import vecrta
from repro.sched.rta import (
    FixpointCache,
    RtaTask,
    fault_aware_wcrt,
    fp_nonpreemptive_wcrt,
    fp_preemptive_wcrt,
)

seeds = st.integers(0, 10_000)


def _rta_tasks(rng: random.Random, extra: int = 0):
    """A random classic-RTA set; ``extra`` applies fault inflation."""
    n = rng.randint(2, 5)
    tasks = []
    for i in range(n):
        period = rng.randint(200, 4000)
        compute = max(1, int(period * rng.uniform(0.08, 0.30)))
        tasks.append(
            RtaTask(
                name=f"t{i}",
                exec_cycles=compute + extra,
                period=period,
                deadline=rng.randint(max(2, period // 2), period),
                priority=i,
                jitter=rng.choice([0, rng.randint(0, period // 4)]),
                blocking=rng.choice([0, rng.randint(0, compute)]) + extra,
            )
        )
    return tasks


@given(seeds, st.booleans())
@settings(max_examples=60, deadline=None)
def test_fp_batch_matches_scalar(seed, preemptive):
    rng = random.Random(seed)
    scalar_fn = fp_preemptive_wcrt if preemptive else fp_nonpreemptive_wcrt
    problems = []
    for _ in range(rng.randint(1, 4)):
        tasks = _rta_tasks(rng)
        problems.extend((tasks, task) for task in tasks)
    expected = [scalar_fn(tasks, task) for tasks, task in problems]
    got = vecrta.fp_wcrt_batch(problems, preemptive=preemptive)
    assert got == expected
    assert all(b is None or isinstance(b, int) for b in got)


@given(seeds, st.integers(0, 3), st.integers(0, 400))
@settings(max_examples=40, deadline=None)
def test_fp_batch_matches_fault_aware_inflation(seed, k_faults, fault_cost):
    """The fault-inflated family solved batched == scalar fault_aware_wcrt."""
    rng = random.Random(seed)
    tasks = _rta_tasks(rng, extra=k_faults * fault_cost)
    expected = [
        fault_aware_wcrt(
            [
                RtaTask(
                    name=t.name,
                    exec_cycles=t.exec_cycles - k_faults * fault_cost,
                    period=t.period,
                    deadline=t.deadline,
                    priority=t.priority,
                    jitter=t.jitter,
                    blocking=t.blocking - k_faults * fault_cost,
                )
                for t in tasks
            ],
            RtaTask(
                name=task.name,
                exec_cycles=task.exec_cycles - k_faults * fault_cost,
                period=task.period,
                deadline=task.deadline,
                priority=task.priority,
                jitter=task.jitter,
                blocking=task.blocking - k_faults * fault_cost,
            ),
            k_faults,
            fault_cost,
        )
        for task in tasks
    ]
    got = vecrta.fp_wcrt_batch([(tasks, task) for task in tasks], preemptive=False)
    assert got == expected


@given(seeds)
@settings(max_examples=40, deadline=None)
def test_analysis_batch_matches_scalar(seed):
    """Full segmented analysis matrix: batch == per-case scalar analyze."""
    rng = random.Random(seed)
    cases = []
    for _ in range(rng.randint(1, 3)):
        ts = random_taskset(
            rng, n_tasks=rng.randint(2, 4), util_target=rng.uniform(0.3, 0.9)
        )
        cases.extend((ts, method) for method in METHODS)
    expected = [analyze(ts, method) for ts, method in cases]
    for cache in (None, FixpointCache()):
        got = vecrta.analyze_taskset_batch(cases, cache=cache)
        for want, have in zip(expected, got):
            assert have.wcrt == want.wcrt
            assert have.schedulable == want.schedulable
            assert all(
                bound is None or type(bound) is int
                for bound in have.wcrt.values()
            )


@given(seeds)
@settings(max_examples=20, deadline=None)
def test_huge_values_stand_down_and_match(seed):
    """Near-overflow problems stand down to scalar, still matching."""
    rng = random.Random(seed)
    big = 1 << rng.choice([50, 52, 55])
    tasks = [
        RtaTask(
            name=f"t{i}",
            exec_cycles=big + rng.randint(0, 7),
            period=4 * big + rng.randint(0, 7),
            deadline=4 * big,
            priority=i,
        )
        for i in range(3)
    ]
    expected = [fp_preemptive_wcrt(tasks, task) for task in tasks]
    got = vecrta.fp_wcrt_batch([(tasks, task) for task in tasks])
    assert got == expected
