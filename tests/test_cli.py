"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_models_lists_zoo(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "ds-cnn" in out and "mobilenet-v1-0.25" in out

    def test_platforms_lists_presets(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "f746-qspi" in out

    def test_plan_doorbell(self, capsys):
        assert main(["plan", "doorbell"]) == 0
        out = capsys.readouterr().out
        assert "admitted: True" in out
        assert "kws" in out and "SRAM" in out

    def test_plan_with_platform_override(self, capsys):
        assert main(["plan", "doorbell", "--platform", "h743-octal"]) == 0
        out = capsys.readouterr().out
        assert "STM32H743" in out

    def test_simulate_doorbell(self, capsys):
        assert main(["simulate", "doorbell", "--duration", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "misses: 0" in out
        assert "cpu" in out and "dma" in out  # gantt rows

    def test_exp_t2(self, capsys):
        assert main(["exp", "EXP-T2"]) == 0
        out = capsys.readouterr().out
        assert "EXP-T2" in out and "bytes_per_cycle" in out

    def test_exp_lowercase_id(self, capsys):
        assert main(["exp", "exp-t1"]) == 0
        assert "EXP-T1" in capsys.readouterr().out

    def test_exp_unknown_id(self):
        with pytest.raises(KeyError, match="available"):
            main(["exp", "EXP-Z9"])

    def test_exp_jobs_and_n_sets(self, capsys):
        assert main(
            ["exp", "EXP-F4", "--scale", "0.1", "--n-sets", "4", "--jobs", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "EXP-F4" in out and "plan cache:" in out

    def test_exp_profile_prints_hotspots(self, capsys):
        assert main(["exp", "EXP-T2", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile (top 25 by cumulative time)" in out
        assert "cumtime" in out

    def test_exp_help_documents_tuning_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["exp", "--help"])
        out = capsys.readouterr().out
        for flag in ("--scale", "--n-sets", "--jobs", "--profile"):
            assert flag in out
        assert "REPRO_JOBS" in out  # the env default is discoverable

    def test_bad_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["plan", "nonexistent"])

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
