"""Evaluation harness: experiment drivers, metrics and text reports.

Each reconstructed table/figure (see DESIGN.md section 4) has a driver
``exp_*`` in :mod:`repro.eval.experiments` returning an
:class:`~repro.eval.reporting.ExperimentResult`, which
:func:`~repro.eval.reporting.render` turns into the row/series text the
paper's table or figure would contain.
"""

from repro.eval.experiments import EXPERIMENTS, run_experiment
from repro.eval.plots import ascii_plot
from repro.eval.reporting import ExperimentResult, render
from repro.eval.systems import SYSTEMS, admit, derive_taskset
from repro.eval.validation import ValidationReport, validate

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "ExperimentResult",
    "render",
    "SYSTEMS",
    "derive_taskset",
    "admit",
    "ascii_plot",
    "validate",
    "ValidationReport",
]
