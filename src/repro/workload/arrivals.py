"""Stochastic request-trace generation for the online runtime.

Arrivals follow either a Poisson process (exponential inter-arrival
times — the standard open-workload model for independent deployment
requests) or an on-off Markov-modulated Poisson process
(:func:`bursty_trace`) that alternates exponential ON/OFF phases with
the ON rate inflated by a burst factor, modelling correlated deployment
storms at an unchanged mean rate.  Each arriving task draws a model from
the pool, a period from a small discrete ladder (discrete on purpose:
recurring periods let repeated admissions share plan-cache entries), and
an exponential lifetime after which it departs; some tasks additionally
rescale once mid-life.

Generation is exactly reproducible from ``seed`` (plain
:class:`random.Random`, stable across supported Python versions) and
never consults the platform — the same trace can be replayed against
different SRAM budgets, which is what the EXP-D1 sweep does.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.online.events import Request, RequestKind, RequestTrace
from repro.workload.taskset import DEFAULT_MODEL_POOL

#: Discrete request-period ladder in seconds.  Spans comfortably
#: admissible (pool latencies are ~1-170 ms on the default platform) to
#: clearly overloading, so sweeps exercise full admissions, degraded
#: admissions and both rejection kinds.
DEFAULT_PERIOD_LADDER_S: Tuple[float, ...] = (0.05, 0.1, 0.2, 0.4, 0.8)

#: Rescale factors (applied to the running period; < 1 = faster rate).
DEFAULT_RESCALE_FACTORS: Tuple[float, ...] = (0.5, 1.5, 2.0)


def _task_requests(
    rng: random.Random,
    task: str,
    time_s: float,
    duration_s: float,
    model_pool: Sequence[str],
    period_ladder_s: Sequence[float],
    mean_lifetime_s: float,
    rescale_prob: float,
) -> List[Request]:
    """The lifecycle requests of one arriving task (shared draw order).

    Draws, in order: model, period, lifetime, rescale coin (then rescale
    point and factor) — exactly the sequence :func:`poisson_trace` has
    always used, so extracting this helper keeps existing traces
    byte-identical.
    """
    model = rng.choice(list(model_pool))
    period_s = rng.choice(list(period_ladder_s))
    requests = [
        Request(
            time_s=time_s,
            kind=RequestKind.ADMIT,
            task=task,
            model=model,
            period_s=period_s,
        )
    ]
    lifetime_s = rng.expovariate(1.0 / mean_lifetime_s)
    end_s = time_s + lifetime_s
    in_horizon_end = min(end_s, duration_s)
    if rng.random() < rescale_prob and in_horizon_end - time_s > 1e-6:
        at_s = time_s + rng.random() * (in_horizon_end - time_s)
        factor = rng.choice(list(DEFAULT_RESCALE_FACTORS))
        requests.append(
            Request(
                time_s=at_s,
                kind=RequestKind.RESCALE,
                task=task,
                period_s=period_s * factor,
            )
        )
    if end_s < duration_s:
        requests.append(Request(time_s=end_s, kind=RequestKind.REMOVE, task=task))
    return requests


def poisson_arrival_times(
    duration_s: float, rate_hz: float, rng: random.Random
) -> List[float]:
    """Poisson arrival instants on ``[0, duration_s)`` (rate ``rate_hz``)."""
    times = []
    t = 0.0
    while True:
        t += rng.expovariate(rate_hz)
        if t >= duration_s:
            return times
        times.append(t)


def bursty_arrival_times(
    duration_s: float,
    rate_hz: float,
    rng: random.Random,
    burst_factor: float = 4.0,
    duty: float = 0.25,
    mean_cycle_s: float = 2.0,
) -> List[float]:
    """On-off MMPP arrival instants at mean rate ``rate_hz``.

    The process alternates exponential ON phases (mean ``duty *
    mean_cycle_s``, rate ``rate_hz * burst_factor``) and OFF phases
    (mean ``(1 - duty) * mean_cycle_s``) whose rate is solved so the
    long-run mean stays ``rate_hz``.  Phases start ON.  Restarting the
    inter-arrival draw at each phase boundary is exact for a
    piecewise-constant-rate Poisson process (memorylessness), so no
    thinning is needed.
    """
    if burst_factor < 1.0:
        raise ValueError(f"burst_factor must be >= 1, got {burst_factor}")
    if not 0.0 < duty < 1.0:
        raise ValueError(f"duty must be in (0, 1), got {duty}")
    if burst_factor * duty > 1.0:
        raise ValueError(
            f"burst_factor * duty must be <= 1 (OFF rate would be negative), "
            f"got {burst_factor} * {duty}"
        )
    if mean_cycle_s <= 0:
        raise ValueError(f"mean_cycle_s must be > 0, got {mean_cycle_s}")
    on_rate = rate_hz * burst_factor
    off_rate = rate_hz * (1.0 - duty * burst_factor) / (1.0 - duty)
    on_mean = duty * mean_cycle_s
    off_mean = (1.0 - duty) * mean_cycle_s
    times: List[float] = []
    t = 0.0
    on = True
    while t < duration_s:
        phase_end = min(
            duration_s, t + rng.expovariate(1.0 / (on_mean if on else off_mean))
        )
        rate = on_rate if on else off_rate
        if rate > 0:
            at = t
            while True:
                at += rng.expovariate(rate)
                if at >= phase_end:
                    break
                times.append(at)
        t = phase_end
        on = not on
    return times


def poisson_trace(
    duration_s: float,
    rate_hz: float,
    seed: int,
    model_pool: Sequence[str] = DEFAULT_MODEL_POOL,
    period_ladder_s: Sequence[float] = DEFAULT_PERIOD_LADDER_S,
    mean_lifetime_s: float = 6.0,
    rescale_prob: float = 0.2,
) -> RequestTrace:
    """Draw one request trace.

    Args:
        duration_s: Trace horizon in seconds.
        rate_hz: Mean ADMIT arrival rate (Poisson).
        seed: RNG seed; traces are a pure function of all arguments.
        model_pool: Zoo names to draw from (with replacement).
        period_ladder_s: Candidate request periods (uniform choice).
        mean_lifetime_s: Mean of the exponential task lifetime; REMOVE
            events past the horizon are dropped (the task runs out the
            trace).
        rescale_prob: Probability a task issues one RESCALE at a uniform
            point within its (in-horizon) lifetime.
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    if rate_hz <= 0:
        raise ValueError(f"rate_hz must be > 0, got {rate_hz}")
    if mean_lifetime_s <= 0:
        raise ValueError(f"mean_lifetime_s must be > 0, got {mean_lifetime_s}")
    if not 0.0 <= rescale_prob <= 1.0:
        raise ValueError(f"rescale_prob must be in [0, 1], got {rescale_prob}")
    if not model_pool or not period_ladder_s:
        raise ValueError("model_pool and period_ladder_s must be non-empty")
    rng = random.Random(seed)
    requests = []
    time_s = 0.0
    index = 0
    while True:
        time_s += rng.expovariate(rate_hz)
        if time_s >= duration_s:
            break
        # Interleaving the arrival draw with the task-block draws is the
        # historical order; bit-identical traces depend on it.
        requests.extend(
            _task_requests(
                rng, f"req{index}", time_s, duration_s, model_pool,
                period_ladder_s, mean_lifetime_s, rescale_prob,
            )
        )
        index += 1
    return RequestTrace.of(requests, duration_s)


def bursty_trace(
    duration_s: float,
    rate_hz: float,
    seed: int,
    model_pool: Sequence[str] = DEFAULT_MODEL_POOL,
    period_ladder_s: Sequence[float] = DEFAULT_PERIOD_LADDER_S,
    mean_lifetime_s: float = 6.0,
    rescale_prob: float = 0.2,
    burst_factor: float = 4.0,
    duty: float = 0.25,
    mean_cycle_s: float = 2.0,
) -> RequestTrace:
    """Draw one bursty (on-off MMPP) request trace.

    Same task-lifecycle model as :func:`poisson_trace`, but arrivals
    cluster into storms: ON phases run at ``rate_hz * burst_factor``
    for a ``duty`` fraction of an exponential ON/OFF cycle of mean
    ``mean_cycle_s`` seconds, with the OFF rate solved so the long-run
    mean rate is still ``rate_hz``.  All arrival instants are drawn
    first, then each arrival's task block, so the trace is a pure
    function of the arguments (seed-deterministic) and round-trips
    through the standard ``rtmdm-trace/1`` JSON form.
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    if rate_hz <= 0:
        raise ValueError(f"rate_hz must be > 0, got {rate_hz}")
    if mean_lifetime_s <= 0:
        raise ValueError(f"mean_lifetime_s must be > 0, got {mean_lifetime_s}")
    if not 0.0 <= rescale_prob <= 1.0:
        raise ValueError(f"rescale_prob must be in [0, 1], got {rescale_prob}")
    if not model_pool or not period_ladder_s:
        raise ValueError("model_pool and period_ladder_s must be non-empty")
    rng = random.Random(seed)
    arrivals = bursty_arrival_times(
        duration_s, rate_hz, rng, burst_factor, duty, mean_cycle_s
    )
    requests = []
    for index, time_s in enumerate(arrivals):
        requests.extend(
            _task_requests(
                rng, f"req{index}", time_s, duration_s, model_pool,
                period_ladder_s, mean_lifetime_s, rescale_prob,
            )
        )
    return RequestTrace.of(requests, duration_s)
