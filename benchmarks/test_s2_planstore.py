"""Benchmark for EXP-S2: persistent plan-store amortization.

Cold planning (empty store, empty RAM caches) against a warm store
(fresh process, provisioned store): the warm pass must serve plans from
disk — bit-identical to cold by construction — and amortize the
segmentation-search cost.  The cold/warm wall seconds and speedup land
in ``meta`` and hence in BENCH_suite.json.
"""

from conftest import bench_experiment


def test_s2_planstore(benchmark):
    result = bench_experiment(benchmark, "EXP-S2")
    cold, warm = (dict(zip(result.columns, row)) for row in result.rows)
    assert cold["phase"] == "cold" and warm["phase"] == "warm"
    # Warm plans are bit-identical to cold ones.
    assert warm["identical"] == 1
    # Cold populates the store; warm only reads it.
    assert cold["hits"] == 0 and cold["writes"] > 0
    assert warm["hits"] > 0 and warm["writes"] == 0
    assert warm["hits"] == cold["writes"]  # every record round-trips
    # Measurable amortization: a warm store must not be slower than
    # cold planning (in practice it is several times faster).
    assert result.meta["speedup"] is None or result.meta["speedup"] > 1.0
    assert result.meta["store_entries"] == cold["writes"]
