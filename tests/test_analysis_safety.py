"""The repository's central invariant: every analysis is SAFE.

If an analysis produces a WCRT bound for a task set, then no simulated
release phasing may observe a response time above that bound, and sets
admitted by the analysis must never miss a deadline in simulation.

These tests drive randomly generated segmented task sets through all
analysis methods and the discrete-event simulator under the execution
model the analyses assume (segment-level non-preemptive FP on the CPU,
priority-arbitrated DMA).
"""

from __future__ import annotations

import random

import pytest

from conftest import random_taskset
from repro.core.analysis import METHODS, analyze
from repro.hw.dma import DmaArbitration
from repro.sched.policies import CpuPolicy
from repro.sched.simulator import SimConfig, simulate


def _simulate(taskset, phases, horizon_jobs=25):
    max_period = max(t.period for t in taskset)
    shifted = taskset.with_phases(phases)
    return simulate(
        shifted,
        SimConfig(
            policy=CpuPolicy.FP_NP,
            dma_arbitration=DmaArbitration.PRIORITY,
            horizon=horizon_jobs * max_period,
        ),
    )


def _phasings(taskset, rng, count):
    yield [0 for _ in taskset]  # synchronous release
    for _ in range(count):
        yield [rng.randrange(t.period) for t in taskset]


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("seed", range(30))
def test_bounds_dominate_simulation(method, seed):
    """Simulated response times never exceed analytic bounds."""
    rng = random.Random(seed)
    taskset = random_taskset(rng, n_tasks=rng.randint(2, 4),
                             util_target=rng.choice([0.3, 0.5, 0.7]))
    result = analyze(taskset, method)
    if not result.schedulable:
        pytest.skip("analysis rejects this set; nothing to check")
    for phases in _phasings(taskset, rng, count=3):
        sim = _simulate(taskset, phases)
        assert sim.no_misses, (
            f"{method} admitted the set but phases={phases} missed deadlines"
        )
        for task in taskset:
            observed = sim.max_response(task.name)
            bound = result.wcrt[task.name]
            assert observed is not None and bound is not None
            assert observed <= bound, (
                f"{method}: task {task.name} observed {observed} > bound {bound} "
                f"with phases={phases}"
            )


@pytest.mark.parametrize("seed", range(20))
def test_rtmdm_bound_is_min_of_safe_bounds(seed):
    """The combined bound equals the per-task minimum of its components."""
    rng = random.Random(1000 + seed)
    taskset = random_taskset(rng, n_tasks=3, util_target=0.4)
    overlap = analyze(taskset, "overlap").wcrt
    holistic = analyze(taskset, "holistic").wcrt
    combined = analyze(taskset, "rtmdm").wcrt
    for name in combined:
        parts = [b for b in (overlap[name], holistic[name]) if b is not None]
        expected = min(parts) if parts else None
        assert combined[name] == expected


@pytest.mark.parametrize("seed", range(20))
def test_overlap_never_looser_than_oblivious(seed):
    """Crediting overlap can only shrink the job's own demand term."""
    rng = random.Random(2000 + seed)
    taskset = random_taskset(rng, n_tasks=3, util_target=0.4)
    oblivious = analyze(taskset, "oblivious").wcrt
    overlap = analyze(taskset, "overlap").wcrt
    for name in oblivious:
        if oblivious[name] is not None and overlap[name] is not None:
            assert overlap[name] <= oblivious[name]


def test_analysis_requires_unique_priorities():
    rng = random.Random(3)
    taskset = random_taskset(rng, n_tasks=3)
    clashed = taskset.with_priorities([0, 0, 1])
    with pytest.raises(ValueError, match="unique"):
        analyze(clashed, "rtmdm")


def test_unknown_method_rejected():
    rng = random.Random(4)
    taskset = random_taskset(rng, n_tasks=2)
    with pytest.raises(ValueError, match="unknown analysis method"):
        analyze(taskset, "magic")
