"""Benchmark for EXP-R3: crash recovery vs checkpoint interval."""

from conftest import bench_experiment


def test_r3_crash_recovery(benchmark):
    result = bench_experiment(
        benchmark, "EXP-R3", checkpoint_intervals=(2, 4, 8, 16), duration_s=8.0
    )
    # Every crashed-and-recovered run must match the uninterrupted run
    # bit-for-bit, and recovery must replay only the post-checkpoint
    # suffix — these are the acceptance gates, not just reporting.
    for interval, crashes, _, _, replayed_max, _, identical in result.rows:
        assert identical == crashes
        assert replayed_max <= interval
