"""Online admission control and mode-change runtime.

Everything else in the library is *offline*: a scenario is fixed up
front, planned once, and simulated to completion.  This package adds the
deployment-time layer on top of that stack — DNN tasks arrive, depart
and change rate at runtime, and every change is admitted only if the
whole system provably stays schedulable:

* :mod:`repro.online.events` — timestamped request traces
  (``ADMIT`` / ``REMOVE`` / ``RESCALE`` events) with JSON round-trip.
* :mod:`repro.online.admission` — per-request admission control: online
  re-segmentation through the plan cache, a fast whole-job
  non-preemptive RTA screen (:mod:`repro.sched.rta`), the full RT-MDM
  analysis, and a degradation ladder (reduced rate / smaller variant)
  before any hard rejection.
* :mod:`repro.online.modechange` — sound mode-change protocols:
  immediate switch where analysis covers the transition, otherwise
  drain-then-switch behind an idle-instant bound.
* :mod:`repro.online.sim` — a simulator variant whose tasks can stop
  releasing mid-run (departures, rescale switch-overs).
* :mod:`repro.online.runtime` — the serve loop: replay a trace, decide
  every request, then execute the whole admitted schedule on the
  simulator and check that no admitted job ever misses.  Execution can
  inject external-memory faults (:mod:`repro.robust.escalation` /
  :mod:`repro.robust.recovery`); a post-run health monitor compares
  observed fault rates against the admitted retry budget and drives
  over-budget tasks through the mode-change path.
* :mod:`repro.online.durable` — crash tolerance for the serve loop: a
  CRC-tagged write-ahead decision journal, controller checkpoint /
  restore with suffix-only replay, an ingress gate normalizing
  at-least-once delivery, and an inline runtime invariant monitor.
"""

from repro.online.admission import (
    AdmissionController,
    CheckpointError,
    Decision,
    Instance,
)
from repro.online.durable import (
    DecisionJournal,
    DurableServeResult,
    Envelope,
    IngressGate,
    InjectedCrash,
    InvariantMonitor,
    InvariantViolation,
    JournalError,
    RecoveryReport,
    StreamError,
    envelope_stream,
    recover,
    scan_journal,
    serve_durable,
    serve_trace_durable,
)
from repro.online.events import (
    Request,
    RequestKind,
    RequestTrace,
    TraceFormatError,
)
from repro.online.modechange import Protocol, drain_start, idle_instant_bound
from repro.online.runtime import OnlineRuntime, ServeReport
from repro.online.sim import DynamicSimulator

__all__ = [
    "AdmissionController",
    "CheckpointError",
    "Decision",
    "DecisionJournal",
    "DurableServeResult",
    "DynamicSimulator",
    "Envelope",
    "IngressGate",
    "InjectedCrash",
    "Instance",
    "InvariantMonitor",
    "InvariantViolation",
    "JournalError",
    "OnlineRuntime",
    "Protocol",
    "RecoveryReport",
    "Request",
    "RequestKind",
    "RequestTrace",
    "ServeReport",
    "StreamError",
    "TraceFormatError",
    "drain_start",
    "envelope_stream",
    "idle_instant_bound",
    "recover",
    "scan_journal",
    "serve_durable",
    "serve_trace_durable",
]
