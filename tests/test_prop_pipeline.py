"""Property-based tests (hypothesis) for the pipeline recurrence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import (
    isolated_latency,
    pipeline_finish_times,
    sequential_latency,
    stall_cycles,
)
from repro.sched.task import Segment

segments_strategy = st.lists(
    st.tuples(st.integers(0, 500), st.integers(1, 500)),
    min_size=1,
    max_size=12,
).map(lambda pairs: [Segment(f"s{i}", l, c) for i, (l, c) in enumerate(pairs)])

buffers_strategy = st.integers(1, 5)


@given(segments_strategy, buffers_strategy)
def test_latency_bounded_by_sequential_and_resources(segs, buffers):
    latency = isolated_latency(segs, buffers)
    total_l = sum(s.load_cycles for s in segs)
    total_c = sum(s.compute_cycles for s in segs)
    assert max(total_l, total_c) <= latency <= sequential_latency(segs)


@given(segments_strategy, buffers_strategy)
def test_more_buffers_never_hurt(segs, buffers):
    assert isolated_latency(segs, buffers + 1) <= isolated_latency(segs, buffers)


@given(segments_strategy)
def test_single_buffer_is_fully_serial(segs):
    assert isolated_latency(segs, 1) == sequential_latency(segs)


@given(segments_strategy, buffers_strategy)
def test_finish_times_are_causal(segs, buffers):
    finish = pipeline_finish_times(segs, buffers)
    prev_load = prev_comp = 0
    for (load_f, comp_f), seg in zip(finish, segs):
        assert load_f >= prev_load + seg.load_cycles
        assert comp_f >= max(prev_comp, load_f) + seg.compute_cycles - 1 + 1
        prev_load, prev_comp = load_f, comp_f


@given(segments_strategy, buffers_strategy)
def test_stall_is_nonnegative_and_bounded_by_loads(segs, buffers):
    stall = stall_cycles(segs, buffers)
    assert 0 <= stall <= sum(s.load_cycles for s in segs)


@given(segments_strategy, buffers_strategy, st.integers(1, 400))
def test_scaling_all_durations_scales_latency(segs, buffers, factor):
    scaled = [
        Segment(s.name, s.load_cycles * factor, s.compute_cycles * factor)
        for s in segs
    ]
    assert isolated_latency(scaled, buffers) == factor * isolated_latency(segs, buffers)


@given(segments_strategy, buffers_strategy)
@settings(max_examples=50)
def test_full_buffering_matches_infinite(segs, buffers):
    """Buffer depth >= segment count behaves like unlimited buffers."""
    m = len(segs)
    assert isolated_latency(segs, m) == isolated_latency(segs, m + 3)
