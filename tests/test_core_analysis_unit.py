"""Hand-computed unit tests for the schedulability analyses.

The adversarial/property suites check safety against the simulator; this
file pins exact bound values on small examples so refactors that change
the math are caught immediately.
"""


from conftest import make_task
from repro.core.analysis import AnalysisResult, analyze
from repro.sched.task import TaskSet


class TestSingleTask:
    def test_pure_compute(self):
        ts = TaskSet.of([make_task("t", [(0, 100)], period=1000)])
        for method in ("oblivious", "overlap", "holistic", "rtmdm"):
            result = analyze(ts, method)
            assert result.wcrt["t"] == 100, method

    def test_oblivious_counts_serialized_work(self):
        ts = TaskSet.of([make_task("t", [(50, 100), (60, 110)], period=1000)])
        assert analyze(ts, "oblivious").wcrt["t"] == 320

    def test_overlap_counts_pipelined_latency(self):
        # b=2: L1(50), C1 from 50..150; L2(60) from 50..110 -> C2 150..260.
        ts = TaskSet.of([make_task("t", [(50, 100), (60, 110)], period=1000)])
        assert analyze(ts, "overlap").wcrt["t"] == 260

    def test_holistic_stage_sum_for_fully_buffered(self):
        # buffers=2 covers both segments: RL = 110, RC = 210 -> 320?  No:
        # stage-sum = total loads + total computes when alone.
        ts = TaskSet.of(
            [make_task("t", [(50, 100), (60, 110)], period=1000, buffers=2)]
        )
        assert analyze(ts, "holistic").wcrt["t"] == 110 + 210

    def test_rtmdm_takes_minimum(self):
        ts = TaskSet.of([make_task("t", [(50, 100), (60, 110)], period=1000)])
        assert analyze(ts, "rtmdm").wcrt["t"] == 260


class TestTwoTasks:
    def _ts(self):
        hi = make_task("hi", [(0, 100)], period=1000, priority=0)
        lo = make_task("lo", [(0, 200)], period=2000, priority=1)
        return TaskSet.of([hi, lo])

    def test_blocking_for_highest(self):
        # hi: own 100 + one lo section 200 (single segment -> n_seg=1).
        result = analyze(self._ts(), "overlap")
        assert result.wcrt["hi"] == 300

    def test_interference_for_lowest(self):
        # lo: own 200 + ceil((R + J_hi)/1000) * 100 with J_hi = 300 - 100.
        result = analyze(self._ts(), "overlap")
        # R = 200 + ceil((R + 200)/1000)*100 -> R = 300 (ceil(500/1000)=1).
        assert result.wcrt["lo"] == 300

    def test_multi_segment_blocking_scales(self):
        hi = make_task("hi", [(10, 50), (10, 50)], period=5000, priority=0)
        lo = make_task("lo", [(0, 300)], period=5000, priority=1)
        result = analyze(TaskSet.of([hi, lo]), "oblivious")
        # blocking = n_seg(2) * 300 + n_load(2) * 0 = 600; own = 120.
        assert result.wcrt["hi"] == 720

    def test_dma_blocking_counted(self):
        hi = make_task("hi", [(100, 50)], period=5000, priority=0)
        lo = make_task("lo", [(400, 50)], period=5000, priority=1)
        result = analyze(TaskSet.of([hi, lo]), "oblivious")
        # own 150 + cpu blocking 50 + dma blocking 400 = 600.
        assert result.wcrt["hi"] == 600

    def test_unschedulable_returns_none_and_cascades(self):
        hi = make_task("hi", [(0, 900)], period=1000, priority=0)
        lo = make_task("lo", [(0, 500)], period=1000, priority=1)
        result = analyze(TaskSet.of([hi, lo]), "overlap")
        # hi fits (900 + 500 blocking > 1000 -> None), lo cascades.
        assert result.wcrt["hi"] is None
        assert result.wcrt["lo"] is None
        assert not result.schedulable


class TestAnalysisResult:
    def test_margin(self):
        ts = TaskSet.of([make_task("t", [(0, 100)], period=1000)])
        result = analyze(ts, "rtmdm")
        assert result.margin("t") == 900

    def test_margin_none_when_unbounded(self):
        hi = make_task("hi", [(0, 900)], period=1000, priority=0)
        lo = make_task("lo", [(0, 500)], period=1000, priority=1)
        result = analyze(TaskSet.of([hi, lo]), "overlap")
        assert result.margin("hi") is None

    def test_schedulable_requires_all_tasks(self):
        result = AnalysisResult(
            method="x", wcrt={"a": 10, "b": None}, deadlines={"a": 20, "b": 20}
        )
        assert not result.schedulable
