"""Tests for ASCII sweep plots and the inspect CLI command."""


from repro.cli import main
from repro.eval.plots import ascii_plot
from repro.eval.reporting import ExperimentResult


def _sweep():
    return ExperimentResult(
        exp_id="EXP-X",
        title="demo sweep",
        columns=("util", "a", "b"),
        rows=((0.2, 0.9, 0.1), (0.4, 0.6, 0.3), (0.6, 0.3, 0.6), (0.8, 0.0, 1.0)),
    )


class TestAsciiPlot:
    def test_renders_series_and_axes(self):
        chart = ascii_plot(_sweep())
        assert "EXP-X" in chart
        assert "o=a" in chart and "x=b" in chart
        assert "x: util" in chart
        assert "0.2" in chart and "0.8" in chart

    def test_extremes_labelled(self):
        chart = ascii_plot(_sweep())
        assert "1.000" in chart  # max
        assert "0" in chart  # min

    def test_series_subset(self):
        chart = ascii_plot(_sweep(), series=["b"])
        assert "o=b" in chart and "=a" not in chart

    def test_handles_none_cells(self):
        result = ExperimentResult(
            "E", "t", ("x", "y"), ((1, 0.5), (2, None), (3, 0.9))
        )
        chart = ascii_plot(result)
        assert "o=y" in chart

    def test_degenerate_inputs(self):
        single = ExperimentResult("E", "t", ("x", "y"), ((1, 0.5),))
        assert ascii_plot(single) == "(nothing to plot)"
        empty = ExperimentResult("E", "t", ("x", "y"), ((1, None), (2, None)))
        assert ascii_plot(empty) == "(nothing to plot)"

    def test_constant_series_does_not_divide_by_zero(self):
        flat = ExperimentResult(
            "E", "t", ("x", "y"), ((1, 0.5), (2, 0.5), (3, 0.5))
        )
        assert "o=y" in ascii_plot(flat)


class TestInspectCommand:
    def test_inspect_model(self, capsys):
        assert main(["inspect", "ds-cnn"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out and "MMACs" in out
        assert "segmentation within" in out

    def test_inspect_with_budget(self, capsys):
        assert main(["inspect", "autoencoder", "--budget", "64"]) == 0
        out = capsys.readouterr().out
        assert "within 64 KiB" in out

    def test_inspect_infeasible_budget(self, capsys):
        assert main(["inspect", "mobilenet-v1-0.5", "--budget", "8"]) == 1
        assert "INFEASIBLE" in capsys.readouterr().out

    def test_exp_plot_flag(self, capsys):
        assert main(["exp", "EXP-F9", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "x: segments" in out
