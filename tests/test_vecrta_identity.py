"""Identity harness: vectorized engine on vs ``REPRO_VEC_RTA=0``.

End-to-end guarantee behind the kill switch: every user-visible result
— sweep rows, admission verdicts, analysis bounds — is bit-identical
whether the struct-of-arrays engine or the scalar oracle produced it,
and the telemetry counters prove which one actually ran.
"""

import random

import pytest

from repro.core import segcache
from repro.eval.experiments import run_experiment
from repro.eval.systems import SYSTEMS, admit, admit_batch
from repro.hw.presets import get_platform
from repro.sched import rta, vecrta
from repro.workload.taskset import generate_case


def _clear_analysis_memo():
    # cached_analyze would otherwise serve the second run from memo,
    # hiding which engine computed the verdicts.
    segcache.CACHES["analysis"].clear()


def _f4_rows(monkeypatch, value):
    monkeypatch.setenv(vecrta.ENV_VAR, value)
    _clear_analysis_memo()
    result = run_experiment("EXP-F4", n_sets=6, utils=(0.4, 0.7), jobs=1)
    return result.rows


def test_f4_rows_identical_under_kill_switch(monkeypatch):
    vec_rows = _f4_rows(monkeypatch, "1")
    scalar_rows = _f4_rows(monkeypatch, "0")
    assert vec_rows == scalar_rows


def test_vector_engine_engages_and_never_stands_down(monkeypatch):
    monkeypatch.setenv(vecrta.ENV_VAR, "1")
    _clear_analysis_memo()
    before = rta.fixpoint_snapshot()
    run_experiment("EXP-F4", n_sets=4, utils=(0.5,), jobs=1)
    delta = dict(zip(rta._FIXPOINT_KEYS, rta.fixpoint_delta_since(before)))
    assert delta["vec_batches"] > 0
    assert delta["vec_rows"] > 0
    assert delta["vec_stand_downs"] == 0


def test_kill_switch_leaves_vector_telemetry_untouched(monkeypatch):
    monkeypatch.setenv(vecrta.ENV_VAR, "0")
    assert not vecrta.enabled()
    _clear_analysis_memo()
    before = rta.fixpoint_snapshot()
    run_experiment("EXP-F4", n_sets=2, utils=(0.5,), jobs=1)
    delta = dict(zip(rta._FIXPOINT_KEYS, rta.fixpoint_delta_since(before)))
    assert delta["vec_batches"] == 0
    assert delta["vec_rows"] == 0
    assert delta["vec_stand_downs"] == 0


@pytest.mark.parametrize("util", [0.35, 0.65])
def test_admit_batch_matches_scalar_admit(util):
    rng = random.Random(7001 + int(util * 100))
    platform = get_platform("f746-qspi")
    cases = [generate_case(platform, util, rng) for _ in range(6)]
    expected = [
        tuple(admit(system, case) for system in SYSTEMS) for case in cases
    ]
    got = admit_batch(cases, SYSTEMS)
    assert got == expected
