"""Benchmark for EXP-F10: DMA arbitration policy ablation."""

from conftest import bench_experiment


def test_f10_dma_policy(benchmark):
    bench_experiment(benchmark, "EXP-F10", n_sets=5)
