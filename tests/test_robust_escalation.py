"""Unit tests for the persistent-fault escalation layer
(repro.robust.escalation): fault models, the per-transfer handler state
machine, fault-event JSON, and the simulator's quarantine default."""

import json

import pytest

from repro.robust.escalation import (
    BadRegion,
    BusDegradation,
    EscalationConfig,
    FaultEvent,
    FaultKind,
    TransferFaultHandler,
    bad_region_span,
    fault_events_from_json,
    fault_events_to_json,
    fault_overhead_cycles,
    flash_footprint,
    flash_layout,
)
from repro.sched.policies import CpuPolicy
from repro.sched.simulator import SimConfig, simulate
from repro.sched.task import PeriodicTask, Segment, TaskSet


def _task(name, pairs, period, priority=0, buffers=2, deadline=None):
    return PeriodicTask(
        name,
        tuple(Segment(f"{name}{i}", l, c) for i, (l, c) in enumerate(pairs)),
        period=period,
        deadline=deadline or period,
        priority=priority,
        buffers=buffers,
    )


def _taskset():
    return TaskSet.of([
        _task("a", [(100, 200), (150, 100)], 2000, 0),
        _task("b", [(0, 300), (80, 120)], 3000, 1),
    ])


# ----------------------------------------------------------------------
# Config validation and null detection
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kwargs", [
    {"lockup_prob": -0.1},
    {"lockup_prob": 1.5, "watchdog_cycles": 10},
    {"crc_fault_prob": 2.0},
    {"max_retries": -1},
    {"backoff_slot_cycles": -1},
    {"crc_overhead_cycles": -1},
    {"watchdog_cycles": -1},
    {"lockup_prob": 0.1},  # lockup requires a watchdog
    {"max_faults_per_job": -1},
])
def test_escalation_config_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        EscalationConfig(**kwargs)


@pytest.mark.parametrize("cfg,null", [
    (EscalationConfig(), True),
    (EscalationConfig(max_retries=0, backoff_slot_cycles=50), True),
    (EscalationConfig(bad_regions=(BadRegion(0, 10),)), False),
    (EscalationConfig(bus_degradation=BusDegradation(0, 1.5)), False),
    (EscalationConfig(bus_degradation=BusDegradation(0, 1.0)), True),
    (EscalationConfig(crc_fault_prob=0.1), False),
    (EscalationConfig(lockup_prob=0.1, watchdog_cycles=100), False),
])
def test_escalation_is_null(cfg, null):
    assert cfg.is_null is null


def test_bad_region_overlap_semantics():
    region = BadRegion(100, 200)
    assert region.overlaps(150, 160)
    assert region.overlaps(50, 101)
    assert region.overlaps(199, 300)
    assert not region.overlaps(200, 300)  # half-open
    assert not region.overlaps(0, 100)
    assert not region.overlaps(150, 150)  # empty span never overlaps
    with pytest.raises(ValueError):
        BadRegion(10, 5)


def test_bus_degradation_applies_after_onset():
    deg = BusDegradation(start_cycle=1000, factor=2.0)
    assert deg.attempt_cycles(999, 100) == 100
    assert deg.attempt_cycles(1000, 100) == 200
    assert not deg.is_null
    assert BusDegradation(0, 1.0).is_null
    with pytest.raises(ValueError):
        BusDegradation(0, 0.5)  # degradation never speeds reads up


# ----------------------------------------------------------------------
# Flash layout
# ----------------------------------------------------------------------
def test_flash_layout_is_contiguous_and_ordered():
    ts = _taskset()
    layout = flash_layout(ts)
    spans = [layout[(t.name, i)] for t in ts for i in range(len(t.segments))]
    # Packed in task-name order, no gaps, no overlaps.
    cursor = 0
    for start, end in sorted(spans):
        assert start == cursor
        assert end >= start
        cursor = end
    assert cursor == flash_footprint(ts)


def test_bad_region_span_is_fractional():
    ts = _taskset()
    total = flash_footprint(ts)
    region = bad_region_span(ts, 0.25, 0.5)
    assert region.start == int(total * 0.25)
    assert region.end == int(total * 0.5)
    with pytest.raises(ValueError):
        bad_region_span(ts, 0.5, 0.25)


# ----------------------------------------------------------------------
# Handler state machine
# ----------------------------------------------------------------------
def test_clean_transfer_costs_nominal():
    handler = TransferFaultHandler(EscalationConfig())
    outcome = handler.resolve(0, "a", 0, 0, nominal=500)
    assert outcome.ok
    assert outcome.cycles == 500
    assert outcome.retries == 0


def test_bad_region_fails_deterministically():
    ts = _taskset()
    cfg = EscalationConfig(
        bad_regions=(bad_region_span(ts, 0.0, 1.0),),
        max_retries=2,
        backoff_slot_cycles=10,
        crc_overhead_cycles=5,
    )
    handler = TransferFaultHandler(cfg, flash_layout(ts))
    outcome = handler.resolve(0, "a", 0, 0, nominal=100)
    assert not outcome.ok
    assert outcome.kind is FaultKind.BAD_REGION
    assert outcome.retries == 2
    # 3 attempts with CRC overhead each + backoff slots 10 and 20.
    assert outcome.cycles == 3 * (100 + 5) + 10 + 20
    # Identical draws → identical outcome: the bad region is persistent.
    assert handler.resolve(0, "a", 1, 0, nominal=100) == outcome


def test_mirror_source_avoids_bad_region_unless_mirror_bad():
    ts = _taskset()
    region = bad_region_span(ts, 0.0, 1.0)
    layout = flash_layout(ts)
    clean = TransferFaultHandler(
        EscalationConfig(bad_regions=(region,)), layout
    )
    assert clean.resolve(0, "a", 0, 0, 100, source="mirror").ok
    mirrored = TransferFaultHandler(
        EscalationConfig(bad_regions=(region,), mirror_bad=True), layout
    )
    assert not mirrored.resolve(0, "a", 0, 0, 100, source="mirror").ok


def test_region_immune_task_skips_persistent_faults():
    ts = _taskset()
    cfg = EscalationConfig(bad_regions=(bad_region_span(ts, 0.0, 1.0),))
    handler = TransferFaultHandler(cfg, flash_layout(ts))
    assert handler.resolve(0, "a", 0, 0, 100, region_immune=True).ok
    assert not handler.resolve(0, "a", 0, 0, 100).ok


def test_watchdog_bounds_lockup_cost():
    cfg = EscalationConfig(
        lockup_prob=1.0, watchdog_cycles=400, max_retries=1, seed=5
    )
    handler = TransferFaultHandler(cfg)
    outcome = handler.resolve(0, "a", 0, 0, nominal=10_000)
    assert not outcome.ok
    assert outcome.kind is FaultKind.WATCHDOG
    # Both attempts lock up: charged the watchdog timeout, not the
    # (much larger) transfer length.
    assert outcome.cycles == 2 * 400


def test_max_faults_per_job_caps_transients():
    cfg = EscalationConfig(
        crc_fault_prob=1.0, max_retries=0, max_faults_per_job=1, seed=1
    )
    handler = TransferFaultHandler(cfg)
    first = handler.resolve(0, "a", 0, 0, 100)
    assert not first.ok  # the one allowed transient fault
    second = handler.resolve(0, "a", 0, 1, 100)
    assert second.ok  # cap reached: same job cannot fault again
    other_job = handler.resolve(0, "a", 1, 0, 100)
    assert not other_job.ok  # fresh job, fresh budget


def test_handler_sequences_are_seed_deterministic():
    cfg = EscalationConfig(
        crc_fault_prob=0.4, max_retries=2, backoff_slot_cycles=7,
        crc_overhead_cycles=3, seed=99,
    )
    a, b = TransferFaultHandler(cfg), TransferFaultHandler(cfg)
    for job in range(40):
        assert a.resolve(0, "x", job, 0, 250) == b.resolve(0, "x", job, 0, 250)
    assert (a.transfers, a.retries, a.faults) == (b.transfers, b.retries, b.faults)


def test_fault_overhead_upper_bounds_observed_attempt_cost():
    """The analysis cost bound dominates any single attempt the handler
    can charge (the per-fault inflation soundness argument)."""
    ts = _taskset()
    cfg = EscalationConfig(
        bad_regions=(bad_region_span(ts, 0.0, 1.0),),
        bus_degradation=BusDegradation(0, 1.5),
        crc_fault_prob=1.0,
        max_retries=3,
        backoff_slot_cycles=20,
        crc_overhead_cycles=9,
        seed=2,
    )
    bound = fault_overhead_cycles(ts, cfg)
    handler = TransferFaultHandler(cfg, flash_layout(ts))
    worst_load = max(s.load_cycles for t in ts for s in t.segments)
    outcome = handler.resolve(0, "a", 0, 0, worst_load)
    # Total cost of the whole retry loop <= (retries + 1) * per-fault bound.
    assert outcome.cycles <= (outcome.retries + 1) * bound


# ----------------------------------------------------------------------
# FaultEvent JSON
# ----------------------------------------------------------------------
def test_fault_event_round_trip():
    event = FaultEvent(
        time=1234, task="cam", job=3, segment=1,
        kind=FaultKind.BAD_REGION, attempts=4, lost_cycles=777,
    )
    assert FaultEvent.from_dict(event.to_dict()) == event


def test_fault_events_json_round_trip_and_schema():
    events = [
        FaultEvent(10, "a", 0, 0, FaultKind.RETRY_EXHAUSTED, 4, 100),
        FaultEvent(20, "b", 1, 2, FaultKind.WATCHDOG, 2, 800),
    ]
    text = fault_events_to_json(events)
    payload = json.loads(text)
    assert payload["schema"] == "rtmdm-faults/1"
    assert fault_events_from_json(text) == events


def test_fault_events_from_json_rejects_wrong_schema():
    with pytest.raises(ValueError):
        fault_events_from_json(json.dumps({"schema": "bogus/9", "events": []}))


def test_simulator_fault_events_are_time_ordered_and_serializable():
    ts = _taskset()
    cfg = SimConfig(
        policy=CpuPolicy.FP_NP,
        horizon=30_000,
        escalation=EscalationConfig(
            crc_fault_prob=0.5, max_retries=1, crc_overhead_cycles=5, seed=3
        ),
    )
    result = simulate(ts, cfg)
    assert result.fault_events  # p=0.5^2 per transfer: some must exhaust
    times = [e.time for e in result.fault_events]
    assert times == sorted(times)
    round_tripped = fault_events_from_json(
        fault_events_to_json(result.fault_events)
    )
    assert round_tripped == list(result.fault_events)


# ----------------------------------------------------------------------
# Simulator integration: quarantine default (no recovery configured)
# ----------------------------------------------------------------------
def test_terminal_fault_without_recovery_quarantines():
    ts = _taskset()
    result = simulate(
        ts,
        SimConfig(
            policy=CpuPolicy.FP_NP,
            horizon=20_000,
            escalation=EscalationConfig(
                bad_regions=(bad_region_span(ts, 0.0, 1.0),), max_retries=1
            ),
            record_trace=True,
        ),
    )
    # Both tasks read the all-bad flash; both deterministically quarantine.
    assert result.quarantined == ("a", "b")
    assert all(s.responses == [] for s in result.stats.values())
    assert all(s.quarantined_releases > 0 for s in result.stats.values())
    assert result.trace.points("quarantine")
    assert result.trace.points("fault")


def test_null_escalation_is_bit_identical_to_nominal():
    ts = _taskset()
    nominal = simulate(ts, SimConfig(policy=CpuPolicy.FP_NP, horizon=30_000))
    nulled = simulate(
        ts,
        SimConfig(
            policy=CpuPolicy.FP_NP, horizon=30_000,
            escalation=EscalationConfig(),
        ),
    )
    assert nulled.stats == nominal.stats
    assert (nulled.cpu_busy, nulled.dma_busy, nulled.end_time) == (
        nominal.cpu_busy, nominal.dma_busy, nominal.end_time
    )
    assert nulled.fault_events == []
    assert nulled.quarantined == ()
