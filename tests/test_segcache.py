"""Plan-cache unit tests: keying, canonicalization, eviction, counters.

The cache (:mod:`repro.core.segcache`) is only sound if (a) every input
that can change a planning result is part of the key, (b) inputs that
*cannot* change the result (a platform differing only in SRAM size, an
over-large budget) collapse onto one entry, and (c) quantization of the
continuous knobs is applied identically whether the cache is enabled,
cold, or warm.  These tests pin each property.
"""

from __future__ import annotations

import pytest

from repro.core import segcache
from repro.core.segcache import (
    PlanCache,
    cached_analyze,
    cached_build_model,
    cached_refine_model,
    cached_search_segmentation,
    planner_platform_fingerprint,
    pow2_floor,
    quarter_pow2_floor,
)
from repro.core.segmentation import SegmentationError, search_segmentation
from repro.dnn.models import refine_model
from repro.dnn.quantization import FLOAT32, INT8
from repro.dnn.zoo import build_model
from repro.hw.presets import get_platform

from conftest import random_taskset
import random


@pytest.fixture(autouse=True)
def fresh_caches():
    """Each test starts cold and enabled, and leaves no state behind."""
    segcache.set_enabled(True)
    segcache.clear_all()
    yield
    segcache.set_enabled(True)
    segcache.clear_all()


@pytest.fixture
def model():
    return build_model("mobilenet-v1-0.25")


@pytest.fixture
def platform():
    return get_platform("f746-qspi")


# ----------------------------------------------------------------------
# Quantization ladders
# ----------------------------------------------------------------------


def test_pow2_floor_ladder():
    assert pow2_floor(1) == 1
    assert pow2_floor(2) == 2
    assert pow2_floor(3) == 2
    assert pow2_floor(4096) == 4096
    assert pow2_floor(8191) == 4096
    for v in range(1, 5000, 37):
        q = pow2_floor(v)
        assert q <= v < 2 * q  # floor, never losing more than half


def test_quarter_pow2_floor_ladder():
    # {1, 1.25, 1.5, 1.75} x 2^p: floor loses strictly less than 20%.
    for v in range(4, 200_000, 517):
        q = quarter_pow2_floor(v)
        assert q <= v
        assert q > 0.8 * v
        # q really is on the quarter ladder: base*(4+k)/4 for k in 0..3
        base = pow2_floor(q)
        assert (q - base) % (base // 4 or 1) == 0
    # tiny values pass through unchanged
    for v in (0, 1, 2, 3):
        assert quarter_pow2_floor(v) == v


def test_quarter_ladder_is_monotone():
    prev = 0
    for v in range(4, 10_000):
        q = quarter_pow2_floor(v)
        assert q >= prev
        prev = q


# ----------------------------------------------------------------------
# PlanCache mechanics
# ----------------------------------------------------------------------


def test_plancache_bounded_lru_eviction():
    cache = PlanCache("t", maxsize=4)
    for i in range(10):
        cache.put(i, i * i)
    assert len(cache) == 4
    # Oldest entries are gone, newest survive.
    assert cache.get(5)[0] is False
    assert cache.get(9) == (True, 81)
    # A get refreshes recency: 6 survives the next insertion, 7 does not.
    cache.get(6)
    cache.put(100, 0)
    assert cache.get(6)[0] is True
    assert cache.get(7)[0] is False


def test_plancache_counters_accurate():
    cache = PlanCache("t", maxsize=64)
    for i in range(8):
        cache.put(i, i)
    hits = misses = 0
    for i in range(12):  # 8 hits, 4 misses
        found, _ = cache.get(i)
        hits += bool(found)
        misses += not found
    assert (cache.hits, cache.misses) == (hits, misses) == (8, 4)


def test_delta_and_absorb_roundtrip(model, platform):
    before = segcache.snapshot()
    cached_search_segmentation(model, platform, platform.usable_sram_bytes, INT8)
    delta = segcache.delta_since(before)
    assert delta["search"] == (0, 1)
    # Absorbing a worker's delta shifts the global counters by exactly it.
    segcache.absorb(delta)
    after = segcache.delta_since(before)
    assert after["search"] == (0, 2)
    merged = segcache.merge_deltas([delta, delta])
    assert merged["search"] == (0, 2)


def test_cache_note_formats_rates():
    note = segcache.cache_note({"refine": (3, 1), "search": (5, 1), "analysis": (0, 2)})
    assert "segmentation 8/10 hits (80.0%)" in note
    assert "analysis 0/2 hits (0.0%)" in note
    segcache.set_enabled(False)
    assert segcache.cache_note({}) == "plan cache: disabled"


# ----------------------------------------------------------------------
# Segmentation-search keying
# ----------------------------------------------------------------------


def _search_counts():
    c = segcache.CACHES["search"]
    return c.hits, c.misses


def test_search_repeat_is_hit(model, platform):
    budget = platform.usable_sram_bytes
    first = cached_search_segmentation(model, platform, budget, INT8)
    second = cached_search_segmentation(model, platform, budget, INT8)
    assert _search_counts() == (1, 1)
    assert first.boundaries == second.boundaries


def test_search_key_includes_sram_budget(model, platform):
    budget = platform.usable_sram_bytes
    cached_search_segmentation(model, platform, budget, INT8)
    # 3/4 the budget lands on a different slot-quantum: a distinct plan.
    cached_search_segmentation(model, platform, budget * 3 // 4, INT8)
    assert _search_counts() == (0, 2)


def test_search_key_includes_quant(model, platform):
    budget = platform.usable_sram_bytes
    cached_search_segmentation(model, platform, budget, INT8)
    with pytest.raises(SegmentationError):
        # float32 weights do not fit — and must not reuse the int8 entry
        cached_search_segmentation(model, platform, budget, FLOAT32)
    hits, misses = _search_counts()
    assert hits == 0 and misses == 2


def test_search_key_includes_platform_timing(model):
    p1 = get_platform("f746-qspi")
    p2 = get_platform("h743-octal")
    budget = min(p1.usable_sram_bytes, p2.usable_sram_bytes)
    cached_search_segmentation(model, p1, budget, INT8)
    cached_search_segmentation(model, p2, budget, INT8)
    assert _search_counts() == (0, 2)


def test_search_key_includes_buffers(model, platform):
    budget = platform.usable_sram_bytes
    cached_search_segmentation(model, platform, budget, INT8, buffers=2)
    cached_search_segmentation(model, platform, budget, INT8, buffers=3)
    assert _search_counts() == (0, 2)


def test_sram_only_platform_change_is_a_hit(model, platform):
    """The planner never reads ``platform.sram``: SRAM sweeps share entries."""
    other = platform.with_sram_bytes(platform.mcu.sram_bytes * 2)
    assert planner_platform_fingerprint(platform) == planner_platform_fingerprint(other)
    budget = platform.usable_sram_bytes
    first = cached_search_segmentation(model, platform, budget, INT8)
    second = cached_search_segmentation(model, other, budget, INT8)
    assert _search_counts() == (1, 1)
    assert second.boundaries == first.boundaries
    # The re-materialized plan carries the *caller's* platform object.
    assert second.platform is other


def test_negative_result_is_cached(model, platform):
    tiny = 4096  # far below the largest single layer
    with pytest.raises(SegmentationError):
        cached_search_segmentation(model, platform, tiny, INT8)
    with pytest.raises(SegmentationError) as excinfo:
        cached_search_segmentation(model, platform, tiny, INT8)
    assert _search_counts() == (1, 1)
    assert "cannot fit" in str(excinfo.value)


def test_saturated_budgets_share_one_entry(model, platform):
    """Any budget >= total weights admits every partition: one entry."""
    total_w = sum(layer.param_bytes(INT8) for layer in model.layers)
    act = model.peak_activation_bytes(INT8)
    big = total_w * 2 + act
    bigger = total_w * 16 + act
    a = cached_search_segmentation(model, platform, big, INT8)
    b = cached_search_segmentation(model, platform, bigger, INT8)
    assert _search_counts() == (1, 1)
    assert a.boundaries == b.boundaries


def test_search_matches_uncached_at_quantized_budget(model, platform):
    """Hits reproduce exactly what the raw planner returns for the
    canonicalized budget — the substitution the sweeps rely on."""
    budget = platform.usable_sram_bytes
    via_cache = cached_search_segmentation(model, platform, budget, INT8)
    act = model.peak_activation_bytes(INT8)
    max_w = max(layer.param_bytes(INT8) for layer in model.layers)
    slot_q = max(quarter_pow2_floor((budget - act) // 2), max_w)
    raw = search_segmentation(model, platform, slot_q * 2 + act, quant=INT8)
    assert via_cache.boundaries == raw.boundaries


def test_disabled_cache_same_results(model, platform):
    budget = platform.usable_sram_bytes
    enabled = cached_search_segmentation(model, platform, budget, INT8)
    segcache.set_enabled(False)
    disabled = cached_search_segmentation(model, platform, budget, INT8)
    assert enabled.boundaries == disabled.boundaries
    # Counters untouched while disabled.
    assert _search_counts() == (0, 1)


# ----------------------------------------------------------------------
# Refinement and analysis caches
# ----------------------------------------------------------------------


def test_refine_matches_uncached_at_quantized_knobs(model):
    chunk, macs = 23_456, 111_111
    cached = cached_refine_model(model, INT8, chunk, macs)
    raw = refine_model(model, INT8, pow2_floor(chunk), pow2_floor(macs))
    assert [l.name for l in cached.layers] == [l.name for l in raw.layers]
    assert [l.param_bytes(INT8) for l in cached.layers] == [
        l.param_bytes(INT8) for l in raw.layers
    ]


def test_refine_equivalent_knobs_share_entry(model):
    """Chunk sizes inducing the same per-layer split counts share a key."""
    a = cached_refine_model(model, INT8, 1 << 15)
    b = cached_refine_model(model, INT8, 1 << 15)
    assert a is b  # identical object straight from the cache
    assert segcache.CACHES["refine"].hits == 1


def test_zoo_cache_returns_same_object():
    a = cached_build_model("resnet8")
    b = cached_build_model("resnet8")
    assert a is b
    assert segcache.CACHES["zoo"].hits == 1


def test_analysis_cache_keys_on_taskset_and_method():
    ts = random_taskset(random.Random(7), n_tasks=3)
    r1 = cached_analyze(ts, "rtmdm")
    r2 = cached_analyze(ts, "rtmdm")
    assert r2 is r1
    c = segcache.CACHES["analysis"]
    assert (c.hits, c.misses) == (1, 1)
    cached_analyze(ts, "oblivious")
    assert (c.hits, c.misses) == (1, 2)
    # A structurally different set misses.
    cached_analyze(random_taskset(random.Random(8), n_tasks=3), "rtmdm")
    assert (c.hits, c.misses) == (1, 3)


def test_configure_resizes_and_disables(model, platform):
    segcache.configure(maxsize=2)
    for div in (1, 2, 3, 4, 5):
        try:
            cached_search_segmentation(
                model, platform, platform.usable_sram_bytes // div, INT8
            )
        except SegmentationError:
            pass
    assert len(segcache.CACHES["search"]) <= 2
    segcache.configure(enabled=False)
    assert not segcache.is_enabled()
