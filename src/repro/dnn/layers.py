"""Layer algebra: exact MAC, parameter and activation arithmetic.

Every layer knows its input/output shape and derives:

* ``macs`` — multiply-accumulate count of one inference;
* ``param_count`` / ``bias_count`` — values to stage from external memory;
* ``input_elements`` / ``output_elements`` — activation footprints.

Shapes are ``(height, width, channels)`` tuples for spatial layers and
``(features,)`` for vectors.  Kernels, strides and pool windows accept an
``int`` (square) or an ``(h, w)`` tuple (rectangular, e.g. DS-CNN's 10x4
first convolution).  All arithmetic follows the standard TFLite/CMSIS-NN
conventions ("same"/"valid" padding, NHWC).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple, Union

Shape = Tuple[int, ...]
Size2D = Union[int, Tuple[int, int]]


def _pair(value: Size2D, what: str) -> Tuple[int, int]:
    """Normalize an int-or-tuple 2-D size to an ``(h, w)`` tuple."""
    if isinstance(value, int):
        pair = (value, value)
    else:
        pair = tuple(value)  # type: ignore[assignment]
    if len(pair) != 2 or any(not isinstance(v, int) or v <= 0 for v in pair):
        raise ValueError(f"{what} must be a positive int or (h, w) pair, got {value!r}")
    return pair  # type: ignore[return-value]


def _check_shape(shape: Shape, what: str) -> None:
    if not shape or any(d <= 0 for d in shape):
        raise ValueError(f"{what} must have positive dimensions, got {shape}")


def _window_out_hw(
    h: int, w: int, kernel: Tuple[int, int], stride: Tuple[int, int], padding: str
) -> Tuple[int, int]:
    """Output spatial size of a convolution/pool window."""
    kh, kw = kernel
    sh, sw = stride
    if padding == "same":
        return math.ceil(h / sh), math.ceil(w / sw)
    if padding == "valid":
        if kh > h or kw > w:
            raise ValueError(f"kernel {kernel} larger than input {h}x{w} with valid padding")
        return (h - kh) // sh + 1, (w - kw) // sw + 1
    raise ValueError(f"padding must be 'same' or 'valid', got {padding!r}")


@dataclass(frozen=True)
class Layer:
    """Base class for all layers.

    Subclasses must set ``kind`` and compute ``output_shape``, ``macs``,
    ``param_count`` and ``bias_count`` in ``__post_init__`` via
    ``object.__setattr__`` (the dataclasses are frozen).
    """

    name: str
    input_shape: Shape
    # Derived fields -- populated by subclasses.
    output_shape: Shape = field(default=(), init=False)
    macs: int = field(default=0, init=False)
    param_count: int = field(default=0, init=False)
    bias_count: int = field(default=0, init=False)
    #: Extra activation values live during this layer beyond input+output
    #: (used by partial layers accumulating into a full output buffer).
    extra_live_elements: int = field(default=0, init=False)

    kind: str = "abstract"

    def __post_init__(self) -> None:
        object.__setattr__(self, "input_shape", tuple(self.input_shape))
        _check_shape(self.input_shape, f"{self.name} input_shape")

    # -- activation footprints -----------------------------------------
    @property
    def input_elements(self) -> int:
        """Number of input activation values."""
        return math.prod(self.input_shape)

    @property
    def output_elements(self) -> int:
        """Number of output activation values."""
        return math.prod(self.output_shape)

    def param_bytes(self, quant) -> int:
        """Bytes of weights + biases to stage for this layer."""
        return quant.weight_nbytes(self.param_count) + quant.bias_nbytes(self.bias_count)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.kind}({self.name}: {self.input_shape}->{self.output_shape}, "
            f"macs={self.macs}, params={self.param_count})"
        )


@dataclass(frozen=True)
class Conv2D(Layer):
    """Standard 2-D convolution (NHWC).

    ``macs = out_h * out_w * out_ch * kh * kw * in_ch``
    ``params = kh * kw * in_ch * out_ch`` (+ ``out_ch`` biases).
    """

    out_channels: int = 0
    kernel: Size2D = 3
    stride: Size2D = 1
    padding: str = "same"
    kind: str = "conv2d"

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.input_shape) != 3:
            raise ValueError(f"Conv2D needs (h, w, c) input, got {self.input_shape}")
        if self.out_channels <= 0:
            raise ValueError(f"out_channels must be positive, got {self.out_channels}")
        kh, kw = _pair(self.kernel, f"{self.name} kernel")
        sh, sw = _pair(self.stride, f"{self.name} stride")
        h, w, in_ch = self.input_shape
        out_h, out_w = _window_out_hw(h, w, (kh, kw), (sh, sw), self.padding)
        object.__setattr__(self, "output_shape", (out_h, out_w, self.out_channels))
        object.__setattr__(self, "macs", out_h * out_w * self.out_channels * kh * kw * in_ch)
        object.__setattr__(self, "param_count", kh * kw * in_ch * self.out_channels)
        object.__setattr__(self, "bias_count", self.out_channels)


@dataclass(frozen=True)
class DepthwiseConv2D(Layer):
    """Depthwise 2-D convolution (channel multiplier 1).

    ``macs = out_h * out_w * in_ch * kh * kw``
    ``params = kh * kw * in_ch`` (+ ``in_ch`` biases).
    """

    kernel: Size2D = 3
    stride: Size2D = 1
    padding: str = "same"
    kind: str = "dwconv2d"

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.input_shape) != 3:
            raise ValueError(f"DepthwiseConv2D needs (h, w, c) input, got {self.input_shape}")
        kh, kw = _pair(self.kernel, f"{self.name} kernel")
        sh, sw = _pair(self.stride, f"{self.name} stride")
        h, w, in_ch = self.input_shape
        out_h, out_w = _window_out_hw(h, w, (kh, kw), (sh, sw), self.padding)
        object.__setattr__(self, "output_shape", (out_h, out_w, in_ch))
        object.__setattr__(self, "macs", out_h * out_w * in_ch * kh * kw)
        object.__setattr__(self, "param_count", kh * kw * in_ch)
        object.__setattr__(self, "bias_count", in_ch)


@dataclass(frozen=True)
class Dense(Layer):
    """Fully-connected layer on a flattened input.

    ``macs = in_features * out_features``; ``params`` likewise.
    """

    out_features: int = 0
    kind: str = "dense"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.out_features <= 0:
            raise ValueError(f"out_features must be positive, got {self.out_features}")
        in_features = math.prod(self.input_shape)
        object.__setattr__(self, "output_shape", (self.out_features,))
        object.__setattr__(self, "macs", in_features * self.out_features)
        object.__setattr__(self, "param_count", in_features * self.out_features)
        object.__setattr__(self, "bias_count", self.out_features)


@dataclass(frozen=True)
class Pool(Layer):
    """Average or max pooling.  ``mode='global'`` pools to 1x1."""

    pool: Size2D = 2
    stride: Size2D = 0  # 0 -> same as pool
    mode: str = "avg"
    kind: str = "pool"

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.input_shape) != 3:
            raise ValueError(f"Pool needs (h, w, c) input, got {self.input_shape}")
        if self.mode not in ("avg", "max", "global"):
            raise ValueError(f"mode must be avg|max|global, got {self.mode!r}")
        h, w, c = self.input_shape
        if self.mode == "global":
            out_h, out_w = 1, 1
        else:
            pool = _pair(self.pool, f"{self.name} pool")
            stride = pool if self.stride == 0 else _pair(self.stride, f"{self.name} stride")
            out_h, out_w = _window_out_hw(h, w, pool, stride, "valid")
        object.__setattr__(self, "output_shape", (out_h, out_w, c))
        object.__setattr__(self, "macs", 0)
        object.__setattr__(self, "param_count", 0)
        object.__setattr__(self, "bias_count", 0)


@dataclass(frozen=True)
class Add(Layer):
    """Elementwise residual addition; shape-preserving, parameter-free."""

    kind: str = "add"

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "output_shape", self.input_shape)
        object.__setattr__(self, "macs", 0)
        object.__setattr__(self, "param_count", 0)
        object.__setattr__(self, "bias_count", 0)


@dataclass(frozen=True)
class Flatten(Layer):
    """Shape-only reinterpretation; free at runtime."""

    kind: str = "flatten"

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "output_shape", (math.prod(self.input_shape),))
        object.__setattr__(self, "macs", 0)
        object.__setattr__(self, "param_count", 0)
        object.__setattr__(self, "bias_count", 0)


@dataclass(frozen=True)
class Softmax(Layer):
    """Softmax over a vector; parameter-free but not free to compute."""

    kind: str = "softmax"

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.input_shape) != 1:
            raise ValueError(f"Softmax needs a flat input, got {self.input_shape}")
        object.__setattr__(self, "output_shape", self.input_shape)
        object.__setattr__(self, "macs", 0)
        object.__setattr__(self, "param_count", 0)
        object.__setattr__(self, "bias_count", 0)


@dataclass(frozen=True)
class PartialLayer(Layer):
    """A filter-group slice of a weight-bearing layer.

    Large layers (a 640x128 dense, a wide pointwise conv) can exceed any
    reasonable staging buffer.  Real staging runtimes split such layers
    into *filter groups*: each group's weights are staged separately and
    compute a slice of the output, accumulated into the full output
    buffer.  :func:`split_layer` produces these slices.

    Chain semantics: non-final slices are shape-preserving (the input
    tensor stays live, the growing output buffer is accounted by
    ``extra_live_elements``); the final slice emits the base layer's
    output shape.

    Use :func:`split_layer`; do not construct directly.
    """

    base_kind: str = "conv2d"
    part: int = 0
    parts: int = 1
    macs_share: int = 0
    params_share: int = 0
    bias_share: int = 0
    base_output_shape: Shape = ()

    kind: str = "partial"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 <= self.part < self.parts:
            raise ValueError(f"part must be in [0, parts), got {self.part}/{self.parts}")
        final = self.part == self.parts - 1
        object.__setattr__(
            self, "output_shape", self.base_output_shape if final else self.input_shape
        )
        object.__setattr__(self, "macs", self.macs_share)
        object.__setattr__(self, "param_count", self.params_share)
        object.__setattr__(self, "bias_count", self.bias_share)
        object.__setattr__(self, "kind", self.base_kind)
        extra = 0 if final else math.prod(self.base_output_shape)
        object.__setattr__(self, "extra_live_elements", extra)


#: Layer kinds that can be split filter-wise.
SPLITTABLE_KINDS = ("conv2d", "dwconv2d", "dense")

#: Hard cap on filter groups per layer: beyond this, per-slice overheads
#: dominate and the scheduler gains nothing from finer preemption points.
MAX_SPLIT_PARTS = 48


def _max_parts(layer: Layer) -> int:
    """Largest sensible filter-group count for ``layer``."""
    if layer.kind == "dense":
        return min(MAX_SPLIT_PARTS, layer.output_shape[0])
    if layer.kind in ("conv2d", "dwconv2d"):
        return min(MAX_SPLIT_PARTS, layer.output_shape[2])
    return 1


def split_layer(layer: Layer, parts: int) -> List[Layer]:
    """Split a weight-bearing layer into ``parts`` filter-group slices.

    MACs, weights and biases are divided as evenly as integers allow
    (remainders go to the last slice).  Raises for non-splittable kinds.
    """
    if layer.kind not in SPLITTABLE_KINDS:
        raise ValueError(f"cannot split layer kind {layer.kind!r}")
    parts = min(parts, _max_parts(layer))
    if parts <= 1:
        return [layer]
    slices: List[Layer] = []
    for part in range(parts):
        first = part == 0
        last = part == parts - 1

        def share(total: int) -> int:
            base = total // parts
            return base + (total - base * parts if last else 0)

        slices.append(
            PartialLayer(
                name=f"{layer.name}#{part}",
                input_shape=layer.input_shape if first else layer.input_shape,
                base_kind=layer.kind,
                part=part,
                parts=parts,
                macs_share=share(layer.macs),
                params_share=share(layer.param_count),
                bias_share=share(layer.bias_count),
                base_output_shape=layer.output_shape,
            )
        )
    return slices
