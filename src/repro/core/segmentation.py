"""Segmentation: partition a layer chain into SRAM-feasible segments.

Feasibility of a segmentation with buffer depth ``b``:

* **SRAM**: ``b * max_segment_weight_bytes + peak_activation_bytes <=
  sram_budget`` (each staging slot is sized for the largest segment;
  activations stay resident);
* **preemption granularity** (optional): no segment's compute may exceed
  ``max_segment_compute`` cycles.  Segment boundaries are the only
  preemption points, so a long segment is a non-preemptive section that
  blocks urgent tasks — capping it is the schedulability half of the
  RT-MDM planner.  Layers that are individually over the cap (after
  :func:`~repro.dnn.models.refine_model`) relax the cap to their own
  length: the analyses then account for the unavoidable section honestly.

Among feasible segmentations we minimize the **isolated pipelined
latency** (exact recurrence, including per-transfer setup overheads);
near-ties (within 2%) are broken toward the smaller maximum compute
section.

Algorithms:

* :func:`min_max_weight_partition` — contiguous partition into exactly
  ``k`` parts minimizing the maximum part cost (binary search + greedy;
  optimal for this objective).  The search feeds it *unit costs*: the max
  of normalized staging bytes and normalized compute, so one partition
  respects both caps.
* :func:`coarsest_feasible_segments` — fewest segments that fit.
* :func:`search_segmentation` — sweep segment counts from coarsest
  feasible to layer granularity, refine each candidate with boundary
  hill-climbing on exact latency (evaluated via prefix sums; no model
  rematerialization), return the best.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.pipeline import SegmentedModel
from repro.dnn.models import Model
from repro.dnn.quantization import INT8, Quantization
from repro.hw.platform import Platform

#: Normalization scale for unit costs (per-part budget maps to _SCALE).
_SCALE = 1_000_000

Boundaries = List[Tuple[int, int]]


class SegmentationError(ValueError):
    """Raised when no segmentation fits the SRAM budget."""


def _greedy_parts_needed(weights: Sequence[int], cap: int) -> Optional[int]:
    """Minimum number of contiguous parts with each part sum <= cap, or None."""
    parts = 1
    current = 0
    for weight in weights:
        if weight > cap:
            return None
        if current + weight > cap:
            parts += 1
            current = weight
        else:
            current += weight
    return parts


def min_max_weight_partition(weights: Sequence[int], k: int) -> Boundaries:
    """Partition ``weights`` into ``k`` contiguous parts minimizing max sum.

    Returns ``(start, end)`` index pairs.  Classic binary search over the
    bottleneck value with a greedy feasibility check; the result is
    optimal for the min-max objective.
    """
    n = len(weights)
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    lo, hi = max(weights), sum(weights)
    while lo < hi:
        mid = (lo + hi) // 2
        needed = _greedy_parts_needed(weights, mid)
        if needed is not None and needed <= k:
            hi = mid
        else:
            lo = mid + 1
    # Build exactly k parts under cap `lo`, splitting greedily and then
    # padding with single-element parts if the greedy run used fewer.
    boundaries: Boundaries = []
    start = 0
    current = 0
    for i, weight in enumerate(weights):
        if current + weight > lo and current > 0:
            boundaries.append((start, i))
            start, current = i, weight
        else:
            current += weight
    boundaries.append((start, n))
    while len(boundaries) < k:
        # Split the part with the most elements (any split keeps max <= lo
        # because part sums only shrink).
        idx = max(range(len(boundaries)), key=lambda i: boundaries[i][1] - boundaries[i][0])
        s, e = boundaries[idx]
        if e - s == 1:
            raise AssertionError("cannot split further; k <= n guarantees this never happens")
        mid = (s + e) // 2
        boundaries[idx: idx + 1] = [(s, mid), (mid, e)]
        boundaries.sort()
    return boundaries


class _Planner:
    """Shared state for one segmentation problem.

    Pre-computes per-layer weight bytes and compute cycles so candidate
    segmentations are evaluated with prefix sums (O(k) per candidate)
    instead of rematerializing :class:`SegmentedModel` objects.
    """

    def __init__(
        self,
        model: Model,
        platform: Platform,
        sram_budget: int,
        quant: Quantization,
        buffers: int,
        max_segment_compute: Optional[int],
    ) -> None:
        self.model = model
        self.platform = platform
        self.sram_budget = sram_budget
        self.quant = quant
        self.buffers = buffers
        self.weights = [layer.param_bytes(quant) for layer in model.layers]
        self.computes = [
            platform.compute_cycles(layer, quant.weight_bytes) for layer in model.layers
        ]
        n = model.num_layers
        self.prefix_w = [0] * (n + 1)
        self.prefix_c = [0] * (n + 1)
        for i in range(n):
            self.prefix_w[i + 1] = self.prefix_w[i] + self.weights[i]
            self.prefix_c[i + 1] = self.prefix_c[i] + self.computes[i]
        act = model.peak_activation_bytes(quant)
        self.activation_bytes = act
        # load_cycles is a pure function of the byte count for a fixed
        # platform; candidate evaluation revisits the same segment sizes
        # constantly (hill climbing shifts one boundary at a time), so
        # memoizing per weight value removes most of its cost.
        self._load_cache: dict = {}
        self.slot_cap = (sram_budget - act) // buffers
        if self.slot_cap < max(self.weights):
            raise SegmentationError(
                f"model {model.name!r} cannot fit: largest layer needs "
                f"{max(self.weights)} B per slot but only {max(self.slot_cap, 0)} B "
                f"available (budget {sram_budget} B, activations {act} B, "
                f"{buffers} buffers)"
            )
        # An individually-over-cap layer relaxes the compute cap to itself.
        if max_segment_compute is not None:
            self.compute_cap: Optional[int] = max(
                max_segment_compute, max(self.computes)
            )
        else:
            self.compute_cap = None

    # -- candidate evaluation (prefix sums; no materialization) --------
    def seg_weight(self, start: int, end: int) -> int:
        return self.prefix_w[end] - self.prefix_w[start]

    def seg_compute(self, start: int, end: int) -> int:
        return self.prefix_c[end] - self.prefix_c[start]

    def feasible(self, boundaries: Boundaries) -> bool:
        max_w = max(self.seg_weight(s, e) for s, e in boundaries)
        if self.buffers * max_w + self.activation_bytes > self.sram_budget:
            return False
        if self.compute_cap is not None:
            max_c = max(self.seg_compute(s, e) for s, e in boundaries)
            if max_c > self.compute_cap:
                return False
        return True

    def latency(self, boundaries: Boundaries) -> int:
        """Isolated pipelined latency of a candidate (exact recurrence).

        Single fused pass over the recurrence: the hill climber calls
        this for every candidate shift, so no intermediate lists, no
        ``max`` builtins, no per-segment method calls — same integers.
        """
        load_cache = self._load_cache
        load_cycles = self.platform.load_cycles
        prefix_w = self.prefix_w
        prefix_c = self.prefix_c
        b = self.buffers
        f_comp: List[int] = []
        append = f_comp.append
        prev_load = 0
        prev_comp = 0
        j = 0
        for s, e in boundaries:
            w = prefix_w[e] - prefix_w[s]
            cycles = load_cache.get(w)
            if cycles is None:
                cycles = load_cycles(w)
                load_cache[w] = cycles
            freed = f_comp[j - b] if j >= b else 0
            if freed > prev_load:
                prev_load = freed + cycles
            else:
                prev_load += cycles
            comp = prefix_c[e] - prefix_c[s]
            if prev_load > prev_comp:
                prev_comp = prev_load + comp
            else:
                prev_comp += comp
            append(prev_comp)
            j += 1
        return prev_comp

    def max_compute_section(self, boundaries: Boundaries) -> int:
        return max(self.seg_compute(s, e) for s, e in boundaries)

    def unit_costs(self) -> List[int]:
        """Per-layer costs normalized so a part budget maps to ``_SCALE``.

        A part with cost sum <= _SCALE satisfies both the slot byte cap
        and the compute cap (sum of maxes bounds max of sums).
        """
        costs = []
        for w, c in zip(self.weights, self.computes):
            cost = -(-w * _SCALE // self.slot_cap) if w else 0
            if self.compute_cap:
                cost = max(cost, -(-c * _SCALE // self.compute_cap))
            costs.append(min(cost, _SCALE))
        return costs

    def materialize(self, boundaries: Sequence[Tuple[int, int]]) -> SegmentedModel:
        return SegmentedModel(
            model=self.model,
            platform=self.platform,
            quant=self.quant,
            boundaries=tuple(boundaries),
            buffers=self.buffers,
        )

    def _latency_suffix(
        self, boundaries: Boundaries, start: int, f_comp_prefix: List[int]
    ) -> Tuple[int, List[int]]:
        """Latency of ``boundaries`` whose segments before ``start`` match
        the schedule that produced ``f_comp_prefix`` (same recurrence as
        :meth:`latency`, resumed mid-stream).  Returns the latency and the
        full ``f_comp`` array for reuse."""
        load_cache = self._load_cache
        load_cycles = self.platform.load_cycles
        prefix_w = self.prefix_w
        prefix_c = self.prefix_c
        b = self.buffers
        f_comp = f_comp_prefix[:start]
        append = f_comp.append
        prev_comp = f_comp[start - 1] if start else 0
        prev_load = self._f_load_state[start - 1] if start else 0
        for j in range(start, len(boundaries)):
            s, e = boundaries[j]
            w = prefix_w[e] - prefix_w[s]
            cycles = load_cache.get(w)
            if cycles is None:
                cycles = load_cycles(w)
                load_cache[w] = cycles
            freed = f_comp[j - b] if j >= b else 0
            if freed > prev_load:
                prev_load = freed + cycles
            else:
                prev_load += cycles
            comp = prefix_c[e] - prefix_c[s]
            if prev_load > prev_comp:
                prev_comp = prev_load + comp
            else:
                prev_comp += comp
            append(prev_comp)
        return prev_comp, f_comp

    def _latency_state(self, boundaries: Boundaries) -> Tuple[List[int], List[int]]:
        """``(f_load, f_comp)`` arrays of the recurrence over ``boundaries``."""
        load_cache = self._load_cache
        load_cycles = self.platform.load_cycles
        prefix_w = self.prefix_w
        prefix_c = self.prefix_c
        b = self.buffers
        f_load: List[int] = []
        f_comp: List[int] = []
        prev_load = 0
        prev_comp = 0
        for j, (s, e) in enumerate(boundaries):
            w = prefix_w[e] - prefix_w[s]
            cycles = load_cache.get(w)
            if cycles is None:
                cycles = load_cycles(w)
                load_cache[w] = cycles
            freed = f_comp[j - b] if j >= b else 0
            if freed > prev_load:
                prev_load = freed + cycles
            else:
                prev_load += cycles
            f_load.append(prev_load)
            comp = prefix_c[e] - prefix_c[s]
            if prev_load > prev_comp:
                prev_comp = prev_load + comp
            else:
                prev_comp += comp
            f_comp.append(prev_comp)
        return f_load, f_comp

    def hill_climb(self, boundaries: Boundaries, max_passes: int = 4) -> Boundaries:
        """Shift boundaries +-1 layer while it reduces exact latency.

        Candidate evaluation is incremental: shifting the cut between
        segments ``i`` and ``i+1`` leaves the recurrence prefix before
        ``i`` untouched, so each candidate resumes from the incumbent's
        stored pipeline state instead of re-running the full recurrence
        — identical integers, roughly half the work on average.
        """
        best = list(boundaries)
        self._f_load_state, f_comp_state = self._latency_state(best)
        best_latency = f_comp_state[-1] if f_comp_state else 0
        slot_cap = self.slot_cap
        cap = self.compute_cap
        prefix_w = self.prefix_w
        prefix_c = self.prefix_c
        for _ in range(max_passes):
            improved = False
            for i in range(len(best) - 1):
                for delta in (-1, 1):
                    cut = best[i][1] + delta
                    if not best[i][0] < cut < best[i + 1][1]:
                        continue
                    s0, e1 = best[i][0], best[i + 1][1]
                    # Only the two touched segments can newly violate a
                    # cap (`best` is feasible, the rest already fit); a
                    # per-segment check replaces the full feasible() scan
                    # with the same accept/reject decisions.
                    if (
                        prefix_w[cut] - prefix_w[s0] > slot_cap
                        or prefix_w[e1] - prefix_w[cut] > slot_cap
                    ):
                        continue
                    if cap is not None and (
                        prefix_c[cut] - prefix_c[s0] > cap
                        or prefix_c[e1] - prefix_c[cut] > cap
                    ):
                        continue
                    candidate = list(best)
                    candidate[i] = (s0, cut)
                    candidate[i + 1] = (cut, e1)
                    latency, f_comp = self._latency_suffix(
                        candidate, i, f_comp_state
                    )
                    if latency < best_latency:
                        best, best_latency = candidate, latency
                        self._f_load_state, f_comp_state = self._latency_state(best)
                        improved = True
            if not improved:
                break
        return best


def segment_model(
    model: Model,
    platform: Platform,
    boundaries: Sequence[Tuple[int, int]],
    quant: Quantization = INT8,
    buffers: int = 2,
) -> SegmentedModel:
    """Materialize a segmentation from explicit boundaries."""
    return SegmentedModel(
        model=model,
        platform=platform,
        quant=quant,
        boundaries=tuple(boundaries),
        buffers=buffers,
    )


def _coarsest_boundaries(planner: _Planner) -> Boundaries:
    """The fewest-segment partition that fits all caps (as boundaries)."""
    costs = planner.unit_costs()
    needed = _greedy_parts_needed(costs, _SCALE)
    assert needed is not None  # individual costs are clamped to _SCALE
    boundaries = min_max_weight_partition(costs, needed)
    # The unit-cost partition is sufficient for both caps, but integer
    # rounding can leave a marginal violation; fall back to finer counts.
    k = needed
    n = planner.model.num_layers
    while not planner.feasible(boundaries) and k < n:
        k += 1
        boundaries = min_max_weight_partition(costs, k)
    if not planner.feasible(boundaries):
        raise SegmentationError(
            f"no feasible segmentation for {planner.model.name!r} within "
            f"{planner.sram_budget} B"
        )
    return boundaries


def coarsest_feasible_segments(
    model: Model,
    platform: Platform,
    sram_budget: int,
    quant: Quantization = INT8,
    buffers: int = 2,
    max_segment_compute: Optional[int] = None,
) -> SegmentedModel:
    """The fewest-segment partition that fits all caps.

    Raises:
        SegmentationError: if even one-layer-per-segment does not fit the
            SRAM budget (the compute cap alone never causes failure; see
            module docstring).
    """
    planner = _Planner(model, platform, sram_budget, quant, buffers, max_segment_compute)
    return planner.materialize(_coarsest_boundaries(planner))


def search_segmentation(
    model: Model,
    platform: Platform,
    sram_budget: int,
    quant: Quantization = INT8,
    buffers: int = 2,
    max_segment_compute: Optional[int] = None,
    max_candidates: int = 10,
    latency_tolerance: float = 0.02,
) -> SegmentedModel:
    """Find a low-latency feasible segmentation (the RT-MDM planner).

    Sweeps segment counts from the coarsest feasible up to layer
    granularity (at most ``max_candidates`` values, geometrically
    spaced), builds the min-max unit-cost partition for each, hill-climbs
    boundaries on exact latency, and returns the candidate with the best
    latency — near-ties within ``latency_tolerance`` resolved toward the
    smallest maximum compute section (shorter non-preemptive blocking).

    Raises:
        SegmentationError: if no segmentation fits ``sram_budget``.
    """
    planner = _Planner(model, platform, sram_budget, quant, buffers, max_segment_compute)
    coarsest = _coarsest_boundaries(planner)
    n = model.num_layers
    k_min = len(coarsest)
    counts = sorted({k_min, n} | set(_geometric_counts(k_min, n, max_candidates)))
    costs = planner.unit_costs()
    candidates: List[Tuple[int, int, Boundaries]] = []
    for k in counts:
        boundaries = min_max_weight_partition(costs, k)
        if not planner.feasible(boundaries):
            continue
        boundaries = planner.hill_climb(boundaries)
        candidates.append(
            (
                planner.latency(boundaries),
                planner.max_compute_section(boundaries),
                boundaries,
            )
        )
    if not candidates:
        # The coarsest partition is feasible by construction, but keep a
        # defensive error for future cap combinations.
        raise SegmentationError(f"no feasible segmentation for {model.name!r}")
    best_latency = min(latency for latency, _, _ in candidates)
    threshold = best_latency * (1.0 + latency_tolerance)
    eligible = [c for c in candidates if c[0] <= threshold]
    eligible.sort(key=lambda c: (c[1], c[0]))
    return planner.materialize(eligible[0][2])


def _geometric_counts(k_min: int, k_max: int, max_candidates: int) -> List[int]:
    """Roughly geometrically spaced segment counts in ``[k_min, k_max]``."""
    if k_min >= k_max:
        return [k_min]
    counts = []
    value = float(k_min)
    ratio = (k_max / k_min) ** (1.0 / max(1, max_candidates - 1))
    for _ in range(max_candidates):
        counts.append(int(round(value)))
        value *= ratio
    counts.append(k_max)
    return [c for c in counts if k_min <= c <= k_max]
