#!/usr/bin/env python3
"""Quickstart: schedule two DNNs on an STM32F746 with QSPI flash.

Run with::

    python examples/quickstart.py
"""

from repro import RtMdm, build_model, get_platform


def main() -> None:
    platform = get_platform("f746-qspi")
    print(f"platform: {platform.name}")
    print(f"usable SRAM: {platform.usable_sram_bytes / 1024:.0f} KiB")
    print(f"external memory: {platform.memory.read_bandwidth_bps / 1e6:.0f} MB/s\n")

    # A keyword spotter every 200 ms and a visual wake word model at 1 Hz.
    rt = RtMdm(platform)
    rt.add_task("kws", build_model("ds-cnn"), period_s=0.200)
    rt.add_task("vww", build_model("mobilenet-v1-0.25"), period_s=1.000)

    # configure() segments each model to fit SRAM, plans the staging
    # buffers, assigns priorities, and runs the schedulability analysis.
    config = rt.configure()
    print(f"admitted: {config.admitted}\n")
    for row in config.report_rows():
        print(
            f"  {row['task']:5s} prio={row['priority']}  "
            f"T={row['period_ms']:7.1f} ms  segments={row['segments']:3d}  "
            f"sram={row['sram_kib']:6.1f} KiB  "
            f"latency={row['latency_ms']:6.2f} ms  "
            f"WCRT<= {row['wcrt_ms']:6.2f} ms"
        )

    # The discrete-event simulator confirms the offline guarantee.
    result = config.simulate(duration_s=5.0)
    print(f"\nsimulated 5 s: {result.total_misses} deadline misses")
    for task in config.taskset:
        observed = result.max_response(task.name)
        bound = config.analysis.wcrt[task.name]
        ms = platform.mcu.cycles_to_ms
        print(
            f"  {task.name:5s} worst observed {ms(observed):6.2f} ms "
            f"(analysis bound {ms(bound):6.2f} ms)"
        )


if __name__ == "__main__":
    main()
