"""Benchmark for EXP-F12: fixed-priority vs EDF (extension)."""

from conftest import bench_experiment


def test_f12_fp_vs_edf(benchmark):
    result = bench_experiment(benchmark, "EXP-F12", n_sets=6)
    # The FP analysis must admit at least as much as the conservative
    # EDF demand test at every utilization.
    for row in result.rows:
        assert row[1] >= row[2]
