"""Property test: the classic NP-RTA upper-bounds simulated responses.

For single-segment CPU-only tasks (no DMA load), the simulator's FP_NP
policy *is* classic non-preemptive fixed-priority scheduling, so the
Davis & Burns bound from :func:`repro.sched.rta.fp_nonpreemptive_wcrt`
(with the standard lower-priority blocking term) must dominate the worst
response observed in any simulated phasing.  This pins the contract the
online admission controller's screen relies on: the rta module's bounds
are never optimistic for the execution model they claim to cover.
"""

from __future__ import annotations

import random

import pytest

from conftest import make_task
from repro.sched.policies import CpuPolicy
from repro.sched.rta import (
    RtaTask,
    fp_nonpreemptive_wcrt,
    utilization,
    with_np_blocking,
)
from repro.sched.simulator import SimConfig, simulate
from repro.sched.task import TaskSet


def _draw_set(rng: random.Random):
    """2-4 single-segment CPU-only tasks at moderate utilization."""
    n = rng.randint(2, 4)
    tasks = []
    budget = rng.uniform(0.4, 0.85)
    shares = [rng.random() for _ in range(n)]
    total = sum(shares)
    for i in range(n):
        period = rng.randint(200, 4000)
        compute = max(1, int(period * budget * shares[i] / total))
        tasks.append((f"t{i}", compute, period))
    # Deadline-monotonic priorities (deadline == period here).
    tasks.sort(key=lambda t: t[2])
    return tasks


def _simulated_worst(tasks, phases, horizon):
    periodic = [
        make_task(name, [(0, compute)], period=period, priority=prio,
                  phase=phase)
        for prio, ((name, compute, period), phase) in enumerate(
            zip(tasks, phases)
        )
    ]
    result = simulate(
        TaskSet.of(periodic),
        SimConfig(policy=CpuPolicy.FP_NP, horizon=horizon),
    )
    return {
        name: stats.max_response for name, stats in result.stats.items()
    }


@pytest.mark.parametrize("seed", range(20))
def test_np_wcrt_dominates_simulation(seed):
    rng = random.Random(6700 + seed)
    drawn = _draw_set(rng)
    rta_tasks = with_np_blocking(
        [
            RtaTask(name=name, exec_cycles=compute, period=period,
                    deadline=period, priority=prio)
            for prio, (name, compute, period) in enumerate(drawn)
        ]
    )
    if utilization(rta_tasks) >= 1.0:
        pytest.skip("overutilized draw: no finite NP bound expected")
    bounds = {t.name: fp_nonpreemptive_wcrt(rta_tasks, t) for t in rta_tasks}
    horizon = 60 * max(period for _, _, period in drawn)
    phasings = [[0] * len(drawn)] + [
        [rng.randrange(period) for _, _, period in drawn] for _ in range(3)
    ]
    for phases in phasings:
        observed = _simulated_worst(drawn, phases, horizon)
        for name, worst in observed.items():
            if worst is None or bounds[name] is None:
                continue
            assert worst <= bounds[name], (
                f"seed {seed}: simulated response {worst} of {name} exceeds "
                f"NP-RTA bound {bounds[name]} (phases {phases})"
            )
