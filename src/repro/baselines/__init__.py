"""Baseline execution strategies RT-MDM is compared against.

Every baseline is expressed as a transformation from (or alternative to)
the RT-MDM segmented task, so the same simulator and analyses apply:

* :func:`~repro.baselines.sequential.sequentialize` — staging without
  overlap: the CPU busy-waits on every transfer.
* :func:`~repro.baselines.layerwise.single_buffered` — DMA staging but
  only one buffer: transfers never overlap compute.
* :func:`~repro.baselines.npwhole.whole_job` — one non-preemptive section
  per job (no inter-task preemption points).
* :func:`~repro.baselines.xip.xip_task` — execute-in-place from external
  memory: no staging, weights fetched over the bus during compute.
"""

from repro.baselines.layerwise import single_buffered
from repro.baselines.npwhole import whole_job
from repro.baselines.sequential import sequentialize
from repro.baselines.xip import xip_task

__all__ = ["sequentialize", "single_buffered", "whole_job", "xip_task"]
