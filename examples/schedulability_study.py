#!/usr/bin/env python3
"""Schedulability study: sweep utilization and compare execution strategies.

A miniature version of the paper-style experiment (EXP-F4): draw random
multi-DNN task sets at each target utilization and measure the fraction
each execution strategy admits.  Expect RT-MDM to dominate, sequential
staging to fall off earliest on load-heavy draws, and XIP to suffer on
weight-heavy models.

Run with::

    python examples/schedulability_study.py [n_sets_per_point]
"""

import random
import sys

from repro import get_platform
from repro.eval.systems import LABELS, SYSTEMS, admit
from repro.workload.taskset import generate_case


def main() -> None:
    n_sets = int(sys.argv[1]) if len(sys.argv) > 1 else 15
    platform = get_platform("f746-qspi")
    utils = (0.2, 0.35, 0.5, 0.65, 0.8)

    print(f"platform: {platform.name}, {n_sets} task sets per point\n")
    header = "util  " + "  ".join(f"{s:>16s}" for s in SYSTEMS)
    print(header)
    print("-" * len(header))
    for util in utils:
        rng = random.Random(1000 + int(util * 100))
        admitted = {s: 0 for s in SYSTEMS}
        for _ in range(n_sets):
            case = generate_case(platform, util, rng)
            for system in SYSTEMS:
                admitted[system] += admit(system, case)
        cells = "  ".join(f"{admitted[s] / n_sets:16.2f}" for s in SYSTEMS)
        print(f"{util:4.2f}  {cells}")

    print("\nlegend:")
    for system in SYSTEMS:
        print(f"  {system:16s} {LABELS[system]}")


if __name__ == "__main__":
    main()
