"""Benchmark for EXP-F5: schedulability ratio vs SRAM budget."""

from conftest import bench_experiment


def test_f5_sched_vs_sram(benchmark):
    result = bench_experiment(benchmark, "EXP-F5", n_sets=24)
    rtmdm = result.column("rtmdm")
    # More SRAM never hurts in aggregate: the top half of the sweep must
    # admit at least as much as the bottom half.
    half = len(rtmdm) // 2
    assert sum(rtmdm[half:]) >= sum(rtmdm[:half])
