"""Compared systems: derive each baseline's task set from a generated case.

Every system sees the *same* drawn workload (models, periods, deadlines,
DM priorities); only the execution strategy differs.  ``derive_taskset``
returns the system's simulatable task set plus the analysis method used
for its admission decision.
"""

from __future__ import annotations

from typing import Tuple

from repro.baselines import sequentialize, single_buffered, whole_job, xip_task
from repro.core.segcache import cached_analyze
from repro.sched.task import TaskSet
from repro.workload.taskset import GeneratedCase

#: System keys, in the order figures report them.
SYSTEMS = (
    "rtmdm",
    "rtmdm-oblivious",
    "single-buffer",
    "sequential",
    "np-whole",
    "xip",
)

#: Short labels for figure legends.
LABELS = {
    "rtmdm": "RT-MDM",
    "rtmdm-oblivious": "RT-MDM (susp.-oblivious)",
    "single-buffer": "Single buffer (no prefetch)",
    "sequential": "Sequential (busy-wait)",
    "np-whole": "Non-preemptive whole-DNN",
    "xip": "Execute-in-place",
}


def derive_taskset(system: str, case: GeneratedCase) -> Tuple[TaskSet, str]:
    """The system's task set and its admission analysis method.

    Raises:
        ValueError: for unknown system keys.
        RuntimeError: if the case is infeasible (check ``case.feasible``).
    """
    if case.taskset is None:
        raise RuntimeError("case is infeasible; no task set to derive")
    base = case.taskset
    if system == "rtmdm":
        return base, "rtmdm"
    if system == "rtmdm-oblivious":
        return base, "oblivious"
    if system == "single-buffer":
        return TaskSet.of(single_buffered(t) for t in base), "rtmdm"
    if system == "sequential":
        return TaskSet.of(sequentialize(t) for t in base), "rtmdm"
    if system == "np-whole":
        return TaskSet.of(whole_job(t) for t in base), "rtmdm"
    if system == "xip":
        tasks = []
        for task in base:
            model = case.refined[task.name]
            tasks.append(
                xip_task(
                    name=task.name,
                    model=model,
                    platform=case.platform,
                    period=task.period,
                    deadline=task.deadline,
                    priority=task.priority,
                    quant=case.quant,
                )
            )
        return TaskSet.of(tasks), "rtmdm"
    raise ValueError(f"unknown system {system!r}; choose from {SYSTEMS}")


def admit(system: str, case: GeneratedCase) -> bool:
    """Offline admission verdict of ``system`` for ``case``.

    Infeasible cases (SRAM cannot hold the workload) are rejected by
    every staging system; XIP needs no staging buffers and is judged on
    timing alone.
    """
    if not case.feasible:
        return False
    taskset, method = derive_taskset(system, case)
    return cached_analyze(taskset, method).schedulable
