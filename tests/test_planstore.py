"""Unit tests for the persistent content-addressed plan store."""

from __future__ import annotations

import json
import os
import shutil

import pytest

from repro.core import planstore, segcache
from repro.core.planstore import (
    STORE_SCHEMA,
    PlanStore,
    canonical_key,
    decode_value,
    encode_value,
)
from repro.hw.presets import get_platform
from repro.online.admission import plan_segments
from repro.sched.task import Segment

OK_VALUE = (
    "ok",
    ((0, 2), (2, 5)),
    (
        Segment(name="s0", load_cycles=100, compute_cycles=2000,
                load_bytes=4096, xip_bytes=0),
        Segment(name="s1", load_cycles=0, compute_cycles=900,
                load_bytes=0, xip_bytes=2048),
    ),
)
KEY = ("search", ("fp", 1, 2), 65536, 4000, 2)


@pytest.fixture(autouse=True)
def isolated_store():
    previous = planstore.active()
    planstore.configure(None)
    planstore.reset_counters()
    segcache.clear_all()
    yield
    planstore.configure(previous.root if previous is not None else None)
    planstore.reset_counters()
    segcache.clear_all()


def only_record_path(store: PlanStore) -> str:
    names = [n for n in os.listdir(store.root) if n.endswith(".json")]
    assert len(names) == 1
    return os.path.join(store.root, names[0])


class TestCodec:
    def test_ok_round_trip(self):
        assert decode_value(encode_value(OK_VALUE)) == OK_VALUE

    def test_err_round_trip(self):
        value = ("err", "sram: need 120 KiB")
        assert decode_value(encode_value(value)) == value

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="kind"):
            decode_value({"kind": "maybe"})

    def test_canonical_key_is_stable_text(self):
        assert canonical_key(KEY) == canonical_key(list(KEY))
        assert canonical_key(KEY) != canonical_key(KEY[:-1])


class TestStoreBasics:
    def test_put_get_round_trip(self, tmp_path):
        store = PlanStore(str(tmp_path))
        store.put(KEY, OK_VALUE)
        assert len(store) == 1
        found, value = store.get(KEY)
        assert found and value == OK_VALUE

    def test_missing_key_is_a_plain_miss(self, tmp_path):
        store = PlanStore(str(tmp_path))
        planstore.reset_counters()
        found, _ = store.get(KEY)
        assert not found
        counts = planstore.counters_dict()
        assert counts["misses"] == 1
        assert counts["corrupt"] == 0

    def test_last_writer_wins(self, tmp_path):
        # Two writers (same root, e.g. two processes) race on one key:
        # os.replace makes the record atomic and the last put wins whole.
        writer_a = PlanStore(str(tmp_path))
        writer_b = PlanStore(str(tmp_path))
        writer_a.put(KEY, OK_VALUE)
        writer_b.put(KEY, ("err", "sram: lost the race"))
        assert len(writer_a) == 1
        found, value = writer_a.get(KEY)
        assert found and value == ("err", "sram: lost the race")
        # No stray temp files left behind.
        assert all(
            name.endswith(".json") for name in os.listdir(str(tmp_path))
        )


class TestDurability:
    def test_crc_corruption_is_skipped(self, tmp_path):
        store = PlanStore(str(tmp_path))
        store.put(KEY, OK_VALUE)
        path = only_record_path(store)
        record = json.load(open(path))
        record["value"]["boundaries"][0][1] = 99  # flip a byte, stale CRC
        with open(path, "w") as handle:
            json.dump(record, handle)
        planstore.reset_counters()
        found, _ = store.get(KEY)
        assert not found
        counts = planstore.counters_dict()
        assert counts["corrupt"] == 1 and counts["misses"] == 1

    def test_truncated_record_is_skipped(self, tmp_path):
        store = PlanStore(str(tmp_path))
        store.put(KEY, OK_VALUE)
        path = only_record_path(store)
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) // 2])
        planstore.reset_counters()
        found, _ = store.get(KEY)
        assert not found
        assert planstore.counters_dict()["corrupt"] == 1

    def test_schema_mismatch_is_corrupt(self, tmp_path):
        store = PlanStore(str(tmp_path))
        store.put(KEY, OK_VALUE)
        path = only_record_path(store)
        record = json.load(open(path))
        record["schema"] = "rtmdm-planstore/0"
        record["crc"] = planstore._crc(record)
        with open(path, "w") as handle:
            json.dump(record, handle)
        found, _ = store.get(KEY)
        assert not found
        assert planstore.counters_dict()["corrupt"] == 1

    def test_key_echo_mismatch_never_returns(self, tmp_path):
        # A record copied (or hash-colliding) onto another key's path has
        # a valid CRC but the wrong canonical-key echo: stale, not a hit.
        store = PlanStore(str(tmp_path))
        store.put(KEY, OK_VALUE)
        other = ("search", ("fp", 9, 9), 65536, 4000, 2)
        shutil.copyfile(store.path_for(KEY), store.path_for(other))
        planstore.reset_counters()
        found, _ = store.get(other)
        assert not found
        counts = planstore.counters_dict()
        assert counts["stale"] == 1 and counts["hits"] == 0

    def test_corruption_triggers_cold_rebuild_end_to_end(self, tmp_path):
        platform = get_platform("f746-qspi")
        budget = platform.usable_sram_bytes
        deadline = platform.mcu.seconds_to_cycles(0.2)
        store = planstore.configure(str(tmp_path))
        cold = plan_segments(platform, "lenet5", deadline, budget)
        assert len(store) >= 1
        # Corrupt every record, drop the RAM caches: the next plan must
        # rebuild cold and rewrite valid records, not crash or mis-plan.
        for name in os.listdir(store.root):
            with open(os.path.join(store.root, name), "ab") as handle:
                handle.write(b"garbage")
        segcache.clear_all()
        planstore.reset_counters()
        rebuilt = plan_segments(platform, "lenet5", deadline, budget)
        assert rebuilt == cold
        counts = planstore.counters_dict()
        assert counts["corrupt"] >= 1
        assert counts["writes"] >= 1
        # And the rewritten records now serve hits.
        segcache.clear_all()
        planstore.reset_counters()
        assert plan_segments(platform, "lenet5", deadline, budget) == cold
        assert planstore.counters_dict()["hits"] >= 1


class TestWarmEqualsCold:
    @pytest.mark.parametrize("model", ["lenet5", "tinyconv", "ds-cnn"])
    @pytest.mark.parametrize("sram_kib", [128, 320])
    def test_warm_plans_bit_identical(self, tmp_path, model, sram_kib):
        platform = get_platform("f746-qspi").with_sram_bytes(sram_kib * 1024)
        budget = platform.usable_sram_bytes
        deadline = platform.mcu.seconds_to_cycles(0.1)
        planstore.configure(str(tmp_path))
        cold = plan_segments(platform, model, deadline, budget)
        segcache.clear_all()  # fresh process: only the store survives
        planstore.reset_counters()
        warm = plan_segments(platform, model, deadline, budget)
        assert warm == cold
        counts = planstore.counters_dict()
        assert counts["hits"] >= 1
        assert counts["corrupt"] == counts["stale"] == 0

    def test_store_disabled_changes_nothing(self):
        platform = get_platform("f746-qspi")
        budget = platform.usable_sram_bytes
        deadline = platform.mcu.seconds_to_cycles(0.1)
        baseline = plan_segments(platform, "lenet5", deadline, budget)
        segcache.clear_all()
        again = plan_segments(platform, "lenet5", deadline, budget)
        assert again == baseline
        assert planstore.counters_dict()["enabled"] == 0


class TestCountersProtocol:
    def test_counters_ride_segcache_snapshots(self, tmp_path):
        planstore.configure(str(tmp_path))
        before = segcache.snapshot()
        assert "planstore" in before
        store = planstore.active()
        store.put(KEY, OK_VALUE)
        store.get(KEY)
        store.get(("other", 1))
        delta = segcache.delta_since(before)
        hits, misses, corrupt, stale, writes = delta["planstore"]
        assert (hits, misses, corrupt, stale, writes) == (1, 1, 0, 0, 1)
        # absorb() folds a worker's delta into this process's totals.
        planstore.reset_counters()
        segcache.absorb({"planstore": (2, 3, 1, 0, 4)})
        counts = planstore.counters_dict()
        assert counts["hits"] == 2 and counts["writes"] == 4
        assert segcache.stats()["planstore"]["corrupt"] == 1

    def test_env_configuration(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_STORE", str(tmp_path))
        store = planstore._env_store()
        assert store is not None and store.root == str(tmp_path)
        monkeypatch.setenv("REPRO_PLAN_STORE", "  ")
        assert planstore._env_store() is None
