"""Benchmark for EXP-F16: steady-state folding on harmonic sweeps.

Long-horizon miss-ratio measurement over rate-harmonic task sets — the
configuration where hyperperiod folding pays off most.  The driver's
``meta`` carries the fold counters (cycles detected, jobs skipped), so
this benchmark is also what puts folding effectiveness on the suite
record in ``BENCH_suite.json``.
"""

from conftest import bench_experiment


def test_f16_steady_state(benchmark):
    result = bench_experiment(benchmark, "EXP-F16", n_sets=2, hyperperiods=24)
    fold = result.meta.get("fold", {})
    assert fold.get("folds", 0) > 0, (
        "no hyperperiod cycles folded on a deterministic harmonic sweep"
    )
    assert fold.get("jobs_skipped", 0) > 0
