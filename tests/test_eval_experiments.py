"""Smoke tests for every experiment driver (tiny scales).

The benchmarks run the drivers at evaluation scale; these tests ensure
each driver stays runnable and structurally correct on every change.
"""

import pytest

from repro.eval.experiments import EXPERIMENTS, run_experiment
from repro.eval.reporting import render

FAST = ("EXP-T1", "EXP-T2", "EXP-F3", "EXP-T3", "EXP-F9")
SWEEPS = ("EXP-F4", "EXP-F5", "EXP-F6")


@pytest.mark.parametrize("exp_id", FAST)
def test_fast_drivers(exp_id):
    result = run_experiment(exp_id)
    assert result.exp_id == exp_id
    assert result.rows
    assert all(len(row) == len(result.columns) for row in result.rows)
    assert render(result)


@pytest.mark.parametrize("exp_id", SWEEPS)
def test_sweep_drivers_tiny(exp_id):
    kwargs = {"n_sets": 4, "scale": 1.0}
    if exp_id == "EXP-F4":
        kwargs["utils"] = (0.3, 0.6)
    elif exp_id == "EXP-F5":
        kwargs["sram_kib"] = (128, 320)
    else:
        kwargs["factors"] = (0.5, 4.0)
    result = run_experiment(exp_id, **kwargs)
    assert len(result.rows) == 2
    for row in result.rows:
        for cell in row[1:]:
            assert 0.0 <= cell <= 1.0


def test_f7_tiny_and_safety_column():
    result = run_experiment("EXP-F7", utils=(0.4,), n_sets=2, n_phasings=1)
    assert result.rows[0][-1] == 0  # admitted sets never miss


def test_f8_tiny_and_safety():
    result = run_experiment("EXP-F8", utils=(0.4,), n_sets=3)
    for row in result.rows:
        worst = row[-1]
        if worst is not None:
            assert worst <= 1.0


def test_f10_tiny():
    result = run_experiment("EXP-F10", utils=(0.5,), n_sets=2)
    assert len(result.rows) == 1


def test_f11_tiny():
    result = run_experiment("EXP-F11", n_sets=4)
    assert any(str(row[0]).startswith("sched") for row in result.rows)


def test_registry_complete():
    assert set(EXPERIMENTS) == {
        "EXP-T1", "EXP-T2", "EXP-F3", "EXP-F4", "EXP-F5", "EXP-F6",
        "EXP-F7", "EXP-F8", "EXP-T3", "EXP-F9", "EXP-F10", "EXP-F11",
        "EXP-F12", "EXP-F13", "EXP-F14", "EXP-F15", "EXP-F16", "EXP-F17",
        "EXP-F18", "EXP-R1", "EXP-R2",
        "EXP-R3", "EXP-D1", "EXP-S1", "EXP-S2", "EXP-S3",
    }


def test_d1_tiny_sound_with_latency_meta():
    result = run_experiment(
        "EXP-D1", n_traces=2, rates_hz=(1.5,), sram_kib=(192,), duration_s=8.0
    )
    assert len(result.rows) == 1
    row = dict(zip(result.columns, result.rows[0]))
    assert row["misses"] == 0
    assert row["admit_req"] > 0
    assert 0.0 <= row["admit_ratio"] <= 1.0
    assert result.meta["decision_latency_us"]["n"] == row["requests"]


def test_s1_tiny_identity_and_latency_meta():
    result = run_experiment(
        "EXP-S1", devices=600, shard_counts=(1, 4), fleet_sizes=(300,),
        duration_s=1.5,
    )
    assert len(result.rows) == 5  # 2 arrivals x 2 shard counts + 1 size
    for row in result.rows:
        r = dict(zip(result.columns, row))
        # ignored duplicates are the only count not in the row
        assert r["requests"] >= (
            r["admitted"] + r["rej_sram"] + r["rej_rta"] + r["removed"]
            + r["shed"]
        )
        assert r["shed"] == 0  # generous default queue bound
        if r["identical"] is not None:
            assert r["identical"] == 1  # sharded == serial oracle
    meta = result.meta
    assert meta["total_decisions"] > 0
    assert meta["decision_latency_us"]["n"] == meta["total_decisions"]


def test_s2_tiny_warm_identical_and_store_hits():
    result = run_experiment("EXP-S2", sram_kib=(192,), deadlines_ms=(100.0,),
                            scale=0.4)
    cold, warm = (dict(zip(result.columns, row)) for row in result.rows)
    assert cold["phase"] == "cold" and warm["phase"] == "warm"
    assert warm["identical"] == 1  # warm plans bit-identical to cold
    assert cold["hits"] == 0 and cold["writes"] > 0
    assert warm["hits"] > 0 and warm["writes"] == 0
    assert result.meta["store_entries"] == cold["writes"]


def test_r3_tiny_recovery_identical_and_bounded():
    result = run_experiment(
        "EXP-R3", checkpoint_intervals=(2, 8), n_crash_points=2,
        duration_s=5.0, jobs=1,
    )
    assert len(result.rows) == 2
    for row in result.rows:
        r = dict(zip(result.columns, row))
        assert r["identical"] == r["crashes"]  # bit-identical recovery
        assert r["replayed_max"] <= r["ckpt_interval"]
    assert result.meta["recovery_latency_us"]["n"] == 4


def test_f13_tiny():
    result = run_experiment("EXP-F13", utils=(0.4,), n_sets=4)
    util, external_only, with_flash, _ = result.rows[0]
    assert with_flash >= external_only


def test_f14_energy_orderings():
    result = run_experiment("EXP-F14")
    for row in result.rows:
        model, rtmdm, sequential, xip, ratio = row
        assert rtmdm <= sequential + 1e-9
        assert rtmdm <= xip + 1e-9
        assert ratio >= 1.0


def test_unknown_experiment():
    with pytest.raises(KeyError, match="available"):
        run_experiment("EXP-NOPE")
