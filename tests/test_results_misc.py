"""Miscellaneous coverage: SimResult/TaskStats helpers, gantt options,
and small behaviours not pinned elsewhere."""

import pytest

from conftest import make_task
from repro.sched.simulator import SimConfig, TaskStats, simulate
from repro.sched.task import TaskSet


class TestTaskStats:
    def test_empty_stats(self):
        stats = TaskStats(name="t")
        assert stats.jobs == 0
        assert stats.max_response is None

    def test_jobs_counts_unfinished(self):
        stats = TaskStats(name="t", responses=[5, 7], unfinished=2)
        assert stats.jobs == 4
        assert stats.max_response == 7


class TestSimResultHelpers:
    def _result(self):
        return simulate(
            TaskSet.of([
                make_task("a", [(10, 50)], period=200, priority=0),
                make_task("b", [(0, 30)], period=300, priority=1),
            ]),
            SimConfig(horizon=2000, record_trace=True),
        )

    def test_no_misses_flag(self):
        result = self._result()
        assert result.no_misses
        assert result.total_misses == 0

    def test_busy_counters_positive(self):
        result = self._result()
        assert result.cpu_busy > 0
        assert result.dma_busy > 0
        assert result.end_time > 0

    def test_max_response_unknown_task(self):
        result = self._result()
        with pytest.raises(KeyError):
            result.max_response("zz")


class TestGanttOptions:
    def test_task_order_controls_symbols(self):
        result = simulate(
            TaskSet.of([
                make_task("zeta", [(0, 50)], period=200, priority=0),
                make_task("alpha", [(0, 50)], period=200, priority=1),
            ]),
            SimConfig(horizon=1000, record_trace=True),
        )
        default = result.trace.gantt(width=40)
        ordered = result.trace.gantt(width=40, task_order=["zeta", "alpha"])
        assert "A=alpha" in default  # alphabetical by default
        assert "A=zeta" in ordered

    def test_width_respected(self):
        result = simulate(
            TaskSet.of([make_task("a", [(0, 50)], period=200)]),
            SimConfig(horizon=1000, record_trace=True),
        )
        chart = result.trace.gantt(width=25)
        cpu_row = [l for l in chart.splitlines() if l.startswith(" cpu")][0]
        assert len(cpu_row.split("|")[1]) == 25


class TestSegmentXipBytesField:
    def test_xip_bytes_default_zero(self):
        task = make_task("t", [(10, 20)], period=100)
        assert all(s.xip_bytes == 0 for s in task.segments)

    def test_dispatch_overhead_preserves_xip_bytes(self):
        from repro.sched.task import PeriodicTask, Segment, with_dispatch_overhead

        task = PeriodicTask(
            "t", (Segment("s", 0, 100, xip_bytes=512),), 1000, 1000
        )
        inflated = with_dispatch_overhead(TaskSet.of([task]), 10)
        assert inflated.by_name("t").segments[0].xip_bytes == 512
