"""Unit tests for the segmented task model."""

import pytest

from conftest import make_task
from repro.sched.task import PeriodicTask, Segment, TaskSet


class TestSegment:
    def test_valid(self):
        seg = Segment(name="s", load_cycles=10, compute_cycles=20, load_bytes=128)
        assert seg.load_cycles == 10

    def test_zero_load_allowed(self):
        Segment(name="s", load_cycles=0, compute_cycles=1)

    @pytest.mark.parametrize("kwargs", [
        dict(load_cycles=-1, compute_cycles=10),
        dict(load_cycles=0, compute_cycles=0),
        dict(load_cycles=0, compute_cycles=10, load_bytes=-1),
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Segment(name="s", **kwargs)


class TestPeriodicTask:
    def test_aggregates(self):
        task = make_task("t", [(10, 100), (20, 200), (0, 50)], period=1000)
        assert task.total_load == 30
        assert task.total_compute == 350
        assert task.max_segment_compute == 200
        assert task.max_segment_load == 20
        assert task.num_segments == 3
        assert task.cpu_utilization == pytest.approx(0.35)
        assert task.dma_utilization == pytest.approx(0.03)

    def test_deadline_defaults_constrained(self):
        with pytest.raises(ValueError, match="deadline"):
            make_task("t", [(0, 10)], period=100, deadline=101)
        with pytest.raises(ValueError, match="deadline"):
            PeriodicTask(
                name="t",
                segments=(Segment(name="s", load_cycles=0, compute_cycles=10),),
                period=100,
                deadline=0,
            )

    def test_with_priority_preserves_rest(self):
        task = make_task("t", [(5, 10)], period=100, priority=3)
        moved = task.with_priority(1)
        assert moved.priority == 1
        assert moved.segments == task.segments
        assert moved.period == task.period

    def test_with_phase(self):
        task = make_task("t", [(5, 10)], period=100)
        assert task.with_phase(42).phase == 42

    @pytest.mark.parametrize("kwargs", [
        dict(period=0),
        dict(period=100, buffers=0),
        dict(period=100, phase=-1),
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            make_task("t", [(0, 10)], **kwargs)

    def test_needs_segments(self):
        with pytest.raises(ValueError, match="segment"):
            PeriodicTask(name="t", segments=(), period=10, deadline=10)


class TestTaskSet:
    def _ts(self):
        return TaskSet.of([
            make_task("a", [(0, 10)], period=100, priority=1),
            make_task("b", [(0, 20)], period=50, priority=0),
        ])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TaskSet.of([
                make_task("a", [(0, 10)], period=100),
                make_task("a", [(0, 20)], period=50),
            ])

    def test_by_name(self):
        ts = self._ts()
        assert ts.by_name("a").period == 100
        with pytest.raises(KeyError):
            ts.by_name("zz")

    def test_sorted_by_priority(self):
        ts = self._ts()
        assert [t.name for t in ts.sorted_by_priority()] == ["b", "a"]

    def test_utilizations(self):
        ts = self._ts()
        assert ts.cpu_utilization == pytest.approx(0.1 + 0.4)
        assert ts.dma_utilization == 0.0

    def test_hyperperiod(self):
        assert self._ts().hyperperiod() == 100

    def test_with_priorities_positional(self):
        ts = self._ts().with_priorities([5, 7])
        assert ts.by_name("a").priority == 5
        assert ts.by_name("b").priority == 7
        with pytest.raises(ValueError):
            self._ts().with_priorities([1])

    def test_with_phases(self):
        ts = self._ts().with_phases([3, 4])
        assert ts.by_name("a").phase == 3
        assert ts.by_name("b").phase == 4

    def test_iteration_and_indexing(self):
        ts = self._ts()
        assert len(ts) == 2
        assert ts[0].name == "a"
        assert [t.name for t in ts] == ["a", "b"]
