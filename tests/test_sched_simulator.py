"""Unit tests for the discrete-event simulator."""

import pytest

from conftest import make_task
from repro.core.pipeline import isolated_latency
from repro.hw.dma import DmaArbitration
from repro.sched.policies import CpuPolicy
from repro.sched.simulator import SimConfig, simulate
from repro.sched.task import TaskSet


def _run(tasks, horizon, policy=CpuPolicy.FP_NP, arb=DmaArbitration.PRIORITY, **kw):
    return simulate(
        TaskSet.of(tasks),
        SimConfig(policy=policy, dma_arbitration=arb, horizon=horizon, **kw),
    )


class TestSingleTask:
    def test_isolated_response_matches_pipeline_recurrence(self):
        task = make_task("t", [(50, 100), (80, 120), (30, 60)], period=10_000)
        result = _run([task], horizon=50_000)
        expected = isolated_latency(task.segments, task.buffers)
        assert result.max_response("t") == expected
        assert result.no_misses

    def test_single_buffer_serializes(self):
        segs = [(50, 100), (80, 120)]
        fast = make_task("t", segs, period=10_000, buffers=2)
        slow = make_task("t", segs, period=10_000, buffers=1)
        r_fast = _run([fast], horizon=20_000).max_response("t")
        r_slow = _run([slow], horizon=20_000).max_response("t")
        assert r_slow == sum(l + c for l, c in segs)
        assert r_fast < r_slow

    def test_zero_load_segments_skip_dma(self):
        task = make_task("t", [(0, 100), (0, 50)], period=1000)
        result = _run([task], horizon=3000, record_trace=True)
        assert result.dma_busy == 0
        assert result.max_response("t") == 150

    def test_job_count_matches_horizon(self):
        task = make_task("t", [(0, 10)], period=100)
        result = _run([task], horizon=1000)
        assert result.stats["t"].jobs == 10

    def test_phase_delays_first_release(self):
        task = make_task("t", [(0, 10)], period=100, phase=950)
        result = _run([task], horizon=1000)
        assert result.stats["t"].jobs == 1

    def test_phase_beyond_horizon_means_no_jobs(self):
        task = make_task("t", [(0, 10)], period=100, phase=2000)
        result = _run([task], horizon=1000)
        assert result.stats["t"].jobs == 0


class TestTwoTasks:
    def test_higher_priority_wins_cpu(self):
        hi = make_task("hi", [(0, 100)], period=1000, priority=0)
        lo = make_task("lo", [(0, 100)], period=1000, priority=1)
        result = _run([hi, lo], horizon=5000)
        assert result.max_response("hi") == 100
        assert result.max_response("lo") == 200

    def test_nonpreemptive_blocking(self):
        # lo releases at 0 and starts its long segment; hi at 10 must wait.
        hi = make_task("hi", [(0, 50)], period=1000, priority=0, phase=10)
        lo = make_task("lo", [(0, 400)], period=1000, priority=1)
        result = _run([hi, lo], horizon=2000)
        assert result.max_response("hi") == 390 + 50

    def test_preemptive_policy_preempts(self):
        hi = make_task("hi", [(0, 50)], period=1000, priority=0, phase=10)
        lo = make_task("lo", [(0, 400)], period=1000, priority=1)
        result = _run([hi, lo], horizon=2000, policy=CpuPolicy.FP_P)
        assert result.max_response("hi") == 50
        # lo still completes with its full demand plus the preemption.
        assert result.max_response("lo") == 450

    def test_edf_orders_by_absolute_deadline(self):
        # a has the later period but an earlier absolute deadline.
        a = make_task("a", [(0, 100)], period=1000, deadline=150, priority=5)
        b = make_task("b", [(0, 100)], period=1000, deadline=500, priority=0)
        result = _run([a, b], horizon=3000, policy=CpuPolicy.EDF_NP)
        assert result.max_response("a") == 100
        assert result.max_response("b") == 200

    def test_dma_priority_arbitration(self):
        # Both want the DMA at t=0; priority arbitration serves hi first.
        hi = make_task("hi", [(100, 10)], period=1000, priority=0)
        lo = make_task("lo", [(100, 10)], period=1000, priority=1)
        result = _run([hi, lo], horizon=2000)
        assert result.max_response("hi") == 110
        assert result.max_response("lo") == 210

    def test_dma_fifo_arbitration_respects_eligibility_order(self):
        hi = make_task("hi", [(100, 10)], period=1000, priority=0, phase=5)
        lo = make_task("lo", [(100, 10)], period=1000, priority=1, phase=0)
        result = _run([hi, lo], horizon=2000, arb=DmaArbitration.FIFO)
        # lo's transfer was queued first and is served first under FIFO.
        assert result.max_response("lo") == 110
        assert result.max_response("hi") == 195 + 10

    def test_dma_transfers_are_nonpreemptive_even_by_priority(self):
        hi = make_task("hi", [(100, 10)], period=1000, priority=0, phase=50)
        lo = make_task("lo", [(100, 10)], period=1000, priority=1)
        result = _run([hi, lo], horizon=2000)
        # hi waits for lo's in-flight transfer to finish (50 cycles left).
        assert result.max_response("hi") == 50 + 100 + 10


class TestOverloadAndMisses:
    def test_overload_counts_misses(self):
        task = make_task("t", [(0, 150)], period=100)
        result = _run([task], horizon=1000)
        assert result.total_misses > 0
        assert not result.no_misses

    def test_abort_on_miss_stops_early(self):
        task = make_task("t", [(0, 150)], period=100)
        result = _run([task], horizon=100_000, abort_on_miss=True)
        assert result.aborted_on_miss
        assert result.end_time < 100_000

    def test_hard_cap_truncates_unbounded_backlog(self):
        task = make_task("t", [(0, 300)], period=100)
        result = _run([task], horizon=5000)
        assert result.truncated or result.total_misses > 0

    def test_queued_jobs_run_fifo_within_task(self):
        # Period 100, execution 150: job k finishes before job k+1 starts.
        task = make_task("t", [(0, 150)], period=100)
        result = _run([task], horizon=450, record_trace=True)
        intervals = result.trace.intervals("cpu")
        jobs = [e.job for e in intervals]
        assert jobs == sorted(jobs)


class TestTraceIntegrity:
    def test_no_resource_overlap(self):
        tasks = [
            make_task("a", [(30, 70), (40, 90)], period=500, priority=0),
            make_task("b", [(60, 120), (0, 80)], period=700, priority=1),
            make_task("c", [(20, 50)], period=300, priority=2),
        ]
        result = _run(tasks, horizon=10_000, record_trace=True)
        result.trace.verify_no_overlap()

    def test_busy_accounting_matches_trace(self):
        tasks = [
            make_task("a", [(30, 70)], period=500, priority=0),
            make_task("b", [(60, 120)], period=700, priority=1),
        ]
        result = _run(tasks, horizon=5000, record_trace=True)
        assert result.cpu_busy == result.trace.busy_cycles("cpu")
        assert result.dma_busy == result.trace.busy_cycles("dma")

    def test_completions_equal_releases_when_schedulable(self):
        tasks = [make_task("a", [(10, 50)], period=200, priority=0)]
        result = _run(tasks, horizon=2000, record_trace=True)
        releases = len(result.trace.points("release"))
        completes = len(result.trace.points("complete"))
        assert releases == completes == result.stats["a"].jobs


class TestConfigValidation:
    def test_bad_horizon_rejected(self):
        task = make_task("t", [(0, 10)], period=100)
        with pytest.raises(ValueError, match="horizon"):
            simulate(TaskSet.of([task]), SimConfig(horizon=0))
