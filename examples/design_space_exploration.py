#!/usr/bin/env python3
"""Design-space exploration: which platform can host this workload?

Given a fixed multi-DNN workload, sweep the platform presets (and a few
SRAM down-bins of each) and report which configurations RT-MDM admits —
the question a system architect actually asks: *what is the cheapest
hardware that still meets every deadline?*

Run with::

    python examples/design_space_exploration.py
"""

from repro import RtMdm, build_model, get_platform
from repro.hw.presets import PLATFORMS

WORKLOAD = (
    ("kws", "ds-cnn", 0.250),
    ("vision", "mobilenet-v1-0.25", 1.000),
    ("anomaly", "autoencoder", 0.500),
)

SRAM_BINS_KIB = (128, 192, 256, 320, 512)


def try_configuration(platform):
    """Plan the workload on one platform; return (admitted, detail)."""
    rt = RtMdm(platform)
    for name, model_name, period_s in WORKLOAD:
        rt.add_task(name, build_model(model_name), period_s=period_s)
    config = rt.configure()
    if not config.feasible:
        return False, f"infeasible ({config.infeasible_reason.split(':')[0]})"
    if not config.admitted:
        worst = min(
            (config.analysis.margin(t.name) or -1, t.name) for t in config.taskset
        )
        return False, f"analysis rejects (worst margin: {worst[1]})"
    slack = min(
        config.analysis.margin(t.name) / t.deadline for t in config.taskset
    )
    return True, f"admitted, min deadline slack {100 * slack:.0f}%"


def main() -> None:
    print("workload:")
    for name, model_name, period_s in WORKLOAD:
        print(f"  {name:8s} {model_name:20s} every {1000 * period_s:.0f} ms")
    print()
    for key in sorted(PLATFORMS):
        base = get_platform(key)
        for sram_kib in SRAM_BINS_KIB:
            if sram_kib * 1024 > base.mcu.sram_bytes:
                continue
            platform = base.with_sram_bytes(sram_kib * 1024)
            admitted, detail = try_configuration(platform)
            marker = "OK " if admitted else "-- "
            print(f"{marker} {key:12s} @ {sram_kib:4d} KiB SRAM: {detail}")


if __name__ == "__main__":
    main()
