"""Fault injection and overload management for the RT-MDM simulator.

The nominal timing engine answers "does the schedule fit"; this package
makes it answer "what happens when things go wrong":

* :mod:`repro.robust.faults` — seeded, reproducible fault models (WCET
  overrun, DMA transfer retries, bus-contention jitter).
* :mod:`repro.robust.overload` — overload policies (continue / abort at
  deadline / skip next release / degrade to a fallback model variant).
* :mod:`repro.robust.metrics` — miss ratios, shed load, and degraded-mode
  residency of fault-injected runs.

Wire the pieces through :class:`repro.sched.simulator.SimConfig`
(``faults=``, ``overrun=``, ``degrade=``); with a null fault config and
``OverrunPolicy.CONTINUE`` the simulator is bit-identical to the nominal
engine.
"""

from repro.robust.faults import FaultConfig, FaultInjector, InflationModel
from repro.robust.metrics import (
    aborted_jobs,
    degraded_residency,
    miss_ratio,
    robustness_summary,
    skipped_releases,
)
from repro.robust.overload import (
    DegradeConfig,
    OverloadManager,
    OverrunPolicy,
    degraded_variant,
)

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "InflationModel",
    "OverrunPolicy",
    "DegradeConfig",
    "OverloadManager",
    "degraded_variant",
    "miss_ratio",
    "aborted_jobs",
    "skipped_releases",
    "degraded_residency",
    "robustness_summary",
]
