"""Model zoo: the TinyML topologies used in multi-DNN MCU evaluations.

These are faithful reimplementations of the standard benchmark topologies
(MLPerf Tiny and close relatives) at the granularity that matters for
scheduling: per-layer MACs, parameter bytes and activation footprints.

Adaptations (documented per builder):

* ``resnet8`` uses identity skips with a separate (non-residual)
  downsampling convolution between stages, because the model graph here
  expresses projections as chain layers.  Totals differ slightly from the
  MLPerf reference and are reported exactly as computed.
* ``mcunet-vww`` is an MBConv (inverted-residual) network in the MCUNet
  style, with identity skips exactly where stride is 1 and channel counts
  match — which is when identity residuals apply anyway.

All builders take no arguments and return a validated
:class:`~repro.dnn.models.Model`; use :func:`build_model` for lookup by
name.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.dnn.layers import (
    Add,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Flatten,
    Layer,
    Pool,
    Softmax,
)
from repro.dnn.models import Model


def _dw_separable(
    layers: List[Layer], index: int, out_channels: int, stride: int = 1
) -> None:
    """Append a depthwise-separable block (dw3x3 + pw1x1) in place."""
    prev_shape = layers[-1].output_shape
    layers.append(
        DepthwiseConv2D(name=f"dw{index}", input_shape=prev_shape, kernel=3, stride=stride)
    )
    layers.append(
        Conv2D(
            name=f"pw{index}",
            input_shape=layers[-1].output_shape,
            out_channels=out_channels,
            kernel=1,
        )
    )


def lenet5() -> Model:
    """LeNet-5 on 28x28x1 (MNIST-class): the smallest zoo entry."""
    layers: List[Layer] = [
        Conv2D(name="c1", input_shape=(28, 28, 1), out_channels=6, kernel=5, padding="valid")
    ]
    layers.append(Pool(name="s2", input_shape=layers[-1].output_shape, pool=2))
    layers.append(
        Conv2D(
            name="c3",
            input_shape=layers[-1].output_shape,
            out_channels=16,
            kernel=5,
            padding="valid",
        )
    )
    layers.append(Pool(name="s4", input_shape=layers[-1].output_shape, pool=2))
    layers.append(Flatten(name="flat", input_shape=layers[-1].output_shape))
    layers.append(Dense(name="f5", input_shape=layers[-1].output_shape, out_features=120))
    layers.append(Dense(name="f6", input_shape=layers[-1].output_shape, out_features=84))
    layers.append(Dense(name="out", input_shape=layers[-1].output_shape, out_features=10))
    layers.append(Softmax(name="softmax", input_shape=layers[-1].output_shape))
    return Model.sequential("lenet5", layers)


def tinyconv() -> Model:
    """The TensorFlow micro-speech "tiny_conv" keyword spotter (49x10 MFCC)."""
    layers: List[Layer] = [
        Conv2D(
            name="conv",
            input_shape=(49, 10, 1),
            out_channels=8,
            kernel=(10, 8),
            stride=(2, 2),
        )
    ]
    layers.append(Flatten(name="flat", input_shape=layers[-1].output_shape))
    layers.append(Dense(name="fc", input_shape=layers[-1].output_shape, out_features=4))
    layers.append(Softmax(name="softmax", input_shape=layers[-1].output_shape))
    return Model.sequential("tinyconv", layers)


def ds_cnn() -> Model:
    """MLPerf-Tiny keyword spotting DS-CNN (49x10 MFCC, 12 classes)."""
    layers: List[Layer] = [
        Conv2D(
            name="conv1",
            input_shape=(49, 10, 1),
            out_channels=64,
            kernel=(10, 4),
            stride=(2, 2),
        )
    ]
    for i in range(1, 5):
        _dw_separable(layers, i, out_channels=64)
    layers.append(Pool(name="gap", input_shape=layers[-1].output_shape, mode="global"))
    layers.append(Flatten(name="flat", input_shape=layers[-1].output_shape))
    layers.append(Dense(name="fc", input_shape=layers[-1].output_shape, out_features=12))
    layers.append(Softmax(name="softmax", input_shape=layers[-1].output_shape))
    return Model.sequential("ds-cnn", layers)


def resnet8() -> Model:
    """ResNet-8-style residual network on 32x32x3 (CIFAR-class).

    Identity-skip adaptation: downsampling happens in dedicated
    transition convolutions between stages so that every residual skip is
    an identity (see module docstring).
    """
    layers: List[Layer] = [
        Conv2D(name="stem", input_shape=(32, 32, 3), out_channels=16, kernel=3)
    ]
    skips: List[Tuple[int, int]] = []

    def residual_stage(tag: str, channels: int) -> None:
        producer = len(layers) - 1
        layers.append(
            Conv2D(
                name=f"{tag}a",
                input_shape=layers[-1].output_shape,
                out_channels=channels,
                kernel=3,
            )
        )
        layers.append(
            Conv2D(
                name=f"{tag}b",
                input_shape=layers[-1].output_shape,
                out_channels=channels,
                kernel=3,
            )
        )
        layers.append(Add(name=f"{tag}add", input_shape=layers[-1].output_shape))
        skips.append((producer, len(layers) - 1))

    residual_stage("res1_", 16)
    layers.append(
        Conv2D(
            name="down2",
            input_shape=layers[-1].output_shape,
            out_channels=32,
            kernel=3,
            stride=2,
        )
    )
    residual_stage("res2_", 32)
    layers.append(
        Conv2D(
            name="down3",
            input_shape=layers[-1].output_shape,
            out_channels=64,
            kernel=3,
            stride=2,
        )
    )
    residual_stage("res3_", 64)
    layers.append(Pool(name="gap", input_shape=layers[-1].output_shape, mode="global"))
    layers.append(Flatten(name="flat", input_shape=layers[-1].output_shape))
    layers.append(Dense(name="fc", input_shape=layers[-1].output_shape, out_features=10))
    layers.append(Softmax(name="softmax", input_shape=layers[-1].output_shape))
    return Model.sequential("resnet8", layers, skips)


def mobilenet_v1_025() -> Model:
    """MobileNet-v1 with width 0.25 on 96x96x3 (MLPerf-Tiny visual wake words)."""

    def ch(c: int) -> int:
        return max(8, c // 4)

    layers: List[Layer] = [
        Conv2D(name="stem", input_shape=(96, 96, 3), out_channels=ch(32), kernel=3, stride=2)
    ]
    plan = [
        (ch(64), 1),
        (ch(128), 2),
        (ch(128), 1),
        (ch(256), 2),
        (ch(256), 1),
        (ch(512), 2),
        (ch(512), 1),
        (ch(512), 1),
        (ch(512), 1),
        (ch(512), 1),
        (ch(512), 1),
        (ch(1024), 2),
        (ch(1024), 1),
    ]
    for i, (channels, stride) in enumerate(plan, start=1):
        _dw_separable(layers, i, out_channels=channels, stride=stride)
    layers.append(Pool(name="gap", input_shape=layers[-1].output_shape, mode="global"))
    layers.append(Flatten(name="flat", input_shape=layers[-1].output_shape))
    layers.append(Dense(name="fc", input_shape=layers[-1].output_shape, out_features=2))
    layers.append(Softmax(name="softmax", input_shape=layers[-1].output_shape))
    return Model.sequential("mobilenet-v1-0.25", layers)


def kws_cnn() -> Model:
    """The classic cnn-trad-fpool3 keyword spotter (Sainath & Parada).

    Two large-kernel convolutions and a small dense head on 49x10 MFCCs;
    heavier than DS-CNN per inference but a standard KWS baseline.
    """
    layers: List[Layer] = [
        Conv2D(
            name="conv1",
            input_shape=(49, 10, 1),
            out_channels=64,
            kernel=(20, 8),
            stride=(1, 1),
        )
    ]
    layers.append(Pool(name="pool1", input_shape=layers[-1].output_shape,
                       pool=(2, 2)))
    layers.append(
        Conv2D(
            name="conv2",
            input_shape=layers[-1].output_shape,
            out_channels=64,
            kernel=(10, 4),
        )
    )
    layers.append(Flatten(name="flat", input_shape=layers[-1].output_shape))
    layers.append(Dense(name="lin", input_shape=layers[-1].output_shape,
                        out_features=32))
    layers.append(Dense(name="dnn", input_shape=layers[-1].output_shape,
                        out_features=128))
    layers.append(Dense(name="out", input_shape=layers[-1].output_shape,
                        out_features=12))
    layers.append(Softmax(name="softmax", input_shape=layers[-1].output_shape))
    return Model.sequential("kws-cnn", layers)


def mobilenet_v1_050() -> Model:
    """MobileNet-v1 width 0.5 on 128x128x3: the large vision option.

    ~830k int8 parameters — far beyond any preset's SRAM and a heavier
    companion to the 0.25x variant for external-memory stress tests.
    """

    def ch(c: int) -> int:
        return max(8, c // 2)

    layers: List[Layer] = [
        Conv2D(name="stem", input_shape=(128, 128, 3), out_channels=ch(32),
               kernel=3, stride=2)
    ]
    plan = [
        (ch(64), 1),
        (ch(128), 2),
        (ch(128), 1),
        (ch(256), 2),
        (ch(256), 1),
        (ch(512), 2),
        (ch(512), 1),
        (ch(512), 1),
        (ch(512), 1),
        (ch(512), 1),
        (ch(512), 1),
        (ch(1024), 2),
        (ch(1024), 1),
    ]
    for i, (channels, stride) in enumerate(plan, start=1):
        _dw_separable(layers, i, out_channels=channels, stride=stride)
    layers.append(Pool(name="gap", input_shape=layers[-1].output_shape, mode="global"))
    layers.append(Flatten(name="flat", input_shape=layers[-1].output_shape))
    layers.append(Dense(name="fc", input_shape=layers[-1].output_shape,
                        out_features=10))
    layers.append(Softmax(name="softmax", input_shape=layers[-1].output_shape))
    return Model.sequential("mobilenet-v1-0.5", layers)


def autoencoder() -> Model:
    """MLPerf-Tiny anomaly-detection deep autoencoder (640-d input).

    All-dense: weight-heavy and compute-light, the adversarial case for
    execute-in-place and the best case for staging.
    """
    layers: List[Layer] = []
    shape: Tuple[int, ...] = (640,)
    widths = [128, 128, 128, 128, 8, 128, 128, 128, 128, 640]
    for i, width in enumerate(widths):
        layers.append(
            Dense(
                name=f"fc{i}",
                input_shape=shape if not layers else layers[-1].output_shape,
                out_features=width,
            )
        )
    return Model.sequential("autoencoder", layers)


def _mbconv(
    layers: List[Layer],
    skips: List[Tuple[int, int]],
    tag: str,
    out_channels: int,
    stride: int,
    expand: int,
) -> None:
    """Append an inverted-residual (MBConv) block, with identity skip
    when stride is 1 and channel counts match."""
    in_shape = layers[-1].output_shape
    in_channels = in_shape[2]
    producer = len(layers) - 1
    hidden = in_channels * expand
    if expand != 1:
        layers.append(
            Conv2D(name=f"{tag}exp", input_shape=in_shape, out_channels=hidden, kernel=1)
        )
    layers.append(
        DepthwiseConv2D(
            name=f"{tag}dw", input_shape=layers[-1].output_shape, kernel=3, stride=stride
        )
    )
    layers.append(
        Conv2D(
            name=f"{tag}proj",
            input_shape=layers[-1].output_shape,
            out_channels=out_channels,
            kernel=1,
        )
    )
    if stride == 1 and in_channels == out_channels:
        layers.append(Add(name=f"{tag}add", input_shape=layers[-1].output_shape))
        skips.append((producer, len(layers) - 1))


def mcunet_vww() -> Model:
    """MCUNet-style inverted-residual network on 144x144x3.

    The large model of the zoo (~600 KiB of int8 weights): cannot run from
    on-chip memory on any preset MCU, so it exercises the external-memory
    path end to end.
    """
    layers: List[Layer] = [
        Conv2D(name="stem", input_shape=(144, 144, 3), out_channels=16, kernel=3, stride=2)
    ]
    skips: List[Tuple[int, int]] = []
    _mbconv(layers, skips, "b1_", out_channels=8, stride=1, expand=1)
    plan = [
        # (out_channels, stride, expand, repeats)
        (16, 2, 4, 2),
        (24, 2, 4, 3),
        (40, 2, 4, 3),
        (48, 1, 4, 2),
        (96, 2, 4, 3),
        (160, 1, 4, 1),
    ]
    block = 2
    for out_channels, stride, expand, repeats in plan:
        for r in range(repeats):
            _mbconv(
                layers,
                skips,
                f"b{block}_",
                out_channels=out_channels,
                stride=stride if r == 0 else 1,
                expand=expand,
            )
            block += 1
    layers.append(Pool(name="gap", input_shape=layers[-1].output_shape, mode="global"))
    layers.append(Flatten(name="flat", input_shape=layers[-1].output_shape))
    layers.append(Dense(name="fc", input_shape=layers[-1].output_shape, out_features=2))
    layers.append(Softmax(name="softmax", input_shape=layers[-1].output_shape))
    return Model.sequential("mcunet-vww", layers, skips)


def mobilenet_v2_035() -> Model:
    """MobileNet-v2 width 0.35 on 96x96x3: a mid-size residual network."""

    def ch(c: int) -> int:
        scaled = int(c * 0.35)
        return max(8, (scaled + 4) // 8 * 8)

    layers: List[Layer] = [
        Conv2D(name="stem", input_shape=(96, 96, 3), out_channels=ch(32), kernel=3, stride=2)
    ]
    skips: List[Tuple[int, int]] = []
    _mbconv(layers, skips, "b1_", out_channels=ch(16), stride=1, expand=1)
    plan = [
        (ch(24), 2, 6, 2),
        (ch(32), 2, 6, 3),
        (ch(64), 2, 6, 4),
        (ch(96), 1, 6, 3),
        (ch(160), 2, 6, 3),
        (ch(320), 1, 6, 1),
    ]
    block = 2
    for out_channels, stride, expand, repeats in plan:
        for r in range(repeats):
            _mbconv(
                layers,
                skips,
                f"b{block}_",
                out_channels=out_channels,
                stride=stride if r == 0 else 1,
                expand=expand,
            )
            block += 1
    layers.append(
        Conv2D(
            name="head", input_shape=layers[-1].output_shape, out_channels=ch(1280), kernel=1
        )
    )
    layers.append(Pool(name="gap", input_shape=layers[-1].output_shape, mode="global"))
    layers.append(Flatten(name="flat", input_shape=layers[-1].output_shape))
    layers.append(Dense(name="fc", input_shape=layers[-1].output_shape, out_features=2))
    layers.append(Softmax(name="softmax", input_shape=layers[-1].output_shape))
    return Model.sequential("mobilenet-v2-0.35", layers, skips)


MODEL_BUILDERS: Dict[str, Callable[[], Model]] = {
    "lenet5": lenet5,
    "tinyconv": tinyconv,
    "ds-cnn": ds_cnn,
    "kws-cnn": kws_cnn,
    "resnet8": resnet8,
    "mobilenet-v1-0.25": mobilenet_v1_025,
    "mobilenet-v1-0.5": mobilenet_v1_050,
    "autoencoder": autoencoder,
    "mcunet-vww": mcunet_vww,
    "mobilenet-v2-0.35": mobilenet_v2_035,
}


def list_models() -> List[str]:
    """Names of all zoo models."""
    return sorted(MODEL_BUILDERS)


def build_model(name: str) -> Model:
    """Build a zoo model by name, with a helpful error on typos."""
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        raise KeyError(f"unknown model {name!r}; available: {list_models()}") from None
    return builder()
