"""Unit tests for layer arithmetic."""

import pytest

from repro.dnn.layers import (
    Add,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Flatten,
    Pool,
    Softmax,
)
from repro.dnn.quantization import FLOAT32, INT8


class TestConv2D:
    def test_same_padding_shape(self):
        conv = Conv2D(name="c", input_shape=(32, 32, 3), out_channels=16, kernel=3)
        assert conv.output_shape == (32, 32, 16)

    def test_stride_halves_same_padding(self):
        conv = Conv2D(name="c", input_shape=(32, 32, 3), out_channels=16, kernel=3, stride=2)
        assert conv.output_shape == (16, 16, 16)

    def test_valid_padding_shape(self):
        conv = Conv2D(
            name="c", input_shape=(28, 28, 1), out_channels=6, kernel=5, padding="valid"
        )
        assert conv.output_shape == (24, 24, 6)

    def test_macs_formula(self):
        conv = Conv2D(name="c", input_shape=(8, 8, 4), out_channels=8, kernel=3)
        assert conv.macs == 8 * 8 * 8 * 3 * 3 * 4

    def test_params_and_bias(self):
        conv = Conv2D(name="c", input_shape=(8, 8, 4), out_channels=8, kernel=3)
        assert conv.param_count == 3 * 3 * 4 * 8
        assert conv.bias_count == 8

    def test_rectangular_kernel(self):
        conv = Conv2D(
            name="c",
            input_shape=(49, 10, 1),
            out_channels=64,
            kernel=(10, 4),
            stride=(2, 2),
        )
        assert conv.output_shape == (25, 5, 64)
        assert conv.param_count == 10 * 4 * 1 * 64

    def test_param_bytes_follow_quantization(self):
        conv = Conv2D(name="c", input_shape=(8, 8, 4), out_channels=8, kernel=3)
        int8 = conv.param_bytes(INT8)
        f32 = conv.param_bytes(FLOAT32)
        assert int8 == conv.param_count + 4 * conv.bias_count
        assert f32 == 4 * conv.param_count + 4 * conv.bias_count

    @pytest.mark.parametrize("kwargs", [
        dict(out_channels=0),
        dict(kernel=0),
        dict(stride=-1),
        dict(padding="reflect"),
        dict(input_shape=(8, 8)),
    ])
    def test_invalid_rejected(self, kwargs):
        base = dict(name="c", input_shape=(8, 8, 4), out_channels=8, kernel=3)
        base.update(kwargs)
        with pytest.raises(ValueError):
            Conv2D(**base)

    def test_valid_padding_kernel_too_big(self):
        with pytest.raises(ValueError, match="larger than input"):
            Conv2D(name="c", input_shape=(4, 4, 1), out_channels=2, kernel=5,
                   padding="valid")


class TestDepthwiseConv2D:
    def test_preserves_channels(self):
        dw = DepthwiseConv2D(name="d", input_shape=(16, 16, 24), kernel=3)
        assert dw.output_shape == (16, 16, 24)

    def test_macs_independent_of_output_channels(self):
        dw = DepthwiseConv2D(name="d", input_shape=(16, 16, 24), kernel=3)
        assert dw.macs == 16 * 16 * 24 * 9
        assert dw.param_count == 9 * 24


class TestDense:
    def test_flattens_input(self):
        dense = Dense(name="d", input_shape=(4, 4, 2), out_features=10)
        assert dense.output_shape == (10,)
        assert dense.macs == 32 * 10
        assert dense.param_count == 32 * 10
        assert dense.bias_count == 10


class TestPool:
    def test_default_stride_equals_pool(self):
        pool = Pool(name="p", input_shape=(8, 8, 4), pool=2)
        assert pool.output_shape == (4, 4, 4)

    def test_global_mode(self):
        pool = Pool(name="p", input_shape=(7, 5, 64), mode="global")
        assert pool.output_shape == (1, 1, 64)

    def test_parameter_free(self):
        pool = Pool(name="p", input_shape=(8, 8, 4), pool=2)
        assert pool.param_count == 0 and pool.macs == 0

    def test_bad_mode(self):
        with pytest.raises(ValueError, match="avg|max|global"):
            Pool(name="p", input_shape=(8, 8, 4), mode="median")


class TestShapeOnlyLayers:
    def test_add_preserves_shape(self):
        add = Add(name="a", input_shape=(8, 8, 16))
        assert add.output_shape == (8, 8, 16)
        assert add.param_count == 0

    def test_flatten(self):
        flat = Flatten(name="f", input_shape=(4, 4, 16))
        assert flat.output_shape == (256,)

    def test_softmax_needs_flat_input(self):
        Softmax(name="s", input_shape=(10,))
        with pytest.raises(ValueError, match="flat"):
            Softmax(name="s", input_shape=(4, 4))

    def test_elements(self):
        flat = Flatten(name="f", input_shape=(4, 4, 16))
        assert flat.input_elements == 256
        assert flat.output_elements == 256
