"""Persistent, content-addressed plan store (the cross-process cache tier).

:mod:`repro.core.segcache` amortizes segmentation searches *within* one
process; a fleet of identical MCUs re-plans the same (model, platform,
budget) keys across many processes and runs.  This module adds an
on-disk tier below the in-memory LRU: search results are written as
CRC-tagged JSON records addressed by the SHA-256 of their canonical
search key — the same SRAM-excluding planner platform fingerprint and
quantized plan knobs the LRU uses — so a warm store returns plans that
are **bit-identical to cold planning by construction** (canonicalization
happens before the key on every path).

Durability model:

* Records are self-validating: schema tag, a full canonical-key echo and
  a CRC32 over the canonical record body.  A missing file, unparseable
  JSON, CRC mismatch or schema mismatch counts as ``corrupt`` and is
  treated as a miss — the cold search then rewrites the record (cold
  rebuild, never a crash).
* A key echo that fails to match counts as ``stale`` and is likewise a
  miss: a truncated-hash collision or a record written by an
  incompatible build can never return a wrong plan.
* Writes go through a temp file + :func:`os.replace`, so concurrent
  writers are last-wins safe and readers never observe a torn record.

The store holds **search-stage** values only (the expensive stage); the
cheap zoo/refine memos stay in-memory.  Counters ride the segcache
snapshot/absorb protocol as the ``"planstore"`` pseudo-entry, so
parallel workers' store traffic merges into exact totals.

Enable with :func:`configure` or the ``REPRO_PLAN_STORE=<dir>``
environment variable (workers spawned by the parallel runner inherit
the environment, not :func:`configure`).  Disabled by default.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.sched.task import Segment

__all__ = [
    "PlanStore",
    "STORE_SCHEMA",
    "active",
    "canonical_key",
    "configure",
    "counters_dict",
    "counters_snapshot",
    "counters_absorb",
    "reset_counters",
]

#: On-disk record schema tag; bump on any incompatible layout change.
STORE_SCHEMA = "rtmdm-planstore/1"

_COUNTER_NAMES = ("hits", "misses", "corrupt", "stale", "writes")

_lock = threading.Lock()
_counters: Dict[str, int] = {name: 0 for name in _COUNTER_NAMES}


def canonical_key(key: Any) -> str:
    """Canonical JSON text of a (frozen) search key.

    Keys come from :func:`repro.core.segcache.freeze`: nested tuples of
    JSON scalars.  ``json.dumps`` renders tuples as arrays with a
    deterministic float repr, so equal keys always canonicalize to equal
    text across processes.
    """
    return json.dumps(key, sort_keys=True, separators=(",", ":"))


def _crc(record: Dict) -> str:
    body = {k: v for k, v in record.items() if k != "crc"}
    text = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return f"{zlib.crc32(text.encode('utf-8')) & 0xFFFFFFFF:08x}"


def _bump(name: str, by: int = 1) -> None:
    with _lock:
        _counters[name] += by


def encode_value(value: Tuple) -> Dict:
    """Plain-data form of a segcache search value (``("ok", ...)``/``("err", ...)``)."""
    kind = value[0]
    if kind == "err":
        return {"kind": "err", "message": value[1]}
    if kind == "err-unfit":
        # Canonical byte-infeasibility marker: the message is rendered
        # by the reader from its own call arguments, never stored.
        return {"kind": "err-unfit"}
    boundaries, segments = value[1], value[2]
    return {
        "kind": "ok",
        "boundaries": [[start, end] for start, end in boundaries],
        "segments": [
            {
                "name": s.name,
                "load_cycles": s.load_cycles,
                "compute_cycles": s.compute_cycles,
                "load_bytes": s.load_bytes,
                "xip_bytes": s.xip_bytes,
            }
            for s in segments
        ],
    }


def decode_value(payload: Dict) -> Tuple:
    """Inverse of :func:`encode_value` (raises on malformed payloads)."""
    kind = payload["kind"]
    if kind == "err":
        return ("err", str(payload["message"]))
    if kind == "err-unfit":
        return ("err-unfit",)
    if kind != "ok":
        raise ValueError(f"unknown planstore value kind {kind!r}")
    boundaries = tuple((int(a), int(b)) for a, b in payload["boundaries"])
    segments = tuple(
        Segment(
            name=str(s["name"]),
            load_cycles=int(s["load_cycles"]),
            compute_cycles=int(s["compute_cycles"]),
            load_bytes=int(s.get("load_bytes", 0)),
            xip_bytes=int(s.get("xip_bytes", 0)),
        )
        for s in payload["segments"]
    )
    return ("ok", boundaries, segments)


class PlanStore:
    """One on-disk store rooted at ``root`` (created on demand)."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def __len__(self) -> int:
        return sum(
            1 for name in os.listdir(self.root) if name.endswith(".json")
        )

    def path_for(self, key: Any) -> str:
        """The record path a key addresses (sha256 of its canonical text)."""
        canon = canonical_key(key)
        digest = hashlib.sha256(canon.encode("utf-8")).hexdigest()[:40]
        return os.path.join(self.root, f"{digest}.json")

    def get(self, key: Any) -> Tuple[bool, Any]:
        """``(found, value)``; every failure mode degrades to a miss."""
        canon = canonical_key(key)
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            if os.path.exists(path):
                _bump("corrupt")
            _bump("misses")
            return False, None
        if (
            not isinstance(record, dict)
            or record.get("schema") != STORE_SCHEMA
            or record.get("crc") != _crc(record)
        ):
            _bump("corrupt")
            _bump("misses")
            return False, None
        if record.get("key") != canon:
            _bump("stale")
            _bump("misses")
            return False, None
        try:
            value = decode_value(record["value"])
        except (KeyError, TypeError, ValueError):
            _bump("corrupt")
            _bump("misses")
            return False, None
        _bump("hits")
        return True, value

    def put(self, key: Any, value: Tuple) -> None:
        """Atomically (re)write the record for ``key`` (last wins)."""
        canon = canonical_key(key)
        record = {
            "schema": STORE_SCHEMA,
            "key": canon,
            "value": encode_value(value),
        }
        record["crc"] = _crc(record)
        path = self.path_for(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(record, handle, separators=(",", ":"))
            os.replace(tmp, path)
        except OSError:
            # Persistence is an optimization; a failed write must never
            # fail the planning call that triggered it.
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        _bump("writes")


_active: Optional[PlanStore] = None


def _env_store() -> Optional[PlanStore]:
    root = os.environ.get("REPRO_PLAN_STORE", "").strip()
    return PlanStore(root) if root else None


_active = _env_store()


def configure(path: Optional[str]) -> Optional[PlanStore]:
    """Point the process at a store directory (``None`` disables)."""
    global _active
    _active = PlanStore(path) if path else None
    return _active


def active() -> Optional[PlanStore]:
    """The process-wide store consulted by the planning pipeline."""
    return _active


def reset_counters() -> None:
    with _lock:
        for name in _COUNTER_NAMES:
            _counters[name] = 0


def counters_snapshot() -> Tuple[int, ...]:
    """``(hits, misses, corrupt, stale, writes)`` for the segcache protocol."""
    with _lock:
        return tuple(_counters[name] for name in _COUNTER_NAMES)


def counters_absorb(values: Tuple[int, ...]) -> None:
    """Fold a worker's counter delta into this process's totals."""
    names: List[str] = list(_COUNTER_NAMES[: len(values)])
    with _lock:
        for name, value in zip(names, values):
            _counters[name] += value


def counters_dict() -> Dict[str, int]:
    with _lock:
        out = dict(_counters)
    out["enabled"] = int(_active is not None)
    return out
