"""Benchmark for EXP-F7: simulated deadline-miss ratios.

The safety column is the contract: task sets admitted by RT-MDM's
analysis must never miss a deadline in simulation.
"""

from conftest import bench_experiment


def test_f7_miss_ratio(benchmark):
    result = bench_experiment(benchmark, "EXP-F7", n_sets=4, n_phasings=1)
    assert all(row[-1] == 0 for row in result.rows), (
        "RT-MDM-admitted sets missed deadlines in simulation"
    )
