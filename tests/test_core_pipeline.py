"""Unit tests for the double-buffer pipeline model."""

import pytest

from repro.core.pipeline import (
    SegmentedModel,
    isolated_latency,
    pipeline_finish_times,
    sequential_latency,
    stall_cycles,
)
from repro.dnn.quantization import INT8
from repro.dnn.zoo import build_model
from repro.hw.presets import get_platform
from repro.sched.task import Segment


def _segs(pairs):
    return [Segment(f"s{i}", l, c) for i, (l, c) in enumerate(pairs)]


class TestRecurrence:
    def test_single_segment(self):
        segs = _segs([(10, 20)])
        assert isolated_latency(segs) == 30

    def test_perfect_overlap(self):
        # Loads fully hidden behind long computes after the first.
        segs = _segs([(10, 100), (10, 100), (10, 100)])
        assert isolated_latency(segs, buffers=2) == 10 + 300

    def test_load_bound_chain(self):
        # Computes hidden behind long loads: latency = sum loads + last C.
        segs = _segs([(100, 10), (100, 10), (100, 10)])
        assert isolated_latency(segs, buffers=2) == 300 + 10

    def test_single_buffer_equals_sequential(self):
        segs = _segs([(30, 70), (50, 20), (10, 40)])
        assert isolated_latency(segs, buffers=1) == sequential_latency(segs)

    def test_buffer_three_no_worse_than_two(self):
        segs = _segs([(50, 20), (60, 30), (40, 80), (70, 10)])
        assert isolated_latency(segs, buffers=3) <= isolated_latency(segs, buffers=2)

    def test_lower_bound_max_of_resources(self):
        segs = _segs([(50, 20), (60, 30), (40, 80)])
        total_l, total_c = 150, 130
        latency = isolated_latency(segs, buffers=2)
        assert latency >= max(total_l, total_c)
        assert latency <= sequential_latency(segs)

    def test_finish_times_monotone(self):
        segs = _segs([(30, 70), (50, 20), (10, 40)])
        finish = pipeline_finish_times(segs, buffers=2)
        loads = [f[0] for f in finish]
        comps = [f[1] for f in finish]
        assert loads == sorted(loads)
        assert comps == sorted(comps)
        assert all(l <= c for l, c in finish)

    def test_stall_cycles(self):
        segs = _segs([(100, 10), (100, 10)])
        assert stall_cycles(segs, buffers=2) == isolated_latency(segs, 2) - 20

    def test_buffer_gating_exact(self):
        # b=1: load j waits for compute j-1.
        segs = _segs([(10, 50), (10, 50)])
        # L1(10) C1(50) then L2 starts at 60, C2 at 70 -> 120.
        assert isolated_latency(segs, buffers=1) == 120
        # b=2: L2 overlaps C1 -> C2 starts at 60 -> 110.
        assert isolated_latency(segs, buffers=2) == 110

    def test_validation(self):
        with pytest.raises(ValueError):
            isolated_latency([], buffers=2)
        with pytest.raises(ValueError):
            pipeline_finish_times(_segs([(1, 1)]), buffers=0)


class TestSegmentedModel:
    def _segmented(self, boundaries=None):
        model = build_model("ds-cnn")
        platform = get_platform("f746-qspi")
        bounds = boundaries or [(0, 4), (4, 9), (9, model.num_layers)]
        return SegmentedModel(
            model=model, platform=platform, quant=INT8,
            boundaries=tuple(bounds), buffers=2,
        )

    def test_segments_cover_model(self):
        seg = self._segmented()
        segments = seg.segments()
        assert len(segments) == 3
        total_load_bytes = sum(s.load_bytes for s in segments)
        assert total_load_bytes == seg.model.total_param_bytes(INT8)

    def test_bad_boundaries_rejected(self):
        with pytest.raises(ValueError):
            self._segmented([(0, 4), (5, 13)])  # gap
        with pytest.raises(ValueError):
            self._segmented([(0, 4), (4, 4), (4, 13)])  # empty
        with pytest.raises(ValueError):
            self._segmented([(0, 5)])  # does not cover

    def test_sram_need(self):
        seg = self._segmented()
        expected = 2 * seg.max_segment_weight_bytes + seg.model.peak_activation_bytes(INT8)
        assert seg.sram_need_bytes() == expected

    def test_to_task_roundtrip(self):
        seg = self._segmented()
        task = seg.to_task(period=1_000_000, priority=3, name="kws")
        assert task.name == "kws"
        assert task.num_segments == seg.num_segments
        assert task.deadline == task.period
        assert task.priority == 3
        assert task.total_load > 0

    def test_isolated_latency_consistent_with_free_function(self):
        seg = self._segmented()
        assert seg.isolated_latency() == isolated_latency(seg.segments(), 2)

    def test_latencies_ordering(self):
        seg = self._segmented()
        assert seg.isolated_latency() <= seg.sequential_latency()
