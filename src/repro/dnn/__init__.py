"""DNN substrate: layer algebra, model graphs, and a TinyML model zoo.

Scheduling DNN inference does not require weights — only the *shape* of
the computation: how many MACs each layer performs, how many parameter
bytes it must stage, and how large its activations are.  This package
provides exactly that:

* :mod:`repro.dnn.layers` — layer types with exact MAC/parameter/activation
  arithmetic.
* :mod:`repro.dnn.models` — sequential-with-skips model graphs and their
  aggregate statistics.
* :mod:`repro.dnn.zoo` — reimplementations of the standard MLPerf-Tiny
  class topologies used in multi-DNN MCU evaluations.
* :mod:`repro.dnn.quantization` — element widths for int8/float32 schemes.
"""

from repro.dnn.layers import (
    Add,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Flatten,
    Layer,
    Pool,
    Softmax,
)
from repro.dnn.models import Model
from repro.dnn.quantization import FLOAT32, INT8, Quantization
from repro.dnn.zoo import MODEL_BUILDERS, build_model, list_models

__all__ = [
    "Layer",
    "Conv2D",
    "DepthwiseConv2D",
    "Dense",
    "Pool",
    "Add",
    "Flatten",
    "Softmax",
    "Model",
    "Quantization",
    "INT8",
    "FLOAT32",
    "MODEL_BUILDERS",
    "build_model",
    "list_models",
]
