"""Benchmark for EXP-D1: online admission control (``repro.online``).

The misses column is the contract: instances the online controller
admits must never miss a deadline in fault-free execution.  The
admission-decision latency stats land in ``BENCH_suite.json`` via the
experiment's ``meta``.
"""

from conftest import bench_experiment


def test_d1_admission(benchmark):
    result = bench_experiment(benchmark, "EXP-D1", n_traces=2)
    assert all(row[-1] == 0 for row in result.rows), (
        "online-admitted instances missed deadlines in fault-free execution"
    )
    assert "decision_latency_us" in result.meta
