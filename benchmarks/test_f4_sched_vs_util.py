"""Benchmark for EXP-F4: schedulability ratio vs utilization.

The headline figure: RT-MDM's admission curve must dominate the
baselines that lack its preemption points (np-whole) or its staging
(xip), and stay within noise of the sequential analysis (which trades
away DMA-blocking terms by folding loads into compute — see
EXPERIMENTS.md for why per-point dominance over `sequential` is not an
honest claim of the *analysis*, even though the *execution* dominates
per EXP-F3/EXP-F7).
"""

from conftest import bench_experiment


def test_f4_sched_vs_util(benchmark):
    result = bench_experiment(benchmark, "EXP-F4", n_sets=24)
    rtmdm = result.column("rtmdm")
    for baseline in ("np-whole", "xip"):
        other = result.column(baseline)
        assert sum(rtmdm) >= sum(other), (
            f"RT-MDM should dominate {baseline} overall: {rtmdm} vs {other}"
        )
    sequential = result.column("sequential")
    assert sum(rtmdm) >= 0.9 * sum(sequential)
    # RT-MDM is never worse than its own suspension-oblivious analysis.
    oblivious = result.column("rtmdm-oblivious")
    assert all(a >= b for a, b in zip(rtmdm, oblivious))
