"""Double-buffer pipeline timing model.

With ``b`` staging buffers, the load of segment *j* may start once the
compute of segment ``j - b`` has finished (that segment's buffer is free),
and the compute of segment *j* starts once both its load and the previous
compute have finished:

.. code-block:: text

    f_load(j) = max(f_load(j-1), f_comp(j-b)) + L_j
    f_comp(j) = max(f_comp(j-1), f_load(j))   + C_j

The job's isolated latency is ``f_comp(m)``.  These recurrences are exact
for an uncontended platform and are validated against the discrete-event
simulator by the property tests.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.dnn.models import Model
from repro.dnn.quantization import Quantization
from repro.hw.platform import Platform
from repro.sched.task import PeriodicTask, Segment


def pipeline_finish_times(
    segments: Sequence[Segment], buffers: int = 2
) -> List[Tuple[int, int]]:
    """Per-segment ``(load_finish, compute_finish)`` in isolation.

    Args:
        segments: The job body in execution order.
        buffers: Staging buffer depth (``1`` disables overlap).
    """
    if buffers < 1:
        raise ValueError(f"buffers must be >= 1, got {buffers}")
    finish: List[Tuple[int, int]] = []
    for j, segment in enumerate(segments):
        prev_load = finish[j - 1][0] if j >= 1 else 0
        freed = finish[j - buffers][1] if j >= buffers else 0
        load_finish = max(prev_load, freed) + segment.load_cycles
        prev_comp = finish[j - 1][1] if j >= 1 else 0
        comp_finish = max(prev_comp, load_finish) + segment.compute_cycles
        finish.append((load_finish, comp_finish))
    return finish


# id-keyed latency memo over *shared* segment tuples.  The plan cache
# hands the same immutable tuple to every re-materialized hit, and the
# analyses recompute its isolated latency once per admission test; the
# memo holds a strong reference to each tuple so ids cannot be reused.
# ``segcache`` rebinds ``_memo_enabled`` to its master switch on import
# (a late binding avoids a circular import).
_memo_enabled: Callable[[], bool] = lambda: True
_latency_memo: "OrderedDict[Tuple[int, int], Tuple[Tuple[Segment, ...], int]]" = (
    OrderedDict()
)
_LATENCY_MEMO_MAX = 4096


def isolated_latency(segments: Sequence[Segment], buffers: int = 2) -> int:
    """Job latency on an otherwise idle platform."""
    if not segments:
        raise ValueError("segments must be non-empty")
    if type(segments) is not tuple or not _memo_enabled():
        return pipeline_finish_times(segments, buffers)[-1][1]
    key = (id(segments), buffers)
    entry = _latency_memo.get(key)
    if entry is not None and entry[0] is segments:
        _latency_memo.move_to_end(key)
        return entry[1]
    value = pipeline_finish_times(segments, buffers)[-1][1]
    _latency_memo[key] = (segments, value)
    while len(_latency_memo) > _LATENCY_MEMO_MAX:
        _latency_memo.popitem(last=False)
    return value


def sequential_latency(segments: Sequence[Segment]) -> int:
    """Latency with no overlap at all: every load then its compute."""
    return sum(s.load_cycles + s.compute_cycles for s in segments)


def stall_cycles(segments: Sequence[Segment], buffers: int = 2) -> int:
    """Cycles the CPU idles waiting for loads, in isolation.

    This is the pipeline's residual exposure to the external memory:
    ``isolated_latency - total_compute``.
    """
    total_compute = sum(s.compute_cycles for s in segments)
    return isolated_latency(segments, buffers) - total_compute


@dataclass(frozen=True)
class SegmentedModel:
    """A DNN partitioned into staging segments on a concrete platform.

    Attributes:
        model: The source DNN.
        platform: Target hardware (provides cycle costs).
        quant: Deployment quantization.
        boundaries: Segment extents as ``(start, end)`` layer index pairs,
            contiguous and covering ``range(model.num_layers)``.
        buffers: Staging buffer depth used for latency/pipelining.
        resident: Weights live in *internal* flash (no staging at all):
            segments have zero load legs and SRAM holds activations only.
            Segment boundaries remain preemption points (the compute cap
            still applies).
    """

    model: Model
    platform: Platform
    quant: Quantization
    boundaries: Tuple[Tuple[int, int], ...]
    buffers: int = 2
    resident: bool = False

    def __post_init__(self) -> None:
        if not self.boundaries:
            raise ValueError("boundaries must be non-empty")
        expected = 0
        for start, end in self.boundaries:
            if start != expected or end <= start:
                raise ValueError(
                    f"boundaries must be contiguous and non-empty, got {self.boundaries}"
                )
            expected = end
        if expected != self.model.num_layers:
            raise ValueError(
                f"boundaries cover {expected} layers, model has {self.model.num_layers}"
            )
        if self.buffers < 1:
            raise ValueError(f"buffers must be >= 1, got {self.buffers}")

    # ------------------------------------------------------------------
    # Segment materialization
    # ------------------------------------------------------------------
    def segment_weight_bytes(self, index: int) -> int:
        """Weight+bias bytes staged for segment ``index``."""
        start, end = self.boundaries[index]
        return sum(
            layer.param_bytes(self.quant) for layer in self.model.layers[start:end]
        )

    @property
    def max_segment_weight_bytes(self) -> int:
        """Size each staging buffer slot must have."""
        return max(self.segment_weight_bytes(i) for i in range(len(self.boundaries)))

    @property
    def num_segments(self) -> int:
        """Number of segments."""
        return len(self.boundaries)

    def segments(self) -> Tuple[Segment, ...]:
        """Materialize scheduler segments with platform cycle costs."""
        memo = self.__dict__.get("_segments_memo")
        if memo is not None:
            return memo
        result = []
        for index, (start, end) in enumerate(self.boundaries):
            load_bytes = 0 if self.resident else self.segment_weight_bytes(index)
            compute = sum(
                self.platform.compute_cycles(layer, self.quant.weight_bytes)
                for layer in self.model.layers[start:end]
            )
            result.append(
                Segment(
                    name=f"{self.model.name}[{start}:{end}]",
                    load_cycles=self.platform.load_cycles(load_bytes),
                    compute_cycles=compute,
                    load_bytes=load_bytes,
                )
            )
        memo = tuple(result)
        # frozen dataclass: memoize via __dict__ (not a field, so eq/repr
        # are unaffected); latency helpers re-materialize constantly.
        object.__setattr__(self, "_segments_memo", memo)
        return memo

    # ------------------------------------------------------------------
    # Derived timing
    # ------------------------------------------------------------------
    def isolated_latency(self) -> int:
        """Pipelined latency in isolation."""
        return isolated_latency(self.segments(), self.buffers)

    def sequential_latency(self) -> int:
        """Unpipelined latency (loads serialized with computes)."""
        return sequential_latency(self.segments())

    def sram_need_bytes(self) -> int:
        """SRAM this segmentation requires: staging slots + activations.

        Flash-resident models stage nothing; only activations need SRAM.
        """
        if self.resident:
            return self.model.peak_activation_bytes(self.quant)
        return (
            self.buffers * self.max_segment_weight_bytes
            + self.model.peak_activation_bytes(self.quant)
        )

    def to_task(
        self,
        period: int,
        deadline: Optional[int] = None,
        priority: int = 0,
        phase: int = 0,
        name: Optional[str] = None,
    ) -> PeriodicTask:
        """Build the schedulable periodic task for this segmented model."""
        return PeriodicTask(
            name=name or self.model.name,
            segments=self.segments(),
            period=period,
            deadline=deadline if deadline is not None else period,
            priority=priority,
            phase=phase,
            buffers=self.buffers,
        )
