"""Weight placement: which models live in internal flash vs external memory.

MCUs in this class have 0.5-2 MiB of internal flash, most of it occupied
by code — but the remainder can hold the weights of the *smaller* models,
which then execute without any staging (internal flash sits behind the
ART/flash accelerator with negligible weight-fetch penalty).  Placing a
model internally removes both its external-bus traffic and its SRAM
staging slots, so placement directly improves schedulability of the
*remaining* tasks.

The placement problem is a 0/1 knapsack: items = models (size = weight
bytes), capacity = internal flash minus the code reserve, value = the
external-bus traffic avoided per second (``weight_bytes / period_s`` —
the highest-rate models relieve the DMA the most).  The exact DP is used
(item counts are tiny).

This module is the ``use_internal_flash=True`` path of
:class:`~repro.core.framework.RtMdm`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.pipeline import SegmentedModel
from repro.core.segmentation import min_max_weight_partition
from repro.dnn.models import Model
from repro.dnn.quantization import INT8, Quantization
from repro.hw.platform import Platform

#: Knapsack weight granularity (bytes); flash is written in pages anyway.
_GRANULE = 1024


@dataclass(frozen=True)
class FlashPlacement:
    """The outcome of weight placement.

    Attributes:
        resident: Names of tasks whose weights live in internal flash.
        flash_used: Bytes of flash consumed by resident weights.
        flash_budget: Bytes that were available for weights.
    """

    resident: Tuple[str, ...]
    flash_used: int
    flash_budget: int

    def is_resident(self, task_name: str) -> bool:
        """Whether ``task_name`` was placed in internal flash."""
        return task_name in self.resident


def choose_flash_residents(
    candidates: Sequence[Tuple[str, Model, float]],
    flash_budget: int,
    quant: Quantization = INT8,
) -> FlashPlacement:
    """Select models to keep in internal flash (exact 0/1 knapsack).

    Args:
        candidates: ``(task_name, model, period_s)`` triples.
        flash_budget: Flash bytes available for weights (after code).
        quant: Quantization (sets weight sizes).

    Value of a model = external traffic avoided per second
    (``weight_bytes / period_s``).
    """
    if flash_budget <= 0 or not candidates:
        return FlashPlacement(resident=(), flash_used=0, flash_budget=max(0, flash_budget))
    items = []
    for name, model, period_s in candidates:
        size = model.total_param_bytes(quant)
        granules = -(-size // _GRANULE)  # ceil
        value = size / period_s
        items.append((name, size, granules, value))
    capacity = flash_budget // _GRANULE
    # Exact 0/1 knapsack with per-item rows (tiny item counts) so the
    # chosen set can be reconstructed by backtracking.
    table: List[List[float]] = [[0.0] * (capacity + 1)]
    for _, _, granules, value in items:
        prev = table[-1]
        row = list(prev)
        for cap in range(granules, capacity + 1):
            row[cap] = max(prev[cap], prev[cap - granules] + value)
        table.append(row)
    chosen: List[str] = []
    cap = capacity
    used = 0
    for index in range(len(items) - 1, -1, -1):
        name, size, granules, value = items[index]
        if granules <= cap and table[index + 1][cap] != table[index][cap]:
            chosen.append(name)
            used += size
            cap -= granules
    return FlashPlacement(
        resident=tuple(sorted(chosen)), flash_used=used, flash_budget=flash_budget
    )


def resident_segmentation(
    model: Model,
    platform: Platform,
    quant: Quantization = INT8,
    max_segment_compute: Optional[int] = None,
) -> SegmentedModel:
    """Segment a flash-resident model (preemption points only).

    With no staging there is no SRAM constraint on segmentation; the
    layer chain is cut purely to respect the non-preemptive-section cap.
    """
    computes = [platform.compute_cycles(layer, quant.weight_bytes) for layer in model.layers]
    if max_segment_compute is None:
        boundaries = [(0, model.num_layers)]
    else:
        cap = max(max_segment_compute, max(computes))
        total = sum(computes)
        k = min(model.num_layers, max(1, -(-total // cap)))
        boundaries = min_max_weight_partition(computes, k)
        # min-max on computes may still exceed the cap with few parts;
        # refine until it fits or we reach layer granularity.
        while (
            max(sum(computes[s:e]) for s, e in boundaries) > cap
            and k < model.num_layers
        ):
            k += 1
            boundaries = min_max_weight_partition(computes, k)
    return SegmentedModel(
        model=model,
        platform=platform,
        quant=quant,
        boundaries=tuple(boundaries),
        buffers=1,
        resident=True,
    )
