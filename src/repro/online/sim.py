"""Simulator variant for dynamic task sets.

The offline :class:`~repro.sched.simulator.Simulator` releases every
task from its phase to the horizon.  The online runtime needs tasks
that *stop* releasing mid-run (departures, and outgoing instances of a
rescale): :class:`DynamicSimulator` takes a per-task stop cycle and
suppresses releases from that cycle on.  Jobs released before the stop
still run to completion — exactly the drain semantics the mode-change
protocols assume.

Starts need no extension: an instance's start cycle is its ``phase``.
"""

from __future__ import annotations

from typing import Mapping

from repro.sched.simulator import _FOLD_OFF, SimConfig, Simulator, SimResult
from repro.sched.task import PeriodicTask, TaskSet


class DynamicSimulator(Simulator):
    """A :class:`Simulator` whose tasks can stop releasing mid-run."""

    def __init__(
        self,
        taskset: TaskSet,
        config: SimConfig,
        stops: Mapping[str, int] = (),
    ) -> None:
        super().__init__(taskset, config)
        self._stops = dict(stops)
        for name, stop in self._stops.items():
            taskset.by_name(name)  # raises KeyError on unknown names
            if stop < 0:
                raise ValueError(f"stop cycle for {name!r} must be >= 0, got {stop}")
        if self._stops:
            # Stop cycles make release behavior depend on absolute time,
            # which breaks the translation invariance steady-state
            # folding relies on.
            self._fold_eligible = False
            self._fold_boundary = _FOLD_OFF

    def _release(
        self, time: int, task: PeriodicTask, task_pos: int, index: int
    ) -> bool:
        stop = self._stops.get(task.name)
        if stop is not None and time >= stop:
            # The task departed: no job, and no further releases (they
            # would all be at or after this one).
            return False
        return super()._release(time, task, task_pos, index)


def simulate_dynamic(
    taskset: TaskSet, config: SimConfig, stops: Mapping[str, int] = ()
) -> SimResult:
    """Run a :class:`DynamicSimulator` to completion."""
    return DynamicSimulator(taskset, config, stops).run()
