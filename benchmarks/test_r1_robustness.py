"""Benchmark for EXP-R1: overload policies under injected faults."""

from conftest import bench_experiment


def test_r1_robustness(benchmark):
    bench_experiment(benchmark, "EXP-R1", n_sets=4)
