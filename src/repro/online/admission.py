"""Per-request admission control for the online runtime.

Every ``ADMIT`` runs a four-stage pipeline, each stage reusing the
existing offline machinery so decisions stay fast:

1. **Online re-segmentation** — the requested model is planned into the
   currently *free* SRAM through :mod:`repro.core.segcache` (the same
   granularity/budget policy as the offline planner); repeat requests
   for the same model at similar budgets hit the plan cache.  No fit →
   rejection with an ``sram`` justification.
2. **Fast RTA screen** — the candidate union is checked with the
   suspension-oblivious bound rebuilt from the classic RTA primitives in
   :mod:`repro.sched.rta` (serialized per-job demand, segment-granular
   non-preemptive blocking, chained release jitter).  The screen is
   pessimistic relative to the full analysis: if it passes, the system
   is schedulable and the expensive analysis is skipped.
3. **Full analysis** — otherwise the RT-MDM analysis runs via
   :func:`repro.core.segcache.cached_analyze`.
4. **Degradation ladder** — on analysis failure the request is retried
   at stretched periods and/or as a reduced fallback variant
   (:func:`repro.robust.overload.degraded_variant`) before any hard
   rejection.

``REMOVE`` always succeeds (dropping releases only removes
interference); ``RESCALE`` goes through the mode-change protocols in
:mod:`repro.online.modechange`.  Every decision — including each
rejection's justification — is recorded as a :class:`Decision`.

SRAM is accounted conservatively: a departing instance's buffers stay
reserved until its last possible residual job has completed, so a new
admission can never overlap buffers with a draining predecessor.

Candidate-set priorities are deadline-monotonic over a global total
order ``(deadline, instance name)``; per-decision analyses and the final
union simulation both derive their priorities from this same order, so
relative priorities agree everywhere.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import segcache
from repro.core.buffers import BUFFER_ALIGN
from repro.core.framework import NP_CAP_DIVISOR
from repro.core.segmentation import SegmentationError
from repro.dnn.quantization import INT8, Quantization
from repro.hw.platform import Platform
from repro.online.events import Request, RequestKind
from repro.online.modechange import Protocol, drain_start
from repro.robust.overload import degraded_variant
from repro.sched import rta
from repro.sched.task import PeriodicTask, Segment, TaskSet, inflate_loads


@dataclass(frozen=True)
class Instance:
    """One admitted incarnation of a logical task.

    Re-admissions and rescales create fresh instances (unique
    ``instance`` names), so the union of all instances ever admitted is
    a valid task set for one simulation run.
    """

    instance: str
    task: str
    model: str
    segments: Tuple[Segment, ...]
    period: int
    deadline: int
    buffers: int
    sram_bytes: int
    mode: str
    start_cycle: int
    stop_cycle: Optional[int] = None

    def to_periodic(self, priority: int = 0, phase: int = 0) -> PeriodicTask:
        """Materialize as a schedulable task (analysis or simulation)."""
        return PeriodicTask(
            name=self.instance,
            segments=self.segments,
            period=self.period,
            deadline=self.deadline,
            priority=priority,
            phase=phase,
            buffers=self.buffers,
        )

    def to_dict(self) -> Dict:
        """Plain-data form (checkpoint payloads, chaos comparisons).

        Segments are embedded in full, so a restored instance never
        consults the plan cache — checkpoints are plan-cache-independent
        by construction.
        """
        return {
            "instance": self.instance,
            "task": self.task,
            "model": self.model,
            "segments": [
                {
                    "name": s.name,
                    "load_cycles": s.load_cycles,
                    "compute_cycles": s.compute_cycles,
                    "load_bytes": s.load_bytes,
                    "xip_bytes": s.xip_bytes,
                }
                for s in self.segments
            ],
            "period": self.period,
            "deadline": self.deadline,
            "buffers": self.buffers,
            "sram_bytes": self.sram_bytes,
            "mode": self.mode,
            "start_cycle": self.start_cycle,
            "stop_cycle": self.stop_cycle,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "Instance":
        return cls(
            instance=d["instance"],
            task=d["task"],
            model=d["model"],
            segments=tuple(Segment(**s) for s in d["segments"]),
            period=d["period"],
            deadline=d["deadline"],
            buffers=d["buffers"],
            sram_bytes=d["sram_bytes"],
            mode=d["mode"],
            start_cycle=d["start_cycle"],
            stop_cycle=d["stop_cycle"],
        )


@dataclass(frozen=True)
class Decision:
    """One recorded admission decision (the decision log entry).

    ``outcome`` is one of ``admitted`` / ``rejected`` / ``removed`` /
    ``rescaled`` / ``ignored``.  For admissions, ``mode`` says at what
    service level (``full``, ``rate/<f>``, ``variant``,
    ``variant+rate/<f>``) and ``reason`` which test justified it
    (``rta-oblivious`` fast screen or ``analysis``).  For rejections,
    ``reason`` carries the justification (``sram: ...``, ``rta: ...``,
    ``rta-transition: ...``, ``drain-unbounded: ...``).
    """

    seq: int
    time_s: float
    kind: str
    task: str
    outcome: str
    model: str = ""
    mode: str = ""
    reason: str = ""
    protocol: str = ""
    instance: str = ""
    sram_bytes: int = 0
    start_cycle: int = -1
    latency_us: float = 0.0

    def to_dict(self) -> Dict:
        # latency_us is deliberately absent: the JSON event log must be
        # bit-identical across same-seed runs; wall-clock decision
        # latency is reported via the benchmark suite meta instead.
        return {
            "seq": self.seq,
            "time_s": self.time_s,
            "kind": self.kind,
            "task": self.task,
            "outcome": self.outcome,
            "model": self.model,
            "mode": self.mode,
            "reason": self.reason,
            "protocol": self.protocol,
            "instance": self.instance,
            "sram_bytes": self.sram_bytes,
            "start_cycle": self.start_cycle,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "Decision":
        """Rebuild a decision from :meth:`to_dict` output.

        ``latency_us`` is intentionally not round-tripped (it is
        wall-clock, excluded from the serialized form); restored
        decisions carry ``0.0`` there, which keeps the *serialized*
        decision log bit-identical across checkpoint/restore.
        """
        return cls(**d)


class CheckpointError(RuntimeError):
    """A checkpoint payload cannot be restored into this controller."""


class AdmissionController:
    """Stateful per-request admission control over one platform."""

    def __init__(
        self,
        platform: Platform,
        quant: Quantization = INT8,
        buffers: int = 2,
        method: str = "rtmdm",
        protocol: Protocol = Protocol.AUTO,
        stretch_factors: Sequence[float] = (1.25, 1.5, 2.0),
        degrade_factor: float = 0.5,
        retry_budget: int = 0,
        fault_overhead_cycles: int = 0,
    ) -> None:
        if not all(f > 1.0 for f in stretch_factors):
            raise ValueError(f"stretch factors must be > 1, got {stretch_factors}")
        if not 0.0 < degrade_factor <= 1.0:
            raise ValueError(f"degrade_factor must be in (0, 1], got {degrade_factor}")
        if retry_budget < 0:
            raise ValueError(f"retry_budget must be >= 0, got {retry_budget}")
        if fault_overhead_cycles < 0:
            raise ValueError(
                f"fault_overhead_cycles must be >= 0, got {fault_overhead_cycles}"
            )
        self._platform = platform
        self._quant = quant
        self._buffers = buffers
        self._method = method
        self._protocol = protocol
        self._stretch = tuple(stretch_factors)
        self._degrade_factor = degrade_factor
        # Fault-aware admission: every job may suffer up to retry_budget
        # transfer faults, each costing fault_overhead_cycles of extra
        # DMA demand (derive the cost from the handler config via
        # repro.robust.escalation.fault_overhead_cycles).  Zero budget
        # (the default) keeps decisions bit-identical to fault-oblivious
        # admission.
        self._retry_budget = retry_budget
        self._fault_overhead = fault_overhead_cycles
        # Screen chains across requests mostly repeat (only the request
        # under test and tasks below it move); memoized WCRT problems
        # make re-screens incremental without changing any verdict.
        self._rta_cache = rta.FixpointCache()
        self._resident: Dict[str, Instance] = {}
        self._retired: List[Instance] = []
        self._reservations: List[Tuple[int, int]] = []
        self._counters: Dict[str, int] = {}
        self.decisions: List[Decision] = []

    # ------------------------------------------------------------------
    # State views
    # ------------------------------------------------------------------
    @property
    def platform(self) -> Platform:
        """The platform this controller admits against."""
        return self._platform

    @property
    def resident(self) -> Dict[str, Instance]:
        """Live instances by logical task name (read-only view)."""
        return dict(self._resident)

    @property
    def retry_budget(self) -> int:
        """Per-job fault tolerance the admission guarantee covers."""
        return self._retry_budget

    def all_instances(self) -> List[Instance]:
        """Every instance ever admitted (live + stopped), in admit order."""
        live = sorted(self._resident.values(), key=lambda i: i.instance)
        return self._retired + live

    def reserved_sram(self, at_cycle: int) -> int:
        """Total SRAM held at ``at_cycle``: resident + draining buffers.

        Pure query (no reservation pruning) — the invariant monitor calls
        it between decisions without perturbing controller state.
        """
        used = sum(i.sram_bytes for i in self._resident.values())
        used += sum(b for until, b in self._reservations if until > at_cycle)
        return used

    def free_sram(self, at_cycle: int) -> int:
        """Unreserved SRAM at ``at_cycle`` (draining buffers still held)."""
        self._reservations = [
            (until, b) for until, b in self._reservations if until > at_cycle
        ]
        return self._platform.usable_sram_bytes - self.reserved_sram(at_cycle)

    def _instance_name(self, logical: str) -> str:
        count = self._counters.get(logical, 0) + 1
        self._counters[logical] = count
        return logical if count == 1 else f"{logical}#{count}"

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def config_echo(self) -> Dict:
        """The decision-relevant configuration, for checkpoint validation.

        Two controllers with equal echoes make identical decisions on
        identical request streams, so restoring across a mismatch would
        silently break replay determinism — :meth:`restore` rejects it.
        """
        return {
            "platform": self._platform.name,
            "sram_bytes": self._platform.usable_sram_bytes,
            "quant": self._quant.name,
            "buffers": self._buffers,
            "method": self._method,
            "protocol": self._protocol.value,
            "stretch": list(self._stretch),
            "degrade_factor": self._degrade_factor,
            "retry_budget": self._retry_budget,
            "fault_overhead_cycles": self._fault_overhead,
        }

    def snapshot(self) -> Dict:
        """Full decision-relevant state as plain JSON-serializable data.

        Captures resident and retired instances (segments embedded, so
        no plan-cache dependency), SRAM drain reservations, instance-name
        counters (degradation-ladder / re-admission positions), and the
        decision log.  ``restore()`` of this payload into a controller
        with the same configuration is state-equivalent: every later
        request gets a bit-identical decision.
        """
        return {
            "schema": "rtmdm-checkpoint/1",
            "config": self.config_echo(),
            "counters": dict(self._counters),
            "resident": [
                self._resident[task].to_dict() for task in self._resident
            ],
            "retired": [inst.to_dict() for inst in self._retired],
            "reservations": [[until, b] for until, b in self._reservations],
            "decisions": [d.to_dict() for d in self.decisions],
        }

    def restore(self, state: Dict) -> None:
        """Replace this controller's state with a :meth:`snapshot` payload.

        Raises:
            CheckpointError: unknown schema, or the payload was taken
                under a different decision-relevant configuration.
        """
        schema = state.get("schema")
        if schema != "rtmdm-checkpoint/1":
            raise CheckpointError(f"unknown checkpoint schema {schema!r}")
        echo = self.config_echo()
        recorded = state.get("config", {})
        if recorded != echo:
            diff = {
                k: (recorded.get(k), echo.get(k))
                for k in set(recorded) | set(echo)
                if recorded.get(k) != echo.get(k)
            }
            raise CheckpointError(
                f"checkpoint was taken under a different configuration: "
                f"{diff} (recorded vs restoring)"
            )
        try:
            resident = [Instance.from_dict(d) for d in state["resident"]]
            retired = [Instance.from_dict(d) for d in state["retired"]]
            reservations = [
                (int(until), int(b)) for until, b in state["reservations"]
            ]
            decisions = [Decision.from_dict(d) for d in state["decisions"]]
            counters = {str(k): int(v) for k, v in state["counters"].items()}
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint payload: {exc}") from exc
        self._resident = {inst.task: inst for inst in resident}
        self._retired = retired
        self._reservations = reservations
        self._counters = counters
        self.decisions = decisions
        self._rta_cache = rta.FixpointCache()  # cold memo; verdicts identical

    # ------------------------------------------------------------------
    # Planning and schedulability
    # ------------------------------------------------------------------
    def _plan(
        self, model_name: str, deadline: int, budget: int
    ) -> Tuple[Tuple[Segment, ...], int]:
        """Segment ``model_name`` into ``budget`` bytes (framework policy).

        Raises:
            SegmentationError: no segmentation fits the budget.
        """
        return plan_segments(
            self._platform, model_name, deadline, budget,
            quant=self._quant, buffers=self._buffers,
        )

    def _rank(self, instances: Sequence[Instance]) -> List[PeriodicTask]:
        """Deadline-monotonic tasks over the global total order."""
        ordered = sorted(instances, key=lambda i: (i.deadline, i.instance))
        return [inst.to_periodic(priority=rank) for rank, inst in enumerate(ordered)]

    def _screen(self, tasks: Sequence[PeriodicTask]) -> bool:
        """Suspension-oblivious serialized screen via the RTA primitives.

        Rebuilds the library's ``oblivious`` bound from
        :mod:`repro.sched.rta` building blocks: serialized per-job demand
        ``sum(C) + sum(L)``, segment-granular non-preemptive blocking
        (``n_seg * max_lp_C + n_load * max_lp_L`` — one lower-priority
        section per own segment boundary / issued transfer), and release
        jitter ``R_j - E_j`` chained in priority order.  Every term
        dominates the corresponding term of the ``overlap`` analysis, so
        a pass here implies the full ``rtmdm`` analysis passes too —
        the screen is pessimistic, never optimistic.

        A whole-job NP-RTA (single blocking term) is NOT sound here: the
        simulator preempts at segment boundaries, so a fine-grained task
        can be blocked once per gap, far exceeding one lower-priority
        job's length (``fp_nonpreemptive_wcrt``'s docstring warns about
        exactly this misuse).
        """
        built = _screen_candidates(
            tasks, self._retry_budget, self._fault_overhead
        )
        if built is None:
            return False
        screened: List[rta.RtaTask] = []
        for candidate in built:
            # Re-screens across requests repeat the unchanged prefix of
            # this chain verbatim; the memo returns those bounds without
            # iterating (exact keying keeps the verdicts bit-identical).
            wcrt = rta.fp_preemptive_wcrt(
                [*screened, candidate], candidate, cache=self._rta_cache
            )
            if wcrt is None or wcrt > candidate.deadline:
                return False
            screened.append(
                replace(candidate, jitter=max(0, wcrt - candidate.exec_cycles))
            )
        return True

    def _schedulable(self, tasks: Sequence[PeriodicTask]) -> Tuple[bool, str]:
        """Admission test: fast oblivious-RTA screen, then full analysis."""
        if self._screen(tasks):
            return True, "rta-oblivious"
        taskset = TaskSet.of(tasks)
        if self._retry_budget > 0 and self._fault_overhead > 0:
            taskset = inflate_loads(
                taskset, self._retry_budget, self._fault_overhead
            )
        result = segcache.cached_analyze(taskset, self._method)
        return result.schedulable, "analysis"

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def handle(self, request: Request) -> Decision:
        """Decide one request; append to and return the decision log entry."""
        start_ns = time.perf_counter_ns()
        t = self._platform.mcu.seconds_to_cycles(request.time_s)
        if request.kind is RequestKind.ADMIT:
            decision = self._admit(request, t)
        elif request.kind is RequestKind.REMOVE:
            decision = self._remove(request, t)
        else:
            decision = self._rescale(request, t)
        decision = replace(
            decision,
            seq=len(self.decisions),
            latency_us=(time.perf_counter_ns() - start_ns) / 1000.0,
        )
        self.decisions.append(decision)
        return decision

    def _decision(self, request: Request, **kwargs) -> Decision:
        return Decision(
            seq=0,
            time_s=request.time_s,
            kind=request.kind.value,
            task=request.task,
            model=kwargs.pop("model", request.model),
            **kwargs,
        )

    def _request_timing(self, request: Request) -> Tuple[int, int]:
        cycles = self._platform.mcu.seconds_to_cycles
        period = max(1, cycles(request.period_s))
        deadline = cycles(request.deadline_s) if request.deadline_s else period
        return period, min(period, max(1, deadline))

    def _admit(self, request: Request, t: int) -> Decision:
        if request.task in self._resident:
            return self._decision(
                request, outcome="ignored", reason="already-resident"
            )
        period, deadline = self._request_timing(request)
        budget = self.free_sram(t)
        try:
            segments, cost = self._plan(request.model, deadline, budget)
        except SegmentationError as exc:
            return self._decision(request, outcome="rejected", reason=f"sram: {exc}")
        name = self._instance_name(request.task)
        for mode, p, d, segs in self._attempts(name, period, deadline, segments):
            candidate = Instance(
                instance=name,
                task=request.task,
                model=request.model,
                segments=segs,
                period=p,
                deadline=d,
                buffers=self._buffers,
                sram_bytes=cost,
                mode=mode,
                start_cycle=t,
            )
            ok, path = self._schedulable(
                self._rank([*self._resident.values(), candidate])
            )
            if ok:
                start, protocol = self._admit_switch(t)
                candidate = replace(candidate, start_cycle=start)
                self._resident[request.task] = candidate
                return self._decision(
                    request,
                    outcome="admitted",
                    mode=mode,
                    reason=path,
                    protocol=protocol,
                    instance=name,
                    sram_bytes=cost,
                    start_cycle=start,
                )
        return self._decision(
            request,
            outcome="rejected",
            reason=(
                "rta: unschedulable in every mode (full, rate-stretch "
                f"{self._stretch}, variant x{self._degrade_factor})"
            ),
        )

    def _attempts(
        self,
        name: str,
        period: int,
        deadline: int,
        segments: Tuple[Segment, ...],
    ) -> List[Tuple[str, int, int, Tuple[Segment, ...]]]:
        """The degradation ladder: full service first, then fallbacks.

        Rate stretches reuse the original segmentation (the granularity
        cap came from the tighter original deadline, so it stays valid);
        the variant attempts shrink every segment like
        :func:`repro.robust.overload.degraded_variant` does, standing in
        for a smaller model variant at unchanged buffer reservations
        (recovery to full service needs no re-planning).
        """
        attempts = [("full", period, deadline, segments)]
        stretched = []
        for factor in self._stretch:
            p = int(round(period * factor))
            d = min(p, int(round(deadline * factor)))
            stretched.append((p, d))
            attempts.append((f"rate/{factor:g}", p, d, segments))
        if self._degrade_factor < 1.0:
            base = PeriodicTask(
                name=name,
                segments=segments,
                period=period,
                deadline=deadline,
                buffers=self._buffers,
            )
            variant = degraded_variant(base, self._degrade_factor)
            attempts.append(("variant", period, deadline, variant))
            if stretched:
                p, d = stretched[-1]
                attempts.append(
                    (f"variant+rate/{self._stretch[-1]:g}", p, d, variant)
                )
        return attempts

    def _admit_switch(self, t: int) -> Tuple[int, str]:
        """Switch cycle for an admit (see :mod:`repro.online.modechange`).

        Immediate is always sound for admits (the union analysis just
        passed), so a forced drain falls back to immediate when no
        finite idle-instant bound exists.
        """
        if self._protocol is Protocol.DRAIN and self._resident:
            start = drain_start(
                t, [i.to_periodic() for i in self._resident.values()]
            )
            if start is not None:
                return start, "drain"
        return t, "immediate"

    def _remove(self, request: Request, t: int) -> Decision:
        instance = self._resident.pop(request.task, None)
        if instance is None:
            return self._decision(request, outcome="ignored", reason="not-resident")
        self._retired.append(replace(instance, stop_cycle=t))
        # Residual jobs (released before t) complete within one deadline;
        # their staging buffers stay reserved until then.
        self._reservations.append((t + instance.deadline, instance.sram_bytes))
        return self._decision(
            request,
            outcome="removed",
            model=instance.model,
            instance=instance.instance,
            protocol="immediate",
        )

    def _rescale(self, request: Request, t: int) -> Decision:
        old = self._resident.get(request.task)
        if old is None:
            return self._decision(request, outcome="ignored", reason="not-resident")
        period, deadline = self._request_timing(request)
        try:
            segments, cost = self._plan(old.model, deadline, self.free_sram(t))
        except SegmentationError as exc:
            return self._decision(
                request, outcome="rejected", model=old.model,
                reason=f"sram: {exc}",
            )
        name = self._instance_name(request.task)
        new = Instance(
            instance=name,
            task=request.task,
            model=old.model,
            segments=segments,
            period=period,
            deadline=deadline,
            buffers=self._buffers,
            sram_bytes=cost,
            mode="full",
            start_cycle=t,
        )
        if self._protocol is not Protocol.DRAIN:
            # Transitional union: others + outgoing + incoming, sporadic.
            ok, path = self._schedulable(
                self._rank([*self._resident.values(), new])
            )
            if ok:
                self._switch_instance(request.task, old, new, t, t)
                return self._decision(
                    request,
                    outcome="rescaled",
                    model=old.model,
                    mode="full",
                    reason=path,
                    protocol="immediate",
                    instance=name,
                    sram_bytes=cost,
                    start_cycle=t,
                )
            if self._protocol is Protocol.IMMEDIATE:
                return self._decision(
                    request,
                    outcome="rejected",
                    model=old.model,
                    reason="rta-transition: transitional union unschedulable",
                )
        start = drain_start(
            t, [i.to_periodic() for i in self._resident.values()]
        )
        if start is None:
            return self._decision(
                request,
                outcome="rejected",
                model=old.model,
                reason=(
                    "drain-unbounded: serialized utilization >= 1, "
                    "no finite idle-instant bound"
                ),
            )
        others = [i for i in self._resident.values() if i.task != request.task]
        ok, path = self._schedulable(self._rank([*others, new]))
        if not ok:
            return self._decision(
                request,
                outcome="rejected",
                model=old.model,
                reason="rta: new rate unschedulable even after drain",
            )
        self._switch_instance(request.task, old, new, t, start)
        return self._decision(
            request,
            outcome="rescaled",
            model=old.model,
            mode="full",
            reason=path,
            protocol="drain",
            instance=name,
            sram_bytes=cost,
            start_cycle=start,
        )

    def _switch_instance(
        self, logical: str, old: Instance, new: Instance, stop: int, start: int
    ) -> None:
        """Commit a rescale: stop ``old`` at ``stop``, start ``new`` at ``start``."""
        self._retired.append(replace(old, stop_cycle=stop))
        self._reservations.append(
            (max(stop + old.deadline, start), old.sram_bytes)
        )
        self._resident[logical] = replace(new, start_cycle=start)


# ----------------------------------------------------------------------
# The shared planning policy (per-device controller + fleet service)
# ----------------------------------------------------------------------


def plan_segments(
    platform: Platform,
    model_name: str,
    deadline: int,
    budget: int,
    quant: Quantization = INT8,
    buffers: int = 2,
) -> Tuple[Tuple[Segment, ...], int]:
    """Segment ``model_name`` into ``budget`` bytes (framework policy).

    The single online planning policy: granularity derived from the
    deadline's non-preemption cap, staging chunks from the free-SRAM
    budget, everything routed through :mod:`repro.core.segcache` (and
    through the persistent :mod:`repro.core.planstore` tier when one is
    configured).  Both :class:`AdmissionController` and the fleet
    service call this function, so a fleet admission plans bit-identically
    to a single-device admission with the same inputs.

    Returns:
        ``(segments, cost_bytes)`` where ``cost_bytes`` includes the
        aligned buffer slack actually reserved.

    Raises:
        SegmentationError: no segmentation fits the budget.
    """
    model = segcache.cached_build_model(model_name)
    cap = max(1000, deadline // NP_CAP_DIVISOR)
    macs_cap = max(1000, (cap - 4000) // 5)
    chunk = max(2048, budget // (buffers * 2))
    refined = segcache.cached_refine_model(model, quant, chunk, macs_cap)
    seg = segcache.cached_search_segmentation(
        refined,
        platform,
        budget,
        quant=quant,
        buffers=buffers,
        max_segment_compute=cap,
    )
    cost = seg.sram_need_bytes() + (buffers + 1) * BUFFER_ALIGN
    if cost > budget:
        raise SegmentationError(
            f"{model_name}: segmentation needs {cost} B with alignment "
            f"slack but only {budget} B are free"
        )
    return seg.segments(), cost


# ----------------------------------------------------------------------
# Class-level RTA screen primitives (shared by the per-request screen and
# the vectorized mass screen)
# ----------------------------------------------------------------------


def _screen_candidates(
    tasks: Sequence[PeriodicTask], retry_budget: int, fault_overhead: int
) -> Optional[List[rta.RtaTask]]:
    """Priority-ordered oblivious-screen candidates, or None on overload.

    Static portion of the screen cascade: serialized per-job demand and
    segment-granular blocking per level (only the chained jitter evolves
    as levels resolve).  Returns None when serialized utilization already
    exceeds 1 — the screen's trivial rejection.
    """
    ordered = sorted(tasks, key=lambda t: t.priority)
    # Fault-aware inflation: a retry budget of k adds k * cost extra
    # DMA demand per job of every loading task.  One charge suffices
    # here: the serialized exec term already counts every load at
    # full length, so the fault work cannot hide under compute the
    # way it can in the pipelined latency term (which is why
    # sched.task.inflate_loads charges first and largest segments).
    extra = retry_budget * fault_overhead
    serialized = [
        t.total_compute + t.total_load + (extra if t.total_load > 0 else 0)
        for t in ordered
    ]
    if sum(e / t.period for e, t in zip(serialized, ordered)) > 1.0:
        return None
    candidates: List[rta.RtaTask] = []
    for index, task in enumerate(ordered):
        lower = ordered[index + 1:]
        max_lp_c = max((t.max_segment_compute for t in lower), default=0)
        max_lp_l = max(
            (s.load_cycles for t in lower for s in t.segments), default=0
        )
        if max_lp_l > 0:
            # A lower-priority transfer can carry its fault budget
            # while blocking us.
            max_lp_l += extra
        n_load = sum(1 for s in task.segments if s.load_cycles > 0)
        candidates.append(rta.RtaTask(
            name=task.name,
            exec_cycles=serialized[index],
            period=task.period,
            deadline=task.deadline,
            priority=task.priority,
            blocking=task.num_segments * max_lp_c + n_load * max_lp_l,
        ))
    return candidates


def mass_screen(
    task_lists: Sequence[Sequence[PeriodicTask]],
    retry_budget: int = 0,
    fault_overhead: int = 0,
) -> List[bool]:
    """Vectorized class-level RTA screen over many candidate rankings.

    The fleet-scale entry point: each candidate list runs the same
    suspension-oblivious cascade as ``Controller._screen``, but all
    lists advance level-by-level in lock-step with every live list's
    fixpoint at the current level solved in one
    :func:`repro.sched.vecrta.fp_wcrt_batch` array pass (scalar fallback
    when the engine is off).  The chained jitter of each list feeds its
    own next level exactly as in the scalar cascade, so every verdict is
    bit-identical to screening the lists one at a time.
    """
    from repro.sched import vecrta

    verdicts = [False] * len(task_lists)
    # (list index, candidates, screened-so-far) for cascades still alive.
    live: List[Tuple[int, List[rta.RtaTask], List[rta.RtaTask]]] = []
    for index, tasks in enumerate(task_lists):
        candidates = _screen_candidates(tasks, retry_budget, fault_overhead)
        if candidates is None:
            continue
        if not candidates:
            verdicts[index] = True
            continue
        live.append((index, candidates, []))
    while live:
        problems = []
        for _, candidates, screened in live:
            candidate = candidates[len(screened)]
            problems.append(([*screened, candidate], candidate))
        wcrts = vecrta.fp_wcrt_batch(problems, preemptive=True)
        advanced: List[Tuple[int, List[rta.RtaTask], List[rta.RtaTask]]] = []
        for (index, candidates, screened), wcrt in zip(live, wcrts):
            candidate = candidates[len(screened)]
            if wcrt is None or wcrt > candidate.deadline:
                continue
            screened.append(
                replace(candidate, jitter=max(0, wcrt - candidate.exec_cycles))
            )
            if len(screened) == len(candidates):
                verdicts[index] = True
            else:
                advanced.append((index, candidates, screened))
        live = advanced
    return verdicts
