"""Tests for multi-channel DMA and dispatch-overhead accounting."""

import random

import pytest

from conftest import make_task, random_taskset
from repro.core.analysis import analyze
from repro.sched.policies import CpuPolicy
from repro.sched.simulator import SimConfig, simulate
from repro.sched.task import TaskSet, with_dispatch_overhead


class TestMultiChannelDma:
    def test_two_transfers_proceed_in_parallel(self):
        a = make_task("a", [(100, 10)], period=1000, priority=0)
        b = make_task("b", [(100, 10)], period=1000, priority=1)
        one = simulate(TaskSet.of([a, b]), SimConfig(horizon=2000, dma_channels=1))
        two = simulate(TaskSet.of([a, b]), SimConfig(horizon=2000, dma_channels=2))
        assert one.max_response("b") == 210  # serialized behind a's transfer
        assert two.max_response("b") == 120  # parallel transfer + blocked compute

    def test_one_outstanding_transfer_per_job(self):
        # A job's loads issue in order even with free channels.
        t = make_task("t", [(100, 10), (100, 10), (100, 10)], period=5000,
                      buffers=3)
        result = simulate(
            TaskSet.of([t]), SimConfig(horizon=5000, dma_channels=2,
                                       record_trace=True)
        )
        loads = sorted(
            [e for e in result.trace.events if e.kind == "load"],
            key=lambda e: e.time,
        )
        for first, second in zip(loads, loads[1:]):
            assert second.time >= first.end  # never two own transfers at once

    def test_channel_lanes_never_overlap(self):
        tasks = [
            make_task(f"t{i}", [(80, 40), (60, 30)], period=2000 + 100 * i,
                      priority=i)
            for i in range(3)
        ]
        result = simulate(
            TaskSet.of(tasks),
            SimConfig(horizon=20_000, dma_channels=2, record_trace=True),
        )
        for lane in ("dma", "dma2"):
            intervals = result.trace.intervals(lane)
            last_end = 0
            for event in intervals:
                assert event.time >= last_end
                last_end = event.end

    @pytest.mark.parametrize("seed", range(8))
    def test_single_channel_bounds_hold_for_two_channels(self, seed):
        """The 1-channel analysis is conservative for 2 channels."""
        rng = random.Random(400 + seed)
        ts = random_taskset(rng, n_tasks=3, util_target=0.4)
        result = analyze(ts, "rtmdm")
        if not result.schedulable:
            pytest.skip("analysis rejects this draw")
        sim = simulate(
            ts,
            SimConfig(policy=CpuPolicy.FP_NP,
                      horizon=20 * max(t.period for t in ts),
                      dma_channels=2),
        )
        assert sim.no_misses
        for task in ts:
            observed = sim.max_response(task.name)
            if observed is not None:
                assert observed <= result.wcrt[task.name]

    def test_invalid_channel_count(self):
        with pytest.raises(ValueError, match="dma_channels"):
            SimConfig(horizon=100, dma_channels=0)


class TestDispatchOverhead:
    def _ts(self):
        return TaskSet.of([
            make_task("a", [(10, 100), (20, 200)], period=2000, priority=0),
            make_task("b", [(0, 300)], period=3000, priority=1),
        ])

    def test_inflates_every_segment(self):
        inflated = with_dispatch_overhead(self._ts(), 50)
        assert inflated.by_name("a").total_compute == 300 + 2 * 50
        assert inflated.by_name("b").total_compute == 300 + 50
        # Loads, periods, priorities untouched.
        assert inflated.by_name("a").total_load == 30
        assert inflated.by_name("a").priority == 0

    def test_zero_overhead_is_identity(self):
        ts = self._ts()
        assert with_dispatch_overhead(ts, 0) is ts

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            with_dispatch_overhead(self._ts(), -1)

    def test_analysis_on_inflated_set_dominates_inflated_simulation(self):
        inflated = with_dispatch_overhead(self._ts(), 75)
        result = analyze(inflated, "rtmdm")
        assert result.schedulable
        sim = simulate(
            inflated, SimConfig(horizon=20 * 3000)
        )
        assert sim.no_misses
        for task in inflated:
            assert sim.max_response(task.name) <= result.wcrt[task.name]
