"""Classic uniprocessor response-time analysis (RTA) building blocks.

These are the textbook fixed-priority analyses (Audsley/Tindell/Davis
style), generalized with release jitter and a caller-supplied blocking
term so the RT-MDM analyses in :mod:`repro.core.analysis` can reuse them
for both the CPU (segment compute bursts) and the DMA (weight transfers).

Conventions:

* Tasks are described by :class:`RtaTask`; ``priority`` lower = higher.
* All analyses return ``None`` when no bound exists (divergent busy
  period or overutilized resource), otherwise the worst-case response
  time in cycles **measured from the job's arrival at this resource**
  (the task's own jitter is an input to interference on others, not added
  to its own response — standard holistic-analysis convention).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class RtaTask:
    """Analysis-level task description.

    Attributes:
        name: For error messages and reports.
        exec_cycles: Worst-case demand per job on the analysed resource.
        period: Minimum inter-arrival time.
        deadline: Relative deadline (constrained: ``<= period``).
        priority: Fixed priority; lower number = higher priority.
        jitter: Release jitter on this resource (for holistic analysis).
        blocking: Maximum blocking from lower-priority non-preemptive
            sections, computed by the caller.
    """

    name: str
    exec_cycles: int
    period: int
    deadline: int
    priority: int
    jitter: int = 0
    blocking: int = 0

    def __post_init__(self) -> None:
        if self.exec_cycles < 0:
            raise ValueError(f"{self.name}: exec_cycles must be >= 0")
        if self.period <= 0:
            raise ValueError(f"{self.name}: period must be > 0")
        if not 0 < self.deadline <= self.period:
            raise ValueError(f"{self.name}: deadline must be in (0, period]")
        if self.jitter < 0 or self.blocking < 0:
            raise ValueError(f"{self.name}: jitter and blocking must be >= 0")

    @property
    def utilization(self) -> float:
        """Demand density on this resource."""
        return self.exec_cycles / self.period


def utilization(tasks: Sequence[RtaTask]) -> float:
    """Total utilization of ``tasks`` on the analysed resource."""
    return sum(t.utilization for t in tasks)


def liu_layland_bound(n: int) -> float:
    """The Liu & Layland RM utilization bound ``n(2^{1/n} - 1)``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return n * (2 ** (1 / n) - 1)


class HyperperiodError(ValueError):
    """The LCM of the periods exceeds the tractability cap.

    Co-prime periods make the hyperperiod grow multiplicatively — five
    random ~1e7-cycle periods easily exceed 1e30.  Any algorithm that
    iterates over a hyperperiod (demand-bound checkpoints, exhaustive
    phasing search, simulation horizons) silently degenerates on such
    inputs, so :func:`hyperperiod` fails loudly instead.
    """


#: Default hyperperiod cap: generous (~4.6e18 cycles is ~680 years at
#: 216 MHz) yet far below where big-int LCMs start costing real time.
HYPERPERIOD_CAP = 1 << 62


def hyperperiod(periods: Sequence[int], cap: Optional[int] = HYPERPERIOD_CAP) -> int:
    """Least common multiple of ``periods``, guarded against blowup.

    Args:
        periods: Positive periods in cycles.
        cap: Raise :class:`HyperperiodError` once the running LCM
            exceeds this bound (the fold short-circuits, so pathological
            inputs fail fast instead of allocating huge integers).
            ``None`` disables the guard.

    Raises:
        ValueError: Empty or non-positive periods.
        HyperperiodError: The LCM exceeds ``cap``.
    """
    if not periods:
        raise ValueError("periods must be non-empty")
    if cap is not None and cap < 1:
        raise ValueError(f"cap must be positive, got {cap}")
    result = 1
    for period in periods:
        if period <= 0:
            raise ValueError(f"periods must be positive, got {period}")
        result = math.lcm(result, period)
        if cap is not None and result > cap:
            raise HyperperiodError(
                f"hyperperiod of {len(periods)} periods exceeds the cap: "
                f"partial LCM {result} > {cap}; pass cap=None to force, or "
                f"use try_hyperperiod() for a fallible lookup"
            )
    return result


def try_hyperperiod(
    periods: Sequence[int], cap: Optional[int] = HYPERPERIOD_CAP
) -> Optional[int]:
    """:func:`hyperperiod`, but ``None`` instead of raising on blowup.

    For callers with a natural fallback (e.g. simulation horizons capped
    at N jobs of the slowest task) that should degrade gracefully on
    co-prime period sets rather than abort.
    """
    try:
        return hyperperiod(periods, cap=cap)
    except HyperperiodError:
        return None


# ----------------------------------------------------------------------
# Incremental fixpoint evaluation
# ----------------------------------------------------------------------

#: Sentinel distinguishing "no cached entry" from a cached ``None``
#: (an unschedulable verdict is a result worth remembering too).
CACHE_MISS = object()

# Process-wide fixpoint counters (the per-instance counters roll up here
# so sweeps can report an aggregate warm-start hit rate; parallel runs
# ship worker deltas back through the plan-cache counter protocol).  The
# ``vec_*`` entries come from :mod:`repro.sched.vecrta`: batched array
# solves (``vec_batches``), fixpoint rows solved inside them
# (``vec_rows``), and cases where the vector engine handed a problem
# back to the scalar oracle (``vec_stand_downs``).
_FIXPOINT_KEYS = (
    "exact_hits", "misses", "warm_hits",
    "vec_batches", "vec_rows", "vec_stand_downs",
)
_fixpoint_counters = {key: 0 for key in _FIXPOINT_KEYS}


def fixpoint_counters() -> Dict[str, int]:
    """Process-wide incremental-RTA counters."""
    return dict(_fixpoint_counters)


def fixpoint_snapshot() -> Tuple[int, ...]:
    """Counter values for later :func:`fixpoint_delta_since`."""
    c = _fixpoint_counters
    return tuple(c[key] for key in _FIXPOINT_KEYS)


def fixpoint_delta_since(before: Tuple[int, ...]) -> Tuple[int, ...]:
    """Counter increments since a :func:`fixpoint_snapshot`."""
    now = fixpoint_snapshot()
    return tuple(n - b for n, b in zip(now, before))


def fixpoint_absorb(delta: Tuple[int, ...]) -> None:
    """Fold a worker process's counter delta into this process's totals.

    Width-tolerant: deltas recorded before the vectorized engine existed
    are three wide and absorb into the first three keys.
    """
    for key, inc in zip(_FIXPOINT_KEYS, delta):
        _fixpoint_counters[key] += inc


class FixpointCache:
    """Reuse between successive RTA fixpoint iterations.

    Two mechanisms, both preserving bit-identical results:

    * **Exact memoization**: a fixpoint problem is a pure function of
      ``(own, blocking, interferers, cap)``; identical problems (the
      unchanged task prefix of an admission re-screen, a repeated sweep
      point) return the stored solution without iterating.  Always
      sound.
    * **Monotone warm starts**: iterating ``R = f(R)`` for a monotone
      ``f`` from any value between the classic start ``own + blocking``
      and the least fixpoint converges to the *same* least fixpoint
      (from below the sequence climbs to it; from above-but-below-lfp
      it descends to a fixpoint that minimality forces to be the lfp).
      Callers may therefore seed an iteration with the converged value
      of a *dominated* problem — one whose demand is pointwise no
      larger, e.g. the previous (lower) inflation factor in a
      sensitivity search.  Values are staged during a run and only
      become warm-start seeds after :meth:`commit`, so a rejected probe
      never pollutes the seeds.

    The warm-start contract (seed problem dominated by the new one) is
    the caller's to uphold; the property tests in
    ``tests/test_prop_fixpoint.py`` pin both equality with cold starts
    and the monotonicity arguments above.
    """

    def __init__(self, maxsize: int = 8192) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._exact: "OrderedDict[Any, Optional[int]]" = OrderedDict()
        self._warm: Dict[Any, int] = {}
        self._staged: Dict[Any, int] = {}
        self.exact_hits = 0
        self.misses = 0
        self.warm_hits = 0

    def get_exact(self, key: Any) -> Any:
        """Stored solution for ``key``, or :data:`CACHE_MISS`."""
        value = self._exact.get(key, CACHE_MISS)
        if value is CACHE_MISS:
            self.misses += 1
            _fixpoint_counters["misses"] += 1
        else:
            self._exact.move_to_end(key)
            self.exact_hits += 1
            _fixpoint_counters["exact_hits"] += 1
        return value

    def put_exact(self, key: Any, value: Optional[int]) -> None:
        """Store a solution (bounded LRU)."""
        self._exact[key] = value
        self._exact.move_to_end(key)
        if len(self._exact) > self.maxsize:
            self._exact.popitem(last=False)

    def warm_start(self, key: Any) -> Optional[int]:
        """Committed warm-start seed for ``key``, if any."""
        value = self._warm.get(key)
        if value is not None:
            self.warm_hits += 1
            _fixpoint_counters["warm_hits"] += 1
        return value

    def stage(self, key: Any, value: int) -> None:
        """Record a converged value, pending :meth:`commit`."""
        self._staged[key] = value

    def commit(self) -> None:
        """Promote staged values to warm-start seeds."""
        self._warm.update(self._staged)
        self._staged.clear()

    def discard(self) -> None:
        """Drop staged values (the probe they came from was rejected)."""
        self._staged.clear()

    def counters(self) -> Dict[str, int]:
        """This instance's hit/miss counters."""
        return {
            "exact_hits": self.exact_hits,
            "misses": self.misses,
            "warm_hits": self.warm_hits,
        }


def _memo_key(task: RtaTask) -> Tuple[int, int, int, int, int, int]:
    """The numeric fields a WCRT computation actually reads."""
    return (
        task.exec_cycles, task.period, task.deadline,
        task.priority, task.jitter, task.blocking,
    )


def _hp(tasks: Sequence[RtaTask], task: RtaTask) -> List[RtaTask]:
    """Strictly higher-priority tasks (deterministic name tiebreak)."""
    key = (task.priority, task.name)
    return [t for t in tasks if (t.priority, t.name) < key]


def _busy_period(
    task: RtaTask, interferers: Sequence[RtaTask], extra: int, cap: int
) -> Optional[int]:
    """Length of the level-i busy period, or None if it exceeds ``cap``."""
    length = max(1, extra + task.exec_cycles)
    while True:
        demand = extra + sum(
            int(math.ceil((length + t.jitter) / t.period)) * t.exec_cycles
            for t in [task, *interferers]
        )
        if demand <= length:
            return length
        if demand > cap:
            return None
        length = demand


def _response_cap(task: RtaTask, interferers: Sequence[RtaTask]) -> int:
    """Iteration cap: generous but finite, to bound divergent fixpoints."""
    total = task.exec_cycles + task.blocking + sum(t.exec_cycles for t in interferers)
    periods = [task.period, *(t.period for t in interferers)]
    return 64 * (total + max(periods)) + 64 * task.period


def _warm_seed(
    cache: Optional[FixpointCache], warm_key: Any, start: int
) -> int:
    """Iteration start: the committed seed if any, clamped to ``start``.

    The clamp keeps the seed inside the sound interval even when the
    dominated problem's converged value lies below the new problem's
    classic start.
    """
    if cache is None or warm_key is None:
        return start
    seed = cache.warm_start(warm_key)
    if seed is None:
        return start
    return max(start, seed)


def fp_preemptive_wcrt(
    tasks: Sequence[RtaTask],
    task: RtaTask,
    cache: Optional[FixpointCache] = None,
    warm_key: Any = None,
) -> Optional[int]:
    """WCRT under preemptive fixed-priority scheduling with jitter/blocking.

    Busy-period formulation (handles response times beyond one period):

    ``w(q) = (q + 1) C_i + B_i + sum_hp ceil((w + J_j) / T_j) C_j``
    ``R_i  = max_q (w(q) - q T_i)``

    Args:
        cache: Optional :class:`FixpointCache`.  Identical (task,
            interferer-set) problems return their memoized bound; with
            ``warm_key`` also set, each busy-period/per-q fixpoint is
            seeded from the committed value of the dominated problem the
            caller staged under the same key.
        warm_key: Stable identity of this fixpoint *problem site* across
            a monotone family of calls (e.g. one task's screen slot
            across inflation factors).  The caller must guarantee the
            committed problem's demand is pointwise no larger.
    """
    interferers = _hp(tasks, task)
    if cache is not None:
        exact_key = (
            "fp-p", _memo_key(task), tuple(_memo_key(t) for t in interferers)
        )
        hit = cache.get_exact(exact_key)
        if hit is not CACHE_MISS:
            return hit
    cap = _response_cap(task, interferers)
    busy = _busy_period(task, interferers, task.blocking, cap)
    if busy is None:
        if cache is not None:
            cache.put_exact(exact_key, None)
        return None
    q_max = int(math.ceil((busy + task.jitter) / task.period))
    worst = 0
    for q in range(q_max):
        start = (q + 1) * task.exec_cycles + task.blocking
        w = _warm_seed(cache, (warm_key, "fp-p", q) if warm_key is not None else None, start)
        while True:
            demand = (
                (q + 1) * task.exec_cycles
                + task.blocking
                + sum(
                    int(math.ceil((w + t.jitter) / t.period)) * t.exec_cycles
                    for t in interferers
                )
            )
            if demand == w:
                break
            if demand > cap:
                if cache is not None:
                    cache.put_exact(exact_key, None)
                return None
            w = demand
        if cache is not None and warm_key is not None:
            cache.stage((warm_key, "fp-p", q), w)
        worst = max(worst, w - q * task.period)
    if cache is not None:
        cache.put_exact(exact_key, worst)
    return worst


def fp_nonpreemptive_wcrt(
    tasks: Sequence[RtaTask],
    task: RtaTask,
    cache: Optional[FixpointCache] = None,
    warm_key: Any = None,
) -> Optional[int]:
    """WCRT under non-preemptive fixed-priority scheduling.

    Davis & Burns style: the *start* time of the q-th job in the level-i
    busy period solves

    ``w(q) = B_i + q C_i + sum_hp (floor((w + J_j) / T_j) + 1) C_j``

    and the response is ``w(q) + C_i - q T_i``.  Once started, a job runs
    to completion (``exec_cycles`` is the whole non-preemptive section —
    for segmented tasks, call this per-segment via the higher-level
    analyses instead).

    ``cache``/``warm_key`` behave as in :func:`fp_preemptive_wcrt`.
    """
    interferers = _hp(tasks, task)
    if cache is not None:
        exact_key = (
            "fp-n", _memo_key(task), tuple(_memo_key(t) for t in interferers)
        )
        hit = cache.get_exact(exact_key)
        if hit is not CACHE_MISS:
            return hit
    cap = _response_cap(task, interferers)
    busy = _busy_period(task, interferers, task.blocking, cap)
    if busy is None:
        if cache is not None:
            cache.put_exact(exact_key, None)
        return None
    q_max = int(math.ceil((busy + task.jitter) / task.period))
    worst = 0
    for q in range(q_max):
        start = task.blocking + q * task.exec_cycles
        w = _warm_seed(cache, (warm_key, "fp-n", q) if warm_key is not None else None, start)
        while True:
            demand = (
                task.blocking
                + q * task.exec_cycles
                + sum(
                    (int(math.floor((w + t.jitter) / t.period)) + 1) * t.exec_cycles
                    for t in interferers
                )
            )
            if demand == w:
                break
            if demand > cap:
                if cache is not None:
                    cache.put_exact(exact_key, None)
                return None
            w = demand
        if cache is not None and warm_key is not None:
            cache.stage((warm_key, "fp-n", q), w)
        worst = max(worst, w + task.exec_cycles - q * task.period)
    if cache is not None:
        cache.put_exact(exact_key, worst)
    return worst


def with_np_blocking(tasks: Sequence[RtaTask]) -> List[RtaTask]:
    """Return copies with ``blocking`` set to the classic NP bound.

    Each task can be blocked by at most one lower-priority job that
    already started: ``B_i = max`` over lower-priority ``exec_cycles``.
    """
    result = []
    for task in tasks:
        key = (task.priority, task.name)
        lower = [t.exec_cycles for t in tasks if (t.priority, t.name) > key]
        result.append(
            RtaTask(
                name=task.name,
                exec_cycles=task.exec_cycles,
                period=task.period,
                deadline=task.deadline,
                priority=task.priority,
                jitter=task.jitter,
                blocking=max(lower, default=0),
            )
        )
    return result


def fault_aware_wcrt(
    tasks: Sequence[RtaTask],
    task: RtaTask,
    k_faults: int,
    fault_cost: int,
    preemptive: bool = False,
) -> Optional[int]:
    """WCRT of ``task`` when every job may suffer up to ``k_faults`` faults.

    Each fault (a failed transfer attempt with its retries, CRC
    rechecks, backoff slots, watchdog waits, or a REMAP re-fetch) costs
    at most ``fault_cost`` extra cycles of demand on the analysed
    resource.  The bound charges the full fault budget to *every* job in
    the window — ``k_faults * fault_cost`` is added to each task's
    ``exec_cycles`` (its own demand and its interference on others) and
    to each task's ``blocking`` (a lower-priority fault-handling section
    can block, too).  Demand, interference, and blocking are monotone in
    these terms, so the result upper-bounds any execution in which every
    job experiences at most ``k_faults`` faults of at most ``fault_cost``
    cycles each.
    """
    if k_faults < 0:
        raise ValueError(f"k_faults must be >= 0, got {k_faults}")
    if fault_cost < 0:
        raise ValueError(f"fault_cost must be >= 0, got {fault_cost}")
    extra = k_faults * fault_cost
    inflated = [
        RtaTask(
            name=t.name,
            exec_cycles=t.exec_cycles + extra,
            period=t.period,
            deadline=t.deadline,
            priority=t.priority,
            jitter=t.jitter,
            blocking=t.blocking + extra,
        )
        for t in tasks
    ]
    target = next(t for t in inflated if t.name == task.name)
    analysis = fp_preemptive_wcrt if preemptive else fp_nonpreemptive_wcrt
    return analysis(inflated, target)


def fp_schedulable(
    tasks: Sequence[RtaTask], preemptive: bool = False
) -> bool:
    """Whether every task's WCRT bound meets its deadline."""
    analysis = fp_preemptive_wcrt if preemptive else fp_nonpreemptive_wcrt
    for task in tasks:
        wcrt = analysis(tasks, task)
        if wcrt is None or wcrt > task.deadline:
            return False
    return True


def edf_demand_schedulable(tasks: Sequence[RtaTask]) -> bool:
    """Processor-demand test for preemptive EDF (jitter/blocking ignored).

    Checks ``dbf(t) <= t`` at all deadlines up to the busy-period bound
    ``L*``; sufficient and necessary for independent preemptive tasks.
    """
    total_util = utilization(tasks)
    if total_util > 1.0:
        return False
    if total_util == 0.0:
        return True
    if total_util < 1.0:
        numerator = sum(
            max(0, t.period - t.deadline) * t.utilization for t in tasks
        )
        l_star = numerator / (1.0 - total_util)
    else:
        l_star = float(hyperperiod([t.period for t in tasks]))
    limit = max(int(math.ceil(l_star)), max(t.deadline for t in tasks))
    checkpoints = sorted(
        {
            t.deadline + k * t.period
            for t in tasks
            for k in range(0, (limit - t.deadline) // t.period + 1)
        }
    )
    for point in checkpoints:
        demand = sum(
            ((point - t.deadline) // t.period + 1) * t.exec_cycles
            for t in tasks
            if point >= t.deadline
        )
        if demand > point:
            return False
    return True
