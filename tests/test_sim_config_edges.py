"""Edge-path tests for SimConfig: hard-cap truncation and abort_on_miss.

Both paths end a run with jobs still in flight; the stats must account
for every released job exactly once (responses + aborts + unfinished).
"""

from repro.sched.policies import CpuPolicy
from repro.sched.simulator import SimConfig, simulate
from repro.sched.task import PeriodicTask, Segment, TaskSet


def _task(name, pairs, period, deadline, priority, buffers, phase=0):
    return PeriodicTask(
        name,
        tuple(Segment(f"{name}{i}", l, c) for i, (l, c) in enumerate(pairs)),
        period=period,
        deadline=deadline,
        priority=priority,
        buffers=buffers,
        phase=phase,
    )


def _overloaded_taskset():
    """Utilization > 1: the queue grows without bound, so released jobs
    can never all complete."""
    return TaskSet.of([
        _task("t0", [(100, 950)], 1000, 1000, 0, 2),
        _task("t1", [(50, 400)], 1500, 1500, 1, 2),
    ])


def test_hard_cap_truncates_overloaded_run():
    result = simulate(
        _overloaded_taskset(),
        SimConfig(policy=CpuPolicy.FP_NP, horizon=10000, hard_cap_factor=1.0),
    )
    assert result.truncated
    # The backlog that never ran is accounted as unfinished...
    unfinished = sum(s.unfinished for s in result.stats.values())
    assert unfinished > 0
    # ...and counted against schedulability.
    assert result.total_misses >= unfinished
    assert not result.no_misses
    for stats in result.stats.values():
        assert stats.jobs == len(stats.responses) + stats.aborts + stats.unfinished


def test_hard_cap_factor_bounds_end_time():
    # Utilization ~2: the backlog at the horizon is about one extra
    # horizon's worth of work, far past a 1.5x cap.
    ts = TaskSet.of([_task("t0", [(100, 1900)], 1000, 1000, 0, 2)])
    config = SimConfig(policy=CpuPolicy.FP_NP, horizon=10000,
                       hard_cap_factor=1.5)
    result = simulate(ts, config)
    assert result.truncated
    # The cap is horizon * factor plus one period of slack, checked at
    # event granularity — the breaking event may overshoot by one burst.
    cap = config.horizon * config.hard_cap_factor + 1000
    max_burst = 1900 + 100
    assert cap < result.end_time <= cap + max_burst


def test_generous_hard_cap_drains_the_queue():
    """With a loose cap the same overloaded set runs its backlog down
    after releases stop, so nothing is left unfinished."""
    result = simulate(
        _overloaded_taskset(),
        SimConfig(policy=CpuPolicy.FP_NP, horizon=4000, hard_cap_factor=10.0),
    )
    assert not result.truncated
    assert all(s.unfinished == 0 for s in result.stats.values())
    assert result.end_time > 4000  # backlog drained past the horizon


def test_abort_on_miss_stops_with_jobs_in_flight():
    result = simulate(
        _overloaded_taskset(),
        SimConfig(policy=CpuPolicy.FP_NP, horizon=10000, abort_on_miss=True),
    )
    assert result.aborted_on_miss
    assert not result.no_misses
    # The run stopped at the first miss, well before the horizon drained.
    assert result.end_time < 10000
    # Jobs that were queued or in flight at the stop count as unfinished.
    assert sum(s.unfinished for s in result.stats.values()) > 0
    for stats in result.stats.values():
        assert stats.jobs == len(stats.responses) + stats.aborts + stats.unfinished


def test_abort_on_miss_unset_on_clean_sets():
    ts = TaskSet.of([_task("t0", [(10, 100)], 1000, 1000, 0, 2)])
    result = simulate(
        ts, SimConfig(policy=CpuPolicy.FP_NP, horizon=5000, abort_on_miss=True)
    )
    assert not result.aborted_on_miss
    assert result.no_misses
