"""Timestamped request traces for the online runtime.

A :class:`RequestTrace` is the runtime's entire input: a time-ordered
sequence of :class:`Request` events over a bounded horizon.  Traces are
plain data with a JSON round-trip so they can be generated
(:mod:`repro.workload.arrivals`), saved, replayed (``rtmdm serve``) and
diffed across runs.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple


class RequestKind(enum.Enum):
    """What a deployment request asks for."""

    ADMIT = "admit"
    REMOVE = "remove"
    RESCALE = "rescale"


@dataclass(frozen=True)
class Request:
    """One deployment request.

    Attributes:
        time_s: Arrival time in seconds from trace start.
        kind: ``ADMIT`` (start running a model periodically), ``REMOVE``
            (stop it), or ``RESCALE`` (change its rate).
        task: Logical task name the request refers to.
        model: Zoo model name (``ADMIT`` only).
        period_s: Requested period in seconds (``ADMIT``/``RESCALE``).
        deadline_s: Relative deadline in seconds; ``0`` means implicit
            (deadline = period).
    """

    time_s: float
    kind: RequestKind
    task: str
    model: str = ""
    period_s: float = 0.0
    deadline_s: float = 0.0

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"request time must be >= 0, got {self.time_s}")
        if not self.task:
            raise ValueError("request needs a task name")
        if self.kind is RequestKind.ADMIT and not self.model:
            raise ValueError(f"ADMIT for {self.task!r} needs a model name")
        if self.kind in (RequestKind.ADMIT, RequestKind.RESCALE):
            if self.period_s <= 0:
                raise ValueError(
                    f"{self.kind.value} for {self.task!r} needs period_s > 0"
                )
        if self.deadline_s < 0 or (
            self.period_s > 0 and self.deadline_s > self.period_s
        ):
            raise ValueError(
                f"{self.task!r}: deadline_s must be in [0, period_s], got "
                f"{self.deadline_s} with period {self.period_s}"
            )

    def to_dict(self) -> Dict:
        d = {"time_s": self.time_s, "kind": self.kind.value, "task": self.task}
        if self.model:
            d["model"] = self.model
        if self.period_s:
            d["period_s"] = self.period_s
        if self.deadline_s:
            d["deadline_s"] = self.deadline_s
        return d

    @classmethod
    def from_dict(cls, d: Dict) -> "Request":
        return cls(
            time_s=float(d["time_s"]),
            kind=RequestKind(d["kind"]),
            task=str(d["task"]),
            model=str(d.get("model", "")),
            period_s=float(d.get("period_s", 0.0)),
            deadline_s=float(d.get("deadline_s", 0.0)),
        )


@dataclass(frozen=True)
class RequestTrace:
    """A bounded, time-ordered request sequence.

    Attributes:
        requests: Events in non-decreasing time order.
        duration_s: Simulation horizon; releases stop here, but released
            jobs still run to completion.
    """

    requests: Tuple[Request, ...]
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {self.duration_s}")
        times = [r.time_s for r in self.requests]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("requests must be in non-decreasing time order")
        if times and times[-1] > self.duration_s:
            raise ValueError(
                f"last request at {times[-1]} s exceeds duration {self.duration_s} s"
            )

    @classmethod
    def of(cls, requests: Iterable[Request], duration_s: float) -> "RequestTrace":
        """Build a trace, sorting events by (time, original order)."""
        ordered = sorted(
            enumerate(requests), key=lambda pair: (pair[1].time_s, pair[0])
        )
        return cls(tuple(r for _, r in ordered), duration_s)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    def to_json(self) -> str:
        payload = {
            "schema": "rtmdm-trace/1",
            "duration_s": self.duration_s,
            "requests": [r.to_dict() for r in self.requests],
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "RequestTrace":
        payload = json.loads(text)
        requests: List[Request] = [
            Request.from_dict(d) for d in payload["requests"]
        ]
        return cls.of(requests, float(payload["duration_s"]))
