"""Unit tests for the layer timing model and platform bundle."""

import pytest

from repro.dnn.layers import Conv2D, Dense, DepthwiseConv2D, Flatten, Pool
from repro.hw.dma import DmaArbitration
from repro.hw.mcu import McuSpec
from repro.hw.memory import ExternalMemory
from repro.hw.platform import Platform
from repro.hw.timing import TimingModel

MCU = McuSpec(name="m", clock_hz=100_000_000, sram_bytes=256 * 1024, flash_bytes=0)
MEM = ExternalMemory(name="x", read_bandwidth_bps=50e6, xip_efficiency=0.5)
TIMING = TimingModel()


def _conv():
    return Conv2D(name="c", input_shape=(16, 16, 8), out_channels=16, kernel=3)


class TestTimingModel:
    def test_mac_layers_scale_with_macs(self):
        small = Conv2D(name="s", input_shape=(8, 8, 8), out_channels=8, kernel=3)
        big = Conv2D(name="b", input_shape=(16, 16, 8), out_channels=8, kernel=3)
        cs = TIMING.compute_cycles(small, MCU)
        cb = TIMING.compute_cycles(big, MCU)
        assert cb > cs
        # 4x the output area -> roughly 4x the arithmetic (minus overhead).
        ratio = (cb - TIMING.per_layer_overhead_cycles) / (
            cs - TIMING.per_layer_overhead_cycles
        )
        assert ratio == pytest.approx(4.0, rel=0.05)

    def test_dwconv_costs_more_per_mac_than_conv(self):
        conv = _conv()
        dw = DepthwiseConv2D(name="d", input_shape=(16, 16, 8), kernel=3)
        conv_per_mac = (TIMING.compute_cycles(conv, MCU) - 2000) / conv.macs
        dw_per_mac = (TIMING.compute_cycles(dw, MCU) - 2000) / dw.macs
        assert dw_per_mac > conv_per_mac

    def test_memory_bound_floor_applies(self):
        # A huge dense layer with tiny compute coefficient would be
        # memory-bound; verify the floor kicks in via a wide dense layer.
        dense = Dense(name="d", input_shape=(4096,), out_features=1)
        cycles = TIMING.compute_cycles(dense, MCU)
        bytes_touched = dense.param_count + dense.input_elements + dense.output_elements
        floor = bytes_touched * TIMING.sram_cycles_per_byte
        assert cycles >= floor

    def test_no_dsp_inflates_mac_layers(self):
        no_dsp = McuSpec(
            name="nd", clock_hz=100_000_000, sram_bytes=256 * 1024,
            flash_bytes=0, dsp_extensions=False,
        )
        assert TIMING.compute_cycles(_conv(), no_dsp) > TIMING.compute_cycles(_conv(), MCU)

    def test_float32_slower_than_int8(self):
        assert TIMING.compute_cycles(_conv(), MCU, 4.0) > TIMING.compute_cycles(
            _conv(), MCU, 1.0
        )

    def test_element_layers_use_element_cost(self):
        pool = Pool(name="p", input_shape=(16, 16, 8), pool=2)
        cycles = TIMING.compute_cycles(pool, MCU)
        assert cycles >= TIMING.per_layer_overhead_cycles

    def test_unknown_kind_raises(self):
        class Weird:
            kind = "fft"
            macs = 10
            output_elements = 10
            input_elements = 10
            param_count = 0

        with pytest.raises(KeyError, match="fft"):
            TIMING.compute_cycles(Weird(), MCU)

    def test_xip_adds_weight_fetch_cost(self):
        cost = TIMING.layer_cost(_conv(), MCU, MEM, xip=True)
        assert cost.xip_extra_cycles > 0
        assert cost.xip_cycles == cost.compute_cycles + cost.xip_extra_cycles

    def test_xip_free_for_parameterless_layers(self):
        flat = Flatten(name="f", input_shape=(4, 4, 4))
        cost = TIMING.layer_cost(flat, MCU, MEM, xip=True)
        assert cost.xip_extra_cycles == 0

    def test_staged_mode_has_no_xip_cost(self):
        cost = TIMING.layer_cost(_conv(), MCU, MEM, xip=False)
        assert cost.xip_extra_cycles == 0


class TestPlatform:
    def _platform(self):
        return Platform(name="p", mcu=MCU, memory=MEM)

    def test_load_cycles_delegates_to_dma(self):
        p = self._platform()
        assert p.load_cycles(1000) == p.dma.transfer_cycles(1000, MCU, MEM)

    def test_xip_cycles_exceed_staged_for_weighted_layer(self):
        p = self._platform()
        conv = _conv()
        assert p.xip_cycles(conv) > p.compute_cycles(conv)

    def test_with_bandwidth_factor(self):
        p = self._platform()
        fast = p.with_bandwidth_factor(2.0)
        assert fast.load_cycles(100_000) < p.load_cycles(100_000)
        assert fast.mcu is p.mcu

    def test_with_sram_bytes(self):
        p = self._platform().with_sram_bytes(64 * 1024)
        assert p.mcu.sram_bytes == 64 * 1024
        assert p.mcu.clock_hz == MCU.clock_hz

    def test_with_dma_arbitration(self):
        p = self._platform().with_dma_arbitration(DmaArbitration.FIFO)
        assert p.dma.arbitration is DmaArbitration.FIFO

    def test_balance_bytes_per_cycle(self):
        p = self._platform()
        assert p.balance_bytes_per_cycle() == pytest.approx(0.5)  # 50e6 / 100e6

    def test_usable_sram(self):
        assert self._platform().usable_sram_bytes == MCU.usable_sram_bytes
