"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_models_lists_zoo(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "ds-cnn" in out and "mobilenet-v1-0.25" in out

    def test_platforms_lists_presets(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "f746-qspi" in out

    def test_plan_doorbell(self, capsys):
        assert main(["plan", "doorbell"]) == 0
        out = capsys.readouterr().out
        assert "admitted: True" in out
        assert "kws" in out and "SRAM" in out

    def test_plan_with_platform_override(self, capsys):
        assert main(["plan", "doorbell", "--platform", "h743-octal"]) == 0
        out = capsys.readouterr().out
        assert "STM32H743" in out

    def test_simulate_doorbell(self, capsys):
        assert main(["simulate", "doorbell", "--duration", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "misses: 0" in out
        assert "cpu" in out and "dma" in out  # gantt rows

    def test_exp_t2(self, capsys):
        assert main(["exp", "EXP-T2"]) == 0
        out = capsys.readouterr().out
        assert "EXP-T2" in out and "bytes_per_cycle" in out

    def test_exp_lowercase_id(self, capsys):
        assert main(["exp", "exp-t1"]) == 0
        assert "EXP-T1" in capsys.readouterr().out

    def test_exp_unknown_id(self):
        with pytest.raises(KeyError, match="available"):
            main(["exp", "EXP-Z9"])

    def test_exp_jobs_and_n_sets(self, capsys):
        assert main(
            ["exp", "EXP-F4", "--scale", "0.1", "--n-sets", "4", "--jobs", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "EXP-F4" in out and "plan cache:" in out

    def test_exp_profile_prints_hotspots(self, capsys):
        assert main(["exp", "EXP-T2", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile (top 25 by cumulative time)" in out
        assert "cumtime" in out

    def test_exp_help_documents_tuning_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["exp", "--help"])
        out = capsys.readouterr().out
        for flag in ("--scale", "--n-sets", "--jobs", "--profile"):
            assert flag in out
        assert "REPRO_JOBS" in out  # the env default is discoverable

    def test_bad_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["plan", "nonexistent"])

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestJsonOutput:
    def test_plan_json(self, capsys):
        import json

        assert main(["plan", "doorbell", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "rtmdm-plan/1"
        assert payload["admitted"] is True
        assert {row["task"] for row in payload["tasks"]} >= {"kws"}
        assert payload["sram"]["used_bytes"] <= payload["sram"]["capacity_bytes"]

    def test_simulate_json(self, capsys):
        import json

        assert main(["simulate", "doorbell", "--duration", "1.0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "rtmdm-sim/1"
        assert payload["no_misses"] is True
        assert all("worst_ms" in t for t in payload["tasks"].values())


class TestServe:
    def test_serve_generated_trace(self, capsys):
        assert main(
            ["serve", "--rate", "1.0", "--duration", "4.0", "--seed", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "trace: poisson" in out
        assert "admitted" in out

    def test_serve_json_event_log(self, capsys):
        import json

        assert main(
            ["serve", "--rate", "1.5", "--duration", "4.0", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "rtmdm-serve/1"
        assert payload["sound"] is True
        assert payload["requests"] == len(payload["decisions"])
        assert payload["sim"]["total_misses"] == 0
        # The event log must be bit-identical across same-seed runs, so
        # wall-clock decision latency stays out of it (suite meta only).
        assert all("latency_us" not in d for d in payload["decisions"])

    def test_serve_trace_file(self, capsys, tmp_path):
        import json

        from repro.online.events import Request, RequestKind, RequestTrace

        trace = RequestTrace.of(
            [
                Request(time_s=0.1, kind=RequestKind.ADMIT, task="kws",
                        model="ds-cnn", period_s=0.4),
                Request(time_s=1.5, kind=RequestKind.REMOVE, task="kws"),
            ],
            duration_s=3.0,
        )
        path = tmp_path / "trace.json"
        path.write_text(trace.to_json(), encoding="utf-8")
        assert main(["serve", "--trace", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["admitted"] == 1
        assert payload["removed"] == 1

    def test_serve_no_sim_and_overrides(self, capsys):
        assert main(
            ["serve", "--rate", "1.0", "--duration", "3.0", "--sram", "256",
             "--protocol", "drain", "--no-sim", "--json"]
        ) in (0, 1)
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["protocol"] == "drain"
        assert "sim" not in payload


class TestDurableServe:
    def test_journal_then_restore(self, capsys, tmp_path):
        journal = str(tmp_path / "j.jsonl")
        args = ["serve", "--rate", "1.5", "--duration", "4.0", "--seed", "7",
                "--journal", journal, "--checkpoint-interval", "4", "--no-sim"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "checkpoints" in out and "invariants" in out
        assert main(args + ["--restore"]) == 0
        out = capsys.readouterr().out
        assert "recovered from" in out and "replayed" in out

    def test_json_carries_durable_section(self, capsys, tmp_path):
        import json

        journal = str(tmp_path / "j.jsonl")
        assert main(
            ["serve", "--rate", "1.5", "--duration", "4.0", "--seed", "7",
             "--journal", journal, "--no-sim", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        durable = payload["durable"]
        assert durable["records"] > 0
        assert set(durable["invariants"]) == {
            "sram-capacity", "admitted-screen", "modechange-accounting",
            "decision-log",
        }
        assert durable["gate"]["emitted"] == payload["requests"]

    def test_restore_without_journal_is_typed_error(self, capsys):
        assert main(["serve", "--restore", "--no-sim"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ValueError:")
        assert "--journal" in err

    def test_quiet_suppresses_decision_log(self, capsys):
        assert main(
            ["serve", "--rate", "1.5", "--duration", "4.0", "--no-sim",
             "--quiet"]
        ) == 0
        out = capsys.readouterr().out
        assert "admitted" in out
        assert "t=" not in out  # no per-decision lines


class TestTypedErrors:
    def test_missing_trace_file(self, capsys):
        assert main(["serve", "--trace", "/no/such/file.json"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: FileNotFoundError:")
        assert "\n" == err[err.index("\n"):]  # a single line, no traceback

    def test_malformed_trace_file(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "bogus"}', encoding="utf-8")
        assert main(["serve", "--trace", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: TraceFormatError:")

    def test_damaged_journal_on_restore(self, capsys, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("not-a-journal\n", encoding="utf-8")
        assert main(
            ["serve", "--journal", str(path), "--restore", "--no-sim"]
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: JournalError:")


class TestChaosCommand:
    def test_reduced_matrix_smoke(self, capsys):
        assert main(
            ["chaos", "--duration", "2.5", "--rate", "1.5", "--seed", "7",
             "--crash-stride", "4", "--modes", "none,duplicate"]
        ) == 0
        out = capsys.readouterr().out
        assert "chaos matrix: OK" in out
        assert "bit-identical" in out
        assert "invariants:" in out

    def test_json_report(self, capsys):
        import json

        assert main(
            ["chaos", "--duration", "2.0", "--seed", "7", "--crash-stride",
             "5", "--modes", "truncate-journal", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "rtmdm-chaos/1"
        assert payload["ok"] is True
        assert payload["cells"]

    def test_unknown_mode_is_typed_error(self, capsys):
        assert main(["chaos", "--modes", "meteor"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ValueError:")


class TestQuietFlag:
    def test_plan_quiet(self, capsys):
        assert main(["plan", "doorbell", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "admitted: True" in out
        assert "prio=" not in out  # table suppressed

    def test_recover_quiet(self, capsys):
        assert main(
            ["recover", "doorbell", "--duration", "2.0", "--quiet",
             "--bad-frac", "0.0"]
        ) in (0, 1)
        out = capsys.readouterr().out
        assert "survives:" in out
        assert "ladder" not in out  # table suppressed


class TestFleetCommand:
    ARGS = ["fleet", "--devices", "60", "--shards", "2", "--duration", "2",
            "--rate", "20", "--arrival", "bursty", "--seed", "11",
            "--batch", "4", "--queue-depth", "8", "--service-us", "400"]

    def test_degrade_and_timeout_flags(self, capsys):
        assert main(
            self.ARGS + ["--degrade-watermark", "4", "--timeout-ms", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "resilience:" in out
        assert "degraded admits" in out

    def test_json_reports_per_rung_counters(self, capsys):
        import json

        assert main(
            self.ARGS + ["--degrade-watermark", "4", "--timeout-ms", "5",
                         "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "rtmdm-fleet/1"
        assert payload["degraded_admits"] > 0
        assert payload["timeout_retries"] >= 0
        assert payload["recovered"] == 0
        assert payload["shards"][0]["timeouts"] >= 0
        assert payload["shards"][0]["degraded_admits"] >= 0

    def test_crash_at_recovers(self, capsys, tmp_path):
        import json

        assert main(
            ["fleet", "--devices", "30", "--shards", "2", "--duration", "1",
             "--rate", "5", "--journal-dir", str(tmp_path),
             "--checkpoint-interval", "16", "--crash-at", "0:5",
             "--crash-at", "1:9", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["recovered"] == 2
        assert sum(s["recovered"] for s in payload["shards"]) == 2

    def test_crash_at_parse_error(self, capsys):
        assert main(
            ["fleet", "--journal-dir", "/tmp/x", "--crash-at", "bogus"]
        ) == 2
        assert "--crash-at expects SHARD:INDEX" in capsys.readouterr().err

    def test_crash_at_without_journal_is_typed_error(self, capsys):
        assert main(["fleet", "--crash-at", "0:1"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ValueError:")


class TestFleetChaosCommand:
    def test_fleet_matrix_smoke(self, capsys):
        assert main(
            ["chaos", "--fleet", "--devices", "12", "--duration", "1",
             "--rate", "5", "--shard-counts", "1,2",
             "--modes", "none,reorder"]
        ) == 0
        out = capsys.readouterr().out
        assert "fleet chaos matrix: OK" in out
        assert "bit-identical" in out

    def test_fleet_matrix_json(self, capsys):
        import json

        assert main(
            ["chaos", "--fleet", "--devices", "12", "--duration", "1",
             "--rate", "5", "--shard-counts", "2", "--modes", "skew",
             "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "rtmdm-fleet-chaos/1"
        assert payload["ok"] is True
        assert payload["invariants"]["decision-dense"] > 0
