"""Adversarial safety search: stress the analyses where they almost broke.

The naive two-stage (DMA then CPU) decomposition is UNSOUND for tasks
with fewer staging buffers than segments: buffer gating makes a load wait
for a compute, whose CPU-side delays the DMA stage never counts.  The
repository's holistic analysis therefore applies the stage-sum only to
fully-buffered tasks (see ``_analyze_holistic``); this file is the
regression suite that found the original violation and keeps the repair
honest.

The generator is deliberately adversarial: a heavy pure-compute
high-priority task plus a many-segment, load-gated victim — the coupling
pattern that broke the naive decomposition.
"""

from __future__ import annotations

import random

import pytest

from repro.core.analysis import METHODS, analyze
from repro.sched.policies import CpuPolicy
from repro.sched.simulator import SimConfig, simulate
from repro.sched.task import PeriodicTask, Segment, TaskSet


def _mk(name, segs, period, deadline, priority, buffers):
    segments = tuple(
        Segment(f"{name}{i}", load, comp) for i, (load, comp) in enumerate(segs)
    )
    return PeriodicTask(
        name,
        segments,
        period=period,
        deadline=deadline,
        priority=priority,
        buffers=buffers,
    )


def _adversarial_set(seed: int) -> TaskSet:
    r = random.Random(seed)
    n_hp = r.randint(1, 2)
    tasks = []
    for k in range(n_hp):
        compute = r.randint(20, 60)
        period = r.randint(int(compute * 1.2), compute * 4)
        load = 0 if r.random() < 0.7 else r.randint(1, 20)
        tasks.append(_mk(f"hp{k}", [(load, compute)], period, period, k, 1))
    m = r.randint(2, 8)
    segs = [(r.randint(0, 30), r.randint(5, 40)) for _ in range(m)]
    total = sum(l + c for l, c in segs)
    period = r.randint(total * 2, total * 12)
    deadline = r.randint(int(period * 0.7), period)
    buffers = r.choice([1, 2, m])  # include full buffering (stage-sum path)
    tasks.append(_mk("vic", segs, period, deadline, n_hp, buffers))
    return TaskSet.of(tasks)


@pytest.mark.parametrize("seed", range(120))
def test_no_analysis_underestimates_worst_response(seed):
    taskset = _adversarial_set(seed)
    results = {m: analyze(taskset, m) for m in METHODS}
    if not any(res.schedulable for res in results.values()):
        pytest.skip("no analysis admits this set")
    r = random.Random(seed ^ 0xBEEF)
    horizon = 25 * max(t.period for t in taskset)
    sims = []
    for trial in range(4):
        phases = (
            [0] * len(taskset)
            if trial == 0
            else [r.randrange(t.period) for t in taskset]
        )
        sims.append(
            simulate(
                taskset.with_phases(phases),
                SimConfig(policy=CpuPolicy.FP_NP, horizon=horizon),
            )
        )
    for method, result in results.items():
        if not result.schedulable:
            continue
        for sim in sims:
            assert sim.no_misses, f"{method} admitted a set that missed deadlines"
            for task in taskset:
                observed = sim.max_response(task.name)
                bound = result.wcrt[task.name]
                if observed is not None and bound is not None:
                    assert observed <= bound, (
                        f"{method}: {task.name} observed {observed} > bound {bound}"
                    )


def test_naive_stage_sum_would_be_unsound_documented_case():
    """The concrete gating pattern that broke the naive decomposition.

    A single-buffer victim whose second load waits for its first compute:
    CPU interference on that compute delays the load beyond any pure-DMA
    stage bound.  The repaired holistic analysis must fall back to the
    overlap bound for this task (buffers < segments), and that bound must
    dominate simulation.
    """
    hp = _mk("hp", [(0, 36)], 129, 129, 0, 1)
    vic = _mk("vic", [(28, 25), (19, 15)], 201, 166, 1, 1)
    taskset = TaskSet.of([hp, vic]).with_phases([19, 26])
    result = analyze(TaskSet.of([hp, vic]), "holistic")
    sim = simulate(
        taskset, SimConfig(policy=CpuPolicy.FP_NP, horizon=30 * 201)
    )
    for task in ("hp", "vic"):
        bound = result.wcrt[task]
        observed = sim.max_response(task)
        assert bound is not None and observed is not None
        assert observed <= bound
