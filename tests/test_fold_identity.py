"""Bit-identity regression matrix for steady-state folding and batching.

Folding replays whole hyperperiods arithmetically once the simulator
sees a repeated boundary state; batching shares input-derived setup
across runs.  Neither is allowed to change a single field of any
:class:`~repro.sched.simulator.SimResult`.  This module pins that down
as a matrix: fold on/off x batched vs scalar execution x every CPU
policy x both DMA arbitrations, over random harmonic task sets and the
scenario zoo's planned deployments.

``fold_cycles``/``fold_jobs_skipped`` are telemetry about *how* the
result was obtained and are excluded from the fold-on/off comparison
(a fold-off run legitimately reports zero); every other field must
match exactly.  Batch-vs-scalar comparisons include them — the shared
setup must not even change how folding proceeds.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
import random

import pytest

from conftest import random_taskset
from repro.core.framework import RtMdm
from repro.hw.dma import DmaArbitration
from repro.hw.presets import get_platform
from repro.sched.policies import CpuPolicy
from repro.sched.simulator import SimConfig, fold_enabled, simulate
from repro.sched.task import TaskSet
from repro.eval.parallel import simulate_batch
from repro.workload.scenarios import get_scenario

MATRIX = sorted(
    itertools.product(CpuPolicy, DmaArbitration),
    key=lambda pair: (pair[0].value, pair[1].value),
)

#: Planned scenario deployments exercised alongside random sets.  Two
#: suffice for coverage (distinct platforms / task counts) while keeping
#: the matrix quick; the zoo's remaining scenarios share the same code
#: paths.
ZOO = ("doorbell", "wearable")


def _harmonic(taskset: TaskSet) -> TaskSet:
    """Round every period up to ``base * 2**k`` (base = min period).

    Constrained deadlines stay constrained because periods only grow,
    and the hyperperiod collapses to the maximum period — small enough
    that a test horizon spans many of them, which is what arms folding.
    """
    base = min(t.period for t in taskset)
    tasks = []
    for t in taskset:
        exponent = max(0, math.ceil(math.log2(t.period / base)))
        tasks.append(dataclasses.replace(t, period=base << exponent))
    return TaskSet.of(tasks)


def _zoo_taskset(key: str) -> TaskSet:
    scenario = get_scenario(key)
    rt = RtMdm(get_platform(scenario.platform_key))
    for spec in scenario.specs():
        rt.add_task(spec.name, spec.model, spec.period_s, spec.deadline_s)
    config = rt.configure()
    assert config.feasible and config.taskset is not None
    return _harmonic(config.taskset)


def _random_harmonic(seed: int) -> TaskSet:
    rng = random.Random(seed)
    return _harmonic(
        random_taskset(rng, n_tasks=rng.randint(2, 4), util_target=0.6)
    )


def _config(taskset: TaskSet, policy: CpuPolicy, arb: DmaArbitration) -> SimConfig:
    hyper = max(t.period for t in taskset)
    return SimConfig(
        policy=policy, dma_arbitration=arb, horizon=16 * hyper
    )


def _essence(result) -> dict:
    """Every SimResult field except the folding telemetry."""
    d = dataclasses.asdict(result)
    d.pop("fold_cycles")
    d.pop("fold_jobs_skipped")
    return d


@pytest.fixture
def fold_off(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_FOLD", "0")
    assert not fold_enabled()


@pytest.mark.parametrize("policy,arb", MATRIX)
def test_fold_identical_to_unfolded_random_sets(policy, arb, monkeypatch):
    for seed in (1, 2, 3):
        taskset = _random_harmonic(seed)
        config = _config(taskset, policy, arb)
        monkeypatch.setenv("REPRO_SIM_FOLD", "0")
        unfolded = simulate(taskset, config)
        monkeypatch.setenv("REPRO_SIM_FOLD", "1")
        folded = simulate(taskset, config)
        assert _essence(folded) == _essence(unfolded)
        assert unfolded.fold_cycles == 0


@pytest.mark.parametrize("key", ZOO)
def test_fold_identical_to_unfolded_scenario_zoo(key, monkeypatch):
    taskset = _zoo_taskset(key)
    for policy, arb in MATRIX:
        config = _config(taskset, policy, arb)
        monkeypatch.setenv("REPRO_SIM_FOLD", "0")
        unfolded = simulate(taskset, config)
        monkeypatch.setenv("REPRO_SIM_FOLD", "1")
        folded = simulate(taskset, config)
        assert _essence(folded) == _essence(unfolded)


@pytest.mark.parametrize("fold", ["1", "0"])
def test_batch_identical_to_scalar(fold, monkeypatch):
    """simulate_batch == [simulate(...)] under both fold settings,
    including the telemetry fields (shared setup must not perturb
    folding), across the full policy/arbitration matrix."""
    monkeypatch.setenv("REPRO_SIM_FOLD", fold)
    tasksets = [_random_harmonic(s) for s in (4, 5)] + [
        _zoo_taskset(ZOO[0])
    ]
    cases = [
        (ts, _config(ts, policy, arb))
        for ts in tasksets
        for policy, arb in MATRIX
    ]
    batched = simulate_batch(cases)
    scalar = [simulate(ts, cfg) for ts, cfg in cases]
    assert [dataclasses.asdict(b) for b in batched] == [
        dataclasses.asdict(s) for s in scalar
    ]


def test_folding_engages_on_harmonic_sets():
    """The matrix above is only meaningful if folding actually fires;
    pin that a deterministic harmonic set folds and skips real work."""
    engaged = 0
    for seed in (1, 2, 3):
        taskset = _random_harmonic(seed)
        result = simulate(
            taskset, _config(taskset, CpuPolicy.FP_NP, DmaArbitration.PRIORITY)
        )
        if result.fold_cycles:
            assert result.fold_jobs_skipped > 0
            engaged += 1
    assert engaged > 0


def test_kill_switch_reports_zero_telemetry(fold_off):
    taskset = _random_harmonic(1)
    result = simulate(
        taskset, _config(taskset, CpuPolicy.FP_NP, DmaArbitration.PRIORITY)
    )
    assert result.fold_cycles == 0 and result.fold_jobs_skipped == 0
