"""Benchmark for EXP-T1 (see DESIGN.md section 4)."""

from conftest import bench_experiment


def test_t1_model_zoo(benchmark):
    bench_experiment(benchmark, "EXP-T1")
