"""Deterministic discrete-event simulator for segmented tasks on CPU + DMA.

The platform has two serialized resources:

* the **CPU**, which executes segment compute bursts under a
  :class:`~repro.sched.policies.CpuPolicy`;
* the **DMA engine**, which stages segment weights; transfers are
  non-preemptive and arbitrated FIFO or by task priority
  (:class:`~repro.hw.dma.DmaArbitration`).

Per task, jobs are processed FIFO (only the oldest incomplete job makes
progress).  Within a job, segment *j*'s compute requires its load to have
completed, and segment *j*'s load may only start once segment
``j - buffers``'s compute has finished (staging buffer reuse).

All state is integer cycles; ties are broken deterministically, so a
simulation is exactly reproducible.

Fault injection and overload management (:mod:`repro.robust`) hook in
through :class:`SimConfig`: a :class:`~repro.robust.faults.FaultConfig`
perturbs compute/transfer durations from a dedicated seeded source, and
an :class:`~repro.robust.overload.OverrunPolicy` decides what happens to
jobs that overrun their deadline (abort, skip the next release, or
degrade to a fallback segment list).  Persistent external-memory faults
(:mod:`repro.robust.escalation`) and the recovery ladder
(:mod:`repro.robust.recovery`) hook in the same way (``escalation=``,
``recovery=``): a transfer whose retry budget is exhausted raises a
:class:`~repro.robust.escalation.FaultEvent` and the simulator either
walks the recovery ladder (REMAP → XIP_FALLBACK → DEGRADE → QUARANTINE)
or, with no recovery configured, quarantines the task — a fault never
silently succeeds.  With no faults, a null escalation config, and
``OverrunPolicy.CONTINUE`` the simulator is bit-identical to the nominal
engine.
"""

from __future__ import annotations

import heapq
import itertools
import math
import os
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.hw.dma import DmaArbitration
from repro.robust.escalation import (
    EscalationConfig,
    FaultEvent,
    FaultKind,
    TransferFaultHandler,
    TransferOutcome,
    flash_layout,
)
from repro.robust.faults import FaultConfig, FaultInjector
from repro.robust.overload import DegradeConfig, OverloadManager, OverrunPolicy
from repro.robust.recovery import RecoveryConfig, RecoveryManager
from repro.sched.policies import CpuPolicy
from repro.sched.task import PeriodicTask, Segment, TaskSet
from repro.sched.trace import Trace, TraceEvent

_RELEASE = 0
_DMA_DONE = 1
_CPU_DONE = 2
_DEADLINE = 3

# Hoisted alongside the heappop alias in run(): _push runs per event
# and a module-global lookup beats the heapq attribute chain.
_heappush = heapq.heappush

#: Sentinel boundary meaning "no further fold fingerprinting".
_FOLD_OFF = 1 << 63

#: Give up fingerprinting after this many non-repeating boundaries: a
#: system that has not reached steady state by then (e.g. unbounded
#: backlog growth under overload) is unlikely to, and each fingerprint
#: costs a full state walk.
_FOLD_PROBE_LIMIT = 64

# Process-wide fold counters (mirrors the plan-cache counter protocol:
# snapshot/delta/absorb keep parallel sweeps exact at any worker count).
_fold_counters = {"runs": 0, "folds": 0, "cycles_skipped": 0, "jobs_skipped": 0}


def fold_counters() -> Dict[str, int]:
    """Process-wide steady-state folding counters."""
    return dict(_fold_counters)


def fold_snapshot() -> Tuple[int, int, int, int]:
    """Counter values for later :func:`fold_delta_since`."""
    c = _fold_counters
    return (c["runs"], c["folds"], c["cycles_skipped"], c["jobs_skipped"])


def fold_delta_since(before: Tuple[int, int, int, int]) -> Tuple[int, int, int, int]:
    """Counter increments since a :func:`fold_snapshot`."""
    now = fold_snapshot()
    return tuple(n - b for n, b in zip(now, before))  # type: ignore[return-value]


def fold_absorb(delta: Tuple[int, int, int, int]) -> None:
    """Fold a worker process's counter delta into this process's totals."""
    for key, inc in zip(("runs", "folds", "cycles_skipped", "jobs_skipped"), delta):
        _fold_counters[key] += inc


def fold_enabled() -> bool:
    """Whether steady-state folding is enabled (``REPRO_SIM_FOLD=0`` kills it)."""
    return os.environ.get("REPRO_SIM_FOLD", "1") != "0"


@dataclass(slots=True)
class _Job:
    """Runtime state of one released job.

    ``segments`` is snapshotted at release (it may be the task's
    fallback variant under ``OverrunPolicy.DEGRADE``); all progress
    bookkeeping runs against the snapshot, never ``task.segments``.

    Slotted: sweeps allocate one instance per released job, and slot
    storage is both smaller and faster than a per-instance ``__dict__``.
    """

    task: PeriodicTask
    segments: Tuple[Segment, ...]
    task_pos: int
    index: int
    release: int
    abs_deadline: int
    # Hot-loop mirrors, frozen at creation: the scheduling passes touch
    # these at every event, and a plain slot read beats a property or an
    # attribute chain through ``task``.
    n_seg: int = 0
    buffers: int = 0
    priority: int = 0
    has_zero_loads: bool = False
    loads_issued: int = 0
    loads_done: int = 0
    computes_done: int = 0
    compute_remaining: Optional[int] = None
    load_eligible_since: Optional[int] = None
    finish: Optional[int] = None
    aborted: bool = False
    fault_since: Optional[int] = None

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    @property
    def complete(self) -> bool:
        return self.computes_done == len(self.segments)

    def load_eligible(self) -> bool:
        """Whether the next load may be issued (buffer available)."""
        j = self.loads_issued
        return j < len(self.segments) and j - self.computes_done < self.task.buffers

    def compute_ready(self) -> bool:
        """Whether the next compute segment has its weights staged."""
        return self.computes_done < self.loads_done


@dataclass(slots=True)
class TaskStats:
    """Per-task simulation outcome."""

    name: str
    responses: List[int] = field(default_factory=list)
    misses: int = 0
    unfinished: int = 0
    aborts: int = 0
    skips: int = 0
    degraded_jobs: int = 0
    quarantined_releases: int = 0

    @property
    def jobs(self) -> int:
        """Jobs released (finished + aborted + unfinished).

        Releases suppressed by ``SKIP_NEXT`` (``skips``) never became
        jobs and are not counted here.
        """
        return len(self.responses) + self.aborts + self.unfinished

    @property
    def max_response(self) -> Optional[int]:
        """Worst observed response time, or None if no job finished."""
        return max(self.responses) if self.responses else None


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    stats: Dict[str, TaskStats]
    trace: Optional[Trace]
    cpu_busy: int
    dma_busy: int
    end_time: int
    aborted_on_miss: bool = False
    truncated: bool = False
    dma_retries: int = 0
    fault_events: List[FaultEvent] = field(default_factory=list)
    recovery_latencies: List[int] = field(default_factory=list)
    recovery_counts: Dict[str, int] = field(default_factory=dict)
    quarantined: Tuple[str, ...] = ()
    #: Steady-state folding telemetry: a detected state cycle lets the
    #: simulator replay whole hyperperiods arithmetically.  Every other
    #: field of the result is bit-identical to the unfolded run; these
    #: two only describe how it was obtained.
    fold_cycles: int = 0
    fold_jobs_skipped: int = 0

    @property
    def total_misses(self) -> int:
        """Deadline misses plus aborted jobs plus jobs that never finished."""
        return sum(s.misses + s.aborts + s.unfinished for s in self.stats.values())

    @property
    def no_misses(self) -> bool:
        """True iff every released job met its deadline."""
        return self.total_misses == 0 and not self.aborted_on_miss

    def max_response(self, task_name: str) -> Optional[int]:
        """Worst observed response time of ``task_name``."""
        return self.stats[task_name].max_response


@dataclass(frozen=True)
class SimConfig:
    """Simulation parameters.

    Attributes:
        policy: CPU scheduling policy.
        dma_arbitration: DMA queue ordering.
        horizon: Jobs are released while ``release < horizon``; released
            jobs then run to completion (subject to ``hard_cap_factor``).
        record_trace: Keep a full :class:`~repro.sched.trace.Trace`
            (memory-heavy for long runs).
        abort_on_miss: Stop at the first deadline miss (fast empirical
            schedulability checks).
        hard_cap_factor: Terminate anyway at ``horizon * factor`` and
            count incomplete jobs as unfinished (guards overload runs).
        dma_channels: Number of independent DMA channels (transfers on
            different channels proceed in parallel; the analyses model
            one channel, which is conservative for more).
        sporadic_slack: When positive, releases are *sporadic*: after
            each job, the next arrives ``period + U(0, slack * period)``
            cycles later (seeded by ``seed``; exactly reproducible).
            The periodic analyses remain valid — ``period`` stays the
            minimum inter-arrival time.
        seed: Random seed for sporadic release draws.
        faults: Optional fault-injection parameters (WCET overrun, DMA
            retries, bus jitter); ``None`` or a null config leaves every
            duration nominal.  Fault draws use the config's own seed,
            independent of ``seed``.
        overrun: Reaction to jobs that overrun their deadline (see
            :class:`~repro.robust.overload.OverrunPolicy`).  The default
            ``CONTINUE`` is the nominal run-to-completion behavior.
        degrade: Fallback-variant parameters; required when ``overrun``
            is ``DEGRADE``, ignored otherwise.
        escalation: Optional persistent-fault / fault-handler parameters
            (bad flash regions, bus degradation, DMA lockup, bounded
            retries with exponential backoff).  ``None`` or a null
            config instantiates no handler and leaves the run
            bit-identical to the nominal engine.  When active it
            supersedes the transfer-side model of ``faults`` (retries
            and bus jitter); compute inflation from ``faults`` still
            applies.
        recovery: Optional recovery ladder reacting to terminal
            transfer faults (REMAP → XIP_FALLBACK → DEGRADE →
            QUARANTINE).  Without it, any terminal fault quarantines
            the task.  Ignored unless a fault source is active.
    """

    policy: CpuPolicy = CpuPolicy.FP_NP
    dma_arbitration: DmaArbitration = DmaArbitration.PRIORITY
    horizon: int = 0
    record_trace: bool = False
    abort_on_miss: bool = False
    hard_cap_factor: float = 4.0
    sporadic_slack: float = 0.0
    seed: int = 0
    dma_channels: int = 1
    faults: Optional[FaultConfig] = None
    overrun: OverrunPolicy = OverrunPolicy.CONTINUE
    degrade: Optional[DegradeConfig] = None
    escalation: Optional[EscalationConfig] = None
    recovery: Optional[RecoveryConfig] = None

    def __post_init__(self) -> None:
        if self.sporadic_slack < 0:
            raise ValueError(
                f"sporadic_slack must be >= 0, got {self.sporadic_slack}"
            )
        if self.dma_channels < 1:
            raise ValueError(
                f"dma_channels must be >= 1, got {self.dma_channels}"
            )
        if self.overrun is OverrunPolicy.DEGRADE and self.degrade is None:
            raise ValueError("OverrunPolicy.DEGRADE requires a DegradeConfig")


class SharedSetup:
    """Per-taskset precomputation shared across a batch of simulations.

    :func:`repro.eval.parallel.simulate_batch` builds one of these and
    hands it to every :class:`Simulator` of the batch, so the period
    maximum and the (potentially big-int) hyperperiod LCM are computed
    once per work unit instead of once per run.  Results are identical
    with or without it.
    """

    __slots__ = ("max_period", "hyperperiod")

    def __init__(self, taskset: TaskSet) -> None:
        self.max_period = max(t.period for t in taskset)
        self.hyperperiod = _capped_lcm([t.period for t in taskset])


#: Hyperperiods beyond this are useless for folding (and big-int LCMs
#: of co-prime periods get expensive); matches sched.rta.HYPERPERIOD_CAP.
_HYPERPERIOD_CAP = 1 << 62


def _capped_lcm(periods: List[int]) -> Optional[int]:
    result = 1
    for period in periods:
        result = math.lcm(result, period)
        if result > _HYPERPERIOD_CAP:
            return None
    return result


class Simulator:
    """Event-driven executor for a :class:`~repro.sched.task.TaskSet`."""

    def __init__(
        self,
        taskset: TaskSet,
        config: SimConfig,
        shared: Optional[SharedSetup] = None,
    ) -> None:
        if config.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {config.horizon}")
        self.taskset = taskset
        self.config = config
        self.trace = Trace() if config.record_trace else None
        self._heap: List[Tuple[int, int, int, object]] = []
        self._seq = itertools.count()
        self._queues: Dict[str, Deque[_Job]] = {t.name: deque() for t in taskset}
        # Hot-loop state, hoisted once: the scheduling passes run at every
        # event and must not re-derive policy flags or queue lookups.
        self._tasks: Tuple[PeriodicTask, ...] = tuple(taskset)
        self._queue_list: List[Deque[_Job]] = [
            self._queues[t.name] for t in self._tasks
        ]
        self._deadline_driven = config.policy.deadline_driven
        self._preemptive = config.policy.preemptive
        self._fifo_dma = config.dma_arbitration is DmaArbitration.FIFO
        self._stats = {t.name: TaskStats(name=t.name) for t in taskset}
        self._cpu_job: Optional[_Job] = None
        self._cpu_start = 0
        self._cpu_token = 0
        self._dma_channels: Dict[int, _Job] = {}
        self._cpu_busy = 0
        self._dma_busy = 0
        self._dma_retries = 0
        self._aborted = False
        self._truncated = False
        self._max_period = (
            shared.max_period if shared is not None
            else max(t.period for t in taskset)
        )
        self._hard_cap = (
            int(config.horizon * config.hard_cap_factor) + self._max_period
        )
        self._arrival_rng = random.Random(config.seed)
        self._faults: Optional[FaultInjector] = (
            FaultInjector(config.faults)
            if config.faults is not None and not config.faults.is_null
            else None
        )
        self._overload = OverloadManager(config.overrun, config.degrade)
        self._skip_next: Dict[str, bool] = {t.name: False for t in taskset}
        # Persistent-fault escalation + recovery ladder.  Null configs
        # instantiate nothing, keeping nominal runs bit-identical.
        self._escalation: Optional[TransferFaultHandler] = (
            TransferFaultHandler(config.escalation, flash_layout(taskset))
            if config.escalation is not None and not config.escalation.is_null
            else None
        )
        self._recovery: Optional[RecoveryManager] = (
            RecoveryManager(config.recovery)
            if config.recovery is not None
            and (self._escalation is not None or self._faults is not None)
            else None
        )
        self._dma_fault_pending: Dict[int, TransferOutcome] = {}
        self._fault_events: List[FaultEvent] = []
        self._recovery_latencies: List[int] = []
        self._recovery_counts: Dict[str, int] = {}
        self._quarantined: set = set()
        self._stats_list: List[TaskStats] = [
            self._stats[t.name] for t in self._tasks
        ]
        # ----- steady-state folding --------------------------------------
        # Eligible only for fully deterministic, state-free configurations:
        # everything the future evolution depends on must be captured by
        # the boundary fingerprint.  DEGRADE carries OverloadManager mode
        # state and traces carry absolute times/job indices, so both are
        # excluded; abort_on_miss can stop a run mid-cycle.
        self._fold_eligible = (
            fold_enabled()
            and not config.record_trace
            and not config.abort_on_miss
            and config.sporadic_slack == 0
            and self._faults is None
            and self._escalation is None
            and self._recovery is None
            and config.overrun is not OverrunPolicy.DEGRADE
        )
        self._fold_boundary = _FOLD_OFF
        self._fold_period = 0
        if self._fold_eligible:
            h = (
                shared.hyperperiod if shared is not None
                else _capped_lcm([t.period for t in self._tasks])
            )
            # Need at least two boundaries inside the horizon for a
            # fingerprint to repeat, plus headroom to make a fold pay.
            if h is not None and 2 * h <= config.horizon:
                self._fold_period = h
                self._fold_boundary = h
        self._fold_states: Dict[Tuple, Tuple[int, Tuple]] = {}
        self._fold_probes = 0
        self._fold_cycles = 0
        self._fold_jobs_skipped = 0
        self._folds = 0
        self._release_suppressed = False

    # ------------------------------------------------------------------
    # Priorities (lower tuple = served first)
    # ------------------------------------------------------------------
    def _cpu_key(self, job: _Job) -> Tuple:
        if self._deadline_driven:
            return (job.abs_deadline, job.task.priority, job.release, job.task_pos)
        return (job.task.priority, job.release, job.task_pos)

    def _dma_key(self, job: _Job) -> Tuple:
        if self._fifo_dma:
            since = job.load_eligible_since if job.load_eligible_since is not None else 0
            return (since, job.release, job.task_pos)
        return self._cpu_key(job)

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _push(self, time: int, kind: int, payload: object) -> None:
        _heappush(self._heap, (time, next(self._seq), kind, payload))

    def _trace(self, **kwargs) -> None:
        # Call sites guard on `self.trace is not None` themselves: with
        # tracing off (the sweep default), not even the kwargs dict for
        # a would-be TraceEvent is built.
        if self.trace is not None:
            self.trace.add(TraceEvent(**kwargs))

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------
    def _head(self, task_name: str) -> Optional[_Job]:
        queue = self._queues[task_name]
        return queue[0] if queue else None

    def _release(
        self, time: int, task: PeriodicTask, task_pos: int, index: int
    ) -> bool:
        """Release one job; True iff a scheduling pass could now act.

        A release into a non-empty queue changes nothing either resource
        scheduler can see (only queue heads are candidates), so the main
        loop skips the post-event scheduling pass for it.
        """
        changed = False
        if task.name in self._quarantined:
            # QUARANTINE: the task is suspended; its releases are
            # sacrificed (counted, so miss-ratio accounting stays honest)
            # but the release cadence keeps ticking.
            self._stats[task.name].quarantined_releases += 1
            next_time = time + task.period
            if next_time < self.config.horizon:
                self._push(next_time, _RELEASE, (task_pos, index + 1))
            else:
                self._release_suppressed = True
            return False
        if self._skip_next[task.name]:
            # SKIP_NEXT: a late predecessor sheds this release entirely;
            # the release schedule itself keeps its cadence.
            self._skip_next[task.name] = False
            self._stats[task.name].skips += 1
            if self.trace is not None:
                self._trace(
                    time=time, duration=0, resource="", kind="skip",
                    task=task.name, job=index,
                )
        else:
            segments = self._overload.segments_for(task)
            if self._recovery is not None:
                segments = self._recovery.segments_for(task, segments)
            job = _Job(
                task=task,
                segments=segments,
                task_pos=task_pos,
                index=index,
                release=time,
                abs_deadline=time + task.deadline,
                n_seg=len(segments),
                buffers=task.buffers,
                priority=task.priority,
                has_zero_loads=any(s.load_cycles == 0 for s in segments),
            )
            if segments is not task.segments:
                self._stats[task.name].degraded_jobs += 1
            queue = self._queues[task.name]
            changed = not queue  # a new head is scheduler-visible
            queue.append(job)
            if self.trace is not None:
                self._trace(
                    time=time, duration=0, resource="", kind="release",
                    task=task.name, job=index,
                )
            if self.config.overrun is OverrunPolicy.ABORT_AT_DEADLINE:
                self._push(job.abs_deadline, _DEADLINE, job)
        next_time = time + task.period
        if self.config.sporadic_slack > 0:
            slack = int(task.period * self.config.sporadic_slack)
            if slack > 0:
                next_time += self._arrival_rng.randrange(slack + 1)
        if next_time < self.config.horizon:
            self._push(next_time, _RELEASE, (task_pos, index + 1))
        else:
            self._release_suppressed = True
        return changed

    def _complete_job(self, time: int, job: _Job) -> None:
        job.finish = time
        response = time - job.release
        stats = self._stats[job.task.name]
        stats.responses.append(response)
        if job.fault_since is not None:
            # Recovery latency: first terminal fault -> job completion.
            self._recovery_latencies.append(time - job.fault_since)
        missed = time > job.abs_deadline
        if missed:
            stats.misses += 1
            if self.trace is not None:
                self._trace(
                    time=time,
                    duration=0,
                    resource="",
                    kind="miss",
                    task=job.task.name,
                    job=job.index,
                )
            if self.config.abort_on_miss:
                self._aborted = True
            if self.config.overrun is OverrunPolicy.SKIP_NEXT:
                self._skip_next[job.task.name] = True
        if self.trace is not None:
            self._trace(
                time=time,
                duration=0,
                resource="",
                kind="complete",
                task=job.task.name,
                job=job.index,
            )
        queue = self._queues[job.task.name]
        assert queue and queue[0] is job, "completed job must be the task's head job"
        queue.popleft()
        self._mode_transition(time, job, missed)

    def _mode_transition(self, time: int, job: _Job, missed: bool) -> None:
        """Feed a job outcome to the overload manager; trace transitions."""
        transition = self._overload.job_finished(job.task.name, missed)
        if transition is not None and self.trace is not None:
            self._trace(
                time=time,
                duration=0,
                resource="",
                kind=transition,
                task=job.task.name,
                job=job.index,
            )

    def _deadline_abort(self, time: int, job: _Job) -> bool:
        """ABORT_AT_DEADLINE: kill ``job`` the instant its deadline passes."""
        if job.complete or job.aborted:
            return False
        if (
            self._cpu_job is job
            and job.compute_remaining is not None
            and self._cpu_start + job.compute_remaining == time
            and job.computes_done + 1 == job.num_segments
        ):
            return False  # its final burst completes at this very instant: on time
        if self._cpu_job is job:
            self._stop_compute(time, trace_kind=None)
        job.aborted = True
        stats = self._stats[job.task.name]
        stats.aborts += 1
        if self.trace is not None:
            self._trace(
                time=time, duration=0, resource="", kind="abort",
                task=job.task.name, job=job.index,
            )
        queue = self._queues[job.task.name]
        assert queue and queue[0] is job, "aborted job must be the task's head job"
        queue.popleft()
        # An in-flight DMA transfer drains (non-preemptive hardware);
        # _dma_done frees the channel and discards the data.
        self._mode_transition(time, job, missed=True)
        return True

    # ------------------------------------------------------------------
    # DMA scheduling
    # ------------------------------------------------------------------
    def _advance_zero_loads(self) -> None:
        """Complete zero-byte and XIP-mode loads instantly (no DMA).

        A segment a prior fault pushed to XIP_FALLBACK executes in
        place: nothing is staged (the compute-side penalty is charged in
        :meth:`_start_compute`).
        """
        recovery = self._recovery
        if recovery is None:
            # Nominal fast path: only jobs that actually carry a
            # zero-cycle load (flagged at release) need the inner loop.
            for queue in self._queue_list:
                if queue:
                    job = queue[0]
                    if job.has_zero_loads:
                        while (
                            job.loads_issued < job.n_seg
                            and job.loads_issued - job.computes_done < job.buffers
                            and job.segments[job.loads_issued].load_cycles == 0
                        ):
                            job.loads_issued += 1
                            job.loads_done += 1
                            job.load_eligible_since = None
            return
        for queue in self._queue_list:
            if not queue:
                continue
            job = queue[0]
            while job.load_eligible() and (
                job.segments[job.loads_issued].load_cycles == 0
                or recovery.is_xip(job.task.name, job.loads_issued)
            ):
                job.loads_issued += 1
                job.loads_done += 1
                job.load_eligible_since = None

    def _schedule_dma(self, time: int) -> None:
        self._advance_zero_loads()
        channels = self._dma_channels
        n_channels = self.config.dma_channels
        queue_list = self._queue_list
        fifo = self._fifo_dma
        deadline_driven = self._deadline_driven
        while len(channels) < n_channels:
            # Single-channel runs (the common case) never have another
            # transfer in flight once the loop condition holds.
            in_flight = (
                set(id(j) for j in channels.values()) if channels else None
            )
            job: Optional[_Job] = None
            best_key = None
            for queue in queue_list:
                if not queue:
                    continue
                cand = queue[0]
                issued = cand.loads_issued
                if (
                    issued >= cand.n_seg
                    or issued - cand.computes_done >= cand.buffers
                ):
                    continue  # no load pending or staging buffers full
                if in_flight is not None and id(cand) in in_flight:
                    continue  # one outstanding transfer per job
                if cand.load_eligible_since is None:
                    cand.load_eligible_since = time
                if fifo:
                    key = (cand.load_eligible_since, cand.release, cand.task_pos)
                elif deadline_driven:
                    key = (
                        cand.abs_deadline, cand.priority,
                        cand.release, cand.task_pos,
                    )
                else:
                    key = (cand.priority, cand.release, cand.task_pos)
                if best_key is None or key < best_key:
                    job, best_key = cand, key
            if job is None:
                return
            segment = job.segments[job.loads_issued]
            transfer_cycles = segment.load_cycles
            outcome: Optional[TransferOutcome] = None
            if self._escalation is not None:
                source = "primary"
                region_immune = False
                if self._recovery is not None:
                    source = self._recovery.source(job.task.name, job.loads_issued)
                    region_immune = self._recovery.region_immune(job.task.name)
                    if source == "mirror":
                        # REMAP: re-fetch from the mirror copy, paying
                        # the redirect overhead and mirror slowdown.
                        transfer_cycles = self._recovery.config.remap_cycles(
                            transfer_cycles
                        )
                outcome = self._escalation.resolve(
                    time,
                    job.task.name,
                    job.index,
                    job.loads_issued,
                    transfer_cycles,
                    source=source,
                    region_immune=region_immune,
                )
                transfer_cycles = outcome.cycles
                self._dma_retries += outcome.retries
            elif self._faults is not None:
                transfer_cycles, retries, exhausted = self._faults.transfer_cycles(
                    transfer_cycles
                )
                self._dma_retries += retries
                if exhausted:
                    outcome = TransferOutcome(
                        transfer_cycles, retries, False, FaultKind.RETRY_EXHAUSTED
                    )
            # Single-channel runs (and the first transfer of any run)
            # skip the free-channel search entirely.
            channel = 0 if not channels else min(
                c for c in range(n_channels) if c not in channels
            )
            if outcome is not None and not outcome.ok:
                self._dma_fault_pending[channel] = outcome
            self._dma_channels[channel] = job
            job.load_eligible_since = None
            self._dma_busy += transfer_cycles
            if self.trace is not None:
                self._trace(
                    time=time,
                    duration=transfer_cycles,
                    resource="dma" if channel == 0 else f"dma{channel + 1}",
                    kind="load",
                    task=job.task.name,
                    job=job.index,
                    segment=job.loads_issued,
                )
            self._push(time + transfer_cycles, _DMA_DONE, (channel, job))

    def _dma_done(self, time: int, channel: int, job: _Job) -> bool:
        assert self._dma_channels.get(channel) is job, (
            "DMA completion for a job that is not transferring on this channel"
        )
        del self._dma_channels[channel]
        outcome = self._dma_fault_pending.pop(channel, None)
        if job.aborted:
            return True  # the transfer drained; the freed channel can restart
        if outcome is not None and not outcome.ok:
            self._on_transfer_fault(time, job, outcome)
            return True
        job.loads_issued += 1
        job.loads_done += 1
        return True

    def _on_transfer_fault(
        self, time: int, job: _Job, outcome: TransferOutcome
    ) -> None:
        """React to a transfer whose retry budget was exhausted.

        The segment's weights did **not** arrive.  The recovery ladder
        (if configured) picks the next rung; without one the task is
        quarantined — the one thing that never happens is pretending
        the data is there.
        """
        segment = job.loads_issued
        assert outcome.kind is not None
        self._fault_events.append(
            FaultEvent(
                time=time,
                task=job.task.name,
                job=job.index,
                segment=segment,
                kind=outcome.kind,
                attempts=outcome.retries + 1,
                lost_cycles=outcome.cycles,
            )
        )
        if job.fault_since is None:
            job.fault_since = time
        if self.trace is not None:
            self._trace(
                time=time, duration=0, resource="", kind="fault",
                task=job.task.name, job=job.index, segment=segment,
            )
        if self._recovery is not None:
            action = self._recovery.on_fault(job.task.name, segment, outcome.kind)
        else:
            action = "quarantine"
        self._recovery_counts[action] = self._recovery_counts.get(action, 0) + 1
        if action == "remap":
            # Leave the load un-issued: the next DMA pass re-fetches the
            # segment, now reading from the mirror copy.
            if self.trace is not None:
                self._trace(
                    time=time, duration=0, resource="", kind="remap",
                    task=job.task.name, job=job.index, segment=segment,
                )
        elif action == "xip-fallback":
            # The segment executes in place from now on: no staging;
            # _start_compute charges the XIP penalty instead.
            job.loads_issued += 1
            job.loads_done += 1
            if self.trace is not None:
                self._trace(
                    time=time, duration=0, resource="", kind="xip-fallback",
                    task=job.task.name, job=job.index, segment=segment,
                )
        elif action == "degrade":
            # Abandon this job; future releases run the fallback
            # variant (assumed to fit in healthy/internal memory).
            self._abandon_job(time, job, kind="degrade")
        else:
            self._quarantine(time, job)

    def _quarantine(self, time: int, job: _Job) -> None:
        """Suspend ``job``'s task: abandon it and all queued backlog."""
        name = job.task.name
        self._quarantined.add(name)
        self._abandon_job(time, job, kind="quarantine")
        queue = self._queues[name]
        while queue:
            backlog = queue.popleft()
            backlog.aborted = True
            self._stats[name].aborts += 1

    def _abandon_job(self, time: int, job: _Job, kind: str) -> None:
        """Kill ``job`` after an unrecoverable fault (counts as an abort)."""
        if self._cpu_job is job:
            self._stop_compute(time, trace_kind=None)
        job.aborted = True
        self._stats[job.task.name].aborts += 1
        if self.trace is not None:
            self._trace(
                time=time, duration=0, resource="", kind=kind,
                task=job.task.name, job=job.index,
            )
        queue = self._queues[job.task.name]
        assert queue and queue[0] is job, "abandoned job must be the task's head job"
        queue.popleft()
        self._mode_transition(time, job, missed=True)

    # ------------------------------------------------------------------
    # CPU scheduling
    # ------------------------------------------------------------------
    def _cpu_candidates(self) -> List[_Job]:
        ready = []
        for queue in self._queue_list:
            if queue:
                job = queue[0]
                if not job.complete and job.compute_ready():
                    ready.append(job)
        return ready

    def _start_compute(self, time: int, job: _Job) -> None:
        segment = job.segments[job.computes_done]
        if job.compute_remaining is None:
            burst = segment.compute_cycles
            if self._recovery is not None and self._recovery.is_xip(
                job.task.name, job.computes_done
            ):
                # XIP_FALLBACK: the CPU fetches this segment's weights
                # in place while computing, at XIP timing.
                burst += self._recovery.config.xip_penalty(segment)
            if self._faults is not None:
                burst = self._faults.compute_cycles(burst)
            job.compute_remaining = burst
        self._cpu_job = job
        self._cpu_start = time
        self._cpu_token += 1
        self._push(time + job.compute_remaining, _CPU_DONE, (self._cpu_token, job))

    def _stop_compute(self, time: int, trace_kind: Optional[str] = "preempt") -> None:
        """Stop the running segment (preemption or abort), banking progress."""
        job = self._cpu_job
        assert job is not None and job.compute_remaining is not None
        elapsed = time - self._cpu_start
        if elapsed > 0:
            self._cpu_busy += elapsed
            if self.trace is not None:
                self._trace(
                    time=self._cpu_start,
                    duration=elapsed,
                    resource="cpu",
                    kind="compute",
                    task=job.task.name,
                    job=job.index,
                    segment=job.computes_done,
                )
        job.compute_remaining -= elapsed
        if trace_kind is not None and self.trace is not None:
            self._trace(
                time=time, duration=0, resource="", kind=trace_kind,
                task=job.task.name, job=job.index,
            )
        self._cpu_job = None
        self._cpu_token += 1  # invalidate the in-flight CPU_DONE event

    def _schedule_cpu(self, time: int) -> None:
        cpu_job = self._cpu_job
        if cpu_job is not None and not self._preemptive:
            return  # non-preemptive: nothing to decide until the burst ends
        deadline_driven = self._deadline_driven
        best: Optional[_Job] = None
        best_key = None
        for queue in self._queue_list:
            if queue:
                job = queue[0]
                # compute_ready (and implicitly not complete: a complete
                # job has computes_done == n_seg >= loads_done).
                if job.computes_done < job.loads_done:
                    if deadline_driven:
                        key = (
                            job.abs_deadline, job.priority,
                            job.release, job.task_pos,
                        )
                    else:
                        key = (job.priority, job.release, job.task_pos)
                    if best_key is None or key < best_key:
                        best, best_key = job, key
        if best is None:
            return
        if cpu_job is None:
            self._start_compute(time, best)
            return
        if best is cpu_job:
            return  # the running job already outranks every other candidate
        if deadline_driven:
            run_key = (
                cpu_job.abs_deadline, cpu_job.priority,
                cpu_job.release, cpu_job.task_pos,
            )
        else:
            run_key = (cpu_job.priority, cpu_job.release, cpu_job.task_pos)
        if best_key < run_key:
            self._stop_compute(time)
            self._start_compute(time, best)

    def _cpu_done(self, time: int, token: int, job: _Job) -> bool:
        if token != self._cpu_token or self._cpu_job is not job:
            return False  # stale completion from a preempted burst
        duration = time - self._cpu_start
        self._cpu_busy += duration
        if self.trace is not None:
            self._trace(
                time=self._cpu_start,
                duration=duration,
                resource="cpu",
                kind="compute",
                task=job.task.name,
                job=job.index,
                segment=job.computes_done,
            )
        self._cpu_job = None
        self._cpu_token += 1
        job.compute_remaining = None
        job.computes_done += 1
        if job.computes_done == job.n_seg:
            self._complete_job(time, job)
        return True

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    # ------------------------------------------------------------------
    # Steady-state folding
    # ------------------------------------------------------------------
    def _stats_mark(self) -> Tuple:
        """Cumulative output counters (for per-cycle deltas)."""
        return (
            tuple(len(s.responses) for s in self._stats_list),
            tuple(s.misses for s in self._stats_list),
            tuple(s.aborts for s in self._stats_list),
            tuple(s.skips for s in self._stats_list),
            self._cpu_busy,
            self._dma_busy,
        )

    def _fingerprint(self, boundary: int) -> Tuple:
        """Canonical full state relative to ``boundary``.

        Two boundary states with equal fingerprints evolve identically
        (shifted in time): the fingerprint covers every queue's job
        progress, CPU/DMA occupancy, the pending heap in pop order with
        payloads reduced to queue-relative references (job indices and
        stale tokens are canonicalized away — they are unobservable in a
        traceless run), and the SKIP_NEXT flags.  Everything else the
        evolution could read is constant (config, task parameters) or
        excluded by fold eligibility (fault/recovery/degrade state,
        arrival randomness).
        """
        queues = tuple(
            tuple(
                (
                    job.loads_issued,
                    job.loads_done,
                    job.computes_done,
                    job.compute_remaining,
                    job.release - boundary,
                    job.abs_deadline - boundary,
                    None
                    if job.load_eligible_since is None
                    else job.load_eligible_since - boundary,
                )
                for job in queue
            )
            for queue in self._queue_list
        )
        cpu_job = self._cpu_job
        cpu = (
            None
            if cpu_job is None
            else (cpu_job.task_pos, self._cpu_start - boundary)
        )
        dma = tuple(
            sorted(
                (ch, -1 if job.aborted else job.task_pos)
                for ch, job in self._dma_channels.items()
            )
        )
        entries = []
        for t, seq, kind, payload in sorted(self._heap):
            if kind == _RELEASE:
                canon: Tuple = (payload[0],)  # type: ignore[index]
            elif kind == _DMA_DONE:
                ch, job = payload  # type: ignore[misc]
                canon = (ch, -1 if job.aborted else job.task_pos)
            elif kind == _CPU_DONE:
                token, job = payload  # type: ignore[misc]
                if token == self._cpu_token and job is cpu_job:
                    canon = (1, job.task_pos)
                else:
                    canon = (0,)  # stale: pops as a no-op
            else:  # _DEADLINE
                job = payload  # type: ignore[assignment]
                if job.aborted or job.computes_done == job.n_seg:
                    canon = (-1,)  # dead: pops as a no-op
                else:
                    queue = self._queue_list[job.task_pos]
                    pos = next(i for i, j in enumerate(queue) if j is job)
                    canon = (job.task_pos, pos)
            entries.append((t - boundary, kind, canon))
        return (
            queues,
            cpu,
            dma,
            tuple(entries),
            tuple(self._skip_next.values()),
        )

    def _at_boundary(self, boundary: int) -> int:
        """Fingerprint the state at a hyperperiod boundary; maybe fold.

        Returns the next boundary to watch (``_FOLD_OFF`` to stop).
        """
        if self._release_suppressed:
            # The horizon cut a release chain: cycles near the end are
            # no longer translation-invariant, so stop fingerprinting.
            return _FOLD_OFF
        self._fold_probes += 1
        if self._fold_probes > _FOLD_PROBE_LIMIT:
            return _FOLD_OFF
        fingerprint = self._fingerprint(boundary)
        previous = self._fold_states.get(fingerprint)
        if previous is None:
            self._fold_states[fingerprint] = (boundary, self._stats_mark())
            return boundary + self._fold_period
        return self._fold(previous, boundary)

    def _fold(self, previous: Tuple[int, Tuple], boundary: int) -> int:
        """Replay whole cycles arithmetically instead of simulating them.

        The state at ``boundary`` matches the recorded state at an
        earlier boundary, so the run is periodic with period
        ``boundary - earlier``.  Replaying ``n`` cycles means: extend
        the output counters by ``n`` copies of the recorded per-cycle
        delta and shift all live state ``n`` periods into the future.
        ``n`` is capped so every replayed release (all of which fall
        before ``cycle end + max_period``) still lands inside the
        horizon and below the hard cap — the tail past the last whole
        cycle is simulated normally, which also pins ``end_time``.
        """
        start, mark = previous
        period = boundary - start
        limit = min(self.config.horizon, self._hard_cap)
        n = (limit - self._max_period - boundary) // period
        if n <= 0:
            return boundary + self._fold_period
        (
            (resp0, miss0, abort0, skip0, cpu0, dma0),
            (resp1, miss1, abort1, skip1, cpu1, dma1),
        ) = (mark, self._stats_mark())
        jobs_per_cycle = 0
        for i, stats in enumerate(self._stats_list):
            cycle_responses = stats.responses[resp0[i]:resp1[i]]
            if cycle_responses:
                stats.responses.extend(cycle_responses * n)
            stats.misses += n * (miss1[i] - miss0[i])
            stats.aborts += n * (abort1[i] - abort0[i])
            stats.skips += n * (skip1[i] - skip0[i])
            jobs_per_cycle += (
                len(cycle_responses)
                + (abort1[i] - abort0[i])
                + (skip1[i] - skip0[i])
            )
        self._cpu_busy += n * (cpu1 - cpu0)
        self._dma_busy += n * (dma1 - dma0)
        shift = n * period
        shifted = set()
        for queue in self._queue_list:
            for job in queue:
                shifted.add(id(job))
                job.release += shift
                job.abs_deadline += shift
                if job.load_eligible_since is not None:
                    job.load_eligible_since += shift
        for job in self._dma_channels.values():
            if id(job) not in shifted:  # aborted mid-transfer: off-queue
                job.release += shift
                job.abs_deadline += shift
        if self._cpu_job is not None:
            self._cpu_start += shift
        # A uniform time shift preserves heap order (sequence numbers
        # break all remaining ties), so no re-heapify is needed.
        self._heap[:] = [
            (t + shift, seq, kind, payload)
            for t, seq, kind, payload in self._heap
        ]
        self._folds += 1
        self._fold_cycles += n
        self._fold_jobs_skipped += n * jobs_per_cycle
        return _FOLD_OFF

    def _dispatch(self, time: int, kind: int, payload: object) -> bool:
        """Process one event; True iff scheduler-visible state changed.

        Releases into backlogged queues and stale completions mutate
        nothing a scheduling pass could act on, and the passes are
        idempotent, so the main loop skips the pass for such batches.
        """
        if kind == _RELEASE:
            pos, index = payload  # type: ignore[misc]
            return self._release(time, self.taskset[pos], pos, index)
        if kind == _DMA_DONE:
            channel, job = payload  # type: ignore[misc]
            return self._dma_done(time, channel, job)
        if kind == _CPU_DONE:
            token, job = payload  # type: ignore[misc]
            return self._cpu_done(time, token, job)
        return self._deadline_abort(time, payload)  # type: ignore[arg-type]

    def run(self) -> SimResult:
        """Execute the simulation and return aggregated results."""
        for pos, task in enumerate(self.taskset):
            if task.phase < self.config.horizon:
                self._push(task.phase, _RELEASE, (pos, 0))
        heap = self._heap
        pop = heapq.heappop
        dispatch = self._dispatch
        # Per-event costs hoisted out of the dispatch loop: the
        # scheduling passes are bound methods looked up once, not per
        # changed-batch.
        schedule_dma = self._schedule_dma
        schedule_cpu = self._schedule_cpu
        hard_cap = self._hard_cap
        fold_boundary = self._fold_boundary
        time = 0
        while heap and not self._aborted:
            if heap[0][0] >= fold_boundary:
                # All events before the hyperperiod boundary are done:
                # fingerprint the state (and fold on a repeat) before
                # crossing into the next cycle.
                fold_boundary = self._at_boundary(fold_boundary)
                continue
            time, _, kind, payload = pop(heap)
            if time > hard_cap:
                self._truncated = True
                break
            changed = dispatch(time, kind, payload)
            # Drain simultaneous events before making scheduling decisions.
            while heap and heap[0][0] == time and not self._aborted:
                _, _, kind, payload = pop(heap)
                if dispatch(time, kind, payload):
                    changed = True
            if changed and not self._aborted:
                schedule_dma(time)
                schedule_cpu(time)
        for task in self.taskset:
            self._stats[task.name].unfinished += len(self._queues[task.name])
        counters = _fold_counters
        counters["runs"] += 1
        if self._folds:
            counters["folds"] += self._folds
            counters["cycles_skipped"] += self._fold_cycles
            counters["jobs_skipped"] += self._fold_jobs_skipped
        return SimResult(
            stats=self._stats,
            trace=self.trace,
            cpu_busy=self._cpu_busy,
            dma_busy=self._dma_busy,
            end_time=time,
            aborted_on_miss=self._aborted,
            truncated=self._truncated,
            dma_retries=self._dma_retries,
            fault_events=self._fault_events,
            recovery_latencies=self._recovery_latencies,
            recovery_counts=self._recovery_counts,
            quarantined=tuple(sorted(self._quarantined)),
            fold_cycles=self._fold_cycles,
            fold_jobs_skipped=self._fold_jobs_skipped,
        )


_simcore = None


def simulate(
    taskset: TaskSet,
    config: SimConfig,
    shared: Optional[SharedSetup] = None,
    arena: Optional[object] = None,
) -> SimResult:
    """Run one simulation, preferring the struct-of-arrays core.

    Dispatches to :mod:`repro.sched.simcore` when it is enabled and the
    config is within its modeled feature set (results are bit-identical;
    ``REPRO_VEC_SIM=0`` forces the scalar path), and falls back to the
    scalar :class:`Simulator` otherwise.  ``arena`` optionally reuses a
    :class:`~repro.sched.simcore.Arena` across runs (see
    :func:`repro.eval.parallel.simulate_batch`).
    """
    global _simcore
    if _simcore is None:
        from repro.sched import simcore

        _simcore = simcore
    if _simcore.enabled():
        result = _simcore.try_simulate(taskset, config, shared, arena)
        if result is not None:
            return result
    return Simulator(taskset, config, shared).run()
