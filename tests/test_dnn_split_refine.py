"""Unit tests for filter-group splitting and model refinement."""

import pytest

from repro.dnn.layers import (
    MAX_SPLIT_PARTS,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    PartialLayer,
    Pool,
    split_layer,
)
from repro.dnn.models import refine_model
from repro.dnn.quantization import INT8
from repro.dnn.zoo import build_model


class TestSplitLayer:
    def test_conserves_macs_params_bias(self):
        dense = Dense(name="d", input_shape=(640,), out_features=128)
        for parts in (2, 3, 7):
            slices = split_layer(dense, parts)
            assert sum(s.macs for s in slices) == dense.macs
            assert sum(s.param_count for s in slices) == dense.param_count
            assert sum(s.bias_count for s in slices) == dense.bias_count

    def test_chain_shapes_are_valid(self):
        conv = Conv2D(name="c", input_shape=(8, 8, 16), out_channels=32, kernel=3)
        slices = split_layer(conv, 4)
        assert slices[0].input_shape == conv.input_shape
        for prev, cur in zip(slices, slices[1:]):
            assert cur.input_shape == prev.output_shape
        assert slices[-1].output_shape == conv.output_shape

    def test_nonfinal_slices_track_accumulator(self):
        conv = Conv2D(name="c", input_shape=(8, 8, 16), out_channels=32, kernel=3)
        slices = split_layer(conv, 4)
        for s in slices[:-1]:
            assert s.extra_live_elements == conv.output_elements
        assert slices[-1].extra_live_elements == 0

    def test_kind_is_inherited(self):
        dw = DepthwiseConv2D(name="d", input_shape=(16, 16, 32), kernel=3)
        slices = split_layer(dw, 2)
        assert all(s.kind == "dwconv2d" for s in slices)
        assert all(isinstance(s, PartialLayer) for s in slices)

    def test_parts_capped_at_filter_count(self):
        dense = Dense(name="d", input_shape=(10,), out_features=3)
        assert len(split_layer(dense, 100)) == 3

    def test_parts_capped_at_max_split_parts(self):
        dense = Dense(name="d", input_shape=(10,), out_features=10_000)
        assert len(split_layer(dense, 10_000)) == MAX_SPLIT_PARTS

    def test_single_part_returns_original(self):
        dense = Dense(name="d", input_shape=(10,), out_features=4)
        assert split_layer(dense, 1) == [dense]

    def test_unsplittable_kind_rejected(self):
        pool = Pool(name="p", input_shape=(8, 8, 4), pool=2)
        with pytest.raises(ValueError, match="cannot split"):
            split_layer(pool, 2)


class TestRefineModel:
    @pytest.mark.parametrize("name", ["autoencoder", "mobilenet-v1-0.25", "resnet8"])
    def test_conserves_totals(self, name):
        model = build_model(name)
        refined = refine_model(model, INT8, 8 * 1024)
        assert refined.total_macs == model.total_macs
        assert refined.total_params == model.total_params
        assert refined.input_shape == model.input_shape
        assert refined.output_shape == model.output_shape

    def test_respects_byte_cap_for_splittable_layers(self):
        model = build_model("autoencoder")
        cap = 8 * 1024
        refined = refine_model(model, INT8, cap)
        for layer in refined.layers:
            assert layer.param_bytes(INT8) <= cap

    def test_macs_cap_splits_compute_heavy_layers(self):
        model = build_model("resnet8")
        refined = refine_model(model, INT8, 10**9, max_chunk_macs=200_000)
        worst = max(l.macs for l in refined.layers if l.kind in ("conv2d", "dwconv2d"))
        # Wide layers obey the cap; narrow layers are bounded by their
        # filter count, so allow the unavoidable residue.
        assert worst <= max(200_000, max(l.macs // MAX_SPLIT_PARTS for l in model.layers) * 2)

    def test_skips_remapped_to_final_slice(self):
        model = build_model("resnet8")
        refined = refine_model(model, INT8, 4 * 1024)
        # Every skip must still target an Add layer with matching shape.
        for producer, consumer in refined.skips:
            assert refined.layers[consumer].kind == "add"
            assert (
                refined.layers[producer].output_shape
                == refined.layers[consumer].input_shape
            )
        assert len(refined.skips) == len(model.skips)

    def test_noop_below_cap(self):
        model = build_model("tinyconv")
        refined = refine_model(model, INT8, 10**9)
        assert refined.num_layers == model.num_layers

    def test_invalid_caps_rejected(self):
        model = build_model("tinyconv")
        with pytest.raises(ValueError):
            refine_model(model, INT8, 0)
        with pytest.raises(ValueError):
            refine_model(model, INT8, 1024, max_chunk_macs=-1)

    def test_peak_activation_grows_at_most_by_accumulator(self):
        model = build_model("autoencoder")
        refined = refine_model(model, INT8, 8 * 1024)
        assert refined.peak_activation_bytes(INT8) >= model.peak_activation_bytes(INT8)
