"""Benchmark for EXP-F9 (see DESIGN.md section 4)."""

from conftest import bench_experiment


def test_f9_granularity(benchmark):
    bench_experiment(benchmark, "EXP-F9")
