"""The serve loop: replay a request trace, then execute the result.

:class:`OnlineRuntime` wires the pieces together.  Decisions are purely
analytic and happen in request order (each one sees exactly the state
earlier decisions left behind), so after the replay the full instance
schedule — who runs, from which cycle, to which cycle — is determined.
The whole trace then executes as *one* :class:`DynamicSimulator` run
over the union of every instance ever admitted, which is what the
soundness invariant is checked against: in a fault-free run, no job of
any admitted instance may miss its deadline.

The execution may inject external-memory faults (``escalation=`` /
``recovery=``): afterwards a **health monitor** compares each logical
task's observed fault rate against the retry budget the admission
analysis tolerated, and drives over-budget tasks through the regular
mode-change path (rescale to the largest stretch factor, or removal for
quarantined tasks) — the observed-fault feedback loop closing admission
control over the fault model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dnn.quantization import INT8, Quantization
from repro.hw.platform import Platform
from repro.online.admission import AdmissionController, Decision, Instance
from repro.online.events import Request, RequestKind, RequestTrace
from repro.online.modechange import Protocol
from repro.online.sim import simulate_dynamic
from repro.robust.escalation import EscalationConfig
from repro.robust.recovery import RecoveryConfig
from repro.sched.policies import CpuPolicy
from repro.sched.simulator import SimConfig, SimResult
from repro.sched.task import TaskSet


@dataclass
class ServeReport:
    """Outcome of one trace replay (decision log + execution).

    ``health`` is present only when the execution injected faults
    (``escalation=``): per-logical-task observed fault rates, the
    tolerated retry budget, and the mode-change actions the health
    monitor triggered for over-budget or quarantined tasks.
    """

    platform_name: str
    protocol: str
    duration_s: float
    decisions: List[Decision]
    instances: List[Instance]
    sim: Optional[SimResult]
    health: Optional[Dict] = field(default=None)

    # ------------------------------------------------------------------
    # Decision-log aggregates (deterministic)
    # ------------------------------------------------------------------
    def _count(self, **fields) -> int:
        return sum(
            1
            for d in self.decisions
            if all(getattr(d, k) == v for k, v in fields.items())
        )

    @property
    def requests(self) -> int:
        return len(self.decisions)

    @property
    def admit_requests(self) -> int:
        """ADMIT requests that were actually decided (not ignored)."""
        return sum(
            1
            for d in self.decisions
            if d.kind == "admit" and d.outcome != "ignored"
        )

    @property
    def admitted(self) -> int:
        return self._count(outcome="admitted")

    @property
    def degraded(self) -> int:
        """Admissions that needed the degradation ladder."""
        return sum(
            1
            for d in self.decisions
            if d.outcome == "admitted" and d.mode != "full"
        )

    @property
    def rejected_sram(self) -> int:
        return sum(
            1
            for d in self.decisions
            if d.outcome == "rejected" and d.reason.startswith("sram")
        )

    @property
    def rejected_rta(self) -> int:
        """Rejections justified by a failed schedulability argument."""
        return sum(
            1
            for d in self.decisions
            if d.outcome == "rejected" and not d.reason.startswith("sram")
        )

    @property
    def admission_ratio(self) -> float:
        n = self.admit_requests
        return self.admitted / n if n else 1.0

    @property
    def decision_latencies_us(self) -> List[float]:
        """Wall-clock decision latencies (non-deterministic; report-only)."""
        return [d.latency_us for d in self.decisions]

    @property
    def decision_latency_stats(self) -> Dict:
        """p50/p95/p99 decision-latency summary in microseconds.

        The same n/mean/p50/p95/p99/max shape :class:`repro.eval.fleet.
        FleetReport` reports, so single-device and fleet metrics stay
        field-compatible.  Wall-clock, hence non-deterministic across
        runs (the decision *log* stays bit-identical; see
        :meth:`Decision.to_dict`).
        """
        from repro.eval.metrics import latency_stats

        return latency_stats(self.decision_latencies_us)

    @property
    def sound(self) -> bool:
        """True iff no admitted job missed a deadline in the execution."""
        return self.sim is None or self.sim.no_misses

    def to_dict(self, mcu=None) -> Dict:
        """Machine-readable event log (the ``rtmdm serve --json`` payload)."""
        payload: Dict = {
            "schema": "rtmdm-serve/1",
            "platform": self.platform_name,
            "protocol": self.protocol,
            "duration_s": self.duration_s,
            "requests": self.requests,
            "admit_requests": self.admit_requests,
            "admitted": self.admitted,
            "degraded": self.degraded,
            "rejected_sram": self.rejected_sram,
            "rejected_rta": self.rejected_rta,
            "removed": self._count(outcome="removed"),
            "rescaled": self._count(outcome="rescaled"),
            "ignored": self._count(outcome="ignored"),
            "admission_ratio": round(self.admission_ratio, 4),
            "sound": self.sound,
            "decision_latency_us": self.decision_latency_stats,
            "decisions": [d.to_dict() for d in self.decisions],
        }
        if self.sim is not None:
            stats = {}
            for name, s in sorted(self.sim.stats.items()):
                worst = s.max_response
                stats[name] = {
                    "jobs": s.jobs,
                    "misses": s.misses,
                    "unfinished": s.unfinished,
                    "worst_ms": (
                        round(mcu.cycles_to_ms(worst), 3)
                        if mcu is not None and worst is not None
                        else worst
                    ),
                }
            payload["sim"] = {
                "total_misses": self.sim.total_misses,
                "end_ms": (
                    round(mcu.cycles_to_ms(self.sim.end_time), 1)
                    if mcu is not None
                    else self.sim.end_time
                ),
                "tasks": stats,
            }
        if self.health is not None:
            payload["health"] = self.health
        return payload


class OnlineRuntime:
    """Replay a :class:`~repro.online.events.RequestTrace` end to end."""

    def __init__(
        self,
        platform: Platform,
        quant: Quantization = INT8,
        buffers: int = 2,
        method: str = "rtmdm",
        protocol: Protocol = Protocol.AUTO,
        stretch_factors: Sequence[float] = (1.25, 1.5, 2.0),
        degrade_factor: float = 0.5,
        retry_budget: int = 0,
        fault_overhead_cycles: int = 0,
    ) -> None:
        self.platform = platform
        self.protocol = protocol
        self._stretch = tuple(stretch_factors)
        self._controller_args = dict(
            quant=quant,
            buffers=buffers,
            method=method,
            protocol=protocol,
            stretch_factors=tuple(stretch_factors),
            degrade_factor=degrade_factor,
            retry_budget=retry_budget,
            fault_overhead_cycles=fault_overhead_cycles,
        )

    def controller(self) -> AdmissionController:
        """A fresh admission controller with this runtime's configuration.

        The factory :mod:`repro.online.durable` hands to journal
        recovery: a recovered controller must be configured exactly like
        the one that wrote the journal, and this is the single place
        both come from.
        """
        return AdmissionController(self.platform, **self._controller_args)

    def serve(
        self,
        trace: RequestTrace,
        simulate: bool = True,
        record_trace: bool = False,
        escalation: Optional[EscalationConfig] = None,
        recovery: Optional[RecoveryConfig] = None,
        monitor: bool = False,
    ) -> ServeReport:
        """Decide every request, then execute the admitted schedule.

        With ``escalation`` set the execution injects external-memory
        faults (optionally recovered through ``recovery``) and the
        health monitor afterwards feeds observed fault rates back into
        the admission controller's mode-change path.  Both default to
        ``None``, leaving decisions and execution bit-identical to the
        fault-oblivious runtime.

        ``monitor=True`` runs the :class:`repro.online.durable.
        InvariantMonitor` inline after every decision; violations raise
        immediately (fail-loud) instead of surfacing as downstream
        simulation misses.
        """
        from repro.online.durable import InvariantMonitor

        controller = self.controller()
        mon = InvariantMonitor(controller) if monitor else None
        for request in trace:
            controller.handle(request)
            if mon is not None:
                mon.check(self.platform.mcu.seconds_to_cycles(request.time_s))
        return self.report(
            controller,
            trace.duration_s,
            simulate=simulate,
            record_trace=record_trace,
            escalation=escalation,
            recovery=recovery,
        )

    def report(
        self,
        controller: AdmissionController,
        duration_s: float,
        simulate: bool = True,
        record_trace: bool = False,
        escalation: Optional[EscalationConfig] = None,
        recovery: Optional[RecoveryConfig] = None,
    ) -> ServeReport:
        """Package a decided controller into a :class:`ServeReport`.

        Split out of :meth:`serve` so the durable serving path (which
        owns its own decision loop: journal, ingress gate, crash hooks)
        produces reports through the exact same code.
        """
        instances = controller.all_instances()
        sim = (
            self._execute(
                duration_s, instances, record_trace, escalation, recovery
            )
            if simulate
            else None
        )
        health = None
        if sim is not None and escalation is not None and not escalation.is_null:
            health = self._health_monitor(controller, duration_s, sim, instances)
        return ServeReport(
            platform_name=self.platform.name,
            protocol=self.protocol.value,
            duration_s=duration_s,
            decisions=list(controller.decisions),
            instances=instances,
            sim=sim,
            health=health,
        )

    def _execute(
        self,
        duration_s: float,
        instances: Sequence[Instance],
        record_trace: bool,
        escalation: Optional[EscalationConfig] = None,
        recovery: Optional[RecoveryConfig] = None,
    ) -> Optional[SimResult]:
        horizon = self.platform.mcu.seconds_to_cycles(duration_s)
        started = [
            i
            for i in instances
            if i.start_cycle < horizon
            and (i.stop_cycle is None or i.stop_cycle > i.start_cycle)
        ]
        if not started:
            return None
        ordered = sorted(started, key=lambda i: (i.deadline, i.instance))
        tasks = [
            inst.to_periodic(priority=rank, phase=inst.start_cycle)
            for rank, inst in enumerate(ordered)
        ]
        stops = {
            inst.instance: inst.stop_cycle
            for inst in ordered
            if inst.stop_cycle is not None
        }
        config = SimConfig(
            policy=CpuPolicy.FP_NP,
            dma_arbitration=self.platform.dma.arbitration,
            horizon=horizon,
            record_trace=record_trace,
            escalation=escalation,
            recovery=recovery,
        )
        return simulate_dynamic(TaskSet.of(tasks), config, stops)

    def _health_monitor(
        self,
        controller: AdmissionController,
        duration_s: float,
        sim: SimResult,
        instances: Sequence[Instance],
    ) -> Dict:
        """Feed observed fault rates back into the mode-change path.

        The admission guarantee covers ``retry_budget`` faults per job;
        a logical task observed above that rate has left the analysed
        regime, so the monitor reacts through the *regular* controller
        requests (so the actions land in the decision log with full
        justifications): quarantined tasks are removed, over-budget
        tasks are rescaled to the largest stretch factor (degrade), and
        removed outright if even the stretched rate is rejected.  The
        synthetic requests are stamped at ``duration_s`` — the moment
        the observation window closed.
        """
        logical_of = {inst.instance: inst.task for inst in instances}
        jobs: Dict[str, int] = {}
        faults: Dict[str, int] = {}
        for name, stats in sim.stats.items():
            logical = logical_of.get(name)
            if logical is not None:
                jobs[logical] = jobs.get(logical, 0) + stats.jobs
        for event in sim.fault_events:
            logical = logical_of.get(event.task)
            if logical is not None:
                faults[logical] = faults.get(logical, 0) + 1
        quarantined = {
            logical_of[name] for name in sim.quarantined if name in logical_of
        }
        tolerance = controller.retry_budget
        now = duration_s
        report: Dict[str, Dict] = {}
        for logical in sorted(set(jobs) | set(faults) | quarantined):
            n_jobs = jobs.get(logical, 0)
            n_faults = faults.get(logical, 0)
            # Integer-exact over-budget test: faults-per-job > tolerance.
            over = n_faults > tolerance * n_jobs
            resident = controller.resident.get(logical)
            action = "over-budget" if over else "ok"
            if logical in quarantined:
                action = "quarantined"
                if resident is not None:
                    controller.handle(
                        Request(time_s=now, kind=RequestKind.REMOVE, task=logical)
                    )
                    action = "removed"
            elif over and resident is not None:
                factor = self._stretch[-1]
                period_s = self.platform.mcu.cycles_to_seconds(
                    int(round(resident.period * factor))
                )
                decision = controller.handle(
                    Request(
                        time_s=now,
                        kind=RequestKind.RESCALE,
                        task=logical,
                        period_s=period_s,
                    )
                )
                if decision.outcome == "rescaled":
                    action = "rescaled"
                else:
                    controller.handle(
                        Request(time_s=now, kind=RequestKind.REMOVE, task=logical)
                    )
                    action = "removed"
            report[logical] = {
                "jobs": n_jobs,
                "faults": n_faults,
                "rate": round(n_faults / n_jobs, 4) if n_jobs else None,
                "action": action,
            }
        return {"tolerance": tolerance, "tasks": report}
