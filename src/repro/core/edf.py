"""EDF admission for segmented two-resource tasks (extension).

The simulator supports segment-level non-preemptive EDF
(:attr:`~repro.sched.policies.CpuPolicy.EDF_NP`); this module provides a
conservative offline admission test for it, built from the classic
processor-demand criterion:

1. **Virtualize** the two resources into one: each job demands
   ``sum(C) + sum(L)`` on a single virtual processor.  A cycle in which
   the CPU serves one task and the DMA another counts twice — the
   virtual processor is strictly slower than the real platform, never
   faster, for any work-conserving schedule.
2. **Fold blocking into demand**: under segment-level non-preemptive
   EDF, a job can be blocked once per segment boundary by an
   already-running later-deadline section (and once per issued transfer
   at the DMA).  Those cycles are added to the job's own demand
   (``n_seg * maxC_other + n_load * maxL_other``) — double-counting the
   blocker's work, which is conservative.
3. Apply the preemptive-EDF **demand-bound test** to the inflated demand.

This construction is deliberately conservative; its safety for the
two-resource pipelined model is validated by the adversarial suite
(``tests/test_analysis_adversarial.py`` exercises EDF simulations
against it) rather than by a formal proof — see DESIGN.md §5.
"""

from __future__ import annotations

from typing import Dict

from repro.sched.rta import RtaTask, edf_demand_schedulable
from repro.sched.task import TaskSet


def _inflated_demand(taskset: TaskSet) -> Dict[str, int]:
    """Per-task virtual demand: serialized work plus folded blocking."""
    demands = {}
    for task in taskset:
        others = [t for t in taskset if t.name != task.name]
        max_c_other = max((t.max_segment_compute for t in others), default=0)
        max_l_other = max((t.max_segment_load for t in others), default=0)
        n_load = sum(1 for s in task.segments if s.load_cycles > 0)
        demands[task.name] = (
            task.total_compute
            + task.total_load
            + task.num_segments * max_c_other
            + n_load * max_l_other
        )
    return demands


def edf_schedulable(taskset: TaskSet) -> bool:
    """Conservative EDF-NP admission for a segmented task set.

    Returns True only when the inflated single-resource demand passes
    the processor-demand criterion at every deadline.
    """
    demands = _inflated_demand(taskset)
    rta_tasks = [
        RtaTask(
            name=t.name,
            exec_cycles=demands[t.name],
            period=t.period,
            deadline=t.deadline,
            priority=index,
        )
        for index, t in enumerate(taskset)
    ]
    return edf_demand_schedulable(rta_tasks)


def edf_utilization_bound(taskset: TaskSet) -> float:
    """Virtual-processor utilization of the inflated demand.

    Above 1.0 the demand test must fail; reported in EXP-F12.
    """
    demands = _inflated_demand(taskset)
    return sum(demands[t.name] / t.period for t in taskset)
