"""Unit tests for priority assignment."""

import pytest

from conftest import make_task
from repro.core.analysis import analyze
from repro.core.priority import (
    assign_priorities,
    audsley,
    deadline_monotonic,
    priority_levels,
    rate_monotonic,
)
from repro.sched.task import TaskSet


def _ts():
    return TaskSet.of([
        make_task("slow", [(0, 60)], period=1000, deadline=900, priority=0),
        make_task("fast", [(0, 10)], period=100, deadline=100, priority=1),
        make_task("mid", [(0, 50)], period=500, deadline=300, priority=2),
    ])


class TestHeuristics:
    def test_deadline_monotonic_order(self):
        ts = deadline_monotonic(_ts())
        assert priority_levels(ts) == ["fast", "mid", "slow"]

    def test_rate_monotonic_order(self):
        ts = rate_monotonic(_ts())
        assert priority_levels(ts) == ["fast", "mid", "slow"]

    def test_dm_vs_rm_differ_when_deadlines_invert(self):
        ts = TaskSet.of([
            make_task("a", [(0, 10)], period=100, deadline=90, priority=0),
            make_task("b", [(0, 10)], period=200, deadline=50, priority=1),
        ])
        assert priority_levels(deadline_monotonic(ts)) == ["b", "a"]
        assert priority_levels(rate_monotonic(ts)) == ["a", "b"]

    def test_deterministic_tie_break_by_name(self):
        ts = TaskSet.of([
            make_task("z", [(0, 10)], period=100, priority=0),
            make_task("a", [(0, 10)], period=100, priority=1),
        ])
        assert priority_levels(deadline_monotonic(ts)) == ["a", "z"]


class TestAudsley:
    def test_recovers_schedulable_assignment(self):
        # DM fails here is not guaranteed, but Audsley must find some
        # schedulable assignment whenever one exists for this easy set.
        ts = _ts()
        result = audsley(ts, "rtmdm")
        assert result is not None
        assert analyze(result, "rtmdm").schedulable

    def test_returns_none_for_hopeless_set(self):
        ts = TaskSet.of([
            make_task("a", [(0, 90)], period=100, priority=0),
            make_task("b", [(0, 90)], period=100, priority=1),
        ])
        assert audsley(ts, "rtmdm") is None

    def test_unique_priorities_assigned(self):
        result = audsley(_ts(), "rtmdm")
        prios = sorted(t.priority for t in result)
        assert prios == [0, 1, 2]


class TestAssignPriorities:
    def test_dm_strategy(self):
        ts = assign_priorities(_ts(), "dm")
        assert priority_levels(ts) == ["fast", "mid", "slow"]

    def test_dm_audsley_falls_back(self):
        ts = assign_priorities(_ts(), "dm+audsley")
        assert ts is not None
        assert analyze(ts, "rtmdm").schedulable

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown priority strategy"):
            assign_priorities(_ts(), "coin-flip")
