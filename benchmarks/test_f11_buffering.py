"""Benchmark for EXP-F11: staging buffer depth ablation."""

from conftest import bench_experiment


def test_f11_buffering(benchmark):
    result = bench_experiment(benchmark, "EXP-F11", n_sets=16)
    for row in result.rows:
        name, b1, b2, b3 = row[0], row[1], row[2], row[3]
        if isinstance(b1, float) and isinstance(b2, float) and not name.startswith("sched"):
            assert b2 <= b1, f"{name}: double buffering slower than single"
