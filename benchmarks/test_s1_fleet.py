"""Benchmark for EXP-S1: fleet-scale sharded admission throughput.

The fleet service's headline numbers: admission decisions per second
through the sharded engine, virtual queueing percentiles across the
shard sweep (the oversubscription curve), and the identity gate —
every sharded run in the sweep must produce a decision stream
bit-identical to the serial oracle.  Throughput and wall decision
latencies land in ``meta`` and hence in BENCH_suite.json.
"""

import os

from conftest import bench_experiment


def test_s1_fleet(benchmark):
    result = bench_experiment(benchmark, "EXP-S1")
    scale = float(os.environ.get("RTMDM_BENCH_SCALE", "1.0"))
    rows = [dict(zip(result.columns, row)) for row in result.rows]
    # The identity gate: wherever a serial oracle exists, sharded == serial.
    checked = [r for r in rows if r["identical"] is not None]
    assert checked and all(r["identical"] == 1 for r in checked)
    # The default queue bound is generous; nothing may be shed, or the
    # identity comparison would be vacuous.
    assert all(r["shed"] == 0 for r in rows)
    # Removing shards must not improve virtual queueing latency.
    for arrival in ("poisson", "bursty"):
        sweep = [r for r in rows if r["arrival"] == arrival
                 and r["identical"] is not None]
        by_shards = sorted(sweep, key=lambda r: r["shards"])
        p99s = [r["q_p99_ms"] for r in by_shards]
        assert p99s == sorted(p99s, reverse=True) or len(set(p99s)) == 1
    # >= 100k decisions at evaluation scale; proportionally fewer on
    # reduced smoke runs (decisions scale with the device counts).
    assert result.meta["total_decisions"] >= 100_000 * min(1.0, scale)
    assert result.meta["decisions_per_s"] > 0
    latency = result.meta["decision_latency_us"]
    assert latency["p50"] <= latency["p95"] <= latency["p99"]
