"""MCU core model: clock, on-chip memories, and unit conversions.

The MCU is the compute resource of the platform.  Only timing-relevant
attributes are modelled; peripherals, caches and wait-states are abstracted
into the layer timing model (:mod:`repro.hw.timing`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class McuSpec:
    """A microcontroller specification.

    Attributes:
        name: Human-readable part name (e.g. ``"STM32F746"``).
        clock_hz: CPU core clock in Hz.  All library times are expressed in
            cycles of this clock.
        sram_bytes: Usable on-chip SRAM, in bytes.  This is the budget that
            weight staging buffers, activations and scratch must share.
        flash_bytes: On-chip flash, in bytes (holds code; models that fit
            here would not need external memory, which is the degenerate
            case the framework detects).
        sram_reserved_bytes: SRAM reserved for the RTOS, stacks and I/O
            buffers; subtracted from ``sram_bytes`` before planning.
        has_fpu: Whether a hardware FPU is present (affects float timing).
        dsp_extensions: Whether SIMD/DSP extensions (e.g. ARMv7E-M MAC
            instructions used by CMSIS-NN) are available.
    """

    name: str
    clock_hz: int
    sram_bytes: int
    flash_bytes: int
    sram_reserved_bytes: int = 16 * 1024
    has_fpu: bool = True
    dsp_extensions: bool = True

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError(f"clock_hz must be positive, got {self.clock_hz}")
        if self.sram_bytes <= 0:
            raise ValueError(f"sram_bytes must be positive, got {self.sram_bytes}")
        if self.flash_bytes < 0:
            raise ValueError(f"flash_bytes must be non-negative, got {self.flash_bytes}")
        if not 0 <= self.sram_reserved_bytes < self.sram_bytes:
            raise ValueError(
                "sram_reserved_bytes must be in [0, sram_bytes); got "
                f"{self.sram_reserved_bytes} with sram_bytes={self.sram_bytes}"
            )

    @property
    def usable_sram_bytes(self) -> int:
        """SRAM available to the staging/activation planner."""
        return self.sram_bytes - self.sram_reserved_bytes

    def seconds_to_cycles(self, seconds: float) -> int:
        """Convert a duration in seconds to (ceil) CPU cycles."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        return int(math.ceil(seconds * self.clock_hz))

    def cycles_to_seconds(self, cycles: int) -> float:
        """Convert CPU cycles to seconds."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        return cycles / self.clock_hz

    def cycles_to_ms(self, cycles: int) -> float:
        """Convert CPU cycles to milliseconds (convenience for reports)."""
        return self.cycles_to_seconds(cycles) * 1e3


@dataclass(frozen=True)
class SramRegion:
    """A named, sized region inside on-chip SRAM.

    Used by the buffer planner to lay out staging and activation buffers.
    Offsets are relative to the start of the usable SRAM window.
    """

    name: str
    offset: int
    size: int
    purpose: str = ""

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"offset must be non-negative, got {self.offset}")
        if self.size < 0:
            raise ValueError(f"size must be non-negative, got {self.size}")

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.offset + self.size

    def overlaps(self, other: "SramRegion") -> bool:
        """Whether this region shares any byte with ``other``.

        Empty regions occupy no bytes and never overlap anything.
        """
        if self.size == 0 or other.size == 0:
            return False
        return self.offset < other.end and other.offset < self.end
