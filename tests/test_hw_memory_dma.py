"""Unit tests for external memory and DMA models."""

import pytest

from repro.hw.dma import DmaArbitration, DmaEngine
from repro.hw.mcu import McuSpec
from repro.hw.memory import ExternalMemory

MCU = McuSpec(name="m", clock_hz=100_000_000, sram_bytes=256 * 1024, flash_bytes=0)


def _mem(**kwargs):
    defaults = dict(
        name="mem",
        read_bandwidth_bps=50e6,
        write_bandwidth_bps=50e6,
        setup_latency_s=1e-6,
        xip_efficiency=0.5,
    )
    defaults.update(kwargs)
    return ExternalMemory(**defaults)


class TestExternalMemory:
    def test_read_cycles_includes_setup(self):
        mem = _mem()
        # 50 MB/s at 100 MHz -> 2 cycles per byte; setup 1 us -> 100 cycles.
        assert mem.read_cycles(1000, MCU) == 100 + 2000

    def test_zero_bytes_is_free(self):
        assert _mem().read_cycles(0, MCU) == 0
        assert _mem().write_cycles(0, MCU) == 0

    def test_read_cycles_rounds_up(self):
        mem = _mem(read_bandwidth_bps=3e8)  # 3 bytes/cycle
        assert mem.read_cycles(10, MCU) == mem.setup_cycles(MCU) + 4  # ceil(10/3)

    def test_write_requires_writable(self):
        rom = _mem(write_bandwidth_bps=0.0)
        assert not rom.writable
        with pytest.raises(ValueError, match="not writable"):
            rom.write_cycles(100, MCU)

    def test_xip_rate_scales_with_efficiency(self):
        fast = _mem(xip_efficiency=1.0)
        slow = _mem(xip_efficiency=0.25)
        assert fast.xip_bytes_per_cycle(MCU) == pytest.approx(
            4 * slow.xip_bytes_per_cycle(MCU)
        )

    def test_scaled_changes_bandwidth_only(self):
        mem = _mem()
        double = mem.scaled(2.0)
        assert double.read_bandwidth_bps == pytest.approx(2 * mem.read_bandwidth_bps)
        assert double.setup_latency_s == mem.setup_latency_s
        assert "x2" in double.name

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            _mem().scaled(0.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            _mem().read_cycles(-1, MCU)

    @pytest.mark.parametrize("kwargs", [
        dict(read_bandwidth_bps=0),
        dict(write_bandwidth_bps=-1),
        dict(setup_latency_s=-1e-9),
        dict(xip_efficiency=0.0),
        dict(xip_efficiency=1.5),
    ])
    def test_invalid_spec_rejected(self, kwargs):
        with pytest.raises(ValueError):
            _mem(**kwargs)


class TestDmaEngine:
    def test_transfer_adds_program_overhead(self):
        mem = _mem()
        dma = DmaEngine(program_overhead_s=1e-6)
        expected = 100 + mem.read_cycles(1000, MCU)
        assert dma.transfer_cycles(1000, MCU, mem) == expected

    def test_zero_transfer_free(self):
        assert DmaEngine().transfer_cycles(0, MCU, _mem()) == 0

    def test_with_arbitration(self):
        dma = DmaEngine(arbitration=DmaArbitration.PRIORITY)
        fifo = dma.with_arbitration(DmaArbitration.FIFO)
        assert fifo.arbitration is DmaArbitration.FIFO
        assert dma.arbitration is DmaArbitration.PRIORITY  # original untouched
        assert fifo.program_overhead_s == dma.program_overhead_s

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            DmaEngine(program_overhead_s=-1.0)
