"""Fault injection and overload management for the RT-MDM simulator.

The nominal timing engine answers "does the schedule fit"; this package
makes it answer "what happens when things go wrong":

* :mod:`repro.robust.faults` — seeded, reproducible fault models (WCET
  overrun, DMA transfer retries, bus-contention jitter).
* :mod:`repro.robust.escalation` — persistent external-memory fault
  models (bad flash regions, bus degradation, DMA lockup) and the
  per-transfer fault-handler state machine (bounded retries with
  exponential backoff, watchdog timeout, honest budget exhaustion
  raising :class:`~repro.robust.escalation.FaultEvent`).
* :mod:`repro.robust.recovery` — the recovery ladder reacting to
  terminal faults: RETRY → REMAP → XIP_FALLBACK → DEGRADE → QUARANTINE.
* :mod:`repro.robust.overload` — overload policies (continue / abort at
  deadline / skip next release / degrade to a fallback model variant).
* :mod:`repro.robust.metrics` — miss ratios, shed load, degraded-mode
  residency, and recovery summaries of fault-injected runs.
* :mod:`repro.robust.chaos` — crash/chaos-injection matrix over the
  durable serving layer (:mod:`repro.online.durable`): seeded controller
  crashes at every decision index, journal truncation/corruption, and
  adversarial delivery, each asserting bit-identical recovery.  Imported
  lazily (not re-exported here) because it depends on
  :mod:`repro.online`, which this package must not import at load time.

Wire the pieces through :class:`repro.sched.simulator.SimConfig`
(``faults=``, ``overrun=``, ``degrade=``, ``escalation=``,
``recovery=``); with a null fault config, a null escalation config, and
``OverrunPolicy.CONTINUE`` the simulator is bit-identical to the nominal
engine.
"""

from repro.robust.escalation import (
    BadRegion,
    BusDegradation,
    EscalationConfig,
    FaultEvent,
    FaultKind,
    TransferFaultHandler,
    TransferOutcome,
    bad_region_span,
    fault_events_from_json,
    fault_events_to_json,
    fault_overhead_cycles,
    flash_layout,
)
from repro.robust.faults import FaultConfig, FaultInjector, InflationModel
from repro.robust.recovery import (
    RecoveryConfig,
    RecoveryManager,
    RecoveryProtocol,
)
from repro.robust.metrics import (
    aborted_jobs,
    chaos_summary,
    degraded_residency,
    fleet_chaos_summary,
    mean_recovery_latency,
    miss_ratio,
    recovery_summary,
    robustness_summary,
    sacrificed_releases,
    skipped_releases,
    survival_miss_ratio,
)
from repro.robust.overload import (
    DegradeConfig,
    OverloadManager,
    OverrunPolicy,
    degraded_variant,
)

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "InflationModel",
    "BadRegion",
    "BusDegradation",
    "EscalationConfig",
    "FaultEvent",
    "FaultKind",
    "TransferFaultHandler",
    "TransferOutcome",
    "bad_region_span",
    "flash_layout",
    "fault_events_to_json",
    "fault_events_from_json",
    "fault_overhead_cycles",
    "RecoveryConfig",
    "RecoveryManager",
    "RecoveryProtocol",
    "OverrunPolicy",
    "DegradeConfig",
    "OverloadManager",
    "degraded_variant",
    "miss_ratio",
    "aborted_jobs",
    "skipped_releases",
    "degraded_residency",
    "robustness_summary",
    "sacrificed_releases",
    "survival_miss_ratio",
    "mean_recovery_latency",
    "recovery_summary",
    "chaos_summary",
    "fleet_chaos_summary",
]
