"""Unit tests for workload generation and scenarios."""

import random

import pytest

from repro.dnn.zoo import list_models
from repro.hw.presets import get_platform
from repro.workload.scenarios import SCENARIOS, get_scenario
from repro.workload.taskset import generate_case, uunifast

PLATFORM = get_platform("f746-qspi")


class TestUUniFast:
    @pytest.mark.parametrize("n,total", [(1, 0.5), (3, 0.7), (8, 0.95), (5, 2.0)])
    def test_sums_to_target(self, n, total):
        utils = uunifast(n, total, random.Random(1))
        assert sum(utils) == pytest.approx(total)
        assert len(utils) == n
        assert all(u > 0 for u in utils)

    def test_reproducible(self):
        a = uunifast(5, 0.6, random.Random(42))
        b = uunifast(5, 0.6, random.Random(42))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            uunifast(0, 0.5, random.Random(1))
        with pytest.raises(ValueError):
            uunifast(3, 0.0, random.Random(1))


class TestGenerateCase:
    def test_utilization_matches_target(self):
        case = generate_case(PLATFORM, 0.5, random.Random(7), n_tasks=3)
        assert case.feasible
        assert case.taskset.cpu_utilization == pytest.approx(0.5, rel=0.05)

    def test_reproducible(self):
        a = generate_case(PLATFORM, 0.4, random.Random(3))
        b = generate_case(PLATFORM, 0.4, random.Random(3))
        assert a.feasible == b.feasible
        if a.feasible:
            for ta, tb in zip(a.taskset, b.taskset):
                assert ta.period == tb.period
                assert ta.segments == tb.segments

    def test_dm_priorities_unique(self):
        case = generate_case(PLATFORM, 0.4, random.Random(11))
        if case.feasible:
            prios = sorted(t.priority for t in case.taskset)
            assert prios == list(range(len(case.taskset)))

    def test_constrained_deadlines(self):
        case = generate_case(
            PLATFORM, 0.4, random.Random(5), deadline_ratio=(0.6, 0.8)
        )
        if case.feasible:
            for task in case.taskset:
                assert task.deadline <= task.period
                assert task.deadline >= int(task.period * 0.55)

    def test_model_pool_respected(self):
        case = generate_case(
            PLATFORM, 0.3, random.Random(9), model_pool=("tinyconv",), n_tasks=2
        )
        assert case.feasible
        for model in case.refined.values():
            assert model.name == "tinyconv"

    def test_infeasible_on_tiny_sram(self):
        tiny = PLATFORM.with_sram_bytes(20 * 1024)
        case = generate_case(
            tiny, 0.5, random.Random(2), model_pool=("mobilenet-v1-0.25",), n_tasks=3
        )
        assert not case.feasible
        assert case.taskset is None

    def test_segments_respect_np_cap_estimate(self):
        case = generate_case(PLATFORM, 0.5, random.Random(13), n_tasks=3)
        if not case.feasible:
            pytest.skip("draw was infeasible")
        min_d = min(t.deadline for t in case.taskset)
        for task in case.taskset:
            refined_floor = max(
                PLATFORM.compute_cycles(l, 1.0)
                for l in case.refined[task.name].layers
            )
            assert task.max_segment_compute <= max(min_d, refined_floor) * 2


class TestScenarios:
    def test_all_scenarios_materialize(self):
        for name in SCENARIOS:
            scenario = get_scenario(name)
            specs = scenario.specs()
            assert len(specs) >= 2
            assert all(spec.period_s > 0 for spec in specs)

    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="available"):
            get_scenario("mars-rover")

    def test_platform_keys_valid(self):
        for scenario in SCENARIOS.values():
            get_platform(scenario.platform_key)

    def test_models_exist_in_zoo(self):
        zoo = set(list_models())
        for scenario in SCENARIOS.values():
            for _, model_name, _, _ in scenario.tasks:
                assert model_name in zoo, (
                    f"{scenario.name}: unknown model {model_name!r}"
                )

    def test_deadlines_constrained(self):
        # 0 means implicit (= period); explicit deadlines must fit the period.
        for scenario in SCENARIOS.values():
            for task_name, _, period_s, deadline_s in scenario.tasks:
                assert period_s > 0, f"{scenario.name}/{task_name}"
                assert 0 <= deadline_s <= period_s, (
                    f"{scenario.name}/{task_name}: deadline {deadline_s} "
                    f"outside (0, {period_s}]"
                )

    def test_task_names_unique(self):
        for scenario in SCENARIOS.values():
            names = [t[0] for t in scenario.tasks]
            assert len(set(names)) == len(names), scenario.name

    def test_specs_resolve_implicit_deadlines(self):
        for scenario in SCENARIOS.values():
            for spec, raw in zip(scenario.specs(), scenario.tasks):
                assert spec.model.num_layers > 0
                if raw[3] > 0:
                    assert spec.deadline_s == raw[3]
                else:
                    assert spec.deadline_s is None
