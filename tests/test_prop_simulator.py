"""Property-based tests (hypothesis) for the discrete-event simulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import isolated_latency
from repro.hw.dma import DmaArbitration
from repro.sched.policies import CpuPolicy
from repro.sched.simulator import SimConfig, simulate
from repro.sched.task import PeriodicTask, Segment, TaskSet


def _task(name, pairs, period, deadline, priority, buffers, phase=0):
    return PeriodicTask(
        name,
        tuple(Segment(f"{name}{i}", l, c) for i, (l, c) in enumerate(pairs)),
        period=period,
        deadline=deadline,
        priority=priority,
        buffers=buffers,
        phase=phase,
    )


@st.composite
def tasksets(draw, max_tasks=3, max_load=80):
    n = draw(st.integers(1, max_tasks))
    tasks = []
    for i in range(n):
        m = draw(st.integers(1, 4))
        pairs = [
            (draw(st.integers(0, max_load)), draw(st.integers(1, 120)))
            for _ in range(m)
        ]
        demand = sum(l + c for l, c in pairs)
        period = draw(st.integers(demand, demand * 8))
        deadline = draw(st.integers(max(1, period // 2), period))
        buffers = draw(st.integers(1, 3))
        phase = draw(st.integers(0, period))
        tasks.append(_task(f"t{i}", pairs, period, deadline, i, buffers, phase))
    return TaskSet.of(tasks)


policies = st.sampled_from(list(CpuPolicy))
arbitrations = st.sampled_from(list(DmaArbitration))


@given(tasksets(), policies, arbitrations)
@settings(max_examples=120, deadline=None)
def test_resources_never_overlap_and_accounting_consistent(ts, policy, arb):
    horizon = 6 * max(t.period for t in ts)
    result = simulate(
        ts,
        SimConfig(policy=policy, dma_arbitration=arb, horizon=horizon,
                  record_trace=True),
    )
    result.trace.verify_no_overlap()
    assert result.cpu_busy == result.trace.busy_cycles("cpu")
    assert result.dma_busy == result.trace.busy_cycles("dma")


@given(tasksets(max_tasks=1), policies)
@settings(max_examples=80, deadline=None)
def test_single_task_response_equals_pipeline_latency(ts, policy):
    """Alone on the platform, every job finishes in the isolated latency
    (period >= demand >= latency, so jobs never queue)."""
    result = simulate(
        ts, SimConfig(policy=policy, horizon=5 * ts[0].period)
    )
    expected = isolated_latency(ts[0].segments, ts[0].buffers)
    stats = result.stats[ts[0].name]
    assert all(r == expected for r in stats.responses)


@given(tasksets(), policies, arbitrations)
@settings(max_examples=80, deadline=None)
def test_every_finished_job_executed_all_work(ts, policy, arb):
    """Busy time equals the per-resource work of completed + queued jobs."""
    horizon = 5 * max(t.period for t in ts)
    result = simulate(
        ts, SimConfig(policy=policy, dma_arbitration=arb, horizon=horizon)
    )
    if result.truncated:
        return
    for task in ts:
        stats = result.stats[task.name]
        # Completed jobs did all their compute; unfinished ones did some.
        assert stats.jobs >= len(stats.responses)
    total_compute_done = result.cpu_busy
    min_expected = sum(
        len(result.stats[t.name].responses) * t.total_compute for t in ts
    )
    assert total_compute_done >= min_expected


@given(tasksets())
@settings(max_examples=60, deadline=None)
def test_determinism(ts):
    horizon = 4 * max(t.period for t in ts)
    a = simulate(ts, SimConfig(horizon=horizon))
    b = simulate(ts, SimConfig(horizon=horizon))
    for task in ts:
        assert a.stats[task.name].responses == b.stats[task.name].responses


@given(tasksets(max_tasks=2, max_load=0))
@settings(max_examples=60, deadline=None)
def test_preemptive_never_hurts_highest_priority_cpu_only(ts):
    """Without shared-DMA blocking, the highest-priority task's worst
    response under preemptive FP is no worse than under non-preemptive FP.

    The claim is only sound for CPU-only task sets (``load == 0``).  With
    a shared DMA, preemption shifts *when* lower-priority jobs complete
    and hence when their non-preemptive transfers occupy the bus; a
    transfer started at an inopportune instant blocks the top task's
    next load longer than under FP_NP (a Graham-style anomaly — see
    ``test_preemption_dma_anomaly_pinned``).
    """
    horizon = 6 * max(t.period for t in ts)
    np_result = simulate(ts, SimConfig(policy=CpuPolicy.FP_NP, horizon=horizon))
    p_result = simulate(ts, SimConfig(policy=CpuPolicy.FP_P, horizon=horizon))
    top = ts.sorted_by_priority()[0].name
    np_max = np_result.max_response(top)
    p_max = p_result.max_response(top)
    if np_max is not None and p_max is not None:
        assert p_max <= np_max


def test_preemption_dma_anomaly_pinned():
    """Regression pin of the hypothesis-found counterexample: preemption
    CAN worsen the top task's response once tasks share the DMA.

    Under FP_P the low-priority compute is preempted and finishes later,
    which delays its next job's non-preemptive DMA transfer into a
    window where it blocks the top task's load for longer than under
    FP_NP.  The anomaly is genuine (not a simulator bug): both runs are
    work-conserving and serialize each resource correctly.
    """
    ts = TaskSet.of([
        _task("t0", [(15, 2)], period=49, deadline=24, priority=0, buffers=1),
        _task("t1", [(34, 21)], period=59, deadline=29, priority=1, buffers=1),
    ])
    horizon = 6 * 59
    np_result = simulate(ts, SimConfig(policy=CpuPolicy.FP_NP, horizon=horizon))
    p_result = simulate(ts, SimConfig(policy=CpuPolicy.FP_P, horizon=horizon))
    assert np_result.max_response("t0") == 48
    assert p_result.max_response("t0") == 49  # worse, despite preemption
