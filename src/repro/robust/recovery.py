"""Recovery protocols: the escalation ladder that survives flash failures.

When the transfer fault handler (:mod:`repro.robust.escalation`) gives up
on a segment, something must still make the task's future well-defined.
This module implements the escalation ladder

    RETRY -> REMAP -> XIP_FALLBACK -> DEGRADE -> QUARANTINE

* **RETRY** is the handler's own bounded retry loop — implicit, always
  first, and already spent by the time a fault reaches the ladder.
* **REMAP** re-fetches the segment from a mirror copy placed in a
  healthy flash region: the re-read pays a remap overhead (flash command
  setup for the new address, costed via :mod:`repro.hw.memory`) plus an
  optional slowdown (the mirror may sit behind a slower bus segment).
* **XIP_FALLBACK** stops staging the segment altogether and executes it
  in place out of external flash: no DMA transfer, but the segment's
  compute inflates by the XIP timing penalty.
* **DEGRADE** switches the task to a smaller fallback variant
  (:func:`repro.robust.overload.degraded_variant`) assumed to fit in
  healthy/internal memory — the current job is abandoned, future
  releases run the variant.
* **QUARANTINE** suspends the task: the current job is abandoned and all
  future releases are suppressed.  It is the implicit terminal rung and
  the default reaction when no :class:`RecoveryManager` is configured —
  a fault never silently succeeds.

``RecoveryConfig.ladder`` selects which *intermediate* rungs are armed;
it must be a subsequence of ``(REMAP, XIP_FALLBACK, DEGRADE)``.  The
manager is pure bookkeeping (no randomness): given the same fault
sequence it makes the same decisions, so recovery runs reproduce
bit-for-bit.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Set, Tuple, TYPE_CHECKING

from repro.robust.escalation import FaultKind
from repro.robust.overload import degraded_variant

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hw.platform import Platform
    from repro.sched.task import PeriodicTask, Segment


class RecoveryProtocol(enum.Enum):
    """Rungs of the escalation ladder, in escalation order."""

    RETRY = "retry"
    REMAP = "remap"
    XIP_FALLBACK = "xip-fallback"
    DEGRADE = "degrade"
    QUARANTINE = "quarantine"


_LADDER_ORDER = (
    RecoveryProtocol.REMAP,
    RecoveryProtocol.XIP_FALLBACK,
    RecoveryProtocol.DEGRADE,
)


@dataclass(frozen=True)
class RecoveryConfig:
    """Recovery-ladder parameters.

    Attributes:
        ladder: Armed intermediate rungs, a subsequence of
            ``(REMAP, XIP_FALLBACK, DEGRADE)``.  ``RETRY`` (implicit
            first) and ``QUARANTINE`` (implicit terminal) may not be
            listed.  An empty ladder quarantines on the first fault.
        remap_overhead_cycles: Flash command/address setup cost of
            redirecting a fetch to the mirror copy.
        remap_slowdown: Bandwidth factor (``>= 1``) of mirror reads.
        xip_factor: Compute inflation per XIP-executed segment: the
            segment's staged ``load_cycles`` re-enter as
            ``ceil(load_cycles * xip_factor)`` extra compute cycles
            (the CPU fetching weights word-by-word is slower than DMA).
        degrade_factor: Scale of the fallback variant
            (:func:`repro.robust.overload.degraded_variant`).
    """

    ladder: Tuple[RecoveryProtocol, ...] = _LADDER_ORDER
    remap_overhead_cycles: int = 0
    remap_slowdown: float = 1.0
    xip_factor: float = 2.5
    degrade_factor: float = 0.5

    def __post_init__(self) -> None:
        positions = []
        for rung in self.ladder:
            if rung not in _LADDER_ORDER:
                raise ValueError(
                    f"ladder may only contain {[r.value for r in _LADDER_ORDER]}, "
                    f"got {rung.value!r} (RETRY/QUARANTINE are implicit)"
                )
            positions.append(_LADDER_ORDER.index(rung))
        if positions != sorted(set(positions)):
            raise ValueError(
                "ladder must be a strictly increasing subsequence of "
                f"{[r.value for r in _LADDER_ORDER]}, got "
                f"{[r.value for r in self.ladder]}"
            )
        if self.remap_overhead_cycles < 0:
            raise ValueError(
                f"remap_overhead_cycles must be >= 0, got {self.remap_overhead_cycles}"
            )
        if self.remap_slowdown < 1.0:
            raise ValueError(
                f"remap_slowdown must be >= 1, got {self.remap_slowdown}"
            )
        if self.xip_factor < 1.0:
            raise ValueError(f"xip_factor must be >= 1, got {self.xip_factor}")
        if not 0.0 < self.degrade_factor <= 1.0:
            raise ValueError(
                f"degrade_factor must be in (0, 1], got {self.degrade_factor}"
            )

    @classmethod
    def for_platform(cls, platform: "Platform", **overrides) -> "RecoveryConfig":
        """A config costed from ``platform``'s external-memory model.

        * ``remap_overhead_cycles`` is one flash command/address setup
          (:meth:`repro.hw.memory.ExternalMemory.setup_cycles`) — the
          cost of pointing the next read at the mirror address.
        * ``xip_factor`` is the inverse XIP efficiency — executing in
          place fetches at ``xip_efficiency`` of DMA bandwidth, so each
          staged cycle re-enters as ``1 / xip_efficiency`` compute
          cycles.
        """
        params = {
            "remap_overhead_cycles": platform.memory.setup_cycles(platform.mcu),
            "xip_factor": 1.0 / platform.memory.xip_efficiency,
        }
        params.update(overrides)
        return cls(**params)

    def allows(self, protocol: RecoveryProtocol) -> bool:
        """Whether ``protocol`` is an armed rung of the ladder."""
        return protocol in self.ladder

    def remap_cycles(self, nominal: int) -> int:
        """DMA cycles of a mirror re-fetch of a ``nominal``-cycle load."""
        if nominal == 0:
            return 0
        return self.remap_overhead_cycles + math.ceil(nominal * self.remap_slowdown)

    def xip_penalty(self, segment: "Segment") -> int:
        """Extra compute cycles when ``segment`` executes in place."""
        return math.ceil(segment.load_cycles * self.xip_factor)


class RecoveryManager:
    """Per-task/per-segment recovery state driven by fault events.

    The simulator calls :meth:`on_fault` for every terminal
    :class:`~repro.robust.escalation.FaultEvent` and acts on the returned
    rung; :meth:`source` / :meth:`is_xip` / :meth:`segments_for` expose
    the sticky per-segment recovery modes to the scheduling passes.
    """

    def __init__(self, config: RecoveryConfig) -> None:
        self.config = config
        self._seg_mode: Dict[Tuple[str, int], str] = {}
        self._degraded: Set[str] = set()
        self._quarantined: Set[str] = set()
        self._fallbacks: Dict[str, Tuple["Segment", ...]] = {}

    # ------------------------------------------------------------------
    # State the simulator consults
    # ------------------------------------------------------------------
    def source(self, task: str, segment: int) -> str:
        """Where ``(task, segment)``'s next fetch reads from."""
        return "mirror" if self._seg_mode.get((task, segment)) == "mirror" else "primary"

    def is_xip(self, task: str, segment: int) -> bool:
        """Whether ``(task, segment)`` executes in place (no staging)."""
        return self._seg_mode.get((task, segment)) == "xip"

    def region_immune(self, task: str) -> bool:
        """Whether ``task``'s weights left external flash (degraded variant)."""
        return task in self._degraded

    def is_degraded(self, task: str) -> bool:
        """Whether ``task`` currently releases its fallback variant."""
        return task in self._degraded

    def is_quarantined(self, task: str) -> bool:
        """Whether ``task`` is suspended."""
        return task in self._quarantined

    def fallback_for(self, task: "PeriodicTask") -> Tuple["Segment", ...]:
        """The (cached) degraded fallback segment list for ``task``."""
        cached = self._fallbacks.get(task.name)
        if cached is None:
            cached = degraded_variant(task, self.config.degrade_factor)
            self._fallbacks[task.name] = cached
        return cached

    def segments_for(
        self, task: "PeriodicTask", segments: Tuple["Segment", ...]
    ) -> Tuple["Segment", ...]:
        """The segment list a job of ``task`` released now executes."""
        if task.name in self._degraded:
            return self.fallback_for(task)
        return segments

    # ------------------------------------------------------------------
    # The ladder
    # ------------------------------------------------------------------
    def on_fault(self, task: str, segment: int, kind: FaultKind) -> str:
        """Pick the next rung for a terminal fault on ``(task, segment)``.

        Returns one of ``"remap" | "xip-fallback" | "degrade" |
        "quarantine"`` and updates the sticky recovery state so the
        decision applies to every future fetch of the segment.
        """
        if task in self._quarantined:
            return "quarantine"
        key = (task, segment)
        mode = self._seg_mode.get(key)
        if mode is None and self.config.allows(RecoveryProtocol.REMAP):
            self._seg_mode[key] = "mirror"
            return "remap"
        if mode != "xip" and self.config.allows(RecoveryProtocol.XIP_FALLBACK):
            self._seg_mode[key] = "xip"
            return "xip-fallback"
        if self.config.allows(RecoveryProtocol.DEGRADE) and task not in self._degraded:
            self._degraded.add(task)
            # The variant is a different segmentation: per-segment modes
            # no longer line up, and the variant lives in healthy memory.
            for k in [k for k in self._seg_mode if k[0] == task]:
                del self._seg_mode[k]
            return "degrade"
        self._quarantined.add(task)
        return "quarantine"


# ----------------------------------------------------------------------
# Fleet resilience: retry backoff policy and counters
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExponentialBackoff:
    """Bounded exponential backoff schedule (deterministic, no jitter).

    ``delay_s(attempt)`` is the wait before retry ``attempt + 1``:
    ``base_ms * 2**attempt`` capped at ``cap_ms``.  The fleet service
    uses it to re-release timed-out admission requests in virtual time;
    determinism (no jitter) is what keeps fleet runs bit-reproducible.
    """

    base_ms: float = 2.0
    cap_ms: float = 64.0

    def __post_init__(self) -> None:
        if self.base_ms <= 0:
            raise ValueError(f"base_ms must be > 0, got {self.base_ms}")
        if self.cap_ms < self.base_ms:
            raise ValueError(
                f"cap_ms must be >= base_ms, got {self.cap_ms}"
            )

    def delay_ms(self, attempt: int) -> float:
        """Backoff (ms) after the ``attempt``-th timeout (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        # Cap the exponent first so huge attempt counts cannot overflow.
        exponent = min(attempt, 62)
        return min(self.base_ms * (2 ** exponent), self.cap_ms)

    def delay_s(self, attempt: int) -> float:
        return self.delay_ms(attempt) * 1e-3


# Fleet resilience counters, riding the same snapshot/delta/absorb
# protocol as the plan caches (see repro.core.segcache): the fleet
# service bumps them inline, parallel workers ship them home as deltas,
# and experiment notes / --profile / BENCH_suite.json read them out.
# They live here (not in eval.fleet) so segcache's lazy import stays
# cheap and cycle-free.
_RESILIENCE_FIELDS = (
    "degraded_admits", "timeout_retries", "recovered", "crashes"
)
_resilience = {name: 0 for name in _RESILIENCE_FIELDS}


def resilience_bump(name: str, n: int = 1) -> None:
    """Increment one fleet resilience counter."""
    _resilience[name] += n


def resilience_snapshot() -> Tuple[int, ...]:
    """Counters as a tuple, in ``_RESILIENCE_FIELDS`` order."""
    return tuple(_resilience[name] for name in _RESILIENCE_FIELDS)


def resilience_absorb(vals: Tuple[int, ...]) -> None:
    """Fold a worker's counter delta into this process's totals."""
    for name, v in zip(_RESILIENCE_FIELDS, vals):
        _resilience[name] += v


def resilience_counters() -> Dict[str, int]:
    """Counters as a dict (for --profile and BENCH_suite.json)."""
    return dict(_resilience)


def resilience_reset() -> None:
    """Zero the counters (test isolation)."""
    for name in _RESILIENCE_FIELDS:
        _resilience[name] = 0
