"""Platform: the bundle of MCU + external memory + DMA + timing model.

A :class:`Platform` is the single hardware handle the rest of the library
works against.  It provides the derived quantities the scheduler and the
analyses need: transfer times for weight blocks, layer compute times, and
the load/compute *balance bandwidth* used in reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.hw.dma import DmaArbitration, DmaEngine
from repro.hw.mcu import McuSpec
from repro.hw.memory import ExternalMemory
from repro.hw.timing import TimingModel


@dataclass(frozen=True)
class Platform:
    """A complete hardware platform for multi-DNN inference.

    Attributes:
        name: Platform name for reports (e.g. ``"STM32F746+QSPI"``).
        mcu: The MCU core/memory spec.
        memory: The external weight store.
        dma: The transfer engine between ``memory`` and SRAM.
        timing: The layer timing model.
    """

    name: str
    mcu: McuSpec
    memory: ExternalMemory
    dma: DmaEngine = field(default_factory=DmaEngine)
    timing: TimingModel = field(default_factory=TimingModel)

    # ------------------------------------------------------------------
    # Derived timing quantities
    # ------------------------------------------------------------------
    def load_cycles(self, nbytes: int) -> int:
        """DMA-busy cycles to stage ``nbytes`` of weights into SRAM."""
        return self.dma.transfer_cycles(nbytes, self.mcu, self.memory)

    def compute_cycles(self, layer, bytes_per_value: float = 1.0) -> int:
        """CPU cycles for one layer with staged weights."""
        return self.timing.compute_cycles(layer, self.mcu, bytes_per_value)

    def xip_cycles(self, layer, bytes_per_value: float = 1.0) -> int:
        """CPU cycles for one layer executed in place from external memory."""
        cost = self.timing.layer_cost(
            layer, self.mcu, self.memory, bytes_per_value, xip=True
        )
        return cost.xip_cycles

    # ------------------------------------------------------------------
    # Report helpers
    # ------------------------------------------------------------------
    @property
    def usable_sram_bytes(self) -> int:
        """SRAM bytes available to the buffer planner."""
        return self.mcu.usable_sram_bytes

    def balance_bytes_per_cycle(self) -> float:
        """External-memory bytes deliverable per CPU cycle.

        A segment whose compute density (cycles per weight byte) exceeds
        the inverse of this rate is compute-bound under double buffering;
        below it, staging is the bottleneck.  Reported in EXP-T2.
        """
        return self.memory.read_bandwidth_bps / self.mcu.clock_hz

    # ------------------------------------------------------------------
    # Variants (for sweeps/ablations)
    # ------------------------------------------------------------------
    def with_memory(self, memory: ExternalMemory) -> "Platform":
        """A copy of this platform with a different external memory."""
        return replace(self, memory=memory, name=f"{self.mcu.name}+{memory.name}")

    def with_bandwidth_factor(self, factor: float) -> "Platform":
        """A copy with external bandwidth scaled by ``factor`` (EXP-F6)."""
        return self.with_memory(self.memory.scaled(factor))

    def with_sram_bytes(self, sram_bytes: int) -> "Platform":
        """A copy with a different SRAM size (EXP-F5)."""
        mcu = replace(self.mcu, sram_bytes=sram_bytes)
        return replace(self, mcu=mcu)

    def with_dma_arbitration(self, arbitration: DmaArbitration) -> "Platform":
        """A copy using a different DMA queue policy (EXP-F10)."""
        return replace(self, dma=self.dma.with_arbitration(arbitration))
