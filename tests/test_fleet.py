"""Unit tests for the fleet-scale sharded admission service."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core import segcache
from repro.eval.fleet import (
    DEFAULT_COHORTS,
    CohortSpec,
    FleetConfig,
    FleetService,
    decision_identity,
    fleet_trace,
    shard_of,
)
from repro.online.durable import scan_journal
from repro.online.events import RequestKind


@pytest.fixture(autouse=True)
def fresh_caches():
    segcache.clear_all()
    yield
    segcache.clear_all()


def small_trace(arrival="poisson", n_devices=600, duration_s=2.0, seed=7):
    return fleet_trace(
        n_devices, duration_s, 0.35, seed=seed, arrival=arrival
    )


class TestFleetTrace:
    def test_deterministic_and_ordered(self):
        trace = small_trace()
        again = small_trace()
        assert trace == again
        assert small_trace(seed=8) != trace
        times = [r.time_s for r in trace.requests]
        assert times == sorted(times)
        assert [r.seq for r in trace.requests] == list(range(len(times)))

    def test_device_naming_and_cohort_assignment(self):
        trace = small_trace()
        for request in trace.requests:
            assert request.device.startswith("d")
            index = int(request.device[1:])
            assert 0 <= index < trace.n_devices
        # Cohorts partition the fleet by index modulo.
        assert trace.cohorts == DEFAULT_COHORTS

    def test_admit_tasks_unique_per_device(self):
        trace = small_trace()
        seen = set()
        for request in trace.requests:
            if request.kind is RequestKind.ADMIT:
                key = (request.device, request.task)
                assert key not in seen
                seen.add(key)

    def test_bursty_arrival_model(self):
        trace = small_trace(arrival="bursty")
        assert trace.arrival == "bursty"
        assert trace != small_trace()
        with pytest.raises(ValueError, match="arrival"):
            fleet_trace(10, 1.0, 1.0, seed=1, arrival="uniform")

    def test_validation(self):
        with pytest.raises(ValueError, match="n_devices"):
            fleet_trace(0, 1.0, 1.0, seed=1)
        with pytest.raises(ValueError, match="duration_s"):
            fleet_trace(10, 0.0, 1.0, seed=1)
        with pytest.raises(ValueError, match="rate_per_device"):
            fleet_trace(10, 1.0, 0.0, seed=1)
        with pytest.raises(ValueError, match="cohorts"):
            fleet_trace(10, 1.0, 1.0, seed=1, cohorts=())


class TestSharding:
    def test_shard_of_is_stable_and_in_range(self):
        for n_shards in (1, 3, 8):
            for index in range(50):
                shard = shard_of(f"d{index:07d}", n_shards)
                assert 0 <= shard < n_shards
                assert shard == shard_of(f"d{index:07d}", n_shards)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="n_shards"):
            FleetConfig(n_shards=0)
        with pytest.raises(ValueError, match="batch_size"):
            FleetConfig(batch_size=0)
        with pytest.raises(ValueError, match="max_queue_depth"):
            FleetConfig(max_queue_depth=0)
        with pytest.raises(ValueError, match="service_us"):
            FleetConfig(service_us=0.0)


class TestIdentity:
    """Sharded decisions must be bit-identical to the serial run."""

    def test_identity_across_shard_counts_and_batches(self):
        trace = small_trace()
        oracle = None
        for n_shards, batch_size in ((1, 64), (2, 64), (5, 64), (8, 7), (3, 1)):
            report = FleetService(
                config=FleetConfig(n_shards=n_shards, batch_size=batch_size)
            ).run(trace)
            assert report.shed == 0
            identity = decision_identity(report.decisions)
            if oracle is None:
                oracle = identity
            else:
                assert identity == oracle

    def test_identity_under_bursty_arrivals(self):
        trace = small_trace(arrival="bursty")
        serial = FleetService(config=FleetConfig(n_shards=1)).run(trace)
        sharded = FleetService(config=FleetConfig(n_shards=6)).run(trace)
        assert serial.shed == sharded.shed == 0
        assert decision_identity(sharded.decisions) == decision_identity(
            serial.decisions
        )

    def test_per_device_decision_order_preserved(self):
        trace = small_trace()
        report = FleetService(config=FleetConfig(n_shards=4)).run(trace)
        per_device = {}
        for decision in report.decisions:
            per_device.setdefault(decision.device, []).append(decision.seq)
        for seqs in per_device.values():
            assert seqs == sorted(seqs)


class TestService:
    def test_counts_are_consistent(self):
        trace = small_trace()
        report = FleetService(config=FleetConfig(n_shards=4)).run(trace)
        assert report.requests == len(trace.requests)
        assert report.requests == (
            report.admitted + report.rejected_sram + report.rejected_rta
            + report.removed + report.ignored + report.shed
        )
        assert report.decided == report.requests - report.shed
        assert len(report.decisions) == report.decided
        assert report.admitted > 0
        assert report.removed > 0
        assert sum(s["decided"] for s in report.shard_stats) == report.decided

    def test_backpressure_sheds_and_bounds_depth(self):
        trace = small_trace()
        depth = 5
        report = FleetService(
            config=FleetConfig(
                n_shards=1,
                batch_size=4,
                max_queue_depth=depth,
                service_us=200_000.0,  # 0.2 s/decision: shard saturates
            )
        ).run(trace)
        assert report.shed > 0
        assert report.peak_queue_depth <= depth
        assert report.requests == report.decided + report.shed

    def test_cohort_sram_shapes_rejections(self):
        trace = fleet_trace(
            200, 2.0, 0.6, seed=3,
            cohorts=(CohortSpec("tiny", "f746-qspi", sram_kib=48),),
        )
        tiny = FleetService(
            cohorts=(CohortSpec("tiny", "f746-qspi", sram_kib=48),),
            config=FleetConfig(n_shards=2),
        ).run(trace)
        roomy = FleetService(
            cohorts=(CohortSpec("roomy", "f746-qspi", sram_kib=320),),
            config=FleetConfig(n_shards=2),
        ).run(trace)
        assert tiny.rejected_sram > roomy.rejected_sram
        assert roomy.admitted > tiny.admitted

    def test_report_dict_shape(self):
        trace = small_trace(n_devices=120)
        report = FleetService(config=FleetConfig(n_shards=2)).run(trace)
        payload = report.to_dict()
        assert payload["schema"] == "rtmdm-fleet/1"
        assert payload["n_shards"] == 2
        assert "decisions" not in payload
        assert set(payload["queueing_latency_ms"]) == {
            "n", "mean", "p50", "p95", "p99", "max",
        }
        assert len(payload["shards"]) == 2
        with_decisions = report.to_dict(include_decisions=True)
        assert len(with_decisions["decisions"]) == report.decided

    def test_virtual_queueing_is_deterministic(self):
        trace = small_trace(n_devices=300)
        config = FleetConfig(n_shards=3)
        first = FleetService(config=config).run(trace)
        second = FleetService(config=config).run(trace)
        assert first.queueing_latency_ms == second.queueing_latency_ms
        assert first.shard_stats == second.shard_stats


class TestJournals:
    def test_per_shard_journals_round_trip(self, tmp_path):
        trace = small_trace(n_devices=200)
        config = FleetConfig(n_shards=3, journal_dir=str(tmp_path))
        report = FleetService(config=config).run(trace)
        total = 0
        for stats in report.shard_stats:
            path = tmp_path / f"shard{stats['shard']:03d}.journal"
            assert path.exists()
            scan = scan_journal(str(path))
            assert scan.truncated_lines == 0
            assert scan.header["config"]["shard"] == stats["shard"]
            intents = [r for r in scan.records if r["type"] == "intent"]
            commits = [r for r in scan.records if r["type"] == "commit"]
            assert len(intents) == len(commits) == stats["decided"]
            # records_written counts the header line; scan.records doesn't.
            assert stats["journal_records"] == len(scan.records) + 1
            total += len(intents)
        assert total == report.decided
