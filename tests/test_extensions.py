"""Unit tests for the extension features: energy, placement, EDF."""

import random

import pytest

from conftest import make_task
from repro.core.edf import edf_schedulable, edf_utilization_bound
from repro.core.framework import RtMdm
from repro.core.placement import (
    choose_flash_residents,
    resident_segmentation,
)
from repro.dnn.quantization import INT8
from repro.dnn.zoo import build_model
from repro.hw.energy import (
    EnergyBreakdown,
    PowerModel,
    energy_of_run,
    energy_per_inference_mj,
    power_model_for,
)
from repro.hw.presets import get_platform
from repro.sched.policies import CpuPolicy
from repro.sched.simulator import SimConfig, simulate
from repro.sched.task import TaskSet

PLATFORM = get_platform("f746-qspi")


class TestEnergy:
    def _run(self, segs, period=10_000):
        task = make_task("t", segs, period=period)
        taskset = TaskSet.of([task])
        result = simulate(taskset, SimConfig(horizon=5 * period))
        return result, taskset

    def test_breakdown_components_sum(self):
        result, taskset = self._run([(100, 500)])
        breakdown = energy_of_run(result, taskset, PLATFORM)
        assert breakdown.total_mj == pytest.approx(
            breakdown.cpu_mj + breakdown.dma_mj + breakdown.ext_mj + breakdown.idle_mj
        )
        assert breakdown.cpu_mj > 0 and breakdown.idle_mj > 0

    def test_no_loads_means_no_ext_energy(self):
        result, taskset = self._run([(0, 500)])
        breakdown = energy_of_run(result, taskset, PLATFORM)
        assert breakdown.ext_mj == 0.0
        assert breakdown.dma_mj == 0.0

    def test_ext_energy_scales_with_bytes(self):
        # Same cycles, different declared bytes.
        from repro.sched.task import PeriodicTask, Segment

        small = PeriodicTask(
            "t", (Segment("s", 100, 500, load_bytes=1000),), 10_000, 10_000
        )
        big = PeriodicTask(
            "t", (Segment("s", 100, 500, load_bytes=4000),), 10_000, 10_000
        )
        ts_small, ts_big = TaskSet.of([small]), TaskSet.of([big])
        r_small = simulate(ts_small, SimConfig(horizon=50_000))
        r_big = simulate(ts_big, SimConfig(horizon=50_000))
        e_small = energy_of_run(r_small, ts_small, PLATFORM).ext_mj
        e_big = energy_of_run(r_big, ts_big, PLATFORM).ext_mj
        assert e_big == pytest.approx(4 * e_small)

    def test_xip_bytes_counted(self):
        from repro.sched.task import PeriodicTask, Segment

        xip = PeriodicTask(
            "t", (Segment("s", 0, 500, xip_bytes=2000),), 10_000, 10_000
        )
        ts = TaskSet.of([xip])
        result = simulate(ts, SimConfig(horizon=50_000))
        assert energy_of_run(result, ts, PLATFORM).ext_mj > 0

    def test_energy_per_inference_requires_jobs(self):
        task = make_task("t", [(0, 10)], period=100, phase=10**9)
        ts = TaskSet.of([task])
        result = simulate(ts, SimConfig(horizon=1000))
        with pytest.raises(ValueError, match="no completed jobs"):
            energy_per_inference_mj(result, ts, PLATFORM)

    def test_power_model_lookup(self):
        assert power_model_for(PLATFORM.mcu).cpu_active_mw == 100.0
        from repro.hw.mcu import McuSpec

        unknown = McuSpec(name="XYZ", clock_hz=10**8, sram_bytes=1024 * 64,
                          flash_bytes=0)
        assert power_model_for(unknown) == PowerModel()

    def test_invalid_power_model(self):
        with pytest.raises(ValueError):
            PowerModel(cpu_active_mw=-1)

    def test_average_power(self):
        breakdown = EnergyBreakdown(
            cpu_mj=5.0, dma_mj=1.0, ext_mj=1.0, idle_mj=3.0, duration_s=2.0
        )
        assert breakdown.average_mw == pytest.approx(5.0)


class TestPlacement:
    def test_knapsack_prefers_high_rate_models(self):
        small_hot = ("hot", build_model("ds-cnn"), 0.05)  # ~24 KiB / 50 ms
        big_cold = ("cold", build_model("autoencoder"), 10.0)  # 264 KiB / 10 s
        budget = 100 * 1024  # only the small one fits
        placement = choose_flash_residents([small_hot, big_cold], budget)
        assert placement.resident == ("hot",)
        assert placement.flash_used <= budget

    def test_everything_fits_everything_resident(self):
        candidates = [
            ("a", build_model("tinyconv"), 0.1),
            ("b", build_model("lenet5"), 0.1),
        ]
        placement = choose_flash_residents(candidates, 10**7)
        assert set(placement.resident) == {"a", "b"}

    def test_zero_budget(self):
        placement = choose_flash_residents(
            [("a", build_model("tinyconv"), 0.1)], 0
        )
        assert placement.resident == ()
        assert not placement.is_resident("a")

    def test_resident_segmentation_zero_loads(self):
        seg = resident_segmentation(build_model("ds-cnn"), PLATFORM)
        assert seg.resident
        segments = seg.segments()
        assert all(s.load_cycles == 0 and s.load_bytes == 0 for s in segments)
        assert seg.sram_need_bytes() == seg.model.peak_activation_bytes(INT8)

    def test_resident_segmentation_respects_cap(self):
        model = build_model("resnet8")
        cap = 2_000_000
        seg = resident_segmentation(model, PLATFORM, max_segment_compute=cap)
        floor = max(PLATFORM.compute_cycles(l, 1.0) for l in model.layers)
        assert max(s.compute_cycles for s in seg.segments()) <= max(cap, floor)
        assert seg.num_segments > 1

    def test_framework_flash_path_end_to_end(self):
        rt = RtMdm(PLATFORM, use_internal_flash=True)
        rt.add_task("kws", build_model("ds-cnn"), period_s=0.200)
        rt.add_task("anomaly", build_model("autoencoder"), period_s=0.500)
        config = rt.configure()
        assert config.feasible
        assert config.placement is not None
        assert config.placement.resident  # something got placed
        for name in config.placement.resident:
            assert config.segmented[name].resident
            plan = config.sram_plan.plan_for(name)
            assert plan.slots == ()
        result = config.simulate()
        assert result.no_misses

    def test_flash_never_hurts_admission(self):
        for use_flash in (False, True):
            rt = RtMdm(PLATFORM, use_internal_flash=use_flash)
            rt.add_task("kws", build_model("ds-cnn"), period_s=0.200)
            rt.add_task("vww", build_model("mobilenet-v1-0.25"), period_s=1.000)
            config = rt.configure()
            assert config.admitted

    def test_code_reserve_validation(self):
        with pytest.raises(ValueError):
            RtMdm(PLATFORM, code_reserve_bytes=-1)


class TestEdf:
    def _easy(self):
        return TaskSet.of([
            make_task("a", [(10, 100)], period=2000, priority=0),
            make_task("b", [(20, 200)], period=4000, priority=1),
        ])

    def test_easy_set_admitted(self):
        assert edf_schedulable(self._easy())

    def test_overload_rejected(self):
        heavy = TaskSet.of([
            make_task("a", [(0, 900)], period=1000, priority=0),
            make_task("b", [(0, 900)], period=1000, priority=1),
        ])
        assert not edf_schedulable(heavy)

    def test_utilization_bound_reflects_inflation(self):
        ts = self._easy()
        raw = ts.cpu_utilization + ts.dma_utilization
        assert edf_utilization_bound(ts) >= raw

    @pytest.mark.parametrize("seed", range(12))
    def test_admitted_sets_never_miss_under_edf(self, seed):
        rng = random.Random(seed)
        from conftest import random_taskset

        ts = random_taskset(rng, n_tasks=3, util_target=0.35)
        if not edf_schedulable(ts):
            pytest.skip("EDF demand test rejects this draw")
        result = simulate(
            ts,
            SimConfig(policy=CpuPolicy.EDF_NP,
                      horizon=20 * max(t.period for t in ts)),
        )
        assert result.no_misses
