"""Segmented periodic task model.

A task is a periodic release of a *job*; each job executes a fixed chain
of :class:`Segment` objects.  A segment stages ``load_cycles`` worth of
weights over the DMA, then computes for ``compute_cycles`` on the CPU.
The staging of segment *j* may overlap the compute of earlier segments,
subject to the task's buffer depth (``buffers``): segment *j*'s load may
start only once segment *j - buffers*'s compute has finished, because its
staging buffer is only free then.

All durations are integer CPU cycles (see :mod:`repro.hw`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Segment:
    """One schedulable unit: a weight load followed by a compute burst.

    Attributes:
        name: Segment name (usually derived from its layer range).
        load_cycles: DMA-busy cycles to stage this segment's weights.
            ``0`` means nothing to stage (e.g. parameter-free layers, or
            weights resident in internal flash).
        compute_cycles: CPU-busy cycles of the segment's kernels.  Must be
            positive — zero-compute layers are merged into neighbours by
            the segmentation pass.
        load_bytes: Bytes staged (bookkeeping for buffer planning).
        xip_bytes: Bytes the CPU fetches from external memory *during*
            compute (execute-in-place mode; 0 for staged execution).
            Only energy accounting reads this — timing-wise the fetch
            cost is already folded into ``compute_cycles``.
    """

    name: str
    load_cycles: int
    compute_cycles: int
    load_bytes: int = 0
    xip_bytes: int = 0

    def __post_init__(self) -> None:
        if self.load_cycles < 0:
            raise ValueError(f"segment {self.name}: load_cycles must be >= 0")
        if self.compute_cycles <= 0:
            raise ValueError(f"segment {self.name}: compute_cycles must be > 0")
        if self.load_bytes < 0:
            raise ValueError(f"segment {self.name}: load_bytes must be >= 0")
        if self.xip_bytes < 0:
            raise ValueError(f"segment {self.name}: xip_bytes must be >= 0")


@dataclass(frozen=True)
class PeriodicTask:
    """A periodic, segmented real-time task.

    Attributes:
        name: Task name (unique within a task set).
        segments: The job body, in execution order.
        period: Release period in cycles.
        deadline: Relative deadline in cycles (constrained: ``<= period``).
        priority: Fixed priority; **lower number = higher priority**.
        phase: Release offset of the first job in cycles.
        buffers: Weight staging buffer depth; ``2`` is double buffering
            (one segment's load can be in flight while the previous
            computes), ``1`` disables overlap.
    """

    name: str
    segments: Tuple[Segment, ...]
    period: int
    deadline: int
    priority: int = 0
    phase: int = 0
    buffers: int = 2

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError(f"task {self.name}: needs at least one segment")
        if self.period <= 0:
            raise ValueError(f"task {self.name}: period must be > 0")
        if not 0 < self.deadline <= self.period:
            raise ValueError(
                f"task {self.name}: deadline must be in (0, period], got "
                f"{self.deadline} with period {self.period}"
            )
        if self.phase < 0:
            raise ValueError(f"task {self.name}: phase must be >= 0")
        if self.buffers < 1:
            raise ValueError(f"task {self.name}: buffers must be >= 1")

    # ------------------------------------------------------------------
    # Aggregates used by the analyses
    # ------------------------------------------------------------------
    @property
    def num_segments(self) -> int:
        """Number of segments per job."""
        return len(self.segments)

    @property
    def total_compute(self) -> int:
        """Total CPU demand of one job."""
        return sum(s.compute_cycles for s in self.segments)

    @property
    def total_load(self) -> int:
        """Total DMA demand of one job."""
        return sum(s.load_cycles for s in self.segments)

    @property
    def max_segment_compute(self) -> int:
        """Longest non-preemptive CPU section (blocking others)."""
        return max(s.compute_cycles for s in self.segments)

    @property
    def max_segment_load(self) -> int:
        """Longest non-preemptive DMA transfer (blocking others)."""
        return max(s.load_cycles for s in self.segments)

    @property
    def cpu_utilization(self) -> float:
        """CPU-only utilization of the task."""
        return self.total_compute / self.period

    @property
    def dma_utilization(self) -> float:
        """DMA-only utilization of the task."""
        return self.total_load / self.period

    def with_priority(self, priority: int) -> "PeriodicTask":
        """A copy of this task with a different priority."""
        return PeriodicTask(
            name=self.name,
            segments=self.segments,
            period=self.period,
            deadline=self.deadline,
            priority=priority,
            phase=self.phase,
            buffers=self.buffers,
        )

    def with_phase(self, phase: int) -> "PeriodicTask":
        """A copy of this task with a different release offset."""
        return PeriodicTask(
            name=self.name,
            segments=self.segments,
            period=self.period,
            deadline=self.deadline,
            priority=self.priority,
            phase=phase,
            buffers=self.buffers,
        )


@dataclass(frozen=True)
class TaskSet:
    """An immutable collection of tasks with convenience aggregates."""

    tasks: Tuple[PeriodicTask, ...]

    def __post_init__(self) -> None:
        names = [t.name for t in self.tasks]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate task names in task set: {names}")

    @classmethod
    def of(cls, tasks: Iterable[PeriodicTask]) -> "TaskSet":
        """Build a task set from an iterable."""
        return cls(tuple(tasks))

    def __iter__(self):
        return iter(self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def __getitem__(self, index: int) -> PeriodicTask:
        return self.tasks[index]

    def by_name(self, name: str) -> PeriodicTask:
        """Look up a task by name."""
        for task in self.tasks:
            if task.name == name:
                return task
        raise KeyError(f"no task named {name!r}; have {[t.name for t in self.tasks]}")

    @property
    def cpu_utilization(self) -> float:
        """Total CPU utilization."""
        return sum(t.cpu_utilization for t in self.tasks)

    @property
    def dma_utilization(self) -> float:
        """Total DMA utilization."""
        return sum(t.dma_utilization for t in self.tasks)

    def hyperperiod(self, cap: Optional[int] = None) -> int:
        """Least common multiple of all periods.

        Guarded against pathological LCM blowup: raises
        :class:`repro.sched.rta.HyperperiodError` past the default cap
        (see :data:`repro.sched.rta.HYPERPERIOD_CAP`); pass ``cap`` to
        override.
        """
        from repro.sched import rta

        if cap is None:
            cap = rta.HYPERPERIOD_CAP
        return rta.hyperperiod([t.period for t in self.tasks], cap=cap)

    def sorted_by_priority(self) -> List[PeriodicTask]:
        """Tasks ordered from highest (lowest number) to lowest priority."""
        return sorted(self.tasks, key=lambda t: (t.priority, t.name))

    def with_priorities(self, priorities: Sequence[int]) -> "TaskSet":
        """A copy with per-task priorities replaced positionally."""
        if len(priorities) != len(self.tasks):
            raise ValueError(
                f"need {len(self.tasks)} priorities, got {len(priorities)}"
            )
        return TaskSet(
            tuple(t.with_priority(p) for t, p in zip(self.tasks, priorities))
        )

    def with_phases(self, phases: Sequence[int]) -> "TaskSet":
        """A copy with per-task release offsets replaced positionally."""
        if len(phases) != len(self.tasks):
            raise ValueError(f"need {len(self.tasks)} phases, got {len(phases)}")
        return TaskSet(tuple(t.with_phase(p) for t, p in zip(self.tasks, phases)))


def inflate_compute(taskset: TaskSet, factor: float) -> TaskSet:
    """Scale every segment's compute WCET by ``factor`` (rounded up).

    Models a uniform execution-time overrun across the whole task set —
    the workload the sensitivity-margin analysis
    (:func:`repro.core.analysis.sensitivity_margin`) feeds back into the
    RTA to find the largest overrun the admission guarantee absorbs.
    Loads, periods, and deadlines are untouched.
    """
    if factor < 1.0:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if factor == 1.0:
        return taskset
    tasks = []
    for task in taskset:
        segments = tuple(
            Segment(
                name=s.name,
                load_cycles=s.load_cycles,
                compute_cycles=math.ceil(s.compute_cycles * factor),
                load_bytes=s.load_bytes,
                xip_bytes=s.xip_bytes,
            )
            for s in task.segments
        )
        tasks.append(
            PeriodicTask(
                name=task.name,
                segments=segments,
                period=task.period,
                deadline=task.deadline,
                priority=task.priority,
                phase=task.phase,
                buffers=task.buffers,
            )
        )
    return TaskSet.of(tasks)


def inflate_loads(
    taskset: TaskSet, k_faults: int, fault_cost_cycles: int
) -> TaskSet:
    """Charge a per-job fault budget to every task's DMA demand.

    Models up to ``k_faults`` transfer faults per job, each costing at
    most ``fault_cost_cycles`` of extra DMA-busy time (retries, CRC
    rechecks, backoff slots, watchdog waits, or a REMAP re-fetch — see
    :func:`repro.robust.escalation.fault_overhead_cycles`).  The budget
    is charged twice over, to two different segments, because two
    different analysis terms must each absorb the full budget:

    * the *first* segment, whose load is serial in the pipelined
      latency (nothing overlaps the initial prefetch), so the isolated
      latency term grows by the full budget — a charge on an overlapped
      segment could hide entirely under compute;
    * the *largest* load segment, so the longest non-preemptive
      transfer (the lower-priority blocking term) grows by the full
      budget — the simulator charges a faulty transfer's whole retry
      loop as one non-preemptive DMA occupancy.

    When the largest load segment *is* the first one, a single charge
    covers both terms.  Per-window DMA demand grows by at least the
    budget either way, so analyses of the inflated set
    (:func:`repro.core.analysis.analyze`) are sound for the faulty
    system.  Tasks without any load are untouched (nothing to transfer,
    nothing to fault).
    """
    if k_faults < 0:
        raise ValueError(f"k_faults must be >= 0, got {k_faults}")
    if fault_cost_cycles < 0:
        raise ValueError(
            f"fault_cost_cycles must be >= 0, got {fault_cost_cycles}"
        )
    extra = k_faults * fault_cost_cycles
    if extra == 0:
        return taskset
    tasks = []
    for task in taskset:
        if task.total_load == 0:
            tasks.append(task)
            continue
        largest = max(
            range(len(task.segments)),
            key=lambda i: task.segments[i].load_cycles,
        )
        targets = {0, largest}
        segments = tuple(
            Segment(
                name=s.name,
                load_cycles=s.load_cycles + (extra if i in targets else 0),
                compute_cycles=s.compute_cycles,
                load_bytes=s.load_bytes,
                xip_bytes=s.xip_bytes,
            )
            for i, s in enumerate(task.segments)
        )
        tasks.append(
            PeriodicTask(
                name=task.name,
                segments=segments,
                period=task.period,
                deadline=task.deadline,
                priority=task.priority,
                phase=task.phase,
                buffers=task.buffers,
            )
        )
    return TaskSet.of(tasks)


def with_dispatch_overhead(taskset: TaskSet, overhead_cycles: int) -> TaskSet:
    """Charge a scheduler dispatch overhead to every segment.

    Real RTOS dispatchers cost a few hundred cycles per context switch
    (ready-queue update, DMA descriptor programming, cache effects).
    Inflating every segment's compute by ``overhead_cycles`` makes both
    the simulator and the analyses account for it consistently — run the
    analyses on the inflated set and the guarantees carry the overhead.
    """
    if overhead_cycles < 0:
        raise ValueError(f"overhead_cycles must be >= 0, got {overhead_cycles}")
    if overhead_cycles == 0:
        return taskset
    tasks = []
    for task in taskset:
        segments = tuple(
            Segment(
                name=s.name,
                load_cycles=s.load_cycles,
                compute_cycles=s.compute_cycles + overhead_cycles,
                load_bytes=s.load_bytes,
                xip_bytes=s.xip_bytes,
            )
            for s in task.segments
        )
        tasks.append(
            PeriodicTask(
                name=task.name,
                segments=segments,
                period=task.period,
                deadline=task.deadline,
                priority=task.priority,
                phase=task.phase,
                buffers=task.buffers,
            )
        )
    return TaskSet.of(tasks)
