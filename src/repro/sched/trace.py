"""Execution traces: what ran where, and ASCII Gantt rendering.

The simulator optionally records a :class:`Trace` of intervals (CPU
compute bursts, DMA transfers) and point events (releases, completions,
deadline misses).  Traces back the examples and the tightness experiment
and make simulator bugs visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One traced interval or point event.

    Attributes:
        time: Start time in cycles.
        duration: Interval length in cycles (0 for point events).
        resource: ``"cpu"``, ``"dma"`` or ``""`` for point events.
        kind: ``compute | load | release | complete | miss | preempt``,
            plus the overload events ``abort | skip | degrade | recover``
            (see :mod:`repro.robust.overload`) and the fault-recovery
            events ``fault | remap | xip-fallback | quarantine`` (see
            :mod:`repro.robust.escalation` / :mod:`repro.robust.recovery`).
        task: Owning task name.
        job: Job index within the task (0-based).
        segment: Segment index within the job, or -1.
    """

    time: int
    duration: int
    resource: str
    kind: str
    task: str
    job: int
    segment: int = -1

    @property
    def end(self) -> int:
        """End time of the interval (== time for point events)."""
        return self.time + self.duration


@dataclass
class Trace:
    """An append-only recording of simulator activity."""

    events: List[TraceEvent] = field(default_factory=list)

    def add(self, event: TraceEvent) -> None:
        """Append one event."""
        self.events.append(event)

    def intervals(self, resource: str) -> List[TraceEvent]:
        """All busy intervals on ``resource``, in time order."""
        selected = [e for e in self.events if e.resource == resource and e.duration > 0]
        return sorted(selected, key=lambda e: e.time)

    def points(self, kind: str) -> List[TraceEvent]:
        """All point events of ``kind``, in time order."""
        selected = [e for e in self.events if e.kind == kind]
        return sorted(selected, key=lambda e: e.time)

    def busy_cycles(self, resource: str) -> int:
        """Total busy time on ``resource``."""
        return sum(e.duration for e in self.intervals(resource))

    def verify_no_overlap(self) -> None:
        """Assert that no two intervals overlap on the same resource.

        The simulator must serialize each resource; this is the core
        sanity invariant used by the property tests.
        """
        for resource in ("cpu", "dma"):
            last_end = 0
            for event in self.intervals(resource):
                if event.time < last_end:
                    raise AssertionError(
                        f"overlapping {resource} intervals at t={event.time} "
                        f"(previous interval ends at {last_end}): {event}"
                    )
                last_end = event.end

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def gantt(
        self,
        until: Optional[int] = None,
        width: int = 100,
        task_order: Optional[List[str]] = None,
    ) -> str:
        """Render an ASCII Gantt chart with one CPU and one DMA row per task.

        Each column is a bucket of ``until / width`` cycles; a column
        shows the task that occupied most of the bucket (``.`` = idle).
        """
        horizon = until or max((e.end for e in self.events), default=0)
        if horizon <= 0:
            return "(empty trace)"
        bucket = max(1, horizon // width)
        tasks = task_order or sorted({e.task for e in self.events if e.task})
        symbols = {name: chr(ord("A") + i % 26) for i, name in enumerate(tasks)}
        lines = [f"cycles/column: {bucket}"]
        for resource in ("cpu", "dma"):
            occupancy: Dict[int, Dict[str, int]] = {}
            for event in self.intervals(resource):
                start, end = event.time, min(event.end, horizon)
                col = start // bucket
                while col * bucket < end:
                    lo = max(start, col * bucket)
                    hi = min(end, (col + 1) * bucket)
                    occupancy.setdefault(col, {}).setdefault(event.task, 0)
                    occupancy[col][event.task] += hi - lo
                    col += 1
            row = []
            for col in range(width):
                if col not in occupancy:
                    row.append(".")
                else:
                    winner = max(occupancy[col].items(), key=lambda kv: kv[1])[0]
                    row.append(symbols.get(winner, "?"))
            lines.append(f"{resource:>4s} |{''.join(row)}|")
        legend = "  ".join(f"{symbols[name]}={name}" for name in tasks)
        lines.append(f"     {legend}")
        return "\n".join(lines)
