"""Shared machinery for the benchmark harness.

Every reconstructed table/figure (DESIGN.md section 4) has one benchmark
module.  Each benchmark runs its experiment driver exactly once under
pytest-benchmark timing (the drivers are deterministic, so repeated
rounds would only re-measure the same computation) and prints the
rendered table — the rows/series the paper's table or figure reports.

Run with::

    pytest benchmarks/ --benchmark-only -s

Pass a larger scale for paper-quality curves::

    RTMDM_BENCH_SCALE=4 pytest benchmarks/ --benchmark-only -s

Parallel experiment drivers pick up ``REPRO_JOBS`` (or an explicit
``jobs=`` in the benchmark module); results are bit-identical at any
worker count, so timing runs can use every core.

Besides the per-experiment ``benchmark_results/EXP-*.txt`` tables, a
session summary lands in ``benchmark_results/BENCH_suite.json``: one
record per experiment with wall-clock seconds, the effective ``jobs``
and ``scale``, and the plan-cache hit/miss counters observed during that
experiment.  CI uploads this file as an artifact, so the suite's
performance trajectory is tracked across commits.
"""

import datetime
import json
import os
import pathlib
import platform as _platform
import subprocess
import sys
import time

from repro.core import segcache
from repro.eval.experiments import run_experiment
from repro.eval.parallel import resolve_jobs
from repro.eval.reporting import render

#: Rendered tables are also written here (one file per experiment), so
#: the rows survive pytest's output capturing.
RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmark_results"

#: Per-experiment records accumulated over the session, in run order.
_SUITE_RECORDS = []

#: Schema tag for individual suite records (the provenance stamp).
RECORD_SCHEMA = "rtmdm-bench-record/1"

_PROVENANCE = None


def _git_sha():
    """The current commit sha, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def provenance():
    """One provenance stamp per session: schema, UTC timestamp, git sha.

    Stamped onto every suite record so a ``BENCH_suite.json`` merged
    across sessions still attributes each measurement to the commit and
    time that produced it.
    """
    global _PROVENANCE
    if _PROVENANCE is None:
        _PROVENANCE = {
            "schema": RECORD_SCHEMA,
            "timestamp": datetime.datetime.now(datetime.timezone.utc)
            .isoformat(timespec="seconds"),
            "git_sha": _git_sha(),
        }
    return _PROVENANCE


def bench_experiment(benchmark, exp_id, **kwargs):
    """Run one experiment driver under the benchmark, print its table,
    and persist it under ``benchmark_results/``."""
    scale = float(os.environ.get("RTMDM_BENCH_SCALE", "1.0"))
    kwargs.setdefault("scale", scale)
    before = segcache.snapshot()
    start = time.perf_counter()
    result = benchmark.pedantic(
        lambda: run_experiment(exp_id, **kwargs), rounds=1, iterations=1
    )
    seconds = time.perf_counter() - start
    record = {
        "exp_id": exp_id,
        "seconds": round(seconds, 3),
        "jobs": resolve_jobs(kwargs.get("jobs")),
        "scale": kwargs.get("scale", scale),
        "plan_cache": segcache.delta_since(before),
        "provenance": provenance(),
    }
    # Driver-supplied extras (e.g. EXP-D1's admission-decision latency
    # stats, which are wall-clock and therefore live outside the rows).
    record.update(result.meta)
    _SUITE_RECORDS.append(record)
    text = render(result)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{exp_id}.txt").write_text(text + "\n", encoding="utf-8")
    return result


def _merge_records(existing, fresh):
    """Combine prior suite records with this session's, one per exp_id.

    A partial run (``pytest benchmarks/test_f7_miss_ratio.py``) used to
    overwrite the whole suite file, losing every other experiment's
    timing.  Instead, records from previous sessions survive unless this
    session re-ran the same experiment — the latest measurement wins.
    Kept records stay in their original order; newly-seen experiments
    append in run order.
    """
    latest = {r["exp_id"]: r for r in fresh}
    merged = []
    for record in existing:
        exp_id = record.get("exp_id")
        merged.append(latest.pop(exp_id, record))
    for record in fresh:
        if record["exp_id"] in latest:
            merged.append(latest.pop(record["exp_id"]))
    return merged


def pytest_sessionfinish(session, exitstatus):
    """Write the cross-session suite summary (``BENCH_suite.json``).

    Cache counters come from the in-driver deltas recorded by
    :func:`bench_experiment`; with worker processes the drivers merge
    each worker's counters back, so the numbers are exact in both serial
    and parallel runs.  Records merge into any existing suite file by
    ``exp_id`` (latest run wins), so partial benchmark runs refresh only
    the experiments they measured.
    """
    if not _SUITE_RECORDS:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_suite.json"
    existing = []
    try:
        existing = json.loads(path.read_text(encoding="utf-8"))["experiments"]
    except (OSError, ValueError, KeyError):
        pass  # first run, or a corrupt/legacy file: start fresh
    records = _merge_records(existing, _SUITE_RECORDS)
    suite = {
        "schema": "rtmdm-bench-suite/1",
        "python": sys.version.split()[0],
        "machine": _platform.machine(),
        "cache_enabled": segcache.is_enabled(),
        "total_seconds": round(sum(r["seconds"] for r in records), 3),
        "experiments": records,
    }
    path.write_text(json.dumps(suite, indent=2) + "\n", encoding="utf-8")
    print(f"\nbench suite summary -> {path} ({len(_SUITE_RECORDS)} updated, "
          f"{len(records)} total)")
