"""Unit tests for platform presets."""

import pytest

from repro.hw.presets import (
    EXTERNAL_MEMORIES,
    MCUS,
    PLATFORMS,
    get_external_memory,
    get_mcu,
    get_platform,
)


class TestPresets:
    def test_all_platforms_are_consistent(self):
        for key, platform in PLATFORMS.items():
            assert platform.mcu.clock_hz > 0
            assert platform.usable_sram_bytes > 0
            assert platform.memory.read_bandwidth_bps > 0
            # Loading 1 KiB must cost something but less than 10 ms.
            cycles = platform.load_cycles(1024)
            assert 0 < platform.mcu.cycles_to_ms(cycles) < 10

    def test_default_platform_exists(self):
        assert get_platform().name == PLATFORMS["f746-qspi"].name

    def test_lookup_helpers(self):
        assert get_mcu("stm32f746").name == "STM32F746"
        assert get_external_memory("qspi-nor").name == "QSPI-NOR"
        assert get_platform("h743-octal").mcu.name == "STM32H743"

    @pytest.mark.parametrize("fn,key", [
        (get_mcu, "z80"),
        (get_external_memory, "floppy"),
        (get_platform, "pdp11"),
    ])
    def test_unknown_keys_list_options(self, fn, key):
        with pytest.raises(KeyError, match="available"):
            fn(key)

    def test_qspi_is_read_only(self):
        assert not EXTERNAL_MEMORIES["qspi-nor"].writable

    def test_psram_is_writable(self):
        assert EXTERNAL_MEMORIES["octal-psram"].writable

    def test_mcu_catalog_covers_sram_range(self):
        srams = sorted(m.sram_bytes for m in MCUS.values())
        assert srams[0] <= 128 * 1024
        assert srams[-1] >= 512 * 1024

    def test_bandwidth_ordering(self):
        # The presets must span slow SPI to fast SDRAM for EXP-F6.
        bws = [m.read_bandwidth_bps for m in EXTERNAL_MEMORIES.values()]
        assert max(bws) / min(bws) > 10
