"""RT-MDM: real-time scheduling for multi-DNN inference on MCUs with
external memory — a from-scratch reproduction (DAC 2024).

The public API in one breath::

    from repro import RtMdm, build_model, get_platform

    rt = RtMdm(get_platform("f746-qspi"))
    rt.add_task("kws", build_model("ds-cnn"), period_s=0.200)
    rt.add_task("vww", build_model("mobilenet-v1-0.25"), period_s=1.000)
    config = rt.configure()          # segment, plan SRAM, assign priorities
    assert config.admitted           # offline schedulability guarantee
    result = config.simulate()       # discrete-event validation
    assert result.no_misses

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.hw` — MCU / external memory / DMA / timing models.
* :mod:`repro.dnn` — layer algebra, model zoo, quantization, splitting.
* :mod:`repro.sched` — segmented task model, two-resource simulator, RTA.
* :mod:`repro.core` — RT-MDM: segmentation, buffers, analyses, framework.
* :mod:`repro.baselines` — sequential / single-buffer / NP-whole / XIP.
* :mod:`repro.workload` — synthetic task sets and named scenarios.
* :mod:`repro.eval` — experiment drivers for every table and figure.
"""

from repro.core.framework import Configuration, RtMdm, TaskSpec
from repro.dnn.quantization import FLOAT32, INT8
from repro.dnn.zoo import build_model, list_models
from repro.hw.presets import get_platform

_NUMPY_FLOOR = (1, 22)


def _require_numpy() -> None:
    """Fail fast, with a clear message, when numpy is absent or too old.

    The vectorized RTA engine (:mod:`repro.sched.vecrta`) needs numpy's
    exact int64 array semantics, introduced well before 1.22; the floor
    simply pins the oldest version the engine is tested against.
    ``REPRO_VEC_RTA=0`` disables the engine at runtime but numpy remains
    a hard dependency — analysis results must not silently depend on
    which optional packages happen to be importable.
    """
    floor = ".".join(str(part) for part in _NUMPY_FLOOR)
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - depends on env
        raise ImportError(
            f"repro requires numpy >= {floor} for the vectorized RTA engine "
            "(repro.sched.vecrta); install it with "
            f"`pip install 'numpy>={floor}'`."
        ) from exc
    try:
        version = tuple(
            int(part) for part in numpy.__version__.split(".")[:2]
        )
    except ValueError:  # pragma: no cover - pre-release version strings
        return
    if version < _NUMPY_FLOOR:  # pragma: no cover - depends on env
        raise ImportError(
            f"repro requires numpy >= {floor}, found {numpy.__version__}; "
            f"upgrade with `pip install 'numpy>={floor}'`."
        )


_require_numpy()

__version__ = "0.1.0"

__all__ = [
    "RtMdm",
    "Configuration",
    "TaskSpec",
    "build_model",
    "list_models",
    "get_platform",
    "INT8",
    "FLOAT32",
    "__version__",
]
