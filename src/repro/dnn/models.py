"""Model graphs: layer chains with optional residual skip connections.

A :class:`Model` is a validated sequence of layers in execution order.
Residual topologies (ResNet-8, MobileNet-v2 style) are expressed with
``skips``: the output of layer *p* is kept alive and consumed as the
second operand of an :class:`~repro.dnn.layers.Add` layer *c* later in the
chain.  This is sufficient for every TinyML topology in the zoo and keeps
the activation-liveness analysis exact and simple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.dnn.layers import Add, Layer
from repro.dnn.quantization import Quantization


@dataclass(frozen=True)
class Model:
    """A DNN model as an ordered chain of layers.

    Attributes:
        name: Model name for reports.
        layers: Layers in execution order; layer ``i+1`` consumes the
            output of layer ``i``.
        skips: ``(producer, consumer)`` index pairs: the output of
            ``layers[producer]`` is the second operand of the ``Add``
            layer at ``layers[consumer]``.
    """

    name: str
    layers: Tuple[Layer, ...]
    skips: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError(f"model {self.name!r} has no layers")
        for i in range(1, len(self.layers)):
            prev, cur = self.layers[i - 1], self.layers[i]
            if cur.input_shape != prev.output_shape:
                raise ValueError(
                    f"model {self.name!r}: layer {i} ({cur.name}) expects input "
                    f"{cur.input_shape} but layer {i - 1} ({prev.name}) produces "
                    f"{prev.output_shape}"
                )
        for producer, consumer in self.skips:
            if not 0 <= producer < consumer < len(self.layers):
                raise ValueError(
                    f"model {self.name!r}: bad skip ({producer}, {consumer})"
                )
            add = self.layers[consumer]
            if not isinstance(add, Add):
                raise ValueError(
                    f"model {self.name!r}: skip consumer {consumer} is "
                    f"{add.kind}, expected add"
                )
            if self.layers[producer].output_shape != add.input_shape:
                raise ValueError(
                    f"model {self.name!r}: skip ({producer}, {consumer}) shape "
                    f"mismatch {self.layers[producer].output_shape} vs {add.input_shape}"
                )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def sequential(
        cls,
        name: str,
        layers: Iterable[Layer],
        skips: Sequence[Tuple[int, int]] = (),
    ) -> "Model":
        """Build a model from an iterable of layers."""
        return cls(name=name, layers=tuple(layers), skips=tuple(skips))

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        """Number of layers in the chain."""
        return len(self.layers)

    @property
    def total_macs(self) -> int:
        """Total multiply-accumulates of one inference."""
        return sum(layer.macs for layer in self.layers)

    @property
    def total_params(self) -> int:
        """Total weight values (excluding biases)."""
        return sum(layer.param_count for layer in self.layers)

    @property
    def input_shape(self) -> Tuple[int, ...]:
        """Shape of the model input tensor."""
        return self.layers[0].input_shape

    @property
    def output_shape(self) -> Tuple[int, ...]:
        """Shape of the model output tensor."""
        return self.layers[-1].output_shape

    def total_param_bytes(self, quant: Quantization) -> int:
        """Bytes of weights + biases under ``quant``."""
        return sum(layer.param_bytes(quant) for layer in self.layers)

    # ------------------------------------------------------------------
    # Activation liveness
    # ------------------------------------------------------------------
    def _live_skip_elements(self, layer_index: int) -> int:
        """Activation values of skip tensors live *during* ``layer_index``.

        A skip tensor produced by layer ``p`` for consumer ``c`` is live
        while executing layers ``p+1 .. c`` (at ``c`` it is an operand).
        """
        total = 0
        for producer, consumer in self.skips:
            if producer < layer_index <= consumer:
                total += self.layers[producer].output_elements
        return total

    def layer_working_elements(self, layer_index: int) -> int:
        """Activation values live while executing layer ``layer_index``.

        Input and output buffers coexist (no safe in-place for conv),
        plus any skip tensors held across this point.
        """
        layer = self.layers[layer_index]
        return (
            layer.input_elements
            + layer.output_elements
            + layer.extra_live_elements
            + self._live_skip_elements(layer_index)
        )

    def peak_activation_elements(self) -> int:
        """Maximum activation working set over all layers."""
        return max(self.layer_working_elements(i) for i in range(self.num_layers))

    def peak_activation_bytes(self, quant: Quantization) -> int:
        """Peak activation working set in bytes under ``quant``."""
        return quant.activation_nbytes(self.peak_activation_elements())

    def summary_rows(self, quant: Quantization) -> List[dict]:
        """Per-layer rows for reports: kind, shapes, MACs, bytes."""
        rows = []
        for i, layer in enumerate(self.layers):
            rows.append(
                {
                    "index": i,
                    "name": layer.name,
                    "kind": layer.kind,
                    "output_shape": layer.output_shape,
                    "macs": layer.macs,
                    "param_bytes": layer.param_bytes(quant),
                    "working_act_bytes": quant.activation_nbytes(
                        self.layer_working_elements(i)
                    ),
                }
            )
        return rows


def refine_model(
    model: Model,
    quant: Quantization,
    max_chunk_bytes: int,
    max_chunk_macs: int = 0,
) -> Model:
    """Split oversized layers into filter groups.

    This is the granularity-normalization pass RT-MDM runs before
    segmentation, for two reasons:

    * **staging**: no staged chunk may exceed ``max_chunk_bytes``, else a
      single huge layer (e.g. a 640x128 dense) would dictate the staging
      buffer size;
    * **preemption granularity**: no slice should compute longer than the
      ``max_chunk_macs`` cap, else a single long kernel becomes a
      non-preemptive section that blocks urgent tasks (pass 0 to disable).

    Skip-connection indices are remapped (a split producer is represented
    by its final slice, which emits the full output tensor).  Splitting
    is capped at the layer's filter count; an unsplittable oversize layer
    passes through (the analyses then see the long section honestly).

    Args:
        model: The source model.
        quant: Quantization (determines per-layer staged bytes).
        max_chunk_bytes: Upper bound on any single slice's staged bytes.
        max_chunk_macs: Upper bound on any single slice's MACs (0 = off).
    """
    from repro.dnn.layers import SPLITTABLE_KINDS, split_layer

    if max_chunk_bytes <= 0:
        raise ValueError(f"max_chunk_bytes must be positive, got {max_chunk_bytes}")
    if max_chunk_macs < 0:
        raise ValueError(f"max_chunk_macs must be non-negative, got {max_chunk_macs}")
    new_layers: List[Layer] = []
    index_map: dict = {}
    for old_index, layer in enumerate(model.layers):
        parts = 1
        if layer.kind in SPLITTABLE_KINDS:
            parts = -(-layer.param_bytes(quant) // max_chunk_bytes)  # ceil
            if max_chunk_macs:
                parts = max(parts, -(-layer.macs // max_chunk_macs))
        if parts > 1:
            slices = split_layer(layer, parts)
        else:
            slices = [layer]
        new_layers.extend(slices)
        index_map[old_index] = len(new_layers) - 1  # final slice emits output
    new_skips = tuple(
        (index_map[producer], index_map[consumer]) for producer, consumer in model.skips
    )
    return Model(name=model.name, layers=tuple(new_layers), skips=new_skips)
