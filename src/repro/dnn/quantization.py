"""Quantization schemes: element widths for weights and activations.

Only byte widths matter for scheduling; scale/zero-point bookkeeping is
irrelevant to timing and is not modelled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Quantization:
    """Element widths of a deployment format.

    Attributes:
        name: Scheme name for reports.
        weight_bytes: Bytes per weight value.
        activation_bytes: Bytes per activation value.
        bias_bytes: Bytes per bias value (int8 schemes keep int32 biases).
    """

    name: str
    weight_bytes: float
    activation_bytes: float
    bias_bytes: float = 4.0

    def __post_init__(self) -> None:
        if self.weight_bytes <= 0 or self.activation_bytes <= 0 or self.bias_bytes <= 0:
            raise ValueError(f"element widths must be positive in {self}")

    def weight_nbytes(self, count: int) -> int:
        """Bytes occupied by ``count`` weight values."""
        return int(math.ceil(count * self.weight_bytes))

    def activation_nbytes(self, count: int) -> int:
        """Bytes occupied by ``count`` activation values."""
        return int(math.ceil(count * self.activation_bytes))

    def bias_nbytes(self, count: int) -> int:
        """Bytes occupied by ``count`` bias values."""
        return int(math.ceil(count * self.bias_bytes))


#: Standard post-training int8 quantization (CMSIS-NN / TFLite-Micro).
INT8 = Quantization(name="int8", weight_bytes=1.0, activation_bytes=1.0, bias_bytes=4.0)

#: Full-precision float deployment (rare on MCUs, used as a reference).
FLOAT32 = Quantization(name="float32", weight_bytes=4.0, activation_bytes=4.0, bias_bytes=4.0)
