"""Vectorized response-time analysis: numpy-batched fixpoint iteration.

The scalar analyses in :mod:`repro.core.analysis` and
:mod:`repro.sched.rta` solve one fixpoint at a time; a sweep solves
hundreds of thousands.  This module packs *many* fixpoint problems into
struct-of-arrays (SoA) buffers and iterates the recurrences for all of
them simultaneously per array step, with a per-row convergence mask.

Layout
    A :class:`ChainBatch` holds jitter-chained analysis cascades — one
    chain per (task set, analysis flavor).  Rows at the same priority
    *level* share their interferer count, so each level is one dense
    ``(rows, level)`` problem: interference ``I``, periods ``T``, and
    chained jitters ``J`` as ``int64`` matrices, plus ``base = own +
    blocking`` and ``cap`` vectors.  The solver iterates

        ``w <- base + sum_j ceil((w + J_j) / T_j) * I_j``

    over the whole matrix, masking out rows that converged (``demand ==
    w``) or exceeded their cap (``demand > cap`` → the scalar's ``None``
    verdict).  Level ``k + 1`` packs only the chains still alive, with
    jitters chained from level ``k``'s bounds exactly as the scalar does.

Exactness
    The analysis-engine path mirrors ``core.analysis._fixpoint``: pure
    ``int64`` arithmetic with integer ceil division ``-((w + J) // -T)``
    — no float drift.  The :func:`fp_wcrt_batch` path mirrors
    ``sched.rta``'s *float* ceil/floor semantics (``int(math.ceil((w +
    J) / T))``): all quantities are proven ``< 2**52`` before packing,
    where int64→float64 conversion is exact and IEEE division matches
    CPython's correctly-rounded big-int ``/``, so results are
    bit-identical to the scalar oracle.

Stand-down
    The engine refuses problems it cannot solve exactly — demand
    ceilings near int64 range, float-exactness violations, non-positive
    periods — by raising :class:`StandDown`; callers fall back to the
    scalar oracle for those cases (counted in ``vec_stand_downs``).
    ``REPRO_VEC_RTA=0`` is the global kill switch: every entry point
    then delegates wholesale to the scalar path.

Telemetry rides the existing fixpoint-counter protocol
(:func:`repro.sched.rta.fixpoint_counters`): ``vec_batches`` array
solves, ``vec_rows`` rows solved inside them, ``vec_stand_downs``
scalar fallbacks.  Wall-clock split between packing, array iteration,
and unpacking accumulates in :func:`profile` for ``rtmdm exp
--profile``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised only on minimal installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.sched import rta

#: Environment kill switch: set to ``0`` to force the scalar oracle.
ENV_VAR = "REPRO_VEC_RTA"

#: Demand ceilings at or above this stand down (int64 headroom).
_INT64_LIMIT = 1 << 62

#: Float-semantics path: every intermediate must stay below this so
#: int64→float64 conversion is exact and division single-rounds.
_FLOAT_EXACT = 1 << 52

#: Hard iteration guard; the per-chain demand ceilings make genuine
#: divergence hit the cap first, so tripping this is a logic error.
_ITER_GUARD = 1_000_000


class StandDown(Exception):
    """The vector engine cannot solve this problem exactly; use scalar."""


def available() -> bool:
    """Whether numpy is importable (the engine's only dependency)."""
    return _np is not None


def enabled() -> bool:
    """Whether the vectorized path is active (numpy + kill switch)."""
    return _np is not None and os.environ.get(ENV_VAR, "1").strip() != "0"


# ----------------------------------------------------------------------
# Telemetry: counters ride the rta fixpoint protocol; times accumulate
# locally for the CLI profile report.
# ----------------------------------------------------------------------

_PROFILE = {"pack_s": 0.0, "solve_s": 0.0, "unpack_s": 0.0}


def profile() -> Dict[str, float]:
    """Accumulated pack/solve/unpack wall-clock split (seconds)."""
    return dict(_PROFILE)


def reset_profile() -> None:
    """Zero the pack/solve/unpack accumulators."""
    for key in _PROFILE:
        _PROFILE[key] = 0.0


def _count_batch(n_rows: int) -> None:
    rta._fixpoint_counters["vec_batches"] += 1
    rta._fixpoint_counters["vec_rows"] += n_rows


def _count_stand_down() -> None:
    rta._fixpoint_counters["vec_stand_downs"] += 1


# ----------------------------------------------------------------------
# Core masked solver (exact integer semantics)
# ----------------------------------------------------------------------


def _solve_rows_exact(base, caps, inter, periods, jitters):
    """Least fixpoints of ``w = base + sum ceil((w + J)/T) * I`` per row.

    All arrays ``int64``; ``inter``/``periods``/``jitters`` are ``(R,
    k)`` with ``k >= 1``.  Returns ``(w, ok)``: rows with ``ok`` False
    exceeded their cap (the scalar returns ``None`` there).  Integer
    ceil division throughout — no float drift.
    """
    w = base.copy()
    n_rows = int(base.shape[0])
    ok = _np.ones(n_rows, dtype=bool)
    active = _np.ones(n_rows, dtype=bool)
    _count_batch(n_rows)
    for _ in range(_ITER_GUARD):
        q = -((w[:, None] + jitters) // -periods)
        demand = base + (q * inter).sum(axis=1)
        over = active & (demand > caps)
        conv = active & ~over & (demand == w)
        ok &= ~over
        active &= ~(over | conv)
        if not active.any():
            return w, ok
        w = _np.where(active, demand, w)
    raise StandDown("fixpoint iteration guard tripped")


# ----------------------------------------------------------------------
# Chain batch: jitter-chained cascades in struct-of-arrays form
# ----------------------------------------------------------------------


class _Chain:
    """One analysis cascade (all levels of one task set, one flavor)."""

    __slots__ = (
        "kind", "n", "periods", "deadlines",
        "own", "blocking", "inter",                      # simple
        "tl", "tc", "lat", "bl_l", "bl_c", "bl_both",    # holistic
        "gated", "both_inter",
        "jit", "dma_j", "cpu_j", "both_j",
        "bounds", "dead",
    )

    def __init__(self, kind: str, n: int, periods, deadlines) -> None:
        self.kind = kind
        self.n = n
        self.periods = periods
        self.deadlines = deadlines
        self.jit: List[int] = []
        self.dma_j: List[int] = []
        self.cpu_j: List[int] = []
        self.both_j: List[int] = []
        self.bounds: List[Optional[int]] = []
        self.dead = False


def _check_chain(own_max, blocking_max, inter, periods, deadlines) -> None:
    """Reject chains the int64 solver cannot handle exactly."""
    if not deadlines:
        return
    if min(periods) <= 0:
        raise StandDown("non-positive period")
    if own_max < 0 or blocking_max < 0 or min(inter, default=0) < 0:
        raise StandDown("negative demand term")
    if min(deadlines) <= 0:
        raise StandDown("non-positive deadline")
    # Iterates start at base <= cap and jitters are bounded by earlier
    # bounds (<= max deadline), so every computed demand is at most:
    d_max = max(deadlines)
    ceiling = own_max + blocking_max
    for i, t in zip(inter, periods):
        ceiling += ((2 * d_max) // t + 1) * i
    if ceiling >= _INT64_LIMIT:
        raise StandDown("demand ceiling exceeds int64 headroom")


class ChainBatch:
    """Many jitter-chained fixpoint cascades, solved level-by-level.

    Build chains with :meth:`add_simple` (single-resource cascades:
    oblivious/overlap flavors) and :meth:`add_holistic` (two-stage
    DMA+CPU decomposition with per-level gating fallback), then call
    :meth:`solve` once and read each chain's bounds back with
    :meth:`bounds`.  Results are bit-identical to running the scalar
    recurrences per chain.
    """

    def __init__(self) -> None:
        self._chains: List[_Chain] = []
        self._solved = False

    def add_simple(self, own, blocking, inter, periods, deadlines, check=True) -> int:
        """Add one single-resource cascade; returns its handle.

        All arguments are equal-length sequences of Python ints ordered
        highest priority first: per-level own demand, blocking,
        interference contribution, period, and deadline (the cap).
        ``check=False`` skips the per-chain magnitude screen — only for
        callers that ran an equivalent screen over the whole case.
        """
        own, blocking, inter = list(own), list(blocking), list(inter)
        periods, deadlines = list(periods), list(deadlines)
        if check:
            _check_chain(
                max(own, default=0), max(blocking, default=0),
                inter, periods, deadlines,
            )
        chain = _Chain("s", len(own), periods, deadlines)
        chain.own, chain.blocking, chain.inter = own, blocking, inter
        self._chains.append(chain)
        return len(self._chains) - 1

    def add_holistic(
        self, total_l, total_c, latency, block_l, block_c, block_both,
        gated, periods, deadlines, check=True,
    ) -> int:
        """Add one two-stage cascade; returns its handle.

        Buffered levels (``gated[k]`` False) solve DMA and CPU stage
        fixpoints and sum them; gated levels solve a single combined
        fixpoint on the pipeline latency, exactly as
        ``core.analysis._analyze_holistic`` does.  ``check`` as in
        :meth:`add_simple`.
        """
        total_l, total_c, latency = list(total_l), list(total_c), list(latency)
        block_l, block_c, block_both = list(block_l), list(block_c), list(block_both)
        gated = list(gated)
        periods, deadlines = list(periods), list(deadlines)
        if check:
            _check_chain(
                max((max(l, c, y) for l, c, y in zip(total_l, total_c, latency)), default=0),
                max((max(a, b, c) for a, b, c in zip(block_l, block_c, block_both)), default=0),
                [l + c for l, c in zip(total_l, total_c)],
                periods, deadlines,
            )
        chain = _Chain("h", len(total_l), periods, deadlines)
        chain.tl, chain.tc, chain.lat = total_l, total_c, latency
        chain.bl_l, chain.bl_c, chain.bl_both = block_l, block_c, block_both
        chain.gated = gated
        chain.both_inter = [l + c for l, c in zip(total_l, total_c)]
        self._chains.append(chain)
        return len(self._chains) - 1

    def solve(self, cache: Optional[rta.FixpointCache] = None) -> None:
        """Solve every chain; with ``cache``, exact-memoize rows.

        Cache keys are identical to the scalar ``_fixpoint`` keys, so a
        cache shared with the scalar path hits across both engines.
        """
        if self._solved:
            raise RuntimeError("ChainBatch.solve() may only run once")
        self._solved = True
        start = time.perf_counter()
        n_levels = max((c.n for c in self._chains), default=0)
        for level in range(n_levels):
            rows: List[Tuple[_Chain, str]] = []
            for chain in self._chains:
                if chain.dead or chain.n <= level:
                    continue
                if chain.kind == "s":
                    rows.append((chain, "s"))
                elif chain.gated[level]:
                    rows.append((chain, "g"))
                else:
                    rows.append((chain, "rl"))
                    rows.append((chain, "rc"))
            if rows:
                self._solve_level(level, rows, cache)
        _PROFILE["solve_s"] += time.perf_counter() - start

    def bounds(self, handle: int) -> List[Optional[int]]:
        """Per-level bounds of one chain, ``None``-padded after a kill."""
        if not self._solved:
            raise RuntimeError("call solve() before bounds()")
        chain = self._chains[handle]
        out = list(chain.bounds)
        out.extend([None] * (chain.n - len(out)))
        return out

    # -- internals -----------------------------------------------------

    @staticmethod
    def _row_params(chain: _Chain, part: str, k: int):
        """(own, blocking, interference[:k], jitters) for one row."""
        if part == "s":
            return chain.own[k], chain.blocking[k], chain.inter[:k], chain.jit
        if part == "rl":
            return chain.tl[k], chain.bl_l[k], chain.tl[:k], chain.dma_j
        if part == "rc":
            return chain.tc[k], chain.bl_c[k], chain.tc[:k], chain.cpu_j
        return chain.lat[k], chain.bl_both[k], chain.both_inter[:k], chain.both_j

    def _solve_level(self, level, rows, cache) -> None:
        values: List[Optional[int]] = [None] * len(rows)
        keys: List[Any] = [None] * len(rows)
        pending = []
        for r, (chain, part) in enumerate(rows):
            own, blocking, inter, jit = self._row_params(chain, part, level)
            periods = chain.periods[:level]
            cap = chain.deadlines[level]
            if cache is not None:
                keys[r] = (own, blocking, tuple(zip(inter, periods, jit)), cap)
                hit = cache.get_exact(keys[r])
                if hit is not rta.CACHE_MISS:
                    values[r] = hit
                    continue
            pending.append((r, own + blocking, cap, inter, periods, jit))
        if pending and level == 0:
            # No interference at the top level: the fixpoint is the base.
            _count_batch(len(pending))
            for r, base, cap, *_ in pending:
                values[r] = base if base <= cap else None
                if cache is not None:
                    cache.put_exact(keys[r], values[r])
        elif pending:
            base = _np.array([p[1] for p in pending], dtype=_np.int64)
            caps = _np.array([p[2] for p in pending], dtype=_np.int64)
            inter = _np.array([p[3] for p in pending], dtype=_np.int64)
            periods = _np.array([p[4] for p in pending], dtype=_np.int64)
            jitters = _np.array([p[5] for p in pending], dtype=_np.int64)
            w, ok = _solve_rows_exact(base, caps, inter, periods, jitters)
            for i, p in enumerate(pending):
                r = p[0]
                values[r] = int(w[i]) if ok[i] else None
                if cache is not None:
                    cache.put_exact(keys[r], values[r])
        i = 0
        while i < len(rows):
            chain, part = rows[i]
            if part == "rl":
                rl, rc = values[i], values[i + 1]
                i += 2
                bound = None if rl is None or rc is None else rl + rc
                if bound is not None and bound > chain.deadlines[level]:
                    bound = None
            else:
                bound = values[i]
                i += 1
            self._push(chain, level, bound)

    @staticmethod
    def _push(chain: _Chain, level: int, bound: Optional[int]) -> None:
        chain.bounds.append(bound)
        if bound is None:
            # Scalar cascade kill: everything below is None too.
            chain.dead = True
            return
        if chain.kind == "s":
            chain.jit.append(max(0, bound - chain.own[level]))
        else:
            chain.dma_j.append(max(0, bound - chain.tl[level]))
            chain.cpu_j.append(max(0, bound - chain.tc[level]))
            chain.both_j.append(max(0, bound - chain.tl[level] - chain.tc[level]))


# ----------------------------------------------------------------------
# Column view of a task set + chain planning shared with eval.systems
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ViewCols:
    """Struct-of-arrays form of ``core.analysis._View``, priority order."""

    total_c: List[int]
    total_l: List[int]
    n_seg: List[int]
    n_load: List[int]
    max_c: List[int]
    max_l: List[int]
    latency: List[int]
    buffers: List[int]
    periods: List[int]
    deadlines: List[int]


def cols_from_views(views) -> ViewCols:
    """Columns from ``core.analysis`` views (already priority-sorted)."""
    return ViewCols(
        total_c=[v.total_c for v in views],
        total_l=[v.total_l for v in views],
        n_seg=[v.n_seg for v in views],
        n_load=[v.n_load for v in views],
        max_c=[v.max_c for v in views],
        max_l=[v.max_l for v in views],
        latency=[v.latency for v in views],
        buffers=[v.task.buffers for v in views],
        periods=[v.task.period for v in views],
        deadlines=[v.task.deadline for v in views],
    )


def _suffix_max(values: Sequence[int]) -> List[int]:
    """``out[i] = max(values[i:])`` with ``out[len] = 0``."""
    out = [0] * (len(values) + 1)
    for i in range(len(values) - 1, -1, -1):
        out[i] = max(values[i], out[i + 1])
    return out


def plan_chains(
    batch: ChainBatch,
    cols: ViewCols,
    method: str,
    memo: Optional[Dict[str, int]] = None,
) -> Dict[str, int]:
    """Pack one task set's analysis into ``batch``; returns handles.

    Mirrors :func:`repro.core.analysis.analyze`'s structure: oblivious
    and overlap are simple cascades, holistic is a two-stage cascade,
    and ``rtmdm`` plans both overlap and holistic (combined at unpack).

    ``memo`` (one dict per task set, shared across that set's methods)
    reuses already-packed chains: a set analyzed under both ``overlap``
    and ``rtmdm`` packs its overlap cascade once and both methods read
    the same solved rows.
    """
    handles: Dict[str, int] = {}
    if memo is None:
        memo = {}
    wanted = {
        "oblivious": ("obl",),
        "overlap": ("ovl",),
        "holistic": ("hol",),
        "rtmdm": ("ovl", "hol"),
    }[method]
    if all(kind in memo for kind in wanted):
        return {kind: memo[kind] for kind in wanted}
    n = len(cols.periods)
    lp_c = _suffix_max(cols.max_c)
    lp_l = _suffix_max(cols.max_l)
    block_both = [
        cols.n_seg[i] * lp_c[i + 1] + cols.n_load[i] * lp_l[i + 1]
        for i in range(n)
    ]
    serial = [c + l for c, l in zip(cols.total_c, cols.total_l)]
    if "obl" in wanted and "obl" not in memo:
        memo["obl"] = batch.add_simple(
            serial, block_both, serial, cols.periods, cols.deadlines
        )
    if "ovl" in wanted and "ovl" not in memo:
        memo["ovl"] = batch.add_simple(
            cols.latency, block_both, serial, cols.periods, cols.deadlines
        )
    if "hol" in wanted and "hol" not in memo:
        gated = [b < s for b, s in zip(cols.buffers, cols.n_seg)]
        memo["hol"] = batch.add_holistic(
            cols.total_l, cols.total_c, cols.latency,
            [lp_l[i + 1] for i in range(n)],
            [lp_c[i + 1] for i in range(n)],
            block_both, gated, cols.periods, cols.deadlines,
        )
    for kind in wanted:
        handles[kind] = memo[kind]
    return handles


def assemble_wcrt(
    batch: ChainBatch, handles: Dict[str, int], method: str, names: Sequence[str]
) -> Dict[str, Optional[int]]:
    """Per-task bounds for one planned set, scalar-identical dict order."""
    if method == "rtmdm":
        overlap = batch.bounds(handles["ovl"])
        holistic = batch.bounds(handles["hol"])
        combined: Dict[str, Optional[int]] = {}
        for name, o, h in zip(names, overlap, holistic):
            options = [b for b in (o, h) if b is not None]
            combined[name] = min(options) if options else None
        return combined
    key = {"oblivious": "obl", "overlap": "ovl", "holistic": "hol"}[method]
    return dict(zip(names, batch.bounds(handles[key])))


def chains_schedulable(
    batch: ChainBatch, handles: Dict[str, int], method: str
) -> bool:
    """Admission verdict for one planned set.

    Bounds are capped at the deadline during the solve, so a chain is
    schedulable iff every level's bound is non-``None`` (for ``rtmdm``:
    in at least one of the two chains).
    """
    if method == "rtmdm":
        return all(
            o is not None or h is not None
            for o, h in zip(batch.bounds(handles["ovl"]), batch.bounds(handles["hol"]))
        )
    key = {"oblivious": "obl", "overlap": "ovl", "holistic": "hol"}[method]
    return all(b is not None for b in batch.bounds(handles[key]))


# ----------------------------------------------------------------------
# Batched analysis entry point (core.analysis.analyze equivalent)
# ----------------------------------------------------------------------


def analyze_taskset_batch(
    cases: Sequence[Tuple[Any, str]],
    cache: Optional[rta.FixpointCache] = None,
):
    """Batched :func:`repro.core.analysis.analyze` over many task sets.

    ``cases`` are ``(taskset, method)`` pairs; returns the matching list
    of ``AnalysisResult`` objects, bit-identical to calling the scalar
    ``analyze`` per case.  Cases the vector engine stands down on (see
    module docstring) are solved by the scalar oracle transparently;
    with the kill switch off the whole batch goes scalar.
    """
    from repro.core import analysis as _analysis

    cases = list(cases)
    if not enabled():
        return [_analysis.analyze(ts, method, cache=cache) for ts, method in cases]
    start = time.perf_counter()
    batch = ChainBatch()
    plans = []
    fallback = []
    results: List[Any] = [None] * len(cases)
    # Batches routinely analyze the same task set under several methods
    # (method-family sweeps, rtmdm next to its components); views and
    # columns depend only on the set, so share them per set object.
    shared: dict = {}
    for idx, (taskset, method) in enumerate(cases):
        if method not in _analysis.METHODS:
            raise ValueError(
                f"unknown analysis method {method!r}; choose from {_analysis.METHODS}"
            )
        prepared = shared.get(id(taskset))
        if prepared is None:
            views = _analysis._views_by_priority(taskset)
            prepared = shared[id(taskset)] = (
                cols_from_views(views), [v.task.name for v in views], {},
            )
        cols, names, chain_memo = prepared
        try:
            handles = plan_chains(batch, cols, method, memo=chain_memo)
        except StandDown:
            _count_stand_down()
            fallback.append(idx)
            continue
        plans.append((idx, taskset, method, names, handles))
    _PROFILE["pack_s"] += time.perf_counter() - start
    try:
        batch.solve(cache=cache)
    except StandDown:  # pragma: no cover - needs ~1e6 fixpoint steps
        _count_stand_down()
        return [_analysis.analyze(ts, method, cache=cache) for ts, method in cases]
    start = time.perf_counter()
    for idx, taskset, method, names, handles in plans:
        wcrt = assemble_wcrt(batch, handles, method, names)
        deadlines = {t.name: t.deadline for t in taskset}
        results[idx] = _analysis.AnalysisResult(method, wcrt, deadlines)
    _PROFILE["unpack_s"] += time.perf_counter() - start
    for idx in fallback:
        taskset, method = cases[idx]
        results[idx] = _analysis.analyze(taskset, method, cache=cache)
    return results


# ----------------------------------------------------------------------
# Batched classic RTA (sched.rta float-semantics oracle)
# ----------------------------------------------------------------------


def _fp_overflow_risk(task, interferers, cap) -> bool:
    """True when float64 exactness cannot be proven for this problem."""
    everyone = [task, *interferers]
    j_max = max(t.jitter for t in everyone)
    hp_interference = sum(
        ((cap + t.jitter) // t.period + 1) * t.exec_cycles for t in interferers
    )
    ceil_busy = task.blocking + hp_interference + (
        ((cap + task.jitter) // task.period + 1) * task.exec_cycles
    )
    q_bound = (cap + task.jitter) // task.period + 2
    ceil_q = q_bound * task.exec_cycles + task.blocking + hp_interference
    return max(cap, ceil_busy, ceil_q) + j_max >= _FLOAT_EXACT


def fp_wcrt_batch(
    problems: Sequence[Tuple[Sequence[rta.RtaTask], rta.RtaTask]],
    preemptive: bool = True,
) -> List[Optional[int]]:
    """Batched ``fp_preemptive_wcrt``/``fp_nonpreemptive_wcrt``.

    ``problems`` are ``(tasks, task)`` pairs; the result list matches
    the scalar function bit-for-bit.  The float ceil/floor semantics of
    the scalar oracle are reproduced exactly (see module docstring);
    problems where exactness cannot be proven fall back to scalar.
    """
    scalar = rta.fp_preemptive_wcrt if preemptive else rta.fp_nonpreemptive_wcrt
    problems = list(problems)
    if not enabled() or not problems:
        return [scalar(tasks, task) for tasks, task in problems]

    start = time.perf_counter()
    results: List[Optional[int]] = [None] * len(problems)
    fallback: List[int] = []
    packed = []
    for idx, (tasks, task) in enumerate(problems):
        interferers = rta._hp(tasks, task)
        cap = rta._response_cap(task, interferers)
        if _fp_overflow_risk(task, interferers, cap):
            _count_stand_down()
            fallback.append(idx)
            continue
        packed.append((idx, task, interferers, cap))
    if packed:
        try:
            _fp_solve_packed(packed, results, preemptive, start)
        except StandDown:  # pragma: no cover - needs ~1e6 fixpoint steps
            _count_stand_down()
            fallback.extend(p[0] for p in packed)
    else:
        _PROFILE["pack_s"] += time.perf_counter() - start
    for idx in fallback:
        tasks, task = problems[idx]
        results[idx] = scalar(tasks, task)
    return results


def _fp_solve_packed(packed, results, preemptive, start) -> None:
    """Array-solve pre-screened classic-RTA problems into ``results``."""
    n = len(packed)
    k_max = max(len(p[2]) for p in packed)

    def padded(getter, pad):
        return _np.array(
            [
                [getter(t) for t in p[2]] + [pad] * (k_max - len(p[2]))
                for p in packed
            ],
            dtype=_np.int64,
        )

    # Interferer matrices, padded with (C=0, T=1, J=0) no-op columns.
    hp_c = padded(lambda t: t.exec_cycles, 0)
    hp_t = padded(lambda t: t.period, 1)
    hp_j = padded(lambda t: t.jitter, 0)
    own_c = _np.array([p[1].exec_cycles for p in packed], dtype=_np.int64)
    own_t = _np.array([p[1].period for p in packed], dtype=_np.int64)
    own_j = _np.array([p[1].jitter for p in packed], dtype=_np.int64)
    blocking = _np.array([p[1].blocking for p in packed], dtype=_np.int64)
    caps = _np.array([p[3] for p in packed], dtype=_np.int64)
    # Busy-period demand sums over [task, *interferers].
    all_c = _np.concatenate([own_c[:, None], hp_c], axis=1)
    all_t = _np.concatenate([own_t[:, None], hp_t], axis=1)
    all_j = _np.concatenate([own_j[:, None], hp_j], axis=1)
    _PROFILE["pack_s"] += time.perf_counter() - start

    start = time.perf_counter()
    _count_batch(n)
    length = _np.maximum(1, blocking + own_c)
    busy_ok = _np.ones(n, dtype=bool)
    active = _np.ones(n, dtype=bool)
    for _ in range(_ITER_GUARD):
        q = _np.ceil((length[:, None] + all_j) / all_t).astype(_np.int64)
        demand = blocking + (q * all_c).sum(axis=1)
        done = active & (demand <= length)
        fail = active & ~done & (demand > caps)
        busy_ok &= ~fail
        active &= ~(done | fail)
        if not active.any():
            break
        length = _np.where(active, demand, length)
    else:
        raise StandDown("busy-period iteration guard tripped")

    q_max = _np.where(
        busy_ok,
        _np.ceil((length + own_j) / own_t).astype(_np.int64),
        0,
    )
    worst = _np.zeros(n, dtype=_np.int64)
    alive = busy_ok.copy()
    for q in range(int(q_max.max())):
        sel = alive & (q < q_max)
        if not sel.any():
            break
        if preemptive:
            base_q = (q + 1) * own_c + blocking
        else:
            base_q = blocking + q * own_c
        w = base_q.copy()
        act = sel.copy()
        for _ in range(_ITER_GUARD):
            shifted = (w[:, None] + hp_j) / hp_t
            if preemptive:
                qj = _np.ceil(shifted).astype(_np.int64)
            else:
                qj = _np.floor(shifted).astype(_np.int64) + 1
            demand = base_q + (qj * hp_c).sum(axis=1)
            done = act & (demand == w)
            diverged = act & ~done & (demand > caps)
            alive &= ~diverged
            act &= ~(done | diverged)
            if not act.any():
                break
            w = _np.where(act, demand, w)
        else:
            raise StandDown("per-q iteration guard tripped")
        converged = sel & alive
        if preemptive:
            response = w - q * own_t
        else:
            response = w + own_c - q * own_t
        worst = _np.where(converged, _np.maximum(worst, response), worst)
    _PROFILE["solve_s"] += time.perf_counter() - start

    start = time.perf_counter()
    for i, (idx, *_rest) in enumerate(packed):
        results[idx] = int(worst[i]) if alive[i] else None
    _PROFILE["unpack_s"] += time.perf_counter() - start
