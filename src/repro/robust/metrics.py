"""Robustness metrics over simulation results.

Complements :mod:`repro.eval.metrics` with the overload-specific
quantities EXP-R1 reports: how much load was shed (aborts / skipped
releases), how long tasks spent in degraded mode, and how noisy the DMA
path was.

NOTE: this module must not import :mod:`repro.sched.simulator` at
runtime — the simulator itself imports :mod:`repro.robust` for its fault
hooks, and a runtime import here would close the cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.sched.simulator import SimResult


def released_jobs(result: "SimResult") -> int:
    """Jobs actually released (skipped releases excluded)."""
    return sum(s.jobs for s in result.stats.values())


def failed_jobs(result: "SimResult") -> int:
    """Jobs that missed, were aborted, or never finished."""
    return result.total_misses


def miss_ratio(result: "SimResult") -> float:
    """Fraction of released jobs that failed their deadline.

    Matches :func:`repro.eval.metrics.miss_ratio`; re-implemented here so
    the robust package stays import-cycle-free.
    """
    released = released_jobs(result)
    if released == 0:
        return 0.0
    return failed_jobs(result) / released


def aborted_jobs(result: "SimResult") -> int:
    """Jobs killed at their deadline (``ABORT_AT_DEADLINE``)."""
    return sum(s.aborts for s in result.stats.values())


def skipped_releases(result: "SimResult") -> int:
    """Releases suppressed by a late predecessor (``SKIP_NEXT``)."""
    return sum(s.skips for s in result.stats.values())


def degraded_residency(result: "SimResult") -> float:
    """Fraction of released jobs that ran a fallback variant."""
    released = released_jobs(result)
    if released == 0:
        return 0.0
    return sum(s.degraded_jobs for s in result.stats.values()) / released


def robustness_summary(result: "SimResult") -> Dict[str, float]:
    """One-row summary of a fault-injected run (EXP-R1's columns)."""
    return {
        "released": released_jobs(result),
        "miss_ratio": miss_ratio(result),
        "misses": sum(s.misses for s in result.stats.values()),
        "aborts": aborted_jobs(result),
        "skips": skipped_releases(result),
        "unfinished": sum(s.unfinished for s in result.stats.values()),
        "degraded_residency": degraded_residency(result),
        "dma_retries": result.dma_retries,
    }


def sacrificed_releases(result: "SimResult") -> int:
    """Releases suppressed because their task was quarantined."""
    return sum(s.quarantined_releases for s in result.stats.values())


def survival_miss_ratio(result: "SimResult") -> float:
    """Miss ratio counting quarantined releases as sacrificed jobs.

    :func:`miss_ratio` only divides by jobs actually released, which
    would make quarantining a task look *better* than recovering it.
    This variant charges every suppressed release of a quarantined task
    as a failed job — the honest figure of merit for comparing recovery
    protocols (EXP-R2).
    """
    released = released_jobs(result)
    sacrificed = sacrificed_releases(result)
    if released + sacrificed == 0:
        return 0.0
    return (failed_jobs(result) + sacrificed) / (released + sacrificed)


def mean_recovery_latency(result: "SimResult") -> float:
    """Mean cycles from a job's first terminal fault to its completion.

    Only jobs that *survived* a fault (via REMAP or XIP_FALLBACK) have a
    recovery latency; returns 0.0 when no job recovered.
    """
    if not result.recovery_latencies:
        return 0.0
    return sum(result.recovery_latencies) / len(result.recovery_latencies)


def recovery_summary(result: "SimResult") -> Dict[str, float]:
    """One-row summary of a recovery run (EXP-R2's columns)."""
    counts = result.recovery_counts
    return {
        "released": released_jobs(result),
        "miss_ratio": miss_ratio(result),
        "survival_miss_ratio": survival_miss_ratio(result),
        "faults": len(result.fault_events),
        "remaps": counts.get("remap", 0),
        "xip_fallbacks": counts.get("xip-fallback", 0),
        "degrades": counts.get("degrade", 0),
        "quarantined_tasks": len(result.quarantined),
        "sacrificed": sacrificed_releases(result),
        "mean_recovery_latency": mean_recovery_latency(result),
    }


def chaos_summary(report) -> Dict[str, float]:
    """One-row summary of a chaos matrix run (EXP-R3's columns).

    Takes a :class:`repro.robust.chaos.ChaosReport` (duck-typed to keep
    this module import-cycle-free); the key figure of merit is
    ``identical_ratio`` — the fraction of crash/perturbation cells whose
    recovered decision log and final task set matched the uninterrupted
    run bit-for-bit (must be 1.0).
    """
    cells = report.cells
    replayed = [cell.decisions_replayed for cell in cells]
    return {
        "cells": len(cells),
        "identical_cells": report.identical_cells,
        "identical_ratio": (report.identical_cells / len(cells)) if cells else 0.0,
        "max_replayed": report.max_replayed,
        "mean_replayed": (sum(replayed) / len(replayed)) if replayed else 0.0,
        "truncated_lines": sum(cell.truncated_lines for cell in cells),
        "commits_repaired": sum(cell.commits_repaired for cell in cells),
        "duplicates_absorbed": sum(cell.duplicates_absorbed for cell in cells),
        "invariant_checks": sum(report.invariants.values()),
    }


def fleet_chaos_summary(report) -> Dict[str, float]:
    """One-row summary of a fleet chaos matrix run (EXP-S3's gate columns).

    Takes a :class:`repro.robust.chaos.FleetChaosReport` (duck-typed, as
    above).  ``identical_ratio`` must be 1.0: every crash-point x
    shard-count x perturbation cell recovered to the exact decision
    stream of its uninterrupted baseline.
    """
    cells = report.cells
    replayed = [cell.max_replayed for cell in cells]
    return {
        "cells": len(cells),
        "identical_cells": report.identical_cells,
        "identical_ratio": (report.identical_cells / len(cells)) if cells else 0.0,
        "max_replayed": report.max_replayed,
        "mean_replayed": (sum(replayed) / len(replayed)) if replayed else 0.0,
        "crashes": sum(cell.crashes for cell in cells),
        "recovered": sum(cell.recovered for cell in cells),
        "shed": sum(cell.shed for cell in cells),
        "invariant_checks": sum(report.invariants.values()),
    }
