"""Fleet-scale admission serving: a sharded, batched, async service.

This module simulates 10k-1M devices sharing one central admission
service.  Devices are grouped into platform/workload **cohorts** (so the
fleet's planning state collapses onto a handful of platform objects and
their plan-cache keys), requests are routed to per-shard FIFO queues by
a deterministic device hash, and each shard drains its queue in batches
decided through the vectorized fast paths
(:func:`repro.online.admission.mass_screen` backed by
:mod:`repro.sched.vecrta`, with :func:`repro.core.segcache.cached_analyze`
as the exact fallback).  Planning goes through
:func:`repro.online.admission.plan_segments` — the same policy as the
single-device controller — so a configured
:mod:`repro.core.planstore` amortizes one segmentation search across the
whole fleet and across runs.

Time model
----------

The service runs in **virtual time**: request arrival instants come from
the trace, each decided batch occupies its shard for ``service_us``
microseconds per decision, and a batch's decisions all complete when the
batch does.  Queue depths, shard utilization and queueing-latency
percentiles are therefore pure functions of the trace and the
configuration — deterministic and comparable across machines — while the
*engine* throughput (decisions/sec) and per-decision wall-clock latency
are measured separately and reported via ``meta``-style fields.

Identity guarantees
-------------------

A decision for device *d* depends only on *d*'s own resident set (plus
the immutable cohort platform), and the service admits at most one
request per device per batch (later same-device requests are held back
to the next batch), so per-device request order is preserved under any
shard count or batch size.  ``mass_screen`` is bit-identical to scalar
screening and ``cached_analyze`` is exact, so **sharded decisions are
bit-identical to the single-shard serial path** — the identity gate in
``tests/test_fleet.py`` and CI asserts this with backpressure disabled
(shedding depends on queue depth, which legitimately differs by shard
count; the gate requires zero sheds).

Durability and resilience
-------------------------

With ``journal_dir`` set, every shard keeps its own CRC-tagged
write-ahead journal (:class:`repro.online.durable.DecisionJournal`):
intents before the batch decides, commits after, with the fleet request
encoded as a device-qualified :class:`repro.online.events.Request`.
Journals are opened *open-or-create*: an existing journal with a
matching configuration is recovered (checkpoint restore + intent-suffix
replay, commits verified not trusted) and appended to, so a restarted
service carries its resident state forward instead of clobbering its
own history.  Three fault-tolerance mechanisms ride on top:

* **Shard crash/restart** (``crash_at=((shard, index), ...)``): the
  shard "dies" after journaling a batch's intents but before their
  commits — PR 6's worst crash point — losing all in-memory state; it
  then recovers from its own journal and re-decides the torn batch.
  Recovery is charged wall-clock (it lowers engine throughput) but zero
  *virtual* time, so a recovered run's decision stream and queueing
  stats are bit-identical to the uninterrupted run — the fleet chaos
  matrix (:func:`repro.robust.chaos.run_fleet_matrix`) enforces this.
* **Decision timeouts with retry/backoff** (``timeout_ms``): a request
  whose head-of-queue wait exceeds the virtual deadline gets a typed
  ``TIMEOUT`` decision (journaled as a non-mutating event) and a
  bounded-exponential-backoff re-release *in place*, preserving FIFO
  per-device order; after ``max_retries`` it is decided regardless, so
  every request is decided exactly once and a retry can never
  double-admit (the resident set makes re-admission an ``ignored``).
* **Degrade-before-shed ladder** (``degrade_watermark``): ADMITs that
  arrive above the watermark are decided through the PR 3 degradation
  ladder (full -> rate-stretch -> smaller variant, screen-only), and at
  a full queue the service first tries an inline degraded decision —
  sheds are the terminal rung only.  Degraded admits must pass the
  pessimistic RTA screen, so the ladder never admits unsoundly.
"""

from __future__ import annotations

import os
import random
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.core import segcache
from repro.core.segmentation import SegmentationError
from repro.dnn.quantization import INT8, Quantization
from repro.eval.metrics import latency_stats
from repro.hw.platform import Platform
from repro.hw.presets import get_platform
from repro.online.admission import mass_screen, plan_segments
from repro.online.durable import DecisionJournal, JournalError, scan_journal
from repro.online.events import Request, RequestKind
from repro.robust import recovery as resilience
from repro.robust.overload import degraded_variant
from repro.sched.task import PeriodicTask, Segment, TaskSet
from repro.workload.arrivals import bursty_arrival_times, poisson_arrival_times
from repro.workload.taskset import DEFAULT_MODEL_POOL

__all__ = [
    "CohortSpec",
    "DEFAULT_COHORTS",
    "FLEET_SCHEMA",
    "FleetConfig",
    "FleetDecision",
    "FleetReport",
    "FleetRequest",
    "FleetService",
    "FleetTrace",
    "decision_identity",
    "fleet_trace",
    "shard_of",
]

#: Schema tag of the ``rtmdm fleet --json`` payload.
FLEET_SCHEMA = "rtmdm-fleet/1"

#: Schema tag of per-shard checkpoint records inside shard journals.
FLEET_CHECKPOINT_SCHEMA = "rtmdm-fleet-checkpoint/1"


# ----------------------------------------------------------------------
# Cohorts and traces
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CohortSpec:
    """One device cohort: a platform variant plus its workload mix.

    Cohort membership is ``device_index % len(cohorts)`` — deterministic
    and uniform, so every cohort's planning keys are exercised at every
    fleet size.
    """

    name: str
    platform_key: str = "f746-qspi"
    sram_kib: Optional[int] = None
    model_pool: Tuple[str, ...] = DEFAULT_MODEL_POOL
    period_ladder_s: Tuple[float, ...] = (0.1, 0.2, 0.4, 0.8)

    def platform(self) -> Platform:
        platform = get_platform(self.platform_key)
        if self.sram_kib is not None:
            platform = platform.with_sram_bytes(self.sram_kib * 1024)
        return platform


#: Default fleet mix: two SRAM variants of the paper's reference board
#: plus a faster part, so plan keys, admission pressure and decision
#: mixes differ across cohorts.
DEFAULT_COHORTS: Tuple[CohortSpec, ...] = (
    CohortSpec("f746-192k", "f746-qspi", sram_kib=192),
    CohortSpec("f746-320k", "f746-qspi", sram_kib=320),
    CohortSpec("h743-sdram", "h743-sdram"),
)


@dataclass(frozen=True)
class FleetRequest:
    """One fleet request: a device-qualified admit or remove.

    ``seq`` is the global arrival index — the identity key decisions are
    compared on across shard counts.
    """

    seq: int
    time_s: float
    device: str
    kind: RequestKind
    task: str
    model: str = ""
    period_s: float = 0.0

    def to_request(self) -> Request:
        """The journal/trace form (device-qualified task name)."""
        return Request(
            time_s=self.time_s,
            kind=self.kind,
            task=f"{self.device}/{self.task}",
            model=self.model,
            period_s=self.period_s,
        )


@dataclass(frozen=True)
class FleetTrace:
    """A time-ordered fleet request sequence over a bounded horizon."""

    requests: Tuple[FleetRequest, ...]
    duration_s: float
    n_devices: int
    cohorts: Tuple[CohortSpec, ...]
    arrival: str

    def __len__(self) -> int:
        return len(self.requests)


def fleet_trace(
    n_devices: int,
    duration_s: float,
    rate_per_device_hz: float,
    seed: int,
    cohorts: Sequence[CohortSpec] = DEFAULT_COHORTS,
    arrival: str = "poisson",
    mean_lifetime_s: float = 4.0,
    burst_factor: float = 4.0,
    duty: float = 0.25,
    mean_cycle_s: float = 2.0,
) -> FleetTrace:
    """Draw one fleet trace (a pure function of the arguments).

    Aggregate arrivals run at ``n_devices * rate_per_device_hz`` under
    the chosen arrival process (``"poisson"`` or ``"bursty"``); each
    arrival lands on a uniformly-drawn device, admits a fresh model from
    the device's cohort pool, and departs after an exponential lifetime
    (in-horizon departures become REMOVE requests).
    """
    if n_devices <= 0:
        raise ValueError(f"n_devices must be > 0, got {n_devices}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    if rate_per_device_hz <= 0:
        raise ValueError(
            f"rate_per_device_hz must be > 0, got {rate_per_device_hz}"
        )
    if mean_lifetime_s <= 0:
        raise ValueError(f"mean_lifetime_s must be > 0, got {mean_lifetime_s}")
    if not cohorts:
        raise ValueError("cohorts must be non-empty")
    rng = random.Random(seed)
    total_rate = n_devices * rate_per_device_hz
    if arrival == "poisson":
        times = poisson_arrival_times(duration_s, total_rate, rng)
    elif arrival == "bursty":
        times = bursty_arrival_times(
            duration_s, total_rate, rng, burst_factor, duty, mean_cycle_s
        )
    else:
        raise ValueError(
            f"unknown arrival model {arrival!r} (known: poisson, bursty)"
        )
    events: List[Tuple[float, int, str, RequestKind, str, str, float]] = []
    admit_counts: Dict[int, int] = {}
    order = 0
    for t in times:
        index = rng.randrange(n_devices)
        cohort = cohorts[index % len(cohorts)]
        device = f"d{index:07d}"
        count = admit_counts.get(index, 0)
        admit_counts[index] = count + 1
        task = f"m{count}"
        model = rng.choice(list(cohort.model_pool))
        period_s = rng.choice(list(cohort.period_ladder_s))
        events.append((t, order, device, RequestKind.ADMIT, task, model, period_s))
        order += 1
        end_s = t + rng.expovariate(1.0 / mean_lifetime_s)
        if end_s < duration_s:
            events.append((end_s, order, device, RequestKind.REMOVE, task, "", 0.0))
            order += 1
    events.sort(key=lambda e: (e[0], e[1]))
    requests = tuple(
        FleetRequest(
            seq=seq, time_s=e[0], device=e[2], kind=e[3],
            task=e[4], model=e[5], period_s=e[6],
        )
        for seq, e in enumerate(events)
    )
    return FleetTrace(
        requests=requests,
        duration_s=duration_s,
        n_devices=n_devices,
        cohorts=tuple(cohorts),
        arrival=arrival,
    )


def shard_of(device: str, n_shards: int) -> int:
    """Deterministic device → shard routing (stable across processes)."""
    return zlib.crc32(device.encode("utf-8")) % n_shards


# ----------------------------------------------------------------------
# Service configuration and decisions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FleetConfig:
    """Decision-relevant service configuration.

    ``service_us`` is the virtual per-decision service cost the queueing
    model charges (it does not gate the engine); ``max_queue_depth``
    bounds each shard's queue — arrivals beyond it are shed (after the
    degrade ladder's inline rescue, when ``degrade_watermark`` is set).

    Resilience knobs: ``checkpoint_interval`` bounds journal-suffix
    replay; ``crash_at`` injects seeded shard crashes (requires a
    journal to recover from); ``timeout_ms``/``max_retries``/
    ``backoff_ms``/``backoff_cap_ms`` govern decision timeouts;
    ``degrade_watermark`` arms the degrade-before-shed ladder whose
    rungs come from ``stretch_factors`` and ``degrade_factor`` (the
    PR 3 admission-controller ladder).
    """

    n_shards: int = 4
    batch_size: int = 64
    max_queue_depth: int = 100_000
    service_us: float = 150.0
    method: str = "rtmdm"
    quant: Quantization = INT8
    buffers: int = 2
    journal_dir: Optional[str] = None
    fsync_interval: int = 256
    checkpoint_interval: int = 64
    crash_at: Tuple[Tuple[int, int], ...] = ()
    timeout_ms: Optional[float] = None
    max_retries: int = 3
    backoff_ms: float = 2.0
    backoff_cap_ms: float = 64.0
    degrade_watermark: Optional[int] = None
    stretch_factors: Tuple[float, ...] = (1.25, 1.5, 2.0)
    degrade_factor: float = 0.5

    def __post_init__(self) -> None:
        if self.n_shards <= 0:
            raise ValueError(f"n_shards must be > 0, got {self.n_shards}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be > 0, got {self.batch_size}")
        if self.max_queue_depth <= 0:
            raise ValueError(
                f"max_queue_depth must be > 0, got {self.max_queue_depth}"
            )
        if self.service_us <= 0:
            raise ValueError(f"service_us must be > 0, got {self.service_us}")
        if self.checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1, "
                f"got {self.checkpoint_interval}"
            )
        for item in self.crash_at:
            if len(item) != 2:
                raise ValueError(f"crash_at entries are (shard, index): {item!r}")
            shard, at = item
            if not 0 <= shard < self.n_shards:
                raise ValueError(
                    f"crash_at shard {shard} out of range 0..{self.n_shards - 1}"
                )
            if at < 0:
                raise ValueError(f"crash_at index must be >= 0, got {at}")
        if self.crash_at and not self.journal_dir:
            raise ValueError(
                "crash_at requires journal_dir (a crashed shard recovers "
                "from its journal)"
            )
        if self.timeout_ms is not None and self.timeout_ms <= 0:
            raise ValueError(f"timeout_ms must be > 0, got {self.timeout_ms}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        # ExponentialBackoff validates base/cap consistency.
        resilience.ExponentialBackoff(self.backoff_ms, self.backoff_cap_ms)
        if self.degrade_watermark is not None:
            if not 1 <= self.degrade_watermark <= self.max_queue_depth:
                raise ValueError(
                    f"degrade_watermark must be in 1..max_queue_depth, "
                    f"got {self.degrade_watermark}"
                )
        for f in self.stretch_factors:
            if f <= 1.0:
                raise ValueError(f"stretch factors must be > 1.0, got {f}")
        if not 0.0 < self.degrade_factor <= 1.0:
            raise ValueError(
                f"degrade_factor must be in (0, 1], got {self.degrade_factor}"
            )


@dataclass(frozen=True)
class FleetDecision:
    """One fleet decision; the identity tuple excludes ``shard``.

    ``outcome`` is ``admitted`` / ``rejected`` / ``removed`` /
    ``ignored`` / ``shed`` / ``timeout``; ``reason`` carries the
    justification (``rta-oblivious``/``analysis`` for admissions,
    ``sram: ...`` / ``rta: ...`` for rejections, ``queue-full: ...``
    for sheds, ``deadline: ...`` for timeouts).  ``mode`` is the
    admitted service level (``full`` or a degrade-ladder rung such as
    ``rate/1.5`` or ``variant``); ``attempt`` is the retry attempt that
    produced the record (``timeout`` records are non-terminal — the
    final decision for the same ``seq`` carries a higher attempt).
    """

    seq: int
    device: str
    task: str
    kind: str
    outcome: str
    reason: str = ""
    shard: int = -1
    mode: str = ""
    attempt: int = 0

    def to_dict(self) -> Dict:
        return {
            "seq": self.seq,
            "device": self.device,
            "task": self.task,
            "kind": self.kind,
            "outcome": self.outcome,
            "reason": self.reason,
            "shard": self.shard,
            "mode": self.mode,
            "attempt": self.attempt,
        }


def decision_identity(decisions: Sequence[FleetDecision]) -> List[Tuple]:
    """The shard-independent projection compared by the identity gate."""
    return [
        (d.seq, d.attempt, d.device, d.task, d.kind, d.outcome, d.reason,
         d.mode)
        for d in decisions
    ]


class _Resident(NamedTuple):
    """One admitted model on one device (the fleet's per-device state).

    ``plan_key`` is the exact planning input ``(cohort, model, period,
    free_bytes)`` that produced ``segments``/``sram_bytes``; planning is
    deterministic, so equal plan keys imply equal plans — which is what
    lets the union-verdict memo key on plan keys instead of segment
    contents.
    """

    task: str
    model: str
    segments: Tuple[Segment, ...]
    period: int
    deadline: int
    sram_bytes: int
    plan_key: Tuple
    mode: str = "full"


def _resident_state(r: _Resident) -> Dict:
    """JSON form of one resident (embedded in shard checkpoints)."""
    return {
        "task": r.task,
        "model": r.model,
        "segments": [
            [s.name, s.load_cycles, s.compute_cycles, s.load_bytes,
             s.xip_bytes]
            for s in r.segments
        ],
        "period": r.period,
        "deadline": r.deadline,
        "sram_bytes": r.sram_bytes,
        "plan_key": list(r.plan_key),
        "mode": r.mode,
    }


def _resident_from_state(d: Dict) -> _Resident:
    return _Resident(
        task=d["task"],
        model=d["model"],
        segments=tuple(Segment(*row) for row in d["segments"]),
        period=d["period"],
        deadline=d["deadline"],
        sram_bytes=d["sram_bytes"],
        plan_key=tuple(d["plan_key"]),
        mode=d["mode"],
    )


class _Queued:
    """One queued request plus its retry/degrade serving state.

    ``time_s`` is the request's *current* release instant — a timeout
    pushes it into the future (backoff) without moving the entry, so
    the FIFO never reorders a device's requests.  ``orig_time_s`` keeps
    the true arrival for queueing-latency accounting.
    """

    __slots__ = ("req", "time_s", "orig_time_s", "attempt", "degraded",
                 "inline")

    def __init__(
        self, req: FleetRequest, degraded: bool = False,
        inline: bool = False,
    ) -> None:
        self.req = req
        self.time_s = req.time_s
        self.orig_time_s = req.time_s
        self.attempt = 0
        self.degraded = degraded
        self.inline = inline


class _Shard:
    __slots__ = (
        "index", "queue", "busy_until_s", "busy_s", "decided",
        "peak_depth", "journal", "journal_path", "devices", "inflight",
        "seq_base", "ckpt_seq", "crash_schedule", "recovered",
        "recoveries", "cum_shed", "cum_timeouts", "cum_degraded",
        "start_shed", "start_timeouts", "start_degraded",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.queue: Deque[_Queued] = deque()
        self.busy_until_s = 0.0
        self.busy_s = 0.0
        self.decided = 0            # decisions this run
        self.peak_depth = 0
        self.journal: Optional[DecisionJournal] = None
        self.journal_path: Optional[str] = None
        self.devices: Dict[str, Dict[str, _Resident]] = {}
        self.inflight: Dict[str, int] = {}
        self.seq_base = 0           # journal seq of this run's first intent
        self.ckpt_seq = 0           # journal seq the last checkpoint covers
        self.crash_schedule: List[int] = []
        self.recovered = 0
        self.recoveries: List[Dict] = []
        # Journal-cumulative counters (reconciled on recovery); this
        # run's contribution is cum - start.
        self.cum_shed = 0
        self.cum_timeouts = 0
        self.cum_degraded = 0
        self.start_shed = 0
        self.start_timeouts = 0
        self.start_degraded = 0

    @property
    def run_shed(self) -> int:
        return self.cum_shed - self.start_shed

    @property
    def run_timeouts(self) -> int:
        return self.cum_timeouts - self.start_timeouts

    @property
    def run_degraded(self) -> int:
        return self.cum_degraded - self.start_degraded


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass
class FleetReport:
    """Outcome of one fleet run.

    Everything except ``wall_s`` / ``engine_s`` / ``decisions_per_s`` /
    ``decision_latency_us`` is deterministic in the (trace, config)
    pair; those four are wall-clock engine measurements.
    """

    n_devices: int
    n_shards: int
    batch_size: int
    service_us: float
    duration_s: float
    arrival: str
    requests: int
    admitted: int
    rejected_sram: int
    rejected_rta: int
    removed: int
    ignored: int
    shed: int
    decisions: List[FleetDecision]
    shard_stats: List[Dict]
    queueing_latency_ms: Dict
    decision_latency_us: Dict
    wall_s: float
    engine_s: float
    cache: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    #: Raw per-decision engine wall latencies (batch-averaged, µs);
    #: kept out of :meth:`to_dict` — callers aggregate across runs.
    wall_latencies_us: List[float] = field(default_factory=list)
    #: Degrade-ladder admits (mode != "full") among ``admitted``.
    degraded_admits: int = 0
    #: Typed TIMEOUT records issued (each one re-enqueued a request).
    timeout_retries: int = 0
    #: Shard recoveries (startup journal resumes + in-run crash recoveries).
    recovered: int = 0
    #: Non-terminal TIMEOUT records (the final decisions stay in
    #: ``decisions``); :meth:`all_decisions` merges the two streams.
    timeout_decisions: List[FleetDecision] = field(default_factory=list)

    @property
    def admit_requests(self) -> int:
        return self.admitted + self.rejected_sram + self.rejected_rta

    @property
    def admission_ratio(self) -> float:
        n = self.admit_requests
        return self.admitted / n if n else 1.0

    @property
    def decided(self) -> int:
        """Requests that reached the decision engine (everything but sheds)."""
        return self.requests - self.shed

    @property
    def decisions_per_s(self) -> float:
        """Engine throughput: decided requests over engine wall time."""
        return self.decided / self.engine_s if self.engine_s > 0 else 0.0

    @property
    def peak_queue_depth(self) -> int:
        return max((s["peak_depth"] for s in self.shard_stats), default=0)

    def all_decisions(self) -> List[FleetDecision]:
        """Final decisions merged with TIMEOUT records, in (seq, attempt)
        order — the stream the fleet chaos matrix compares."""
        return sorted(
            [*self.decisions, *self.timeout_decisions],
            key=lambda d: (d.seq, d.attempt),
        )

    @property
    def shard_utilization(self) -> float:
        """Mean busy fraction of the shards over the virtual horizon."""
        if not self.shard_stats:
            return 0.0
        horizon = max(
            self.duration_s,
            max((s["busy_until_s"] for s in self.shard_stats), default=0.0),
        )
        busy = sum(s["busy_s"] for s in self.shard_stats)
        return busy / (horizon * len(self.shard_stats))

    def to_dict(self, include_decisions: bool = False) -> Dict:
        """Machine-readable report (the ``rtmdm fleet --json`` payload)."""
        payload: Dict = {
            "schema": FLEET_SCHEMA,
            "n_devices": self.n_devices,
            "n_shards": self.n_shards,
            "batch_size": self.batch_size,
            "service_us": self.service_us,
            "duration_s": self.duration_s,
            "arrival": self.arrival,
            "requests": self.requests,
            "admit_requests": self.admit_requests,
            "admitted": self.admitted,
            "rejected_sram": self.rejected_sram,
            "rejected_rta": self.rejected_rta,
            "removed": self.removed,
            "ignored": self.ignored,
            "shed": self.shed,
            "degraded_admits": self.degraded_admits,
            "timeout_retries": self.timeout_retries,
            "recovered": self.recovered,
            "admission_ratio": round(self.admission_ratio, 4),
            "peak_queue_depth": self.peak_queue_depth,
            "shard_utilization": round(self.shard_utilization, 4),
            "queueing_latency_ms": self.queueing_latency_ms,
            "decision_latency_us": self.decision_latency_us,
            "decisions_per_s": round(self.decisions_per_s, 1),
            "wall_s": round(self.wall_s, 3),
            "engine_s": round(self.engine_s, 3),
            "shards": self.shard_stats,
            "cache": {name: list(vals) for name, vals in self.cache.items()},
        }
        if include_decisions:
            payload["decisions"] = [d.to_dict() for d in self.all_decisions()]
        return payload


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class FleetService:
    """Sharded batch admission over a device fleet (virtual time)."""

    def __init__(
        self,
        cohorts: Sequence[CohortSpec] = DEFAULT_COHORTS,
        config: FleetConfig = FleetConfig(),
    ) -> None:
        if not cohorts:
            raise ValueError("cohorts must be non-empty")
        self.cohorts = tuple(cohorts)
        self.config = config
        self._backoff = resilience.ExponentialBackoff(
            config.backoff_ms, config.backoff_cap_ms
        )
        # One platform object per cohort for the whole run: the segcache
        # fingerprint memos are identity-keyed, so key construction
        # stays O(1) per decision.
        self._platforms = [cohort.platform() for cohort in self.cohorts]

    # -- setup ---------------------------------------------------------
    def _journal_config(self, shard_index: int) -> Dict:
        """The decision-relevant config echoed into each shard's journal
        header; open-or-create refuses a journal whose header differs
        (replaying it under another config would diverge)."""
        cfg = self.config
        return {
            "schema": FLEET_SCHEMA,
            "shard": shard_index,
            "n_shards": cfg.n_shards,
            "batch_size": cfg.batch_size,
            "max_queue_depth": cfg.max_queue_depth,
            "service_us": cfg.service_us,
            "method": cfg.method,
            "quant": cfg.quant.name,
            "buffers": cfg.buffers,
            "timeout_ms": cfg.timeout_ms,
            "max_retries": cfg.max_retries,
            "backoff_ms": cfg.backoff_ms,
            "backoff_cap_ms": cfg.backoff_cap_ms,
            "degrade_watermark": cfg.degrade_watermark,
            "stretch_factors": list(cfg.stretch_factors),
            "degrade_factor": cfg.degrade_factor,
            "cohorts": [c.name for c in self.cohorts],
        }

    def _open_shards(self, memos: Tuple[Dict, Dict, Dict]) -> List[_Shard]:
        """Open-or-create every shard: an existing journal with a
        matching header is recovered and resumed (state carried over),
        a missing one is created fresh."""
        cfg = self.config
        crash_by_shard: Dict[int, List[int]] = {}
        for shard_index, at in cfg.crash_at:
            crash_by_shard.setdefault(shard_index, []).append(at)
        shards = []
        for index in range(cfg.n_shards):
            shard = _Shard(index)
            shard.crash_schedule = sorted(crash_by_shard.get(index, ()))
            if cfg.journal_dir:
                os.makedirs(cfg.journal_dir, exist_ok=True)
                path = os.path.join(
                    cfg.journal_dir, f"shard{index:03d}.journal"
                )
                shard.journal_path = path
                if os.path.exists(path):
                    _, info = self._restore_shard(
                        shard, memos, count_missing=True
                    )
                    shard.seq_base = info["last_intent_seq"] + 1
                    shard.decided = 0
                    shard.start_shed = shard.cum_shed
                    shard.start_timeouts = shard.cum_timeouts
                    shard.start_degraded = shard.cum_degraded
                    shard.recovered += 1
                    resilience.resilience_bump("recovered")
                    shard.recoveries.append({**info, "startup": True})
                else:
                    shard.journal = DecisionJournal.create(
                        path,
                        config=self._journal_config(index),
                        fsync_interval=cfg.fsync_interval,
                    )
            shards.append(shard)
        return shards

    def _shard_state(self, shard: _Shard) -> Dict:
        """Checkpoint payload: resident devices plus the cumulative
        shed/timeout/degraded counters (so recovery can reconcile)."""
        return {
            "schema": FLEET_CHECKPOINT_SCHEMA,
            "shed": shard.cum_shed,
            "timeouts": shard.cum_timeouts,
            "degraded": shard.cum_degraded,
            "devices": {
                device: [_resident_state(r) for r in residents.values()]
                for device, residents in sorted(shard.devices.items())
                if residents
            },
        }

    def _maybe_checkpoint(self, shard: _Shard, incoming: int) -> None:
        """Checkpoint before a batch would push the journal suffix past
        ``checkpoint_interval`` intents — bounding recovery replay to
        ``max(checkpoint_interval, batch_size)``."""
        cfg = self.config
        if shard.journal is None:
            return
        next_seq = shard.seq_base + shard.decided
        pending = next_seq - shard.ckpt_seq
        if pending > 0 and pending + incoming > cfg.checkpoint_interval:
            shard.journal.append_checkpoint(
                next_seq, self._shard_state(shard)
            )
            shard.ckpt_seq = next_seq

    def _entry_from_intent(self, rec: Dict) -> _Queued:
        """Rebuild a queued entry from a journal intent record."""
        req_d = rec["request"]
        extra = rec.get("extra", {})
        device, task = req_d["task"].split("/", 1)
        req = FleetRequest(
            seq=int(extra.get("seq", -1)),
            time_s=req_d["time_s"],
            device=device,
            kind=RequestKind(req_d["kind"]),
            task=task,
            model=req_d.get("model", ""),
            period_s=req_d.get("period_s", 0.0),
        )
        entry = _Queued(
            req,
            degraded=bool(extra.get("degraded")),
            inline=bool(extra.get("inline")),
        )
        entry.attempt = int(extra.get("attempt", 0))
        return entry

    def _restore_shard(
        self,
        shard: _Shard,
        memos: Tuple[Dict, Dict, Dict],
        count_missing: bool,
    ) -> Tuple[List[Tuple[int, FleetDecision]], Dict]:
        """Rebuild a shard from its journal and reopen it for appending.

        Restores the last checkpoint, replays the intent suffix through
        the (pure) decision core, verifies replayed decisions against
        surviving commits (divergence is a :class:`JournalError`, never
        trusted silently), appends repaired commits for intents that
        lost theirs, and reconciles the shed/timeout/degraded counters
        from the checkpoint plus post-checkpoint event records.

        Returns the repaired ``(journal_seq, decision)`` list (the torn
        batch, for the in-run crash path to publish) and an info dict.
        ``count_missing`` folds repaired degraded admits into the
        cumulative counter immediately (startup path — nobody will
        publish them); the in-run path leaves that to ``publish``.
        """
        cfg = self.config
        t0 = time.perf_counter_ns()
        assert shard.journal_path is not None
        scan = scan_journal(shard.journal_path)
        expected = self._journal_config(shard.index)
        if scan.header.get("config") != expected:
            raise JournalError(
                f"{shard.journal_path}: journal was written under a "
                f"different fleet configuration "
                f"(recorded {scan.header.get('config')!r})"
            )
        records = scan.records
        ckpt: Optional[Dict] = None
        ckpt_pos = -1
        last_intent = -1
        for pos, rec in enumerate(records):
            if rec["type"] == "checkpoint":
                ckpt, ckpt_pos = rec, pos
            elif rec["type"] == "intent":
                last_intent = rec["seq"]
        shard.devices = {}
        ckpt_seq = 0
        cum = {"shed": 0, "timeouts": 0, "degraded": 0}
        if ckpt is not None:
            state = ckpt["state"]
            if state.get("schema") != FLEET_CHECKPOINT_SCHEMA:
                raise JournalError(
                    f"{shard.journal_path}: unknown checkpoint schema "
                    f"{state.get('schema')!r}"
                )
            ckpt_seq = ckpt["seq"]
            cum = {
                "shed": state["shed"],
                "timeouts": state["timeouts"],
                "degraded": state["degraded"],
            }
            shard.devices = {
                device: {
                    r["task"]: _resident_from_state(r) for r in residents
                }
                for device, residents in state["devices"].items()
            }
        suffix = records[ckpt_pos + 1:]
        commits = {
            rec["seq"]: rec["decision"]
            for rec in suffix if rec["type"] == "commit"
        }
        for rec in suffix:
            if rec["type"] == "event":
                if rec["kind"] == "shed":
                    cum["shed"] += 1
                elif rec["kind"] == "timeout":
                    cum["timeouts"] += 1
        replayed = 0
        missing: List[Tuple[int, FleetDecision]] = []
        for rec in suffix:
            if rec["type"] != "intent":
                continue
            entry = self._entry_from_intent(rec)
            outcome, reason, mode = self._decide_batch(
                [entry], shard.devices, memos
            )[0]
            replayed += 1
            decision = FleetDecision(
                seq=entry.req.seq, device=entry.req.device,
                task=entry.req.task, kind=entry.req.kind.value,
                outcome=outcome, reason=reason, shard=shard.index,
                mode=mode, attempt=entry.attempt,
            )
            want = commits.get(rec["seq"])
            if want is not None:
                if decision.to_dict() != want:
                    raise JournalError(
                        f"{shard.journal_path}: replay divergence at "
                        f"journal seq {rec['seq']}: replay decided "
                        f"{decision.to_dict()!r}, journal committed "
                        f"{want!r}"
                    )
                if outcome == "admitted" and mode != "full":
                    cum["degraded"] += 1
            else:
                missing.append((rec["seq"], decision))
                if count_missing and outcome == "admitted" and mode != "full":
                    cum["degraded"] += 1
        if scan.truncated_lines:
            os.truncate(shard.journal_path, scan.valid_bytes)
        journal = DecisionJournal.resume(
            shard.journal_path, cfg.fsync_interval
        )
        journal._last_seq = last_intent
        for seq, decision in missing:
            journal.append_commit(seq, decision.to_dict())
        shard.journal = journal
        shard.ckpt_seq = ckpt_seq
        shard.cum_shed = cum["shed"]
        shard.cum_timeouts = cum["timeouts"]
        shard.cum_degraded = cum["degraded"]
        info = {
            "checkpoint_seq": ckpt_seq,
            "last_intent_seq": last_intent,
            "decisions_replayed": replayed,
            "commits_repaired": len(missing),
            "records_scanned": len(records) + 1,
            "truncated_lines": scan.truncated_lines,
            "recovery_us": round(
                (time.perf_counter_ns() - t0) / 1000.0, 1
            ),
        }
        return missing, info

    def _crash_and_recover(
        self,
        shard: _Shard,
        memos: Tuple[Dict, Dict, Dict],
    ) -> List[Tuple[int, FleetDecision]]:
        """Kill and restart a shard at the worst point (intents durable,
        commits not), then recover it from its own journal.

        All in-memory shard state — resident devices, cumulative
        counters, the run's decided count — is dropped and rebuilt from
        the journal; the arrival queue survives (it models durable
        ingress upstream of the shard).  Returns the repaired torn-batch
        decisions for the caller to publish.
        """
        resilience.resilience_bump("crashes")
        expect_decided = shard.decided
        assert shard.journal is not None
        shard.journal.close()
        shard.devices = {}
        shard.cum_shed = shard.cum_timeouts = shard.cum_degraded = 0
        shard.decided = 0
        missing, info = self._restore_shard(shard, memos, count_missing=False)
        # Reconstruct this run's decided count from committed intents:
        # everything below the checkpoint plus committed suffix intents.
        committed_total = info["checkpoint_seq"] + (
            info["decisions_replayed"] - info["commits_repaired"]
        )
        shard.decided = committed_total - shard.seq_base
        if shard.decided != expect_decided:
            raise JournalError(
                f"{shard.journal_path}: recovery reconstructed "
                f"{shard.decided} decisions, expected {expect_decided}"
            )
        shard.recovered += 1
        resilience.resilience_bump("recovered")
        shard.recoveries.append({**info, "startup": False})
        return missing

    # -- decision core -------------------------------------------------
    def _ranked(self, ordered: Sequence[_Resident]) -> List[PeriodicTask]:
        """Deadline-monotonic union tasks (same order as the controller).

        ``ordered`` must already be sorted by ``(deadline, task)``.
        """
        buffers = self.config.buffers
        return [
            PeriodicTask(
                name=r.task,
                segments=r.segments,
                period=r.period,
                deadline=r.deadline,
                priority=rank,
                buffers=buffers,
            )
            for rank, r in enumerate(ordered)
        ]

    def _ladder(self, base: _Resident):
        """The degrade-before-shed rungs for one admit candidate.

        Mirrors the PR 3 admission-controller ladder: full service
        first, then rate-stretched releases, then the smaller variant
        (:func:`repro.robust.overload.degraded_variant`, buffers and
        SRAM reservation unchanged), then variant+stretch.
        """
        cfg = self.config
        yield "full", base
        for f in cfg.stretch_factors:
            p = max(1, int(round(base.period * f)))
            yield f"rate/{f:g}", base._replace(
                period=p, deadline=p, mode=f"rate/{f:g}"
            )
        if cfg.degrade_factor < 1.0:
            variant = degraded_variant(
                PeriodicTask(
                    name=base.task, segments=base.segments,
                    period=base.period, deadline=base.deadline,
                    priority=0, buffers=cfg.buffers,
                ),
                cfg.degrade_factor,
            )
            yield "variant", base._replace(segments=variant, mode="variant")
            if cfg.stretch_factors:
                f = cfg.stretch_factors[-1]
                p = max(1, int(round(base.period * f)))
                yield f"variant+rate/{f:g}", base._replace(
                    segments=variant, period=p, deadline=p,
                    mode=f"variant+rate/{f:g}",
                )

    def _decide_degraded(
        self,
        resident: Dict[str, _Resident],
        candidate: _Resident,
        screen_memo: Dict,
    ) -> Tuple[str, str, str]:
        """Decide an over-watermark admit through the degrade ladder.

        Screen-only by design: under overload the expensive exact
        analysis is exactly what the shard cannot afford, and the
        screen is pessimistic — every ladder admit is provably
        schedulable.  ``screen_memo`` is separate from the full path's
        ``verdict_memo`` because a screen verdict is *not* a
        screen-or-analysis verdict (reusing the latter could admit a
        candidate whose screen failed).
        """
        for mode, cand in self._ladder(candidate):
            ranked = sorted(
                [*resident.values(), cand],
                key=lambda r: (r.deadline, r.task),
            )
            vkey = tuple(
                (r.plan_key, r.mode, r.period, r.deadline) for r in ranked
            )
            ok = screen_memo.get(vkey)
            if ok is None:
                ok = bool(mass_screen([self._ranked(ranked)])[0])
                screen_memo[vkey] = ok
            if ok:
                resident[cand.task] = cand
                return ("admitted", "rta-oblivious", mode)
        return ("rejected", "rta: degraded ladder exhausted (screen)", "")

    def _decide_batch(
        self,
        batch: Sequence[_Queued],
        devices: Dict[str, Dict[str, _Resident]],
        memos: Tuple[Dict, Dict, Dict],
    ) -> List[Tuple[str, str, str]]:
        """Decide one batch, mutating per-device state.

        Stage 1 resolves removals/duplicates and plans every admit
        candidate (degrade-tagged entries detour through the ladder);
        stage 2 screens all full-path candidates in one vectorized
        ``mass_screen`` pass; stage 3 runs the exact analysis only for
        screen failures.  Verdicts are bit-identical to deciding the
        requests one at a time (the screen and analysis both are), which
        is what makes decisions batch- and shard-invariant — and what
        makes journal replay after a crash reproduce them exactly.

        Three per-run memos short-circuit the fleet-wide repetition:
        ``plan_memo`` keys plans on their exact inputs ``(cohort, model,
        period, free)``, ``verdict_memo`` keys full-path admission
        verdicts on the candidate union's ranked (plan key, mode)
        sequence, and ``screen_memo`` keys ladder screen verdicts
        likewise.  All memoize pure deterministic functions of their
        keys, so they change no decision — only how often the planner
        and screen actually run.
        """
        cfg = self.config
        plan_memo, verdict_memo, screen_memo = memos
        outcomes: List[Optional[Tuple[str, str, str]]] = [None] * len(batch)
        jobs: List[Tuple[int, Dict[str, _Resident], _Resident, List[_Resident], Tuple]] = []
        for i, entry in enumerate(batch):
            req = entry.req
            resident = devices.get(req.device)
            if resident is None:
                resident = {}
                devices[req.device] = resident
            if req.kind is RequestKind.REMOVE:
                if req.task in resident:
                    del resident[req.task]
                    outcomes[i] = ("removed", "", "")
                else:
                    outcomes[i] = ("ignored", "not-resident", "")
                continue
            if req.task in resident:
                outcomes[i] = ("ignored", "already-resident", "")
                continue
            cohort_index = int(req.device[1:]) % len(self.cohorts)
            platform = self._platforms[cohort_index]
            period = max(1, platform.mcu.seconds_to_cycles(req.period_s))
            free = platform.usable_sram_bytes - sum(
                r.sram_bytes for r in resident.values()
            )
            plan_key = (cohort_index, req.model, period, free)
            plan = plan_memo.get(plan_key)
            if plan is None:
                try:
                    segments, cost = plan_segments(
                        platform, req.model, period, free,
                        quant=cfg.quant, buffers=cfg.buffers,
                    )
                    plan = ("ok", segments, cost)
                except SegmentationError as exc:
                    plan = ("err", f"sram: {exc}")
                plan_memo[plan_key] = plan
            if plan[0] == "err":
                outcomes[i] = ("rejected", plan[1], "")
                continue
            candidate = _Resident(
                task=req.task, model=req.model, segments=plan[1],
                period=period, deadline=period, sram_bytes=plan[2],
                plan_key=plan_key,
            )
            if entry.degraded:
                outcomes[i] = self._decide_degraded(
                    resident, candidate, screen_memo
                )
                continue
            ranked = sorted(
                [*resident.values(), candidate],
                key=lambda r: (r.deadline, r.task),
            )
            # The verdict depends only on the priority-ordered sequence
            # of task bodies (names never enter the RTA math), and each
            # body is determined by its (plan key, mode) pair — a
            # degraded resident shares its plan key with the full-mode
            # plan but not its segments/period.
            vkey = tuple(
                (r.plan_key, r.mode, r.period, r.deadline) for r in ranked
            )
            verdict = verdict_memo.get(vkey)
            if verdict is not None:
                ok, reason = verdict
                if ok:
                    resident[candidate.task] = candidate
                    outcomes[i] = ("admitted", reason, "full")
                else:
                    outcomes[i] = ("rejected", reason, "")
                continue
            jobs.append((i, resident, candidate, ranked, vkey))
        if jobs:
            task_lists = [
                self._ranked(ranked) for _, _, _, ranked, _ in jobs
            ]
            verdicts = mass_screen(task_lists)
            for (i, resident, candidate, ranked, vkey), tasks, ok in zip(
                jobs, task_lists, verdicts
            ):
                reason = "rta-oblivious"
                if not ok:
                    result = segcache.cached_analyze(
                        TaskSet.of(tasks), cfg.method
                    )
                    ok = result.schedulable
                    reason = "analysis"
                if ok:
                    resident[candidate.task] = candidate
                    outcomes[i] = ("admitted", reason, "full")
                    verdict_memo[vkey] = (True, reason)
                else:
                    outcomes[i] = ("rejected", "rta: union unschedulable", "")
                    verdict_memo[vkey] = (False, "rta: union unschedulable")
        return outcomes  # type: ignore[return-value]

    # -- queue/drain machinery -----------------------------------------
    def _take_batch(
        self, shard: _Shard, start_s: float
    ) -> Tuple[List[_Queued], List[Tuple[_Queued, float, float]]]:
        """Pop the next batch: released by ``start_s``, <= 1 per device.

        Same-device followers are held back (order preserved) so every
        device's requests decide in arrival order regardless of batch
        boundaries — the load-bearing half of the identity guarantee.

        With ``timeout_ms`` armed, a head whose wait exceeds the
        virtual deadline is *not* popped: it gets a TIMEOUT record (the
        second return value) and its release moves ``backoff`` into the
        future, blocking the FIFO head — in-place retry preserves
        per-device order by construction, and after ``max_retries`` the
        entry decides unconditionally, so nothing is ever retried into
        oblivion.
        """
        cfg = self.config
        timeout_s = (
            cfg.timeout_ms * 1e-3 if cfg.timeout_ms is not None else None
        )
        batch: List[_Queued] = []
        seen = set()
        holdback: List[_Queued] = []
        timed_out: List[Tuple[_Queued, float, float]] = []
        while shard.queue and len(batch) < cfg.batch_size:
            entry = shard.queue[0]
            if entry.time_s > start_s:
                break
            if (
                timeout_s is not None
                and entry.attempt < cfg.max_retries
                and start_s - entry.time_s > timeout_s
            ):
                waited_ms = (start_s - entry.time_s) * 1e3
                delay_s = self._backoff.delay_s(entry.attempt)
                timed_out.append((entry, waited_ms, delay_s * 1e3))
                entry.attempt += 1
                entry.time_s = start_s + delay_s
                break
            shard.queue.popleft()
            if entry.req.device in seen:
                holdback.append(entry)
                continue
            seen.add(entry.req.device)
            batch.append(entry)
        for entry in reversed(holdback):
            shard.queue.appendleft(entry)
        return batch, timed_out

    def run(self, trace: FleetTrace) -> FleetReport:
        """Serve one fleet trace end to end."""
        cfg = self.config
        service_s = cfg.service_us * 1e-6
        plan_memo: Dict = {}
        verdict_memo: Dict = {}
        screen_memo: Dict = {}
        memos = (plan_memo, verdict_memo, screen_memo)
        decisions: List[Optional[FleetDecision]] = [None] * len(trace.requests)
        timeout_records: List[FleetDecision] = []
        queueing_ms: List[float] = []
        wall_us: List[float] = []
        engine_ns = 0
        cache_before = segcache.snapshot()
        shards = self._open_shards(memos)

        def publish(
            shard: _Shard, entry: _Queued, decision: FleetDecision,
            completion_s: float, per_us: float, commit: bool,
        ) -> None:
            decisions[entry.req.seq] = decision
            queueing_ms.append((completion_s - entry.orig_time_s) * 1000.0)
            wall_us.append(per_us)
            if decision.outcome == "admitted" and decision.mode != "full":
                shard.cum_degraded += 1
                resilience.resilience_bump("degraded_admits")
            if not entry.inline:
                n = shard.inflight.get(entry.req.device, 0) - 1
                if n > 0:
                    shard.inflight[entry.req.device] = n
                else:
                    shard.inflight.pop(entry.req.device, None)
            if commit and shard.journal is not None:
                shard.journal.append_commit(
                    shard.seq_base + shard.decided, decision.to_dict()
                )
            shard.decided += 1

        def serve_entries(
            shard: _Shard, entries: List[_Queued], completion_s: float
        ) -> None:
            """Journal intents, decide (or crash+recover), publish."""
            nonlocal engine_ns
            if shard.journal is not None:
                self._maybe_checkpoint(shard, len(entries))
                for offset, entry in enumerate(entries):
                    extra: Dict = {"seq": entry.req.seq}
                    if entry.attempt:
                        extra["attempt"] = entry.attempt
                    if entry.degraded:
                        extra["degraded"] = True
                    if entry.inline:
                        extra["inline"] = True
                    shard.journal.append_intent(
                        shard.seq_base + shard.decided + offset,
                        entry.req.to_request(),
                        extra=extra,
                    )
            crash = (
                shard.crash_schedule
                and shard.journal is not None
                and shard.crash_schedule[0] < shard.decided + len(entries)
            )
            t0 = time.perf_counter_ns()
            if crash:
                shard.crash_schedule.pop(0)
                repaired = self._crash_and_recover(shard, memos)
                if len(repaired) != len(entries):
                    raise JournalError(
                        f"{shard.journal_path}: recovery repaired "
                        f"{len(repaired)} commits, torn batch has "
                        f"{len(entries)}"
                    )
                batch_decisions = []
                for entry, (_, decision) in zip(entries, repaired):
                    if decision.seq != entry.req.seq:
                        raise JournalError(
                            f"{shard.journal_path}: repaired decision for "
                            f"seq {decision.seq}, expected {entry.req.seq}"
                        )
                    batch_decisions.append(decision)
                commit = False  # recovery already re-committed them
            else:
                outcomes = self._decide_batch(entries, shard.devices, memos)
                batch_decisions = [
                    FleetDecision(
                        seq=e.req.seq, device=e.req.device, task=e.req.task,
                        kind=e.req.kind.value, outcome=o, reason=r,
                        shard=shard.index, mode=m, attempt=e.attempt,
                    )
                    for e, (o, r, m) in zip(entries, outcomes)
                ]
                commit = True
            elapsed_ns = time.perf_counter_ns() - t0
            engine_ns += elapsed_ns
            per_us = elapsed_ns / len(entries) / 1000.0
            for entry, decision in zip(entries, batch_decisions):
                publish(shard, entry, decision, completion_s, per_us, commit)

        def drain(shard: _Shard, now_s: Optional[float]) -> None:
            while shard.queue:
                start_s = max(shard.busy_until_s, shard.queue[0].time_s)
                if now_s is not None and start_s > now_s:
                    return
                batch, timed_out = self._take_batch(shard, start_s)
                for entry, waited_ms, delay_ms in timed_out:
                    shard.cum_timeouts += 1
                    resilience.resilience_bump("timeout_retries")
                    record = FleetDecision(
                        seq=entry.req.seq, device=entry.req.device,
                        task=entry.req.task, kind=entry.req.kind.value,
                        outcome="timeout",
                        reason=(
                            f"deadline: waited {waited_ms:.3f}ms > "
                            f"{cfg.timeout_ms:g}ms; retry in {delay_ms:g}ms"
                        ),
                        shard=shard.index, attempt=entry.attempt - 1,
                    )
                    timeout_records.append(record)
                    if shard.journal is not None:
                        shard.journal.append_event(
                            "timeout", record.to_dict()
                        )
                if not batch:
                    # The head timed out and backed off — its release
                    # moved into the future, so re-evaluate from there.
                    continue
                completion_s = start_s + len(batch) * service_s
                shard.busy_s += len(batch) * service_s
                shard.busy_until_s = completion_s
                serve_entries(shard, batch, completion_s)

        run_t0 = time.perf_counter()
        try:
            for req in trace.requests:
                shard = shards[shard_of(req.device, cfg.n_shards)]
                drain(shard, req.time_s)
                depth = len(shard.queue)
                if depth >= cfg.max_queue_depth:
                    # Terminal rung: try an inline degraded decision
                    # before shedding — safe only when the device has
                    # nothing queued on this shard (else the queue jump
                    # would break per-device order).
                    if (
                        cfg.degrade_watermark is not None
                        and req.kind is RequestKind.ADMIT
                        and req.device not in shard.inflight
                    ):
                        entry = _Queued(req, degraded=True, inline=True)
                        serve_entries(shard, [entry], req.time_s)
                        continue
                    shard.cum_shed += 1
                    decision = FleetDecision(
                        seq=req.seq, device=req.device, task=req.task,
                        kind=req.kind.value, outcome="shed",
                        reason=(
                            f"queue-full: depth >= {cfg.max_queue_depth}"
                        ),
                        shard=shard.index,
                    )
                    decisions[req.seq] = decision
                    if shard.journal is not None:
                        shard.journal.append_event("shed", decision.to_dict())
                    continue
                entry = _Queued(req)
                if (
                    cfg.degrade_watermark is not None
                    and depth >= cfg.degrade_watermark
                    and req.kind is RequestKind.ADMIT
                ):
                    entry.degraded = True
                shard.queue.append(entry)
                shard.inflight[req.device] = (
                    shard.inflight.get(req.device, 0) + 1
                )
                shard.peak_depth = max(shard.peak_depth, len(shard.queue))
            for shard in shards:
                drain(shard, None)
        finally:
            for shard in shards:
                if shard.journal is not None:
                    shard.journal.close()
        wall_s = time.perf_counter() - run_t0

        counts = {
            "admitted": 0, "rejected_sram": 0, "rejected_rta": 0,
            "removed": 0, "ignored": 0, "shed": 0,
        }
        degraded_admits = 0
        finals = [d for d in decisions if d is not None]
        for d in finals:
            if d.outcome == "rejected":
                counts[
                    "rejected_sram" if d.reason.startswith("sram")
                    else "rejected_rta"
                ] += 1
            else:
                counts[d.outcome] += 1
            if d.outcome == "admitted" and d.mode != "full":
                degraded_admits += 1

        shard_stats = [
            {
                "shard": s.index,
                "decided": s.decided,
                "shed": s.run_shed,
                "timeouts": s.run_timeouts,
                "degraded_admits": s.run_degraded,
                "recovered": s.recovered,
                "recoveries": list(s.recoveries),
                "peak_depth": s.peak_depth,
                "busy_s": round(s.busy_s, 6),
                "busy_until_s": round(s.busy_until_s, 6),
                "journal_records": (
                    s.journal.records_written if s.journal is not None else 0
                ),
            }
            for s in shards
        ]
        return FleetReport(
            n_devices=trace.n_devices,
            n_shards=cfg.n_shards,
            batch_size=cfg.batch_size,
            service_us=cfg.service_us,
            duration_s=trace.duration_s,
            arrival=trace.arrival,
            requests=len(trace.requests),
            admitted=counts["admitted"],
            rejected_sram=counts["rejected_sram"],
            rejected_rta=counts["rejected_rta"],
            removed=counts["removed"],
            ignored=counts["ignored"],
            shed=counts["shed"],
            decisions=finals,
            shard_stats=shard_stats,
            queueing_latency_ms=latency_stats(queueing_ms, digits=3),
            decision_latency_us=latency_stats(wall_us),
            wall_s=wall_s,
            engine_s=engine_ns / 1e9,
            cache=segcache.delta_since(cache_before),
            wall_latencies_us=wall_us,
            degraded_admits=degraded_admits,
            timeout_retries=len(timeout_records),
            recovered=sum(s.recovered for s in shards),
            timeout_decisions=timeout_records,
        )
