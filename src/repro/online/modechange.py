"""Sound mode-change protocols for the online runtime.

The classic mode-change hazard: during a transition window, tasks can
suffer interference from *both* the outgoing and the incoming
configuration, which neither steady-state analysis covers.  The runtime
uses two provably sound strategies and picks per request:

**Immediate switch.**  The safe analyses in :mod:`repro.core.analysis`
are critical-instant (sporadic) arguments — valid for *any* release
pattern of the analysed set, with no assumption about when each task
starts.  Hence:

* *Admit* is immediately sound once the union (resident + candidate)
  passes analysis: pre-switch pending jobs are releases of that same
  union.
* *Remove* is immediately sound: stopping releases only removes
  interference.
* *Rescale* is immediately sound only if the **transitional union**
  (others + outgoing instance + incoming instance, as independent
  sporadic tasks) passes — that set over-approximates every schedule in
  which the old instance stops at the switch and the new one starts.

**Drain-then-switch.**  When the transitional union fails, the outgoing
instance stops releasing at the request and the incoming instance is
held back until an *idle instant* — a point with no pending work at all
— has provably occurred.  :func:`idle_instant_bound` bounds the first
idle instant from worst-case (synchronous) backlog via a busy-period
fixpoint over the serialized per-job demand ``C_i + L_i``; after an idle
instant the history resets, so steady-state analysis of the new
configuration covers everything that follows.  The bound is finite only
when the serialized utilization is below one — precisely the regime
where the pipeline's overlap is *not* load-bearing; otherwise the
rescale is rejected rather than risk an unsound transition.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from repro.sched.task import PeriodicTask

#: Fixpoint iteration guard (the utilization test already rules out true
#: divergence; this bounds pathological convergence).
_MAX_ITERATIONS = 4096


class Protocol(enum.Enum):
    """Mode-change strategy selection.

    ``AUTO`` uses the cheapest sound option per request; ``IMMEDIATE``
    refuses changes that would need a drain; ``DRAIN`` forces every
    switch behind an idle instant (except where immediate is the only
    sound option left, i.e. an unbounded drain on a plain admit).
    """

    AUTO = "auto"
    IMMEDIATE = "immediate"
    DRAIN = "drain"


def serialized_utilization(tasks: Sequence[PeriodicTask]) -> float:
    """Total utilization if every job's load and compute were serialized.

    This over-approximates the demand of the real two-resource system
    (CPU computes overlap DMA loads), which is exactly what makes the
    idle-instant bound below safe.
    """
    return sum((t.total_compute + t.total_load) / t.period for t in tasks)


def drain_start(now: int, tasks: Sequence[PeriodicTask]) -> Optional[int]:
    """Earliest provably-safe switch cycle behind an idle instant.

    Convenience over :func:`idle_instant_bound`: the returned cycle is
    absolute (``now + bound``), which is what both the admit and the
    rescale drain paths commit as the incoming instance's start cycle.
    Returns ``None`` when no finite bound exists — the caller must then
    either fall back to an immediate switch (sound for admits) or reject
    the change (rescales).
    """
    bound = idle_instant_bound(tasks)
    return None if bound is None else now + bound


def idle_instant_bound(tasks: Sequence[PeriodicTask]) -> Optional[int]:
    """Upper bound on cycles until the system is provably idle once.

    Busy-period fixpoint over serialized demand, from worst-case
    (synchronous, fully backlogged) state::

        L = sum_i ceil(L / T_i) * (C_i + L_i)

    Any busy interval of the real system consumes at least one cycle of
    serialized demand per cycle (the executor is work-conserving, so
    some resource is active whenever work is pending), so the first
    instant with no pending work occurs within ``L*`` cycles regardless
    of actual phasing.  Returns ``None`` when no finite bound exists
    (serialized utilization >= 1 or the fixpoint fails to converge).
    """
    if not tasks:
        return 0
    if serialized_utilization(tasks) >= 1.0:
        return None
    demands = [(t.period, t.total_compute + t.total_load) for t in tasks]
    length = sum(d for _, d in demands)
    if length == 0:
        return 0
    for _ in range(_MAX_ITERATIONS):
        demand = sum(-(-length // period) * d for period, d in demands)
        if demand <= length:
            return length
        length = demand
    return None
