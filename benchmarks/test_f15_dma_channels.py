"""Benchmark for EXP-F15: DMA channel count ablation (extension)."""

from conftest import bench_experiment


def test_f15_dma_channels(benchmark):
    result = bench_experiment(benchmark, "EXP-F15", n_sets=4)
    for row in result.rows:
        ratio = row[-1]
        if ratio is not None:
            assert ratio <= 1.05, "second channel should not hurt responses"
