"""Priority assignment: DM/RM heuristics and Audsley's algorithm.

Priorities are integers; **lower number = higher priority**.  The
heuristics are deterministic (ties broken by name).  Audsley's optimal
priority assignment (OPA) is run against any of the analyses in
:mod:`repro.core.analysis`; note that jitter-chained interference makes
those analyses only *approximately* OPA-compatible, so Audsley here is a
powerful heuristic rather than provably optimal — the standard situation
for holistic analyses (documented in DESIGN.md).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.analysis import AnalysisResult, analyze
from repro.sched.rta import FixpointCache
from repro.sched.task import TaskSet


def deadline_monotonic(taskset: TaskSet) -> TaskSet:
    """Assign priorities by ascending relative deadline (DM)."""
    order = sorted(taskset, key=lambda t: (t.deadline, t.period, t.name))
    mapping = {task.name: prio for prio, task in enumerate(order)}
    return TaskSet.of(t.with_priority(mapping[t.name]) for t in taskset)


def rate_monotonic(taskset: TaskSet) -> TaskSet:
    """Assign priorities by ascending period (RM)."""
    order = sorted(taskset, key=lambda t: (t.period, t.deadline, t.name))
    mapping = {task.name: prio for prio, task in enumerate(order)}
    return TaskSet.of(t.with_priority(mapping[t.name]) for t in taskset)


def audsley(
    taskset: TaskSet,
    method: str = "rtmdm",
    analyze_fn: Callable[[TaskSet, str], AnalysisResult] = analyze,
) -> Optional[TaskSet]:
    """Audsley's priority assignment against a chosen analysis.

    Starting from the lowest priority level, find any task that is
    schedulable at that level assuming all still-unassigned tasks are
    above it; repeat upward.  Returns the prioritized task set, or None
    when no assignment makes every task schedulable under ``method``.
    """
    if analyze_fn is analyze:
        # Successive trial sets share most of their fixpoint problems
        # (only the candidate at `level` and the compacted prefix move);
        # a per-search memo skips the repeated iterations outright.
        cache = FixpointCache()
        analyze_fn = lambda ts, m: analyze(ts, m, cache=cache)  # noqa: E731
    names = [t.name for t in taskset]
    unassigned = list(names)
    assigned: dict = {}
    for level in range(len(names) - 1, -1, -1):
        placed = None
        for candidate in sorted(unassigned):
            trial = {}
            next_high = 0
            for name in names:
                if name == candidate:
                    trial[name] = level
                elif name in assigned:
                    trial[name] = assigned[name]
                else:
                    trial[name] = next_high
                    next_high += 1
            trial_set = TaskSet.of(
                t.with_priority(trial[t.name]) for t in taskset
            )
            result = analyze_fn(trial_set, method)
            bound = result.wcrt[candidate]
            if bound is not None and bound <= trial_set.by_name(candidate).deadline:
                placed = candidate
                break
        if placed is None:
            return None
        assigned[placed] = level
        unassigned.remove(placed)
    final = TaskSet.of(t.with_priority(assigned[t.name]) for t in taskset)
    if not analyze_fn(final, method).schedulable:
        # Jitter chaining can break OPA monotonicity in corner cases; the
        # final verdict is always re-checked on the complete assignment.
        return None
    return final


def audsley_batch(
    taskset: TaskSet, method: str = "rtmdm"
) -> Optional[TaskSet]:
    """:func:`audsley` with each level's candidates analyzed as one batch.

    At every priority level all remaining candidates' trial sets go
    through one vectorized batch analysis
    (:func:`repro.sched.vecrta.analyze_taskset_batch`; scalar fallback
    when the engine is off) instead of sequential scalar calls, and the
    first candidate in sorted order that passes is placed — the same
    task the scalar search commits to, so the returned assignment (or
    None) is identical.  Trades some extra analyses (candidates past the
    first hit) for one array solve per level.
    """
    from repro.sched import vecrta

    cache = FixpointCache()
    names = [t.name for t in taskset]
    unassigned = list(names)
    assigned: dict = {}
    for level in range(len(names) - 1, -1, -1):
        candidates = sorted(unassigned)
        trials = []
        for candidate in candidates:
            trial = {}
            next_high = 0
            for name in names:
                if name == candidate:
                    trial[name] = level
                elif name in assigned:
                    trial[name] = assigned[name]
                else:
                    trial[name] = next_high
                    next_high += 1
            trials.append(
                TaskSet.of(t.with_priority(trial[t.name]) for t in taskset)
            )
        results = vecrta.analyze_taskset_batch(
            [(trial_set, method) for trial_set in trials], cache=cache
        )
        placed = None
        for candidate, trial_set, result in zip(candidates, trials, results):
            bound = result.wcrt[candidate]
            if bound is not None and bound <= trial_set.by_name(candidate).deadline:
                placed = candidate
                break
        if placed is None:
            return None
        assigned[placed] = level
        unassigned.remove(placed)
    final = TaskSet.of(t.with_priority(assigned[t.name]) for t in taskset)
    final_result = vecrta.analyze_taskset_batch([(final, method)], cache=cache)[0]
    if not final_result.schedulable:
        # Same corner-case recheck as the scalar search.
        return None
    return final


def assign_priorities(
    taskset: TaskSet, strategy: str = "dm+audsley", method: str = "rtmdm"
) -> Optional[TaskSet]:
    """Priority assignment pipeline used by the framework.

    ``"dm"``/``"rm"`` apply the heuristic unconditionally.
    ``"dm+audsley"`` tries DM first; if the analysis rejects the DM
    assignment, falls back to Audsley's search.  Returns None only when
    no tried assignment is schedulable (callers may still use the DM
    assignment for reporting).
    """
    if strategy == "dm":
        return deadline_monotonic(taskset)
    if strategy == "rm":
        return rate_monotonic(taskset)
    if strategy == "dm+audsley":
        dm = deadline_monotonic(taskset)
        if analyze(dm, method).schedulable:
            return dm
        return audsley(taskset, method)
    raise ValueError(f"unknown priority strategy {strategy!r}")


def priority_levels(taskset: TaskSet) -> List[str]:
    """Task names ordered highest priority first (report helper)."""
    return [t.name for t in taskset.sorted_by_priority()]
