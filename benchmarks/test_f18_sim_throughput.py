"""Benchmark for EXP-F18: discrete-event simulator throughput.

The SoA simulator core's headline number: scalar-equivalent heap events
processed per second, scalar event loop vs the arena-backed SoA core vs
the SoA core composed with steady-state folding.  The driver asserts
bit-identity against the scalar oracle in-process; the rows additionally
assert the SoA engine actually engaged (no silent stand-down) and the
throughputs land in ``meta`` and hence in BENCH_suite.json.
"""

from conftest import bench_experiment


def test_f18_sim_throughput(benchmark):
    result = bench_experiment(benchmark, "EXP-F18")
    modes = result.column("mode")
    assert modes == ["scalar", "soa", "soa+fold"]
    # Every mode replays the same workload with the same outcome.
    assert len(set(result.column("misses"))) == 1
    assert all(flag == 1 for flag in result.column("identical"))
    # The SoA engine must have run every set in both SoA modes (numpy
    # present, kill switch off, nothing stood down to the scalar path)
    # and none in the scalar mode.
    scalar_runs, soa_runs, fold_runs = result.column("soa_runs")
    assert scalar_runs == 0
    sets = result.column("sets")[0]
    assert soa_runs == sets and fold_runs == sets
    assert result.meta["events_total"] > 0
    for key in ("scalar_events_per_s", "soa_events_per_s",
                "soa_fold_events_per_s"):
        assert result.meta[key] is None or result.meta[key] > 0
