"""Sequential baseline: staging with no transfer/compute overlap.

This is what a straightforward port of a TinyML runtime to external
memory does: for each segment, the CPU kicks the transfer and busy-waits,
then runs the kernels.  The loads therefore consume CPU time and the DMA
is never contended (there is at most one transfer in flight system-wide,
always owned by the running task).

Modelled by folding each segment's load cycles into its compute cycles
and dropping the DMA leg.
"""

from __future__ import annotations

from repro.core import segcache
from repro.sched.task import PeriodicTask, Segment


def _fold_loads(segments) -> tuple:
    return tuple(
        Segment(
            name=s.name,
            load_cycles=0,
            compute_cycles=s.compute_cycles + s.load_cycles,
            load_bytes=s.load_bytes,
        )
        for s in segments
    )


def sequentialize(task: PeriodicTask) -> PeriodicTask:
    """The sequential (busy-wait staging) version of a segmented task."""
    segments = segcache.cached_segment_transform(
        "sequential", task.segments, None, lambda: _fold_loads(task.segments)
    )
    return PeriodicTask(
        name=task.name,
        segments=segments,
        period=task.period,
        deadline=task.deadline,
        priority=task.priority,
        phase=task.phase,
        buffers=1,
    )
