"""SVG rendering of execution traces.

A dependency-free Gantt renderer: one swim-lane per (task, resource),
compute bursts and DMA transfers as rectangles, releases as up-ticks,
deadline misses as red markers.  Useful for inspecting schedules outside
the terminal; the examples write these next to their text output.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hw.mcu import McuSpec
from repro.sched.trace import Trace

#: Color-blind-safe categorical palette (Okabe-Ito).
_PALETTE = (
    "#0072B2",
    "#E69F00",
    "#009E73",
    "#CC79A7",
    "#56B4E9",
    "#D55E00",
    "#F0E442",
    "#999999",
)

_LANE_H = 22
_LANE_GAP = 6
_MARGIN_LEFT = 130
_MARGIN_TOP = 30
_AXIS_H = 28


def _esc(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def trace_to_svg(
    trace: Trace,
    mcu: Optional[McuSpec] = None,
    until: Optional[int] = None,
    width_px: int = 960,
    title: str = "",
) -> str:
    """Render a trace as an SVG document (returned as a string).

    Args:
        trace: The recorded execution trace.
        mcu: When given, the time axis is labelled in milliseconds;
            otherwise in raw cycles.
        until: Clip the rendering to ``[0, until]`` cycles.
        width_px: Drawing width of the timeline area.
        title: Optional chart title.
    """
    horizon = until or max((e.end for e in trace.events), default=0)
    if horizon <= 0:
        return (
            '<svg xmlns="http://www.w3.org/2000/svg" width="200" height="40">'
            "<text x='8' y='24'>(empty trace)</text></svg>"
        )
    tasks = sorted({e.task for e in trace.events if e.task})
    colors = {name: _PALETTE[i % len(_PALETTE)] for i, name in enumerate(tasks)}
    lanes: List[tuple] = []
    for task in tasks:
        lanes.append((task, "cpu"))
        lanes.append((task, "dma"))

    def x_of(cycles: int) -> float:
        return _MARGIN_LEFT + width_px * min(cycles, horizon) / horizon

    def y_of(lane_index: int) -> int:
        return _MARGIN_TOP + lane_index * (_LANE_H + _LANE_GAP)

    height = _MARGIN_TOP + len(lanes) * (_LANE_H + _LANE_GAP) + _AXIS_H
    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{_MARGIN_LEFT + width_px + 20}" height="{height}" '
        f'font-family="sans-serif" font-size="11">'
    )
    if title:
        parts.append(
            f'<text x="{_MARGIN_LEFT}" y="16" font-size="13" '
            f'font-weight="bold">{_esc(title)}</text>'
        )
    # Lane labels and baselines.
    for index, (task, resource) in enumerate(lanes):
        y = y_of(index)
        parts.append(
            f'<text x="6" y="{y + _LANE_H - 7}" fill="#333">'
            f"{_esc(task)}/{resource}</text>"
        )
        parts.append(
            f'<line x1="{_MARGIN_LEFT}" y1="{y + _LANE_H}" '
            f'x2="{_MARGIN_LEFT + width_px}" y2="{y + _LANE_H}" '
            f'stroke="#ddd" stroke-width="1"/>'
        )
    # Busy intervals.
    lane_index = {lane: i for i, lane in enumerate(lanes)}
    for resource in ("cpu", "dma"):
        for event in trace.intervals(resource):
            if event.time >= horizon:
                continue
            index = lane_index[(event.task, resource)]
            x0, x1 = x_of(event.time), x_of(event.end)
            y = y_of(index)
            fill = colors[event.task]
            opacity = "1.0" if resource == "cpu" else "0.55"
            parts.append(
                f'<rect x="{x0:.2f}" y="{y}" width="{max(0.5, x1 - x0):.2f}" '
                f'height="{_LANE_H - 4}" fill="{fill}" fill-opacity="{opacity}">'
                f"<title>{_esc(event.task)} job {event.job} seg {event.segment} "
                f"[{event.time}, {event.end})</title></rect>"
            )
    # Releases (ticks on the CPU lane) and misses (red diamonds).
    for event in trace.points("release"):
        if event.time >= horizon or (event.task, "cpu") not in lane_index:
            continue
        y = y_of(lane_index[(event.task, "cpu")])
        x = x_of(event.time)
        parts.append(
            f'<line x1="{x:.2f}" y1="{y - 3}" x2="{x:.2f}" y2="{y + _LANE_H - 4}" '
            f'stroke="#444" stroke-width="1" stroke-dasharray="2,2"/>'
        )
    for event in trace.points("miss"):
        if event.time >= horizon or (event.task, "cpu") not in lane_index:
            continue
        y = y_of(lane_index[(event.task, "cpu")]) + _LANE_H // 2
        x = x_of(event.time)
        parts.append(
            f'<path d="M {x:.2f} {y - 6} L {x + 6:.2f} {y} L {x:.2f} {y + 6} '
            f'L {x - 6:.2f} {y} Z" fill="#d00"><title>deadline miss: '
            f"{_esc(event.task)} job {event.job}</title></path>"
        )
    # Overload-management events (repro.robust): aborts as dark-red
    # crosses, skipped releases as grey crosses, mode switches as
    # down/up triangles.
    _overload_marks = (
        ("abort", "#900", "aborted at deadline"),
        ("skip", "#888", "release skipped"),
    )
    for kind, color, label in _overload_marks:
        for event in trace.points(kind):
            if event.time >= horizon or (event.task, "cpu") not in lane_index:
                continue
            y = y_of(lane_index[(event.task, "cpu")]) + _LANE_H // 2
            x = x_of(event.time)
            parts.append(
                f'<path d="M {x - 5:.2f} {y - 5} L {x + 5:.2f} {y + 5} '
                f'M {x - 5:.2f} {y + 5} L {x + 5:.2f} {y - 5}" '
                f'stroke="{color}" stroke-width="2" fill="none">'
                f"<title>{label}: {_esc(event.task)} job {event.job}"
                f"</title></path>"
            )
    # Fault-recovery events (repro.robust.escalation / .recovery):
    # terminal transfer faults as filled red squares on the DMA lane,
    # quarantines as hatched boxes, REMAP / XIP_FALLBACK as circles.
    for event in trace.points("fault"):
        if event.time >= horizon or (event.task, "dma") not in lane_index:
            continue
        y = y_of(lane_index[(event.task, "dma")]) + _LANE_H // 2
        x = x_of(event.time)
        parts.append(
            f'<rect x="{x - 4:.2f}" y="{y - 4}" width="8" height="8" '
            f'fill="#b00" stroke="#600"><title>transfer fault: '
            f"{_esc(event.task)} job {event.job} seg {event.segment}"
            f"</title></rect>"
        )
    _recovery_marks = (
        ("remap", "#0072B2", "remapped to mirror copy"),
        ("xip-fallback", "#E69F00", "fell back to XIP execution"),
    )
    for kind, color, label in _recovery_marks:
        for event in trace.points(kind):
            if event.time >= horizon or (event.task, "dma") not in lane_index:
                continue
            y = y_of(lane_index[(event.task, "dma")]) + _LANE_H // 2
            x = x_of(event.time)
            parts.append(
                f'<circle cx="{x:.2f}" cy="{y}" r="5" fill="none" '
                f'stroke="{color}" stroke-width="2">'
                f"<title>{label}: {_esc(event.task)} job {event.job} "
                f"seg {event.segment}</title></circle>"
            )
    for event in trace.points("quarantine"):
        if event.time >= horizon or (event.task, "cpu") not in lane_index:
            continue
        y = y_of(lane_index[(event.task, "cpu")]) + _LANE_H // 2
        x = x_of(event.time)
        parts.append(
            f'<g stroke="#b00" stroke-width="2" fill="none">'
            f'<rect x="{x - 6:.2f}" y="{y - 6}" width="12" height="12"/>'
            f'<line x1="{x - 6:.2f}" y1="{y - 6}" x2="{x + 6:.2f}" y2="{y + 6}"/>'
            f"<title>task quarantined: {_esc(event.task)} job {event.job}"
            f"</title></g>"
        )
    _mode_marks = (
        ("degrade", "#D55E00", "switched to fallback variant", 1),
        ("recover", "#009E73", "recovered to full model", -1),
    )
    for kind, color, label, direction in _mode_marks:
        for event in trace.points(kind):
            if event.time >= horizon or (event.task, "cpu") not in lane_index:
                continue
            y = y_of(lane_index[(event.task, "cpu")]) + _LANE_H // 2
            x = x_of(event.time)
            tip, base = y + 6 * direction, y - 6 * direction
            parts.append(
                f'<path d="M {x - 6:.2f} {base} L {x + 6:.2f} {base} '
                f'L {x:.2f} {tip} Z" fill="{color}">'
                f"<title>{label}: {_esc(event.task)} job {event.job}"
                f"</title></path>"
            )
    # Time axis.
    axis_y = _MARGIN_TOP + len(lanes) * (_LANE_H + _LANE_GAP) + 8
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{axis_y}" '
        f'x2="{_MARGIN_LEFT + width_px}" y2="{axis_y}" stroke="#333"/>'
    )
    for tick in range(11):
        cycles = horizon * tick // 10
        x = x_of(cycles)
        if mcu is not None:
            label = f"{mcu.cycles_to_ms(cycles):.1f}ms"
        else:
            label = f"{cycles}"
        parts.append(
            f'<line x1="{x:.2f}" y1="{axis_y}" x2="{x:.2f}" y2="{axis_y + 4}" '
            f'stroke="#333"/>'
        )
        parts.append(
            f'<text x="{x:.2f}" y="{axis_y + 16}" text-anchor="middle" '
            f'fill="#333">{label}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def write_svg(
    trace: Trace,
    path: str,
    mcu: Optional[McuSpec] = None,
    until: Optional[int] = None,
    title: str = "",
) -> None:
    """Render and write a trace SVG to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace_to_svg(trace, mcu=mcu, until=until, title=title))
