"""Platform presets: representative MCUs and external memories.

The parts below are the classes of hardware a DAC'24 multi-DNN-on-MCU
evaluation would target.  Clock/memory figures follow the public
datasheets; external-memory bandwidths are sustained figures after
protocol overhead.

Use :func:`get_platform` with one of the keys in :data:`PLATFORMS`, or
compose your own :class:`~repro.hw.platform.Platform` from
:data:`MCUS`/:data:`EXTERNAL_MEMORIES`.
"""

from __future__ import annotations

from typing import Dict

from repro.hw.mcu import McuSpec
from repro.hw.memory import ExternalMemory
from repro.hw.platform import Platform

KIB = 1024
MIB = 1024 * 1024

MCUS: Dict[str, McuSpec] = {
    "stm32f446": McuSpec(
        name="STM32F446",
        clock_hz=180_000_000,
        sram_bytes=128 * KIB,
        flash_bytes=512 * KIB,
    ),
    "stm32f746": McuSpec(
        name="STM32F746",
        clock_hz=216_000_000,
        sram_bytes=320 * KIB,
        flash_bytes=1 * MIB,
    ),
    "stm32h743": McuSpec(
        name="STM32H743",
        clock_hz=480_000_000,
        sram_bytes=1 * MIB,  # 1 MiB total SRAM (AXI + D1/D2/D3 domains)
        flash_bytes=2 * MIB,
    ),
    "stm32l4r5": McuSpec(
        name="STM32L4R5",
        clock_hz=120_000_000,
        sram_bytes=640 * KIB,
        flash_bytes=2 * MIB,
    ),
    "apollo4": McuSpec(
        name="Apollo4",
        clock_hz=192_000_000,
        sram_bytes=384 * KIB,
        flash_bytes=2 * MIB,
        dsp_extensions=True,
    ),
}

EXTERNAL_MEMORIES: Dict[str, ExternalMemory] = {
    # Quad-SPI NOR flash at 133 MHz, 4 data lines: ~66 MB/s raw, ~48 MB/s
    # sustained after command overhead.  Read-only at runtime.
    "qspi-nor": ExternalMemory(
        name="QSPI-NOR",
        read_bandwidth_bps=48e6,
        write_bandwidth_bps=0.0,
        setup_latency_s=2.5e-6,
        xip_efficiency=0.35,
        size_bytes=16 * MIB,
    ),
    # Plain SPI PSRAM at 80 MHz single line: slow, cheap.
    "spi-psram": ExternalMemory(
        name="SPI-PSRAM",
        read_bandwidth_bps=9e6,
        write_bandwidth_bps=9e6,
        setup_latency_s=1.5e-6,
        xip_efficiency=0.30,
        size_bytes=8 * MIB,
    ),
    # Octal PSRAM at 133 MHz DDR: the fast option.
    "octal-psram": ExternalMemory(
        name="Octal-PSRAM",
        read_bandwidth_bps=250e6,
        write_bandwidth_bps=250e6,
        setup_latency_s=1.0e-6,
        xip_efficiency=0.50,
        size_bytes=32 * MIB,
    ),
    # SDRAM over FMC (F7/H7 parts): wide and fast but power hungry.
    "sdram-fmc": ExternalMemory(
        name="SDRAM-FMC",
        read_bandwidth_bps=320e6,
        write_bandwidth_bps=320e6,
        setup_latency_s=0.5e-6,
        xip_efficiency=0.60,
        size_bytes=32 * MIB,
    ),
}

PLATFORMS: Dict[str, Platform] = {
    "f446-qspi": Platform("STM32F446+QSPI-NOR", MCUS["stm32f446"], EXTERNAL_MEMORIES["qspi-nor"]),
    "f746-qspi": Platform("STM32F746+QSPI-NOR", MCUS["stm32f746"], EXTERNAL_MEMORIES["qspi-nor"]),
    "f746-octal": Platform(
        "STM32F746+Octal-PSRAM", MCUS["stm32f746"], EXTERNAL_MEMORIES["octal-psram"]
    ),
    "h743-octal": Platform(
        "STM32H743+Octal-PSRAM", MCUS["stm32h743"], EXTERNAL_MEMORIES["octal-psram"]
    ),
    "h743-sdram": Platform(
        "STM32H743+SDRAM", MCUS["stm32h743"], EXTERNAL_MEMORIES["sdram-fmc"]
    ),
    "l4r5-spi": Platform(
        "STM32L4R5+SPI-PSRAM", MCUS["stm32l4r5"], EXTERNAL_MEMORIES["spi-psram"]
    ),
}

#: The platform used by the case study (EXP-T3) and most figures.
DEFAULT_PLATFORM_KEY = "f746-qspi"


def get_mcu(key: str) -> McuSpec:
    """Look up an MCU preset by key, with a helpful error."""
    try:
        return MCUS[key]
    except KeyError:
        raise KeyError(f"unknown MCU {key!r}; available: {sorted(MCUS)}") from None


def get_external_memory(key: str) -> ExternalMemory:
    """Look up an external-memory preset by key, with a helpful error."""
    try:
        return EXTERNAL_MEMORIES[key]
    except KeyError:
        raise KeyError(
            f"unknown external memory {key!r}; available: {sorted(EXTERNAL_MEMORIES)}"
        ) from None


def get_platform(key: str = DEFAULT_PLATFORM_KEY) -> Platform:
    """Look up a platform preset by key, with a helpful error."""
    try:
        return PLATFORMS[key]
    except KeyError:
        raise KeyError(f"unknown platform {key!r}; available: {sorted(PLATFORMS)}") from None
