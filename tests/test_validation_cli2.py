"""Tests for the validation sweep and the extended CLI commands."""


from repro.cli import main
from repro.eval.validation import ValidationReport, Violation, validate
from repro.hw.presets import get_platform


class TestValidation:
    def test_sweep_passes(self):
        report = validate(n_cases=4, utils=(0.3, 0.5), phasings=2, seed=3)
        assert report.passed, [str(v) for v in report.violations]
        assert report.cases == 8
        assert report.simulations >= 0
        assert "PASS" in report.summary()

    def test_reproducible(self):
        a = validate(n_cases=3, utils=(0.4,), phasings=2, seed=9)
        b = validate(n_cases=3, utils=(0.4,), phasings=2, seed=9)
        assert a.admitted_checks == b.admitted_checks
        assert a.simulations == b.simulations

    def test_platform_override(self):
        report = validate(
            platform=get_platform("h743-octal"), n_cases=2, utils=(0.4,), seed=5
        )
        assert report.passed

    def test_report_fail_summary(self):
        report = ValidationReport()
        report.violations.append(
            Violation(method="m", seed=1, task="t", observed=10, bound=5, phases=[0])
        )
        assert not report.passed
        assert "FAIL" in report.summary()


class TestCliExtensions:
    def test_plan_flash(self, capsys):
        assert main(["plan", "doorbell", "--flash"]) == 0
        out = capsys.readouterr().out
        assert "internal flash" in out
        assert "weights=flash" in out

    def test_energy_command(self, capsys):
        assert main(["energy", "doorbell", "--duration", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "CPU active" in out and "total" in out

    def test_validate_command(self, capsys):
        assert main(["validate", "--cases", "2", "--phasings", "1"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_simulate_svg(self, capsys, tmp_path):
        path = tmp_path / "schedule.svg"
        assert (
            main(["simulate", "wearable", "--duration", "0.5", "--svg", str(path)])
            == 0
        )
        assert path.exists()
        content = path.read_text()
        assert content.startswith("<svg")
        assert "wearable" in content

    def test_exp_f14(self, capsys):
        assert main(["exp", "EXP-F14"]) == 0
        assert "Energy per inference" in capsys.readouterr().out
