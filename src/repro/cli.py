"""Command-line interface: ``rtmdm <command>``.

Commands:

* ``models`` — list the model zoo with key statistics.
* ``platforms`` — list platform presets.
* ``plan`` — plan a scenario and print the deployment table.
* ``simulate`` — plan + simulate a scenario, print a Gantt excerpt
  (optionally write an SVG of the schedule).
* ``energy`` — plan + simulate a scenario and report its energy budget.
* ``serve`` — replay a timestamped request trace through the online
  admission controller (``repro.online``).
* ``fleet`` — simulate a device fleet against the sharded admission
  service (``repro.eval.fleet``), optionally backed by a persistent
  plan store.
* ``exp`` — run one (or ``all``) reconstructed experiments.
* ``validate`` — analysis-vs-simulation consistency sweep (self-test).
* ``robust`` — fault-injected simulation of a scenario under every
  overload policy, plus the analysis sensitivity margin.
* ``recover`` — persistent external-memory faults (bad flash regions)
  simulated under each recovery ladder, plus the fault-aware
  admission verdict.

``plan``, ``simulate``, ``serve`` and ``recover`` take ``--json`` for a
machine-readable report on stdout (exit codes are unchanged).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.framework import RtMdm
from repro.dnn.quantization import INT8
from repro.dnn.zoo import build_model, list_models
from repro.eval.experiments import EXPERIMENTS, run_experiment
from repro.eval.reporting import render
from repro.hw.presets import PLATFORMS, get_platform
from repro.workload.scenarios import SCENARIOS, get_scenario


def _cmd_models(_: argparse.Namespace) -> int:
    print(f"{'model':20s} {'layers':>6s} {'MMACs':>8s} {'weights':>10s} {'peak act':>10s}")
    for name in list_models():
        model = build_model(name)
        print(
            f"{name:20s} {model.num_layers:6d} {model.total_macs / 1e6:8.2f} "
            f"{model.total_param_bytes(INT8) / 1024:8.1f}Ki "
            f"{model.peak_activation_bytes(INT8) / 1024:8.1f}Ki"
        )
    return 0


def _cmd_platforms(_: argparse.Namespace) -> int:
    print(f"{'key':12s} {'platform':26s} {'MHz':>5s} {'SRAM':>8s} {'ext BW':>9s}")
    for key, platform in sorted(PLATFORMS.items()):
        print(
            f"{key:12s} {platform.name:26s} {platform.mcu.clock_hz / 1e6:5.0f} "
            f"{platform.mcu.usable_sram_bytes / 1024:6.0f}Ki "
            f"{platform.memory.read_bandwidth_bps / 1e6:7.1f}MB"
        )
    return 0


def _build_config(
    scenario_key: str, platform_key: Optional[str], use_flash: bool = False
):
    scenario = get_scenario(scenario_key)
    platform = get_platform(platform_key or scenario.platform_key)
    rt = RtMdm(platform, use_internal_flash=use_flash)
    for spec in scenario.specs():
        rt.add_task(spec.name, spec.model, spec.period_s, spec.deadline_s)
    return rt.configure()


def _plan_payload(args: argparse.Namespace, config) -> dict:
    payload = {
        "schema": "rtmdm-plan/1",
        "scenario": args.scenario,
        "platform": config.platform.name,
        "feasible": config.feasible,
        "admitted": config.feasible and config.admitted,
    }
    if not config.feasible:
        payload["infeasible_reason"] = config.infeasible_reason
        return payload
    payload["analysis"] = config.analysis.method
    payload["tasks"] = config.report_rows()
    if config.sram_plan:
        payload["sram"] = {
            "used_bytes": config.sram_plan.used,
            "capacity_bytes": config.sram_plan.capacity,
        }
    if config.placement and config.placement.resident:
        payload["internal_flash"] = {
            "used_bytes": config.placement.flash_used,
            "budget_bytes": config.placement.flash_budget,
            "resident": list(config.placement.resident),
        }
    return payload


def _cmd_plan(args: argparse.Namespace) -> int:
    config = _build_config(args.scenario, args.platform, args.flash)
    if args.json:
        print(json.dumps(_plan_payload(args, config), indent=2))
        return 0 if config.feasible and config.admitted else 1
    if not config.feasible:
        print(f"INFEASIBLE: {config.infeasible_reason}")
        return 1
    print(f"platform: {config.platform.name}")
    print(f"admitted: {config.admitted} (analysis: {config.analysis.method})")
    if not args.quiet:
        for row in config.report_rows():
            wcrt = f"{row['wcrt_ms']:.2f}" if row["wcrt_ms"] is not None else "-"
            print(
                f"  {row['task']:10s} prio={row['priority']} T={row['period_ms']:.0f}ms "
                f"segs={row['segments']:3d} sram={row['sram_kib']:.1f}Ki "
                f"weights={row['weights_in']:8s} "
                f"lat={row['latency_ms']:.2f}ms wcrt={wcrt}ms "
                f"{'OK' if row['admitted'] else 'MISS-RISK'}"
            )
    if config.placement and config.placement.resident:
        print(
            f"internal flash: {config.placement.flash_used / 1024:.0f} / "
            f"{config.placement.flash_budget / 1024:.0f} KiB for "
            f"{', '.join(config.placement.resident)}"
        )
    if config.sram_plan:
        print(
            f"SRAM: {config.sram_plan.used / 1024:.1f} / "
            f"{config.sram_plan.capacity / 1024:.1f} KiB used"
        )
    return 0 if config.admitted else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = _build_config(args.scenario, args.platform, args.flash)
    if args.json:
        if not config.feasible:
            print(json.dumps(_plan_payload(args, config), indent=2))
            return 1
        result = config.simulate(duration_s=args.duration)
        mcu = config.platform.mcu
        tasks = {}
        for name, stats in sorted(result.stats.items()):
            worst = stats.max_response
            tasks[name] = {
                "jobs": stats.jobs,
                "misses": stats.misses,
                "unfinished": stats.unfinished,
                "worst_ms": (
                    round(mcu.cycles_to_ms(worst), 3) if worst is not None else None
                ),
            }
        payload = {
            "schema": "rtmdm-sim/1",
            "scenario": args.scenario,
            "platform": config.platform.name,
            "end_ms": round(mcu.cycles_to_ms(result.end_time), 1),
            "total_misses": result.total_misses,
            "no_misses": result.no_misses,
            "fold": {
                "cycles_detected": result.fold_cycles,
                "jobs_skipped": result.fold_jobs_skipped,
            },
            "tasks": tasks,
        }
        print(json.dumps(payload, indent=2))
        return 0 if result.no_misses else 1
    if not config.feasible:
        print(f"INFEASIBLE: {config.infeasible_reason}")
        return 1
    result = config.simulate(duration_s=args.duration, record_trace=True)
    mcu = config.platform.mcu
    print(f"simulated {mcu.cycles_to_ms(result.end_time):.0f} ms")
    print(f"misses: {result.total_misses}")
    for name, stats in result.stats.items():
        worst = stats.max_response
        worst_ms = f"{mcu.cycles_to_ms(worst):.2f}" if worst is not None else "-"
        print(f"  {name:10s} jobs={stats.jobs:4d} worst={worst_ms}ms misses={stats.misses}")
    if result.trace is not None:
        window = min(result.end_time, mcu.seconds_to_cycles(args.gantt_window))
        print(result.trace.gantt(until=window, width=90))
        if args.svg:
            from repro.sched.svg import write_svg

            write_svg(
                result.trace,
                args.svg,
                mcu=mcu,
                until=window,
                title=f"{args.scenario} on {config.platform.name}",
            )
            print(f"wrote {args.svg}")
    return 0 if result.no_misses else 1


def _cmd_energy(args: argparse.Namespace) -> int:
    from repro.hw.energy import energy_of_run, power_model_for

    config = _build_config(args.scenario, args.platform, args.flash)
    if not config.feasible:
        print(f"INFEASIBLE: {config.infeasible_reason}")
        return 1
    result = config.simulate(duration_s=args.duration)
    breakdown = energy_of_run(result, config.taskset, config.platform)
    pm = power_model_for(config.platform.mcu)
    print(f"platform: {config.platform.name} "
          f"(CPU {pm.cpu_active_mw:.0f} mW active, {pm.idle_mw:.1f} mW idle)")
    print(f"simulated {breakdown.duration_s:.2f} s")
    print(f"  CPU active : {breakdown.cpu_mj:9.2f} mJ")
    print(f"  DMA engine : {breakdown.dma_mj:9.2f} mJ")
    print(f"  ext. reads : {breakdown.ext_mj:9.2f} mJ")
    print(f"  idle floor : {breakdown.idle_mj:9.2f} mJ")
    print(f"  total      : {breakdown.total_mj:9.2f} mJ "
          f"(avg {breakdown.average_mw:.1f} mW)")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.eval.validation import validate

    platform = get_platform(args.platform) if args.platform else None
    report = validate(
        platform=platform,
        n_cases=args.cases,
        phasings=args.phasings,
        seed=args.seed,
    )
    print(report.summary())
    for violation in report.violations:
        print(f"  {violation}")
    return 0 if report.passed else 1


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.core.segmentation import SegmentationError, search_segmentation
    from repro.dnn.models import refine_model

    platform = get_platform(args.platform or "f746-qspi")
    model = build_model(args.model)
    print(f"{args.model} on {platform.name}")
    print(f"{'#':>3s} {'layer':22s} {'kind':9s} {'out shape':>14s} "
          f"{'MACs':>10s} {'w bytes':>9s} {'act bytes':>10s}")
    for row in model.summary_rows(INT8):
        print(
            f"{row['index']:3d} {row['name']:22s} {row['kind']:9s} "
            f"{str(row['output_shape']):>14s} {row['macs']:10,d} "
            f"{row['param_bytes']:9,d} {row['working_act_bytes']:10,d}"
        )
    print(
        f"total: {model.total_macs / 1e6:.2f} MMACs, "
        f"{model.total_param_bytes(INT8) / 1024:.1f} KiB weights, "
        f"{model.peak_activation_bytes(INT8) / 1024:.1f} KiB peak activations"
    )
    budget = args.budget * 1024 if args.budget else platform.usable_sram_bytes
    refined = refine_model(model, INT8, max(2048, budget // 8))
    try:
        seg = search_segmentation(refined, platform, budget, INT8, buffers=2)
    except SegmentationError as error:
        print(f"segmentation: INFEASIBLE within {budget // 1024} KiB ({error})")
        return 1
    ms = platform.mcu.cycles_to_ms
    print(
        f"segmentation within {budget // 1024} KiB: {seg.num_segments} segments, "
        f"{seg.sram_need_bytes() / 1024:.1f} KiB SRAM, "
        f"latency {ms(seg.isolated_latency()):.2f} ms "
        f"(sequential {ms(seg.sequential_latency()):.2f} ms)"
    )
    return 0


def _cmd_robust(args: argparse.Namespace) -> int:
    from repro.core.analysis import sensitivity_margin
    from repro.robust.faults import FaultConfig, InflationModel
    from repro.robust.metrics import robustness_summary
    from repro.robust.overload import DegradeConfig, OverrunPolicy, degraded_variant
    from repro.sched.policies import CpuPolicy
    from repro.sched.simulator import SimConfig, simulate

    config = _build_config(args.scenario, args.platform, args.flash)
    if not config.feasible:
        print(f"INFEASIBLE: {config.infeasible_reason}")
        return 1
    platform = config.platform
    taskset = config.taskset
    if args.duration is not None:
        horizon = platform.mcu.seconds_to_cycles(args.duration)
    else:
        from repro.sched.rta import try_hyperperiod

        max_period = max(t.period for t in taskset)
        hp = try_hyperperiod([t.period for t in taskset])
        horizon = min(2 * hp, 200 * max_period) if hp else 200 * max_period
    crc = platform.dma.crc_cycles(platform.mcu)
    try:
        faults = FaultConfig(
            inflation=(
                InflationModel(args.inflation_model)
                if args.inflation > 1.0
                else InflationModel.NONE
            ),
            inflation_factor=args.inflation,
            spike_prob=args.spike_prob,
            dma_fault_prob=args.dma_fault_prob,
            dma_max_retries=3,
            dma_crc_overhead=crc,
            jitter_cycles=args.jitter,
            seed=args.seed,
        )
        degrade = DegradeConfig(
            fallbacks={
                t.name: degraded_variant(t, args.degrade_factor) for t in taskset
            },
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    margin = sensitivity_margin(taskset, "rtmdm")
    print(f"platform: {platform.name}")
    print(
        f"faults: inflation x{args.inflation} ({faults.inflation.value}), "
        f"DMA fault p={args.dma_fault_prob}, jitter<={args.jitter}cyc, "
        f"seed={args.seed}"
    )
    print(
        "analysis sensitivity margin: "
        + (f"x{margin:.3f}" if margin is not None else "none (not admitted nominally)")
    )
    print(
        f"{'policy':12s} {'jobs':>5s} {'miss%':>7s} {'misses':>6s} "
        f"{'aborts':>6s} {'skips':>5s} {'degr%':>6s} {'retries':>7s}"
    )
    worst_miss = 0.0
    for policy in OverrunPolicy:
        result = simulate(
            taskset,
            SimConfig(
                policy=CpuPolicy.FP_NP,
                horizon=horizon,
                faults=faults,
                overrun=policy,
                degrade=degrade if policy is OverrunPolicy.DEGRADE else None,
            ),
        )
        s = robustness_summary(result)
        worst_miss = max(worst_miss, s["miss_ratio"])
        print(
            f"{policy.value:12s} {s['released']:5.0f} {100 * s['miss_ratio']:6.2f}% "
            f"{s['misses']:6.0f} {s['aborts']:6.0f} {s['skips']:5.0f} "
            f"{100 * s['degraded_residency']:5.1f}% {s['dma_retries']:7.0f}"
        )
    return 0 if worst_miss == 0.0 else 1


#: Recovery ladders selectable from ``rtmdm recover --protocol``.
_RECOVER_LADDERS = ("none", "remap", "xip", "full")


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.core.analysis import fault_aware_analysis
    from repro.robust.escalation import (
        EscalationConfig,
        bad_region_span,
        fault_overhead_cycles,
    )
    from repro.robust.metrics import recovery_summary
    from repro.robust.recovery import RecoveryConfig, RecoveryProtocol
    from repro.sched.policies import CpuPolicy
    from repro.sched.simulator import SimConfig, simulate

    config = _build_config(args.scenario, args.platform, args.flash)
    if not config.feasible:
        print(f"INFEASIBLE: {config.infeasible_reason}")
        return 1
    platform = config.platform
    taskset = config.taskset
    if args.duration is not None:
        horizon = platform.mcu.seconds_to_cycles(args.duration)
    else:
        from repro.sched.rta import try_hyperperiod

        max_period = max(t.period for t in taskset)
        hp = try_hyperperiod([t.period for t in taskset])
        horizon = min(2 * hp, 200 * max_period) if hp else 200 * max_period
    crc = platform.dma.crc_cycles(platform.mcu)
    try:
        escalation = EscalationConfig(
            bad_regions=(
                (bad_region_span(taskset, 0.25, 0.25 + args.bad_frac),)
                if args.bad_frac > 0
                else ()
            ),
            crc_fault_prob=args.crc_fault_prob,
            max_retries=args.retries,
            backoff_slot_cycles=crc,
            crc_overhead_cycles=crc,
            mirror_bad=args.mirror_bad,
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    ladders = {
        "none": None,
        "remap": (RecoveryProtocol.REMAP,),
        "xip": (RecoveryProtocol.REMAP, RecoveryProtocol.XIP_FALLBACK),
        "full": (
            RecoveryProtocol.REMAP,
            RecoveryProtocol.XIP_FALLBACK,
            RecoveryProtocol.DEGRADE,
        ),
    }
    selected = (
        list(_RECOVER_LADDERS) if args.protocol == "all" else [args.protocol]
    )
    full_recovery = RecoveryConfig.for_platform(platform, ladder=ladders["full"])
    cost = fault_overhead_cycles(taskset, escalation, recovery=full_recovery)
    fa = fault_aware_analysis(taskset, args.retries, cost)
    protocols = {}
    best_miss: Optional[float] = None
    for name in selected:
        ladder = ladders[name]
        recovery = (
            None
            if ladder is None
            else RecoveryConfig.for_platform(platform, ladder=ladder)
        )
        result = simulate(
            taskset,
            SimConfig(
                policy=CpuPolicy.FP_NP,
                horizon=horizon,
                escalation=escalation,
                recovery=recovery,
            ),
        )
        summary = recovery_summary(result)
        protocols[name] = {
            **summary,
            "quarantined": list(result.quarantined),
            "fault_events": [e.to_dict() for e in result.fault_events],
        }
        miss = summary["survival_miss_ratio"]
        best_miss = miss if best_miss is None else min(best_miss, miss)
    ok = best_miss == 0.0
    if args.json:
        payload = {
            "schema": "rtmdm-recover/1",
            "platform": platform.name,
            "scenario": args.scenario,
            "bad_frac": args.bad_frac,
            "mirror_bad": args.mirror_bad,
            "crc_fault_prob": args.crc_fault_prob,
            "retries": args.retries,
            "seed": args.seed,
            "horizon_cycles": horizon,
            "fault_cost_cycles": cost,
            "fault_aware_admit": fa.schedulable,
            "survives": ok,
            "protocols": protocols,
        }
        print(json.dumps(payload, indent=2))
        return 0 if ok else 1
    print(f"platform: {platform.name}")
    print(
        f"faults: bad region {100 * args.bad_frac:g}% of flash"
        f"{' (mirror too)' if args.mirror_bad else ''}, "
        f"transient CRC p={args.crc_fault_prob}, "
        f"{args.retries} retries/transfer, seed={args.seed}"
    )
    print(
        f"fault-aware admission (k={args.retries}, "
        f"cost={cost} cyc/fault): "
        + ("ADMIT" if fa.schedulable else "REJECT")
    )
    if args.quiet:
        print(f"survives: {'yes' if ok else 'NO'}")
        return 0 if ok else 1
    print(
        f"{'ladder':8s} {'jobs':>5s} {'miss%':>7s} {'faults':>6s} "
        f"{'remaps':>6s} {'xip':>5s} {'degr':>5s} {'quar':>5s} "
        f"{'rec lat':>8s}"
    )
    for name in selected:
        s = protocols[name]
        latency = s["mean_recovery_latency"]
        lat_ms = (
            f"{platform.mcu.cycles_to_ms(latency):.2f}ms" if latency else "-"
        )
        print(
            f"{name:8s} {s['released']:5.0f} "
            f"{100 * s['survival_miss_ratio']:6.2f}% {s['faults']:6.0f} "
            f"{s['remaps']:6.0f} {s['xip_fallbacks']:5.0f} "
            f"{s['degrades']:5.0f} {s['quarantined_tasks']:5.0f} "
            f"{lat_ms:>8s}"
        )
    return 0 if ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.online.events import RequestTrace
    from repro.online.modechange import Protocol
    from repro.online.runtime import OnlineRuntime
    from repro.workload.arrivals import poisson_trace

    platform = get_platform(args.platform or "f746-qspi")
    if args.sram is not None:
        platform = platform.with_sram_bytes(args.sram * 1024)
    if args.trace is not None:
        with open(args.trace, "r", encoding="utf-8") as handle:
            trace = RequestTrace.from_json(handle.read())
    else:
        trace = poisson_trace(args.duration, args.rate, seed=args.seed)
    if args.restore and not args.journal:
        raise ValueError("--restore requires --journal")
    runtime = OnlineRuntime(platform, protocol=Protocol(args.protocol))
    durable = None
    if args.journal:
        from repro.online.durable import serve_trace_durable

        durable = serve_trace_durable(
            runtime,
            trace,
            args.journal,
            checkpoint_interval=args.checkpoint_interval,
            restore=args.restore,
            simulate=not args.no_sim,
        )
        report = durable.report
    else:
        report = runtime.serve(trace, simulate=not args.no_sim)
    if args.json:
        payload = report.to_dict(mcu=platform.mcu)
        if durable is not None:
            payload["durable"] = {
                "journal": args.journal,
                "records": durable.journal_records,
                "checkpoints": durable.checkpoints_written,
                "invariants": dict(durable.invariants),
                "gate": durable.gate.to_dict(),
            }
            if durable.recovery is not None:
                payload["durable"]["recovery"] = durable.recovery.to_dict()
        print(json.dumps(payload, indent=2))
        return 0 if report.sound else 1
    print(f"platform: {platform.name} "
          f"({platform.usable_sram_bytes / 1024:.0f} KiB SRAM)")
    source = args.trace or f"poisson rate={args.rate}/s seed={args.seed}"
    print(f"trace: {source} ({trace.duration_s:g}s, {len(trace)} requests)")
    if durable is not None and durable.recovery is not None:
        rec = durable.recovery
        print(f"recovered from {args.journal}: checkpoint seq {rec.checkpoint_seq}, "
              f"replayed {rec.decisions_replayed} decisions "
              f"({rec.records_scanned} records, "
              f"{rec.truncated_lines} torn lines dropped) "
              f"in {rec.recovery_us / 1000:.1f} ms")
    if not args.quiet:
        for d in report.decisions:
            extra = f" [{d.mode}]" if d.outcome == "admitted" and d.mode != "full" else ""
            detail = f" ({d.reason})" if d.outcome in ("rejected", "ignored") else ""
            proto = f" via {d.protocol}" if d.protocol == "drain" else ""
            print(f"  t={d.time_s:7.3f}s {d.kind:7s} {d.task:10s} "
                  f"{d.outcome}{extra}{proto}{detail}")
    print(f"admitted {report.admitted}/{report.admit_requests} "
          f"({report.degraded} degraded), "
          f"rejected {report.rejected_sram} sram / {report.rejected_rta} rta")
    if durable is not None:
        checks = sum(durable.invariants.values())
        print(f"journal: {args.journal} ({durable.journal_records} records, "
              f"{durable.checkpoints_written} checkpoints); "
              f"invariants: {checks} checks passed")
    if report.sim is not None:
        verdict = "no misses" if report.sim.no_misses else (
            f"{report.sim.total_misses} MISSES")
        print(f"execution: {verdict} over "
              f"{platform.mcu.cycles_to_ms(report.sim.end_time):.0f} ms")
    return 0 if report.sound else 1


def _cmd_fleet_chaos(args: argparse.Namespace) -> int:
    from repro.robust.chaos import FLEET_CHAOS_MODES, quick_fleet_matrix
    from repro.robust.metrics import fleet_chaos_summary

    if args.modes == "all":
        modes = FLEET_CHAOS_MODES
    else:
        modes = tuple(m.strip() for m in args.modes.split(",") if m.strip())
    shard_counts = tuple(
        int(n) for n in str(args.shard_counts).split(",") if n.strip()
    )
    report = quick_fleet_matrix(
        n_devices=args.devices,
        duration_s=args.duration,
        rate_hz=args.rate,
        seed=args.seed,
        modes=modes,
        shard_counts=shard_counts,
        checkpoint_interval=args.checkpoint_interval,
        journal_dir=args.journal_dir,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        return 0 if report.ok else 1
    summary = fleet_chaos_summary(report)
    print(f"fleet matrix: {report.n_devices} devices, {report.requests} "
          f"requests x {len(modes)} modes x shards {shard_counts} "
          f"(checkpoint every {report.checkpoint_interval}) "
          f"-> {summary['cells']} cells")
    if not args.quiet:
        print(f"{'mode':12s} {'cells':>5s} {'identical':>9s} "
              f"{'crashes':>7s} {'replay max':>10s} {'shed':>6s}")
        for mode in modes:
            cells = [c for c in report.cells if c.mode == mode]
            print(
                f"{mode:12s} {len(cells):5d} "
                f"{sum(1 for c in cells if c.identical):9d} "
                f"{sum(c.crashes for c in cells):7d} "
                f"{max((c.max_replayed for c in cells), default=0):10d} "
                f"{sum(c.shed for c in cells):6d}"
            )
    for cell in report.cells:
        if not cell.ok:
            print(f"FAIL {cell.mode} shards={cell.n_shards} "
                  f"frac={cell.crash_frac:g}: identical={cell.identical} "
                  f"replayed={cell.max_replayed} "
                  f"invariants_ok={cell.invariants_ok}")
    checks = sum(report.invariants.values())
    print(f"invariants: {checks} checks "
          f"({', '.join(sorted(report.invariants))})")
    verdict = "OK" if report.ok else "FAILED"
    print(f"fleet chaos matrix: {verdict} "
          f"({summary['identical_cells']}/{summary['cells']} bit-identical, "
          f"{summary['recovered']:g} recoveries, "
          f"max replay {summary['max_replayed']})")
    return 0 if report.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.fleet:
        return _cmd_fleet_chaos(args)

    from repro.online.runtime import OnlineRuntime
    from repro.robust.chaos import CHAOS_MODES, run_matrix
    from repro.robust.metrics import chaos_summary
    from repro.workload.arrivals import poisson_trace

    if args.modes == "all":
        modes = CHAOS_MODES
    else:
        modes = tuple(m.strip() for m in args.modes.split(",") if m.strip())
    platform = get_platform(args.platform or "f746-qspi")
    runtime = OnlineRuntime(platform)
    trace = poisson_trace(args.duration, args.rate, seed=args.seed)
    report = run_matrix(
        runtime,
        trace,
        modes=modes,
        crash_stride=args.crash_stride,
        checkpoint_interval=args.checkpoint_interval,
        seed=args.seed,
        journal_dir=args.journal_dir,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        return 0 if report.ok else 1
    summary = chaos_summary(report)
    print(f"platform: {platform.name}")
    print(f"matrix: {report.n_decisions} decisions x {len(modes)} modes "
          f"(stride {args.crash_stride}, checkpoint every "
          f"{args.checkpoint_interval}) -> {summary['cells']} cells")
    if not args.quiet:
        print(f"{'mode':18s} {'cells':>5s} {'identical':>9s} "
              f"{'replay max':>10s} {'absorbed':>8s}")
        for mode in modes:
            cells = [c for c in report.cells if c.mode == mode]
            print(
                f"{mode:18s} {len(cells):5d} "
                f"{sum(1 for c in cells if c.identical):9d} "
                f"{max((c.decisions_replayed for c in cells), default=0):10d} "
                f"{sum(c.duplicates_absorbed for c in cells):8d}"
            )
    for cell in report.cells:
        if not cell.ok:
            print(f"FAIL {cell.mode} crash_at={cell.crash_at}: "
                  f"identical={cell.identical} "
                  f"replayed={cell.decisions_replayed} "
                  f"(checkpoint seq {cell.checkpoint_seq})")
    checks = sum(report.invariants.values())
    print(f"invariants: {checks} checks "
          f"({', '.join(sorted(report.invariants))})")
    verdict = "OK" if report.ok else "FAILED"
    print(f"chaos matrix: {verdict} "
          f"({summary['identical_cells']}/{summary['cells']} bit-identical, "
          f"max replay {summary['max_replayed']})")
    return 0 if report.ok else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.core import planstore
    from repro.eval.fleet import (
        FleetConfig,
        FleetService,
        decision_identity,
        fleet_trace,
    )

    if args.plan_store:
        planstore.configure(args.plan_store)
        planstore.reset_counters()
    trace = fleet_trace(
        args.devices,
        args.duration,
        args.rate,
        seed=args.seed,
        arrival=args.arrival,
    )
    crash_at = []
    for spec in args.crash_at or ():
        try:
            shard_str, index_str = spec.split(":", 1)
            crash_at.append((int(shard_str), int(index_str)))
        except ValueError:
            print(f"error: --crash-at expects SHARD:INDEX, got {spec!r}",
                  file=sys.stderr)
            return 2
    config = FleetConfig(
        n_shards=args.shards,
        batch_size=args.batch,
        max_queue_depth=args.queue_depth,
        service_us=args.service_us,
        journal_dir=args.journal_dir,
        checkpoint_interval=args.checkpoint_interval,
        crash_at=tuple(crash_at),
        timeout_ms=args.timeout_ms,
        max_retries=args.max_retries,
        backoff_ms=args.backoff_ms,
        degrade_watermark=args.degrade_watermark,
    )
    report = FleetService(config=config).run(trace)
    identity_ok: Optional[bool] = None
    if args.verify_identity:
        serial = FleetService(
            config=replace(config, n_shards=1, journal_dir=None)
        ).run(trace)
        identity_ok = decision_identity(report.decisions) == decision_identity(
            serial.decisions
        )
    ok = identity_ok is not False
    if args.json:
        payload = report.to_dict()
        if identity_ok is not None:
            payload["identity_vs_serial"] = identity_ok
        if args.plan_store:
            payload["planstore"] = planstore.counters_dict()
        print(json.dumps(payload, indent=2))
        return 0 if ok else 1
    print(
        f"fleet: {report.n_devices} devices, {report.arrival} arrivals "
        f"@{args.rate:g}/device/s over {report.duration_s:g}s "
        f"-> {report.requests} requests (seed {args.seed})"
    )
    print(
        f"service: {report.n_shards} shards x batch {report.batch_size}, "
        f"{report.service_us:g}us/decision, queue depth <= {args.queue_depth}"
    )
    if not args.quiet:
        print(f"{'shard':>5s} {'decided':>8s} {'shed':>6s} {'tmout':>6s} "
              f"{'degr':>5s} {'recov':>5s} {'peak q':>7s} "
              f"{'busy s':>7s} {'journal':>8s}")
        for stats in report.shard_stats:
            print(
                f"{stats['shard']:5d} {stats['decided']:8d} "
                f"{stats['shed']:6d} {stats['timeouts']:6d} "
                f"{stats['degraded_admits']:5d} {stats['recovered']:5d} "
                f"{stats['peak_depth']:7d} "
                f"{stats['busy_s']:7.2f} {stats['journal_records']:8d}"
            )
    print(
        f"admitted {report.admitted}/{report.admit_requests} admits, "
        f"rejected {report.rejected_sram} sram / {report.rejected_rta} rta, "
        f"removed {report.removed}, shed {report.shed}"
    )
    if report.degraded_admits or report.timeout_retries or report.recovered:
        print(
            f"resilience: {report.degraded_admits} degraded admits, "
            f"{report.timeout_retries} timeout retries, "
            f"{report.recovered} shard recoveries"
        )
    queueing = report.queueing_latency_ms
    print(
        f"queueing (virtual): p50={queueing['p50']}ms p99={queueing['p99']}ms, "
        f"peak depth {report.peak_queue_depth}, "
        f"utilization {report.shard_utilization:.1%}"
    )
    latency = report.decision_latency_us
    print(
        f"engine: {report.decisions_per_s:,.0f} decisions/s "
        f"(p50={latency['p50']}us p99={latency['p99']}us) "
        f"in {report.wall_s:.2f}s wall"
    )
    if args.plan_store:
        counts = planstore.counters_dict()
        print(
            f"plan store: {args.plan_store} "
            f"({counts['hits']} hits, {counts['misses']} misses, "
            f"{counts['writes']} writes)"
        )
    if identity_ok is not None:
        print(f"identity vs serial: {'OK' if identity_ok else 'MISMATCH'}")
    return 0 if ok else 1


def _run_exp_ids(args: argparse.Namespace, ids: List[str]) -> None:
    for exp_id in ids:
        result = run_experiment(
            exp_id, scale=args.scale, n_sets=args.n_sets, jobs=args.jobs
        )
        print(render(result))
        if args.plot and len(result.rows) >= 2:
            from repro.eval.plots import ascii_plot

            try:
                print()
                print(ascii_plot(result))
            except (TypeError, ValueError):
                pass  # non-sweep results have no meaningful plot
        print()


def _print_runtime_counters() -> None:
    """Steady-state folding and RTA warm-start totals for ``--profile``."""
    from repro.core import segcache

    stats = segcache.stats()
    fold = stats.get("sim.fold", {})
    print(
        "--- steady-state folding ---\n"
        f"  runs={fold.get('runs', 0)} folded={fold.get('folds', 0)} "
        f"cycles_skipped={fold.get('cycles_skipped', 0)} "
        f"jobs_skipped={fold.get('jobs_skipped', 0)}"
    )
    fp = stats.get("rta.fixpoint", {})
    lookups = fp.get("exact_hits", 0) + fp.get("misses", 0)
    hit_rate = fp.get("exact_hits", 0) / lookups if lookups else 0.0
    print(
        "--- rta fixpoint cache ---\n"
        f"  exact_hits={fp.get('exact_hits', 0)} misses={fp.get('misses', 0)} "
        f"warm_starts={fp.get('warm_hits', 0)} hit_rate={hit_rate:.1%}"
    )
    from repro.sched import vecrta

    prof = vecrta.profile()
    print(
        "--- vectorized rta engine ---\n"
        f"  batches={fp.get('vec_batches', 0)} rows={fp.get('vec_rows', 0)} "
        f"stand_downs={fp.get('vec_stand_downs', 0)}\n"
        f"  pack={prof['pack_s']:.3f}s array-iterate={prof['solve_s']:.3f}s "
        f"unpack={prof['unpack_s']:.3f}s"
    )
    from repro.sched import simcore

    soa = stats.get("sim.soa", {})
    sprof = simcore.profile()
    print(
        "--- soa simulator engine ---\n"
        f"  runs={soa.get('sim_soa_runs', 0)} "
        f"events={soa.get('sim_soa_events', 0)} "
        f"stand_downs={soa.get('sim_stand_downs', 0)}\n"
        f"  pack={sprof['pack_s']:.3f}s advance={sprof['advance_s']:.3f}s "
        f"unpack={sprof['unpack_s']:.3f}s"
    )
    res = stats.get("fleet.resilience", {})
    print(
        "--- fleet resilience ---\n"
        f"  degraded_admits={res.get('degraded_admits', 0)} "
        f"timeout_retries={res.get('timeout_retries', 0)} "
        f"recovered={res.get('recovered', 0)} "
        f"crashes={res.get('crashes', 0)}"
    )


def _cmd_exp(args: argparse.Namespace) -> int:
    ids = sorted(EXPERIMENTS) if args.id == "all" else [args.id.upper()]
    if not args.profile:
        _run_exp_ids(args, ids)
        return 0
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        _run_exp_ids(args, ids)
    finally:
        profiler.disable()
        print("--- profile (top 25 by cumulative time) ---")
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(25)
        _print_runtime_counters()
    return 0


def _typed_errors() -> tuple:
    """Exception types reported as one-line typed errors (exit code 2).

    Everything here is a *user-facing* failure — a bad trace file, a
    damaged journal, a config mismatch on restore, an invalid flag
    combination — not a bug, so the CLI prints ``error: <Type>: <msg>``
    on stderr instead of a traceback.  Imported lazily so ``rtmdm
    models`` doesn't pay for the online stack.
    """
    from repro.online.admission import CheckpointError
    from repro.online.durable import (
        InvariantViolation,
        JournalError,
        StreamError,
    )
    from repro.online.events import TraceFormatError

    return (
        TraceFormatError,
        JournalError,
        CheckpointError,
        StreamError,
        InvariantViolation,
        FileNotFoundError,
        IsADirectoryError,
        PermissionError,
        ValueError,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also exposed as the ``rtmdm`` script)."""
    parser = argparse.ArgumentParser(
        prog="rtmdm",
        description="RT-MDM: multi-DNN real-time scheduling on MCUs (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the model zoo").set_defaults(fn=_cmd_models)
    sub.add_parser("platforms", help="list platform presets").set_defaults(
        fn=_cmd_platforms
    )

    plan = sub.add_parser("plan", help="plan a scenario deployment")
    plan.add_argument("scenario", choices=sorted(SCENARIOS), nargs="?", default="doorbell")
    plan.add_argument("--platform", choices=sorted(PLATFORMS), default=None)
    plan.add_argument("--flash", action="store_true",
                      help="place small models in internal flash")
    plan.add_argument("--quiet", action="store_true",
                      help="suppress the per-task table; verdict only")
    plan.add_argument("--json", action="store_true",
                      help="machine-readable plan report on stdout")
    plan.set_defaults(fn=_cmd_plan)

    sim = sub.add_parser("simulate", help="plan and simulate a scenario")
    sim.add_argument("scenario", choices=sorted(SCENARIOS), nargs="?", default="doorbell")
    sim.add_argument("--platform", choices=sorted(PLATFORMS), default=None)
    sim.add_argument("--flash", action="store_true",
                     help="place small models in internal flash")
    sim.add_argument("--duration", type=float, default=None, help="seconds")
    sim.add_argument("--gantt-window", type=float, default=1.0, help="seconds shown")
    sim.add_argument("--svg", default=None, metavar="FILE",
                     help="write the schedule as an SVG")
    sim.add_argument("--json", action="store_true",
                     help="machine-readable simulation stats on stdout "
                     "(suppresses the Gantt excerpt)")
    sim.set_defaults(fn=_cmd_simulate)

    serve = sub.add_parser(
        "serve",
        help="replay a request trace through the online admission runtime",
    )
    serve.add_argument("--trace", default=None, metavar="FILE",
                       help="request trace JSON (rtmdm-trace/1); default: "
                       "generate a Poisson trace from --rate/--duration/--seed")
    serve.add_argument("--rate", type=float, default=1.0,
                       help="mean ADMIT arrival rate in requests/s "
                       "(generated trace only)")
    serve.add_argument("--duration", type=float, default=10.0,
                       help="trace horizon in seconds (generated trace only)")
    serve.add_argument("--seed", type=int, default=1,
                       help="trace RNG seed (generated trace only)")
    serve.add_argument("--platform", choices=sorted(PLATFORMS), default=None)
    serve.add_argument("--sram", type=int, default=None, metavar="KIB",
                       help="override the platform's SRAM size")
    serve.add_argument("--protocol", choices=("auto", "immediate", "drain"),
                       default="auto", help="mode-change protocol")
    serve.add_argument("--no-sim", action="store_true",
                       help="decisions only; skip the fault-free execution")
    serve.add_argument("--journal", default=None, metavar="FILE",
                       help="write-ahead decision journal "
                       "(rtmdm-journal/1); enables crash-tolerant serving")
    serve.add_argument("--checkpoint-interval", type=int, default=16,
                       dest="checkpoint_interval", metavar="N",
                       help="checkpoint controller state every N decisions "
                       "(journaled serving only; default: 16)")
    serve.add_argument("--restore", action="store_true",
                       help="recover controller state from --journal "
                       "(checkpoint + suffix replay) before serving")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress the per-decision log; summary only")
    serve.add_argument("--json", action="store_true",
                       help="machine-readable event log on stdout")
    serve.set_defaults(fn=_cmd_serve)

    chaos = sub.add_parser(
        "chaos",
        help="crash/chaos-injection matrix over the durable serving layer",
    )
    chaos.add_argument("--platform", choices=sorted(PLATFORMS), default=None)
    chaos.add_argument("--rate", type=float, default=1.5,
                       help="mean ADMIT arrival rate in requests/s")
    chaos.add_argument("--duration", type=float, default=5.0,
                       help="trace horizon in seconds")
    chaos.add_argument("--seed", type=int, default=1)
    chaos.add_argument("--modes", default="all",
                       help="comma-separated perturbation modes, or 'all' "
                       "(none, duplicate, reorder, drop, skew, "
                       "truncate-journal, corrupt-journal)")
    chaos.add_argument("--crash-stride", type=int, default=1,
                       dest="crash_stride", metavar="K",
                       help="crash at every K-th decision index (1 = all)")
    chaos.add_argument("--checkpoint-interval", type=int, default=8,
                       dest="checkpoint_interval", metavar="N")
    chaos.add_argument("--journal-dir", default=None, dest="journal_dir",
                       metavar="DIR", help="keep per-cell journals here "
                       "(default: fresh temp dir)")
    chaos.add_argument("--quiet", action="store_true",
                       help="suppress the per-mode table; verdict only")
    chaos.add_argument("--json", action="store_true",
                       help="machine-readable matrix report on stdout "
                       "(schema rtmdm-chaos/1; rtmdm-fleet-chaos/1 with "
                       "--fleet)")
    chaos.add_argument("--fleet", action="store_true",
                       help="run the fleet crash/recovery matrix "
                       "(crash-point x shard-count x perturbation) "
                       "instead of the single-controller matrix")
    chaos.add_argument("--devices", type=int, default=24,
                       help="fleet size for --fleet (default: 24)")
    chaos.add_argument("--shard-counts", default="1,2,4",
                       dest="shard_counts", metavar="N,N,...",
                       help="comma-separated shard counts for --fleet "
                       "(default: 1,2,4)")
    chaos.set_defaults(fn=_cmd_chaos)

    fleet = sub.add_parser(
        "fleet",
        help="simulate a device fleet against the sharded admission service",
    )
    fleet.add_argument("--devices", type=int, default=10_000,
                       help="fleet size (default: 10000)")
    fleet.add_argument("--shards", type=int, default=4,
                       help="admission shards (default: 4)")
    fleet.add_argument("--batch", type=int, default=64,
                       help="max decisions drained per shard batch")
    fleet.add_argument("--queue-depth", type=int, default=100_000,
                       dest="queue_depth", metavar="N",
                       help="per-shard queue bound; arrivals beyond it "
                       "are shed (default: 100000)")
    fleet.add_argument("--duration", type=float, default=3.0,
                       help="virtual trace horizon in seconds")
    fleet.add_argument("--rate", type=float, default=0.35,
                       help="mean ADMIT arrival rate per device in "
                       "requests/s (default: 0.35)")
    fleet.add_argument("--arrival", choices=("poisson", "bursty"),
                       default="poisson", help="arrival process")
    fleet.add_argument("--seed", type=int, default=1)
    fleet.add_argument("--service-us", type=float, default=150.0,
                       dest="service_us", metavar="US",
                       help="virtual per-decision service time "
                       "(default: 150)")
    fleet.add_argument("--journal-dir", default=None, dest="journal_dir",
                       metavar="DIR",
                       help="write per-shard decision journals here "
                       "(open-or-create: an existing journal is recovered "
                       "and appended to, never clobbered)")
    fleet.add_argument("--checkpoint-interval", type=int, default=64,
                       dest="checkpoint_interval", metavar="N",
                       help="checkpoint a shard after N journaled "
                       "decisions (bounds crash-replay; default: 64)")
    fleet.add_argument("--crash-at", action="append", default=None,
                       dest="crash_at", metavar="SHARD:INDEX",
                       help="crash shard SHARD before its INDEX-th "
                       "decision commits, then recover from its journal "
                       "(repeatable; requires --journal-dir)")
    fleet.add_argument("--timeout-ms", type=float, default=None,
                       dest="timeout_ms", metavar="MS",
                       help="virtual decision deadline: a request queued "
                       "longer gets a TIMEOUT record and an "
                       "exponential-backoff retry")
    fleet.add_argument("--max-retries", type=int, default=3,
                       dest="max_retries", metavar="K",
                       help="timeout retries before deciding "
                       "unconditionally (default: 3)")
    fleet.add_argument("--backoff-ms", type=float, default=2.0,
                       dest="backoff_ms", metavar="MS",
                       help="base retry backoff, doubling per attempt "
                       "(default: 2)")
    fleet.add_argument("--degrade-watermark", type=int, default=None,
                       dest="degrade_watermark", metavar="D",
                       help="queue depth at which incoming admits take "
                       "the degrade ladder (rate-stretch, then smaller "
                       "variant) before any shedding")
    fleet.add_argument("--plan-store", default=None, dest="plan_store",
                       metavar="DIR",
                       help="persistent content-addressed plan store "
                       "(created if missing; also via REPRO_PLAN_STORE)")
    fleet.add_argument("--verify-identity", action="store_true",
                       dest="verify_identity",
                       help="re-run the trace on 1 shard and require "
                       "bit-identical decisions (exit 1 on mismatch)")
    fleet.add_argument("--quiet", action="store_true",
                       help="suppress the per-shard table")
    fleet.add_argument("--json", action="store_true",
                       help="machine-readable report on stdout "
                       "(schema rtmdm-fleet/1)")
    fleet.set_defaults(fn=_cmd_fleet)

    energy = sub.add_parser("energy", help="energy budget of a scenario")
    energy.add_argument("scenario", choices=sorted(SCENARIOS), nargs="?",
                        default="doorbell")
    energy.add_argument("--platform", choices=sorted(PLATFORMS), default=None)
    energy.add_argument("--flash", action="store_true",
                        help="place small models in internal flash")
    energy.add_argument("--duration", type=float, default=None, help="seconds")
    energy.set_defaults(fn=_cmd_energy)

    val = sub.add_parser("validate", help="analysis-vs-simulation self-test")
    val.add_argument("--platform", choices=sorted(PLATFORMS), default=None)
    val.add_argument("--cases", type=int, default=20)
    val.add_argument("--phasings", type=int, default=3)
    val.add_argument("--seed", type=int, default=1)
    val.set_defaults(fn=_cmd_validate)

    inspect = sub.add_parser("inspect", help="per-layer report for one model")
    inspect.add_argument("model", choices=list_models())
    inspect.add_argument("--platform", choices=sorted(PLATFORMS), default=None)
    inspect.add_argument("--budget", type=int, default=None, metavar="KIB",
                         help="SRAM budget for the segmentation preview")
    inspect.set_defaults(fn=_cmd_inspect)

    robust = sub.add_parser(
        "robust", help="fault-injected scenario simulation per overload policy"
    )
    robust.add_argument("scenario", choices=sorted(SCENARIOS), nargs="?",
                        default="doorbell")
    robust.add_argument("--platform", choices=sorted(PLATFORMS), default=None)
    robust.add_argument("--flash", action="store_true",
                        help="place small models in internal flash")
    robust.add_argument("--duration", type=float, default=None, help="seconds")
    robust.add_argument("--inflation", type=float, default=1.5,
                        help="WCET inflation factor (>= 1)")
    robust.add_argument("--inflation-model", choices=("fixed", "uniform", "spike"),
                        default="fixed", help="how per-burst factors are drawn")
    robust.add_argument("--spike-prob", type=float, default=0.05,
                        help="per-burst spike probability (spike model)")
    robust.add_argument("--dma-fault-prob", type=float, default=0.02,
                        help="per-transfer CRC failure probability")
    robust.add_argument("--jitter", type=int, default=0, metavar="CYCLES",
                        help="max additive bus-contention jitter per transfer")
    robust.add_argument("--degrade-factor", type=float, default=0.5,
                        help="fallback variant scale for the DEGRADE policy")
    robust.add_argument("--seed", type=int, default=1)
    robust.set_defaults(fn=_cmd_robust)

    recover = sub.add_parser(
        "recover",
        help="persistent-fault simulation of a scenario per recovery ladder",
    )
    recover.add_argument("scenario", choices=sorted(SCENARIOS), nargs="?",
                         default="doorbell")
    recover.add_argument("--platform", choices=sorted(PLATFORMS), default=None)
    recover.add_argument("--flash", action="store_true",
                         help="place small models in internal flash")
    recover.add_argument("--duration", type=float, default=None, help="seconds")
    recover.add_argument("--bad-frac", type=float, default=0.25,
                         dest="bad_frac",
                         help="fraction of the flash layout that is "
                         "permanently bad (CRC always fails)")
    recover.add_argument("--mirror-bad", action="store_true", dest="mirror_bad",
                         help="mirror copies share the bad region, forcing "
                         "escalation past REMAP")
    recover.add_argument("--crc-fault-prob", type=float, default=0.0,
                         dest="crc_fault_prob",
                         help="additional transient per-attempt CRC failure "
                         "probability")
    recover.add_argument("--retries", type=int, default=3,
                         help="retry budget per transfer before escalation")
    recover.add_argument("--protocol",
                         choices=(*_RECOVER_LADDERS, "all"), default="all",
                         help="recovery ladder to simulate (default: all)")
    recover.add_argument("--seed", type=int, default=1)
    recover.add_argument("--quiet", action="store_true",
                         help="suppress the per-ladder table; verdict only")
    recover.add_argument("--json", action="store_true",
                         help="machine-readable report on stdout "
                         "(schema rtmdm-recover/1)")
    recover.set_defaults(fn=_cmd_recover)

    exp = sub.add_parser("exp", help="run a reconstructed experiment")
    exp.add_argument("id", help="experiment id (e.g. EXP-F4) or 'all'")
    exp.add_argument(
        "--scale", type=float, default=1.0,
        help="multiply every experiment's sample count (task-set draws, "
        "Monte-Carlo phasings) by this factor; <1 for quick smoke runs, "
        ">1 for tighter confidence intervals (default: 1.0)",
    )
    exp.add_argument(
        "--n-sets", type=int, default=None, dest="n_sets",
        help="override the number of task sets drawn per sweep point "
        "(before --scale is applied); default: per-experiment",
    )
    exp.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for parallel experiments (default: "
        "REPRO_JOBS env var, else 1 = serial); results are bit-identical "
        "at any worker count",
    )
    exp.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top 25 functions by "
        "cumulative time",
    )
    exp.add_argument("--plot", action="store_true", help="ASCII chart for sweeps")
    exp.set_defaults(fn=_cmd_exp)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except _typed_errors() as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
