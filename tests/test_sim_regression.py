"""Regression pins for the simulator.

Two kinds of pins:

* **Anomaly pin** — the hypothesis-found counterexample where preemption
  worsens the top task's response through shifted non-preemptive DMA
  occupancy (companion to the weakened property in
  ``test_prop_simulator.py``).

* **Bit-identity pins** — exact response lists / busy cycles captured
  before the fault-injection & overload subsystem landed.  They must hold
  both for the default config and for a config carrying a *null*
  :class:`~repro.robust.faults.FaultConfig` plus
  ``OverrunPolicy.CONTINUE``: the robustness machinery, when disabled,
  must not perturb a single cycle.
"""

import dataclasses

import pytest

from repro.hw.dma import DmaArbitration
from repro.robust import EscalationConfig, FaultConfig, OverrunPolicy, RecoveryConfig
from repro.sched.policies import CpuPolicy
from repro.sched.simulator import SimConfig, simulate
from repro.sched.task import PeriodicTask, Segment, TaskSet


def _task(name, pairs, period, deadline, priority, buffers, phase=0):
    return PeriodicTask(
        name,
        tuple(Segment(f"{name}{i}", l, c) for i, (l, c) in enumerate(pairs)),
        period=period,
        deadline=deadline,
        priority=priority,
        buffers=buffers,
        phase=phase,
    )


def _three_task_scenario():
    return TaskSet.of([
        _task("cam", [(120, 300), (200, 450), (80, 260)], 3000, 2600, 0, 2),
        _task("mic", [(60, 500), (340, 700)], 5000, 4400, 1, 2, phase=700),
        _task("imu", [(0, 900), (150, 400)], 7000, 7000, 2, 1, phase=1500),
    ])


# (policy, arbitration) -> per-task response lists captured pre-robustness.
_NONPREEMPTIVE_RESPONSES = {
    "cam": [1130, 1459, 1281, 1956, 1130, 1617, 1130],
    "mic": [1630, 1260, 2121, 1260],
    "imu": [2280, 3510, 3072],
}
_PREEMPTIVE_RESPONSES = {
    "cam": [1130, 1179, 1130, 1130, 1130, 1130, 1130],
    "mic": [1630, 2270, 1295, 2270],
    "imu": [3290, 3660, 3072],
}
_BASELINES = {
    (CpuPolicy.FP_NP, DmaArbitration.PRIORITY): _NONPREEMPTIVE_RESPONSES,
    (CpuPolicy.FP_NP, DmaArbitration.FIFO): _NONPREEMPTIVE_RESPONSES,
    (CpuPolicy.FP_P, DmaArbitration.PRIORITY): _PREEMPTIVE_RESPONSES,
    (CpuPolicy.FP_P, DmaArbitration.FIFO): _PREEMPTIVE_RESPONSES,
    (CpuPolicy.EDF_NP, DmaArbitration.PRIORITY): _NONPREEMPTIVE_RESPONSES,
    (CpuPolicy.EDF_NP, DmaArbitration.FIFO): _NONPREEMPTIVE_RESPONSES,
}

# Configs that must reproduce the pinned numbers exactly.  The second one
# exercises every robustness hook with the machinery disabled; the third
# adds the escalation/recovery hooks (PR 4) in their null state.
_CONFIG_VARIANTS = {
    "default": {},
    "null-robust": {"faults": FaultConfig(), "overrun": OverrunPolicy.CONTINUE},
    "null-escalation": {
        "escalation": EscalationConfig(),
        "recovery": RecoveryConfig(),
    },
}


@pytest.mark.parametrize("extra_key", sorted(_CONFIG_VARIANTS))
@pytest.mark.parametrize("policy,arb", sorted(_BASELINES, key=str))
def test_three_task_scenario_bit_identical(policy, arb, extra_key):
    result = simulate(
        _three_task_scenario(),
        SimConfig(
            policy=policy,
            dma_arbitration=arb,
            horizon=21000,
            sporadic_slack=0.3,
            seed=7,
            **_CONFIG_VARIANTS[extra_key],
        ),
    )
    assert result.cpu_busy == 15770
    assert result.dma_busy == 4850
    assert result.end_time == 21856
    assert result.dma_retries == 0
    for name, responses in _BASELINES[(policy, arb)].items():
        stats = result.stats[name]
        assert stats.responses == responses
        assert stats.misses == 0
        assert stats.unfinished == 0
        assert stats.aborts == 0
        assert stats.skips == 0
        assert stats.degraded_jobs == 0


@pytest.mark.parametrize("extra_key", sorted(_CONFIG_VARIANTS))
def test_overloaded_scenario_bit_identical(extra_key):
    """An over-utilized set keeps its exact pre-robustness miss profile
    under CONTINUE (late jobs run to completion, misses only counted)."""
    ts = TaskSet.of([
        _task("hi", [(100, 400)], 1000, 900, 0, 2),
        _task("lo", [(300, 800), (100, 350)], 1800, 1800, 1, 2),
    ])
    result = simulate(
        ts,
        SimConfig(policy=CpuPolicy.FP_NP, horizon=12000,
                  **_CONFIG_VARIANTS[extra_key]),
    )
    assert result.cpu_busy == 12850
    assert result.dma_busy == 4000
    assert result.end_time == 13500
    assert not result.truncated
    hi, lo = result.stats["hi"], result.stats["lo"]
    assert hi.responses == [500, 700] * 6
    assert hi.misses == 0
    assert lo.responses == [2050, 2250, 2450, 2650, 2850, 3050, 2700]
    assert lo.misses == 7
    assert lo.unfinished == 0


def test_null_fault_config_is_null():
    assert FaultConfig().is_null
    assert not dataclasses.replace(FaultConfig(), dma_fault_prob=0.1).is_null


def test_anomaly_example_pinned_under_both_arbitrations():
    """The preemption/DMA anomaly example keeps its exact responses."""
    ts = TaskSet.of([
        _task("t0", [(15, 2)], period=49, deadline=24, priority=0, buffers=1),
        _task("t1", [(34, 21)], period=59, deadline=29, priority=1, buffers=1),
    ])
    np_result = simulate(ts, SimConfig(policy=CpuPolicy.FP_NP, horizon=6 * 59))
    p_result = simulate(ts, SimConfig(policy=CpuPolicy.FP_P, horizon=6 * 59))
    assert np_result.stats["t0"].responses == [17, 23, 29, 35, 41, 48, 17, 23]
    assert p_result.stats["t0"].responses == [17, 17, 25, 33, 41, 49, 17, 17]
