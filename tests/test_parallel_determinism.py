"""Parallel runs and cached runs must be bit-identical to serial runs.

ISSUE acceptance: for the decomposed experiments (the admission sweeps,
the simulation sweeps EXP-F7, and the robustness sweep EXP-R1 with
faults enabled), running with ``--jobs 4`` or against a warm plan cache
must produce exactly the rows a cache-cold serial run produces —
float-for-float, not approximately.  These tests execute each driver at
a tiny scale in all three configurations and compare tuples directly.

``notes`` strings are excluded from the comparison: they embed the
hit/miss counters, which legitimately differ between cold and warm runs
(the *rows* never may).
"""

from __future__ import annotations

import pytest

from repro.core import segcache
from repro.eval.experiments import run_experiment
from repro.eval.parallel import resolve_jobs, run_units, stable_seed


@pytest.fixture(autouse=True)
def fresh_caches():
    segcache.set_enabled(True)
    segcache.clear_all()
    yield
    segcache.set_enabled(True)
    segcache.clear_all()


TINY = {
    "EXP-F4": dict(n_sets=3, utils=(0.3, 0.6)),
    "EXP-F5": dict(n_sets=3),
    "EXP-F7": dict(n_sets=2, n_phasings=2, utils=(0.5, 0.9)),
    "EXP-R1": dict(n_sets=3, inflations=(1.0, 1.5)),
    "EXP-R2": dict(n_sets=2, bad_fracs=(0.0, 0.2), retry_budgets=(1,)),
    "EXP-D1": dict(
        n_traces=2, rates_hz=(1.5,), sram_kib=(160, 256), duration_s=8.0
    ),
}


def _rows(exp_id, **kwargs):
    return run_experiment(exp_id, **TINY[exp_id], **kwargs).rows


@pytest.mark.parametrize("exp_id", sorted(TINY))
def test_jobs4_bit_identical_to_serial(exp_id):
    serial = _rows(exp_id, jobs=1)
    segcache.clear_all()
    parallel = _rows(exp_id, jobs=4)
    assert parallel == serial


@pytest.mark.parametrize("exp_id", sorted(TINY))
def test_warm_cache_bit_identical_to_cold(exp_id):
    cold = _rows(exp_id, jobs=1)
    warm = _rows(exp_id, jobs=1)  # second run: high hit rate, same rows
    assert warm == cold


@pytest.mark.parametrize("exp_id", ["EXP-F4", "EXP-F5"])
def test_cache_disabled_bit_identical(exp_id):
    """Knob quantization happens outside the memo, so switching the
    cache off entirely must not change a single row either."""
    enabled = _rows(exp_id, jobs=1)
    segcache.set_enabled(False)
    disabled = _rows(exp_id, jobs=1)
    assert disabled == enabled


def test_r1_runs_with_faults_and_reports_cache():
    result = run_experiment("EXP-R1", **TINY["EXP-R1"], jobs=2)
    assert "plan cache:" in result.notes
    # Four policies per row: miss ratios + degrade residency column.
    assert all(len(row) >= 5 for row in result.rows)


def test_cache_note_lookup_totals_match_across_jobs():
    """The merged lookup totals in the notes are job-count invariant —
    the counter deltas ride back with each unit, so nothing is lost when
    the work runs in worker processes.  (Hit counts themselves may drop
    under parallelism: each worker starts with a cold cache, so
    cross-unit hits within one serial process become misses.)"""
    import re

    def totals(notes):
        return re.findall(r"\d+/(\d+) hits", notes)

    serial = run_experiment("EXP-F4", **TINY["EXP-F4"], jobs=1).notes
    segcache.clear_all()
    parallel = run_experiment("EXP-F4", **TINY["EXP-F4"], jobs=3).notes
    assert "plan cache: segmentation" in serial
    assert totals(parallel) == totals(serial) != []


# ----------------------------------------------------------------------
# run_units / stable_seed primitives
# ----------------------------------------------------------------------


def _square(unit):
    return unit * unit


def test_run_units_preserves_order():
    units = list(range(23))
    assert run_units(_square, units, jobs=1) == [u * u for u in units]
    assert run_units(_square, units, jobs=4, chunksize=3) == [u * u for u in units]


def test_stable_seed_is_process_stable():
    # Known-value pin: CRC32 is stable across runs, platforms, processes.
    assert stable_seed(2027, "f7", 0.5, 3) == stable_seed(2027, "f7", 0.5, 3)
    assert stable_seed(2027, "f7", 0.5, 3) != stable_seed(2027, "f7", 0.5, 4)
    assert stable_seed("x") == 2159005666  # crc32(b"'x'")


def test_resolve_jobs_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(-2) == 1
    monkeypatch.setenv("REPRO_JOBS", "6")
    assert resolve_jobs(None) == 6
    assert resolve_jobs(0) == 6
    assert resolve_jobs(2) == 2
    monkeypatch.setenv("REPRO_JOBS", "junk")
    assert resolve_jobs(None) == 1


# ----------------------------------------------------------------------
# scale / n_sets audit (every driver honours the uniform CLI options)
# ----------------------------------------------------------------------


def test_every_driver_accepts_uniform_options():
    """``run_experiment`` passes scale/n_sets/jobs to every driver; each
    one must either consume them or tolerate them via ``**_``."""
    import inspect

    from repro.eval.experiments import EXPERIMENTS

    for exp_id, driver in EXPERIMENTS.items():
        params = inspect.signature(driver).parameters
        assert any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
        ), f"{exp_id} must tolerate uniform CLI options"
        if "n_sets" in params:  # every sampler must be scalable
            assert "scale" in params, f"{exp_id} takes n_sets but not scale"


def test_scale_reduces_sample_count():
    full = run_experiment("EXP-F4", n_sets=8, utils=(0.5,), jobs=1)
    assert "8 sets/point" in full.title
    segcache.clear_all()
    scaled = run_experiment("EXP-F4", n_sets=8, scale=0.5, utils=(0.5,), jobs=1)
    assert "4 sets/point" in scaled.title
