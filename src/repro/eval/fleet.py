"""Fleet-scale admission serving: a sharded, batched, async service.

This module simulates 10k-1M devices sharing one central admission
service.  Devices are grouped into platform/workload **cohorts** (so the
fleet's planning state collapses onto a handful of platform objects and
their plan-cache keys), requests are routed to per-shard FIFO queues by
a deterministic device hash, and each shard drains its queue in batches
decided through the vectorized fast paths
(:func:`repro.online.admission.mass_screen` backed by
:mod:`repro.sched.vecrta`, with :func:`repro.core.segcache.cached_analyze`
as the exact fallback).  Planning goes through
:func:`repro.online.admission.plan_segments` — the same policy as the
single-device controller — so a configured
:mod:`repro.core.planstore` amortizes one segmentation search across the
whole fleet and across runs.

Time model
----------

The service runs in **virtual time**: request arrival instants come from
the trace, each decided batch occupies its shard for ``service_us``
microseconds per decision, and a batch's decisions all complete when the
batch does.  Queue depths, shard utilization and queueing-latency
percentiles are therefore pure functions of the trace and the
configuration — deterministic and comparable across machines — while the
*engine* throughput (decisions/sec) and per-decision wall-clock latency
are measured separately and reported via ``meta``-style fields.

Identity guarantees
-------------------

A decision for device *d* depends only on *d*'s own resident set (plus
the immutable cohort platform), and the service admits at most one
request per device per batch (later same-device requests are held back
to the next batch), so per-device request order is preserved under any
shard count or batch size.  ``mass_screen`` is bit-identical to scalar
screening and ``cached_analyze`` is exact, so **sharded decisions are
bit-identical to the single-shard serial path** — the identity gate in
``tests/test_fleet.py`` and CI asserts this with backpressure disabled
(shedding depends on queue depth, which legitimately differs by shard
count; the gate requires zero sheds).

Durability
----------

With ``journal_dir`` set, every shard keeps its own CRC-tagged
write-ahead journal (:class:`repro.online.durable.DecisionJournal`):
intents before the batch decides, commits after, with the fleet request
encoded as a device-qualified :class:`repro.online.events.Request`.
"""

from __future__ import annotations

import os
import random
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.core import segcache
from repro.core.segmentation import SegmentationError
from repro.dnn.quantization import INT8, Quantization
from repro.eval.metrics import latency_stats
from repro.hw.platform import Platform
from repro.hw.presets import get_platform
from repro.online.admission import mass_screen, plan_segments
from repro.online.durable import DecisionJournal
from repro.online.events import Request, RequestKind
from repro.sched.task import PeriodicTask, Segment, TaskSet
from repro.workload.arrivals import bursty_arrival_times, poisson_arrival_times
from repro.workload.taskset import DEFAULT_MODEL_POOL

__all__ = [
    "CohortSpec",
    "DEFAULT_COHORTS",
    "FLEET_SCHEMA",
    "FleetConfig",
    "FleetDecision",
    "FleetReport",
    "FleetRequest",
    "FleetService",
    "FleetTrace",
    "decision_identity",
    "fleet_trace",
    "shard_of",
]

#: Schema tag of the ``rtmdm fleet --json`` payload.
FLEET_SCHEMA = "rtmdm-fleet/1"


# ----------------------------------------------------------------------
# Cohorts and traces
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CohortSpec:
    """One device cohort: a platform variant plus its workload mix.

    Cohort membership is ``device_index % len(cohorts)`` — deterministic
    and uniform, so every cohort's planning keys are exercised at every
    fleet size.
    """

    name: str
    platform_key: str = "f746-qspi"
    sram_kib: Optional[int] = None
    model_pool: Tuple[str, ...] = DEFAULT_MODEL_POOL
    period_ladder_s: Tuple[float, ...] = (0.1, 0.2, 0.4, 0.8)

    def platform(self) -> Platform:
        platform = get_platform(self.platform_key)
        if self.sram_kib is not None:
            platform = platform.with_sram_bytes(self.sram_kib * 1024)
        return platform


#: Default fleet mix: two SRAM variants of the paper's reference board
#: plus a faster part, so plan keys, admission pressure and decision
#: mixes differ across cohorts.
DEFAULT_COHORTS: Tuple[CohortSpec, ...] = (
    CohortSpec("f746-192k", "f746-qspi", sram_kib=192),
    CohortSpec("f746-320k", "f746-qspi", sram_kib=320),
    CohortSpec("h743-sdram", "h743-sdram"),
)


@dataclass(frozen=True)
class FleetRequest:
    """One fleet request: a device-qualified admit or remove.

    ``seq`` is the global arrival index — the identity key decisions are
    compared on across shard counts.
    """

    seq: int
    time_s: float
    device: str
    kind: RequestKind
    task: str
    model: str = ""
    period_s: float = 0.0

    def to_request(self) -> Request:
        """The journal/trace form (device-qualified task name)."""
        return Request(
            time_s=self.time_s,
            kind=self.kind,
            task=f"{self.device}/{self.task}",
            model=self.model,
            period_s=self.period_s,
        )


@dataclass(frozen=True)
class FleetTrace:
    """A time-ordered fleet request sequence over a bounded horizon."""

    requests: Tuple[FleetRequest, ...]
    duration_s: float
    n_devices: int
    cohorts: Tuple[CohortSpec, ...]
    arrival: str

    def __len__(self) -> int:
        return len(self.requests)


def fleet_trace(
    n_devices: int,
    duration_s: float,
    rate_per_device_hz: float,
    seed: int,
    cohorts: Sequence[CohortSpec] = DEFAULT_COHORTS,
    arrival: str = "poisson",
    mean_lifetime_s: float = 4.0,
    burst_factor: float = 4.0,
    duty: float = 0.25,
    mean_cycle_s: float = 2.0,
) -> FleetTrace:
    """Draw one fleet trace (a pure function of the arguments).

    Aggregate arrivals run at ``n_devices * rate_per_device_hz`` under
    the chosen arrival process (``"poisson"`` or ``"bursty"``); each
    arrival lands on a uniformly-drawn device, admits a fresh model from
    the device's cohort pool, and departs after an exponential lifetime
    (in-horizon departures become REMOVE requests).
    """
    if n_devices <= 0:
        raise ValueError(f"n_devices must be > 0, got {n_devices}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    if rate_per_device_hz <= 0:
        raise ValueError(
            f"rate_per_device_hz must be > 0, got {rate_per_device_hz}"
        )
    if mean_lifetime_s <= 0:
        raise ValueError(f"mean_lifetime_s must be > 0, got {mean_lifetime_s}")
    if not cohorts:
        raise ValueError("cohorts must be non-empty")
    rng = random.Random(seed)
    total_rate = n_devices * rate_per_device_hz
    if arrival == "poisson":
        times = poisson_arrival_times(duration_s, total_rate, rng)
    elif arrival == "bursty":
        times = bursty_arrival_times(
            duration_s, total_rate, rng, burst_factor, duty, mean_cycle_s
        )
    else:
        raise ValueError(
            f"unknown arrival model {arrival!r} (known: poisson, bursty)"
        )
    events: List[Tuple[float, int, str, RequestKind, str, str, float]] = []
    admit_counts: Dict[int, int] = {}
    order = 0
    for t in times:
        index = rng.randrange(n_devices)
        cohort = cohorts[index % len(cohorts)]
        device = f"d{index:07d}"
        count = admit_counts.get(index, 0)
        admit_counts[index] = count + 1
        task = f"m{count}"
        model = rng.choice(list(cohort.model_pool))
        period_s = rng.choice(list(cohort.period_ladder_s))
        events.append((t, order, device, RequestKind.ADMIT, task, model, period_s))
        order += 1
        end_s = t + rng.expovariate(1.0 / mean_lifetime_s)
        if end_s < duration_s:
            events.append((end_s, order, device, RequestKind.REMOVE, task, "", 0.0))
            order += 1
    events.sort(key=lambda e: (e[0], e[1]))
    requests = tuple(
        FleetRequest(
            seq=seq, time_s=e[0], device=e[2], kind=e[3],
            task=e[4], model=e[5], period_s=e[6],
        )
        for seq, e in enumerate(events)
    )
    return FleetTrace(
        requests=requests,
        duration_s=duration_s,
        n_devices=n_devices,
        cohorts=tuple(cohorts),
        arrival=arrival,
    )


def shard_of(device: str, n_shards: int) -> int:
    """Deterministic device → shard routing (stable across processes)."""
    return zlib.crc32(device.encode("utf-8")) % n_shards


# ----------------------------------------------------------------------
# Service configuration and decisions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FleetConfig:
    """Decision-relevant service configuration.

    ``service_us`` is the virtual per-decision service cost the queueing
    model charges (it does not gate the engine); ``max_queue_depth``
    bounds each shard's queue — arrivals beyond it are shed.
    """

    n_shards: int = 4
    batch_size: int = 64
    max_queue_depth: int = 100_000
    service_us: float = 150.0
    method: str = "rtmdm"
    quant: Quantization = INT8
    buffers: int = 2
    journal_dir: Optional[str] = None
    fsync_interval: int = 256

    def __post_init__(self) -> None:
        if self.n_shards <= 0:
            raise ValueError(f"n_shards must be > 0, got {self.n_shards}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be > 0, got {self.batch_size}")
        if self.max_queue_depth <= 0:
            raise ValueError(
                f"max_queue_depth must be > 0, got {self.max_queue_depth}"
            )
        if self.service_us <= 0:
            raise ValueError(f"service_us must be > 0, got {self.service_us}")


@dataclass(frozen=True)
class FleetDecision:
    """One fleet decision; the identity tuple excludes ``shard``.

    ``outcome`` is ``admitted`` / ``rejected`` / ``removed`` /
    ``ignored`` / ``shed``; ``reason`` carries the justification
    (``rta-oblivious``/``analysis`` for admissions, ``sram: ...`` /
    ``rta: ...`` for rejections, ``queue-full: ...`` for sheds).
    """

    seq: int
    device: str
    task: str
    kind: str
    outcome: str
    reason: str = ""
    shard: int = -1

    def to_dict(self) -> Dict:
        return {
            "seq": self.seq,
            "device": self.device,
            "task": self.task,
            "kind": self.kind,
            "outcome": self.outcome,
            "reason": self.reason,
            "shard": self.shard,
        }


def decision_identity(decisions: Sequence[FleetDecision]) -> List[Tuple]:
    """The shard-independent projection compared by the identity gate."""
    return [
        (d.seq, d.device, d.task, d.kind, d.outcome, d.reason)
        for d in decisions
    ]


class _Resident(NamedTuple):
    """One admitted model on one device (the fleet's per-device state).

    ``plan_key`` is the exact planning input ``(cohort, model, period,
    free_bytes)`` that produced ``segments``/``sram_bytes``; planning is
    deterministic, so equal plan keys imply equal plans — which is what
    lets the union-verdict memo key on plan keys instead of segment
    contents.
    """

    task: str
    model: str
    segments: Tuple[Segment, ...]
    period: int
    deadline: int
    sram_bytes: int
    plan_key: Tuple


class _Shard:
    __slots__ = (
        "index", "queue", "busy_until_s", "busy_s",
        "decided", "peak_depth", "shed", "journal",
    )

    def __init__(self, index: int, journal: Optional[DecisionJournal]) -> None:
        self.index = index
        self.queue: Deque[FleetRequest] = deque()
        self.busy_until_s = 0.0
        self.busy_s = 0.0
        self.decided = 0
        self.peak_depth = 0
        self.shed = 0
        self.journal = journal


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass
class FleetReport:
    """Outcome of one fleet run.

    Everything except ``wall_s`` / ``engine_s`` / ``decisions_per_s`` /
    ``decision_latency_us`` is deterministic in the (trace, config)
    pair; those four are wall-clock engine measurements.
    """

    n_devices: int
    n_shards: int
    batch_size: int
    service_us: float
    duration_s: float
    arrival: str
    requests: int
    admitted: int
    rejected_sram: int
    rejected_rta: int
    removed: int
    ignored: int
    shed: int
    decisions: List[FleetDecision]
    shard_stats: List[Dict]
    queueing_latency_ms: Dict
    decision_latency_us: Dict
    wall_s: float
    engine_s: float
    cache: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    #: Raw per-decision engine wall latencies (batch-averaged, µs);
    #: kept out of :meth:`to_dict` — callers aggregate across runs.
    wall_latencies_us: List[float] = field(default_factory=list)

    @property
    def admit_requests(self) -> int:
        return self.admitted + self.rejected_sram + self.rejected_rta

    @property
    def admission_ratio(self) -> float:
        n = self.admit_requests
        return self.admitted / n if n else 1.0

    @property
    def decided(self) -> int:
        """Requests that reached the decision engine (everything but sheds)."""
        return self.requests - self.shed

    @property
    def decisions_per_s(self) -> float:
        """Engine throughput: decided requests over engine wall time."""
        return self.decided / self.engine_s if self.engine_s > 0 else 0.0

    @property
    def peak_queue_depth(self) -> int:
        return max((s["peak_depth"] for s in self.shard_stats), default=0)

    @property
    def shard_utilization(self) -> float:
        """Mean busy fraction of the shards over the virtual horizon."""
        if not self.shard_stats:
            return 0.0
        horizon = max(
            self.duration_s,
            max((s["busy_until_s"] for s in self.shard_stats), default=0.0),
        )
        busy = sum(s["busy_s"] for s in self.shard_stats)
        return busy / (horizon * len(self.shard_stats))

    def to_dict(self, include_decisions: bool = False) -> Dict:
        """Machine-readable report (the ``rtmdm fleet --json`` payload)."""
        payload: Dict = {
            "schema": FLEET_SCHEMA,
            "n_devices": self.n_devices,
            "n_shards": self.n_shards,
            "batch_size": self.batch_size,
            "service_us": self.service_us,
            "duration_s": self.duration_s,
            "arrival": self.arrival,
            "requests": self.requests,
            "admit_requests": self.admit_requests,
            "admitted": self.admitted,
            "rejected_sram": self.rejected_sram,
            "rejected_rta": self.rejected_rta,
            "removed": self.removed,
            "ignored": self.ignored,
            "shed": self.shed,
            "admission_ratio": round(self.admission_ratio, 4),
            "peak_queue_depth": self.peak_queue_depth,
            "shard_utilization": round(self.shard_utilization, 4),
            "queueing_latency_ms": self.queueing_latency_ms,
            "decision_latency_us": self.decision_latency_us,
            "decisions_per_s": round(self.decisions_per_s, 1),
            "wall_s": round(self.wall_s, 3),
            "engine_s": round(self.engine_s, 3),
            "shards": self.shard_stats,
            "cache": {name: list(vals) for name, vals in self.cache.items()},
        }
        if include_decisions:
            payload["decisions"] = [d.to_dict() for d in self.decisions]
        return payload


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class FleetService:
    """Sharded batch admission over a device fleet (virtual time)."""

    def __init__(
        self,
        cohorts: Sequence[CohortSpec] = DEFAULT_COHORTS,
        config: FleetConfig = FleetConfig(),
    ) -> None:
        if not cohorts:
            raise ValueError("cohorts must be non-empty")
        self.cohorts = tuple(cohorts)
        self.config = config
        # One platform object per cohort for the whole run: the segcache
        # fingerprint memos are identity-keyed, so key construction
        # stays O(1) per decision.
        self._platforms = [cohort.platform() for cohort in self.cohorts]

    # -- setup ---------------------------------------------------------
    def _journal_config(self, shard_index: int) -> Dict:
        cfg = self.config
        return {
            "schema": FLEET_SCHEMA,
            "shard": shard_index,
            "n_shards": cfg.n_shards,
            "batch_size": cfg.batch_size,
            "method": cfg.method,
            "quant": cfg.quant.name,
            "buffers": cfg.buffers,
            "cohorts": [c.name for c in self.cohorts],
        }

    def _make_shards(self) -> List[_Shard]:
        cfg = self.config
        shards = []
        for index in range(cfg.n_shards):
            journal = None
            if cfg.journal_dir:
                os.makedirs(cfg.journal_dir, exist_ok=True)
                journal = DecisionJournal.create(
                    os.path.join(cfg.journal_dir, f"shard{index:03d}.journal"),
                    config=self._journal_config(index),
                    fsync_interval=cfg.fsync_interval,
                )
            shards.append(_Shard(index, journal))
        return shards

    # -- decision core -------------------------------------------------
    def _ranked(self, ordered: Sequence[_Resident]) -> List[PeriodicTask]:
        """Deadline-monotonic union tasks (same order as the controller).

        ``ordered`` must already be sorted by ``(deadline, task)``.
        """
        buffers = self.config.buffers
        return [
            PeriodicTask(
                name=r.task,
                segments=r.segments,
                period=r.period,
                deadline=r.deadline,
                priority=rank,
                buffers=buffers,
            )
            for rank, r in enumerate(ordered)
        ]

    def _decide_batch(
        self,
        batch: Sequence[FleetRequest],
        devices: Dict[str, Dict[str, _Resident]],
        plan_memo: Dict,
        verdict_memo: Dict,
    ) -> List[Tuple[str, str]]:
        """Decide one batch, mutating per-device state.

        Stage 1 resolves removals/duplicates and plans every admit
        candidate; stage 2 screens all candidates in one vectorized
        ``mass_screen`` pass; stage 3 runs the exact analysis only for
        screen failures.  Verdicts are bit-identical to deciding the
        requests one at a time (the screen and analysis both are), which
        is what makes decisions batch- and shard-invariant.

        Two per-run memos short-circuit the fleet-wide repetition:
        ``plan_memo`` keys plans on their exact inputs ``(cohort, model,
        period, free)``, and ``verdict_memo`` keys admission verdicts on
        the candidate union's ranked plan-key sequence.  Both memoize
        pure deterministic functions of their keys, so they change no
        decision — only how often the planner and screen actually run.
        """
        cfg = self.config
        outcomes: List[Optional[Tuple[str, str]]] = [None] * len(batch)
        jobs: List[Tuple[int, Dict[str, _Resident], _Resident, List[_Resident], Tuple]] = []
        for i, req in enumerate(batch):
            resident = devices.get(req.device)
            if resident is None:
                resident = {}
                devices[req.device] = resident
            if req.kind is RequestKind.REMOVE:
                if req.task in resident:
                    del resident[req.task]
                    outcomes[i] = ("removed", "")
                else:
                    outcomes[i] = ("ignored", "not-resident")
                continue
            if req.task in resident:
                outcomes[i] = ("ignored", "already-resident")
                continue
            cohort_index = int(req.device[1:]) % len(self.cohorts)
            platform = self._platforms[cohort_index]
            period = max(1, platform.mcu.seconds_to_cycles(req.period_s))
            free = platform.usable_sram_bytes - sum(
                r.sram_bytes for r in resident.values()
            )
            plan_key = (cohort_index, req.model, period, free)
            plan = plan_memo.get(plan_key)
            if plan is None:
                try:
                    segments, cost = plan_segments(
                        platform, req.model, period, free,
                        quant=cfg.quant, buffers=cfg.buffers,
                    )
                    plan = ("ok", segments, cost)
                except SegmentationError as exc:
                    plan = ("err", f"sram: {exc}")
                plan_memo[plan_key] = plan
            if plan[0] == "err":
                outcomes[i] = ("rejected", plan[1])
                continue
            candidate = _Resident(
                task=req.task, model=req.model, segments=plan[1],
                period=period, deadline=period, sram_bytes=plan[2],
                plan_key=plan_key,
            )
            ranked = sorted(
                [*resident.values(), candidate],
                key=lambda r: (r.deadline, r.task),
            )
            # The verdict depends only on the priority-ordered sequence
            # of task bodies (names never enter the RTA math), and each
            # body is determined by its plan key.
            vkey = tuple((r.plan_key, r.period, r.deadline) for r in ranked)
            verdict = verdict_memo.get(vkey)
            if verdict is not None:
                ok, reason = verdict
                if ok:
                    resident[candidate.task] = candidate
                    outcomes[i] = ("admitted", reason)
                else:
                    outcomes[i] = ("rejected", reason)
                continue
            jobs.append((i, resident, candidate, ranked, vkey))
        if jobs:
            task_lists = [
                self._ranked(ranked) for _, _, _, ranked, _ in jobs
            ]
            verdicts = mass_screen(task_lists)
            for (i, resident, candidate, ranked, vkey), tasks, ok in zip(
                jobs, task_lists, verdicts
            ):
                reason = "rta-oblivious"
                if not ok:
                    result = segcache.cached_analyze(
                        TaskSet.of(tasks), cfg.method
                    )
                    ok = result.schedulable
                    reason = "analysis"
                if ok:
                    resident[candidate.task] = candidate
                    outcomes[i] = ("admitted", reason)
                    verdict_memo[vkey] = (True, reason)
                else:
                    outcomes[i] = ("rejected", "rta: union unschedulable")
                    verdict_memo[vkey] = (False, "rta: union unschedulable")
        return outcomes  # type: ignore[return-value]

    # -- queue/drain machinery -----------------------------------------
    def _take_batch(
        self, shard: _Shard, start_s: float
    ) -> List[FleetRequest]:
        """Pop the next batch: arrived by ``start_s``, <= 1 per device.

        Same-device followers are held back (order preserved) so every
        device's requests decide in arrival order regardless of batch
        boundaries — the load-bearing half of the identity guarantee.
        """
        cfg = self.config
        batch: List[FleetRequest] = []
        seen = set()
        holdback: List[FleetRequest] = []
        while shard.queue and len(batch) < cfg.batch_size:
            req = shard.queue[0]
            if req.time_s > start_s:
                break
            shard.queue.popleft()
            if req.device in seen:
                holdback.append(req)
                continue
            seen.add(req.device)
            batch.append(req)
        for req in reversed(holdback):
            shard.queue.appendleft(req)
        return batch

    def run(self, trace: FleetTrace) -> FleetReport:
        """Serve one fleet trace end to end."""
        cfg = self.config
        service_s = cfg.service_us * 1e-6
        shards = self._make_shards()
        devices: Dict[str, Dict[str, _Resident]] = {}
        plan_memo: Dict = {}
        verdict_memo: Dict = {}
        decisions: List[Optional[FleetDecision]] = [None] * len(trace.requests)
        queueing_ms: List[float] = []
        wall_us: List[float] = []
        engine_ns = 0
        counts = {
            "admitted": 0, "rejected_sram": 0, "rejected_rta": 0,
            "removed": 0, "ignored": 0, "shed": 0,
        }
        cache_before = segcache.snapshot()

        def drain(shard: _Shard, now_s: Optional[float]) -> None:
            nonlocal engine_ns
            while shard.queue:
                start_s = max(shard.busy_until_s, shard.queue[0].time_s)
                if now_s is not None and start_s > now_s:
                    return
                batch = self._take_batch(shard, start_s)
                if shard.journal is not None:
                    for offset, req in enumerate(batch):
                        shard.journal.append_intent(
                            shard.decided + offset, req.to_request()
                        )
                t0 = time.perf_counter_ns()
                outcomes = self._decide_batch(
                    batch, devices, plan_memo, verdict_memo
                )
                elapsed_ns = time.perf_counter_ns() - t0
                engine_ns += elapsed_ns
                per_us = elapsed_ns / len(batch) / 1000.0
                completion_s = start_s + len(batch) * service_s
                shard.busy_s += len(batch) * service_s
                shard.busy_until_s = completion_s
                for offset, (req, (outcome, reason)) in enumerate(
                    zip(batch, outcomes)
                ):
                    decision = FleetDecision(
                        seq=req.seq, device=req.device, task=req.task,
                        kind=req.kind.value, outcome=outcome,
                        reason=reason, shard=shard.index,
                    )
                    decisions[req.seq] = decision
                    queueing_ms.append((completion_s - req.time_s) * 1000.0)
                    wall_us.append(per_us)
                    if outcome == "rejected":
                        key = (
                            "rejected_sram"
                            if reason.startswith("sram")
                            else "rejected_rta"
                        )
                        counts[key] += 1
                    else:
                        counts[outcome] += 1
                    if shard.journal is not None:
                        shard.journal.append_commit(
                            shard.decided + offset, decision.to_dict()
                        )
                shard.decided += len(batch)

        run_t0 = time.perf_counter()
        try:
            for req in trace.requests:
                shard = shards[shard_of(req.device, cfg.n_shards)]
                drain(shard, req.time_s)
                if len(shard.queue) >= cfg.max_queue_depth:
                    shard.shed += 1
                    counts["shed"] += 1
                    decisions[req.seq] = FleetDecision(
                        seq=req.seq, device=req.device, task=req.task,
                        kind=req.kind.value, outcome="shed",
                        reason=(
                            f"queue-full: depth >= {cfg.max_queue_depth}"
                        ),
                        shard=shard.index,
                    )
                    continue
                shard.queue.append(req)
                shard.peak_depth = max(shard.peak_depth, len(shard.queue))
            for shard in shards:
                drain(shard, None)
        finally:
            for shard in shards:
                if shard.journal is not None:
                    shard.journal.close()
        wall_s = time.perf_counter() - run_t0

        shard_stats = [
            {
                "shard": s.index,
                "decided": s.decided,
                "shed": s.shed,
                "peak_depth": s.peak_depth,
                "busy_s": round(s.busy_s, 6),
                "busy_until_s": round(s.busy_until_s, 6),
                "journal_records": (
                    s.journal.records_written if s.journal is not None else 0
                ),
            }
            for s in shards
        ]
        return FleetReport(
            n_devices=trace.n_devices,
            n_shards=cfg.n_shards,
            batch_size=cfg.batch_size,
            service_us=cfg.service_us,
            duration_s=trace.duration_s,
            arrival=trace.arrival,
            requests=len(trace.requests),
            admitted=counts["admitted"],
            rejected_sram=counts["rejected_sram"],
            rejected_rta=counts["rejected_rta"],
            removed=counts["removed"],
            ignored=counts["ignored"],
            shed=counts["shed"],
            decisions=[d for d in decisions if d is not None],
            shard_stats=shard_stats,
            queueing_latency_ms=latency_stats(queueing_ms, digits=3),
            decision_latency_us=latency_stats(wall_us),
            wall_s=wall_s,
            engine_s=engine_ns / 1e9,
            cache=segcache.delta_since(cache_before),
            wall_latencies_us=wall_us,
        )
