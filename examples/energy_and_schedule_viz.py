#!/usr/bin/env python3
"""Energy accounting and schedule visualization for a multi-DNN node.

Plans the industrial scenario twice — weights in external memory vs the
small models pinned in internal flash — then compares the energy budget
of both deployments and writes an SVG of each schedule.

Run with::

    python examples/energy_and_schedule_viz.py [output_dir]
"""

import sys

from repro import RtMdm, get_platform
from repro.hw.energy import energy_of_run, power_model_for
from repro.sched.svg import write_svg
from repro.workload.scenarios import get_scenario


def plan(scenario, platform, use_flash):
    rt = RtMdm(platform, use_internal_flash=use_flash)
    for spec in scenario.specs():
        rt.add_task(spec.name, spec.model, spec.period_s, spec.deadline_s)
    return rt.configure()


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "."
    scenario = get_scenario("industrial")
    platform = get_platform(scenario.platform_key)
    pm = power_model_for(platform.mcu)
    print(f"=== {scenario.description} on {platform.name} ===")
    print(f"power model: {pm.cpu_active_mw:.0f} mW active / "
          f"{pm.idle_mw:.1f} mW idle / {pm.ext_read_nj_per_byte:.1f} nJ/B ext\n")

    for use_flash in (False, True):
        label = "flash-resident" if use_flash else "external-only"
        config = plan(scenario, platform, use_flash)
        if not config.admitted:
            print(f"[{label}] not admitted: {config.infeasible_reason}")
            continue
        result = config.simulate(duration_s=4.0, record_trace=True)
        breakdown = energy_of_run(result, config.taskset, platform)
        placed = (
            ", ".join(config.placement.resident)
            if config.placement and config.placement.resident
            else "none"
        )
        print(f"[{label}] resident models: {placed}")
        print(
            f"  energy over {breakdown.duration_s:.1f} s: "
            f"{breakdown.total_mj:.1f} mJ "
            f"(CPU {breakdown.cpu_mj:.1f} + DMA {breakdown.dma_mj:.2f} + "
            f"ext {breakdown.ext_mj:.2f} + idle {breakdown.idle_mj:.1f})"
        )
        print(f"  average power: {breakdown.average_mw:.1f} mW")
        svg_path = f"{out_dir}/industrial_{label}.svg"
        window = platform.mcu.seconds_to_cycles(1.0)
        write_svg(
            result.trace,
            svg_path,
            mcu=platform.mcu,
            until=window,
            title=f"industrial ({label})",
        )
        print(f"  schedule written to {svg_path}\n")


if __name__ == "__main__":
    main()
