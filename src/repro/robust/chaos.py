"""Chaos-injection harness for the crash-tolerant serving layer.

Drives :mod:`repro.online.durable` through everything the real world
throws at a single-controller admission service — and asserts that none
of it can change a single decision:

* **Controller crashes** at every decision index (the
  :class:`~repro.online.durable.InjectedCrash` hook fires after the
  intent record is journaled, before the decision commits — the worst
  possible point).
* **Journal damage**: torn tails (truncation mid-record) and flipped
  bytes (CRC-detected corruption), both forcing recovery back to an
  earlier durable prefix.
* **Adversarial delivery**: duplicated, reordered, and
  dropped-then-retransmitted envelopes (at-least-once transport), plus
  transport clock skew — all absorbed by the ingress gate.

Every cell of the matrix recovers from the journal, re-offers the whole
perturbed stream, and compares the final decision log and admitted task
set **bit-for-bit** against the uninterrupted baseline, while also
asserting the recovery replayed only the journal suffix past the last
checkpoint.  Determinism note: all randomness is seeded per cell, so a
failing cell reproduces exactly from ``(seed, mode, crash_at)``.
"""

from __future__ import annotations

import os
import random
import tempfile
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - type-only; avoids eval.fleet at load
    from repro.eval.fleet import FleetTrace

from repro.online.durable import (
    Envelope,
    InjectedCrash,
    envelope_stream,
    serve_durable,
)
from repro.online.events import RequestTrace
from repro.online.runtime import OnlineRuntime
from repro.workload.arrivals import poisson_trace

#: Delivery/journal perturbation modes the matrix sweeps.  ``none`` is
#: the control column; the journal-damage modes deliver canonically but
#: damage the journal tail after the crash.
CHAOS_MODES: Tuple[str, ...] = (
    "none",
    "duplicate",
    "reorder",
    "drop",
    "skew",
    "truncate-journal",
    "corrupt-journal",
)

#: Modes that damage the journal file itself (recovery may fall back
#: past the newest checkpoint, so the suffix-only replay bound does not
#: apply to them).
JOURNAL_DAMAGE_MODES: Tuple[str, ...] = ("truncate-journal", "corrupt-journal")


# ----------------------------------------------------------------------
# Delivery-stream perturbations
# ----------------------------------------------------------------------


def perturb_envelopes(
    envelopes: Sequence[Envelope],
    mode: str,
    seed: int,
    holdback: int = 16,
) -> List[Envelope]:
    """One adversarially-delivered version of a canonical stream.

    All displacement is bounded by ``holdback // 2``, so the ingress
    gate's bounded-holdback buffer (sized ``holdback``) provably absorbs
    the perturbation without a :class:`~repro.online.durable.StreamError`.
    """
    rng = random.Random(seed)
    shift = max(1, holdback // 2)
    if mode in ("none",) + JOURNAL_DAMAGE_MODES:
        return list(envelopes)
    if mode == "duplicate":
        # ~1/3 of deliveries repeat a few slots later (at-least-once).
        out: List[Tuple[float, int, Envelope]] = []
        for pos, env in enumerate(envelopes):
            out.append((float(pos), 0, env))
            if rng.random() < 0.34:
                out.append((pos + rng.uniform(0.5, shift), 1, env))
        out.sort(key=lambda item: (item[0], item[1]))
        return [env for _, _, env in out]
    if mode == "reorder":
        # Bounded random displacement; stable sort keeps ties canonical.
        keyed = [
            (
                pos + (rng.uniform(0.0, shift) if rng.random() < 0.5 else 0.0),
                pos,
                env,
            )
            for pos, env in enumerate(envelopes)
        ]
        keyed.sort(key=lambda item: (item[0], item[1]))
        return [env for _, _, env in keyed]
    if mode == "drop":
        # First delivery lost; the retransmit lands a few slots later,
        # and a second (duplicate) retransmit follows — the full
        # at-least-once failure mode.
        out = []
        for pos, env in enumerate(envelopes):
            if rng.random() < 0.25:
                delay = rng.uniform(1.0, shift)
                out.append((pos + delay, 0, env))
                out.append((pos + delay + rng.uniform(0.5, shift / 2), 1, env))
            else:
                out.append((float(pos), 0, env))
        out.sort(key=lambda item: (item[0], item[1]))
        return [env for _, _, env in out]
    if mode == "skew":
        # Transport clocks drift; delivery order and request bodies are
        # untouched, so the gate must ignore arrival timestamps.
        return [
            Envelope(
                seq=env.seq,
                request_id=env.request_id,
                request=env.request,
                arrival_s=max(0.0, env.arrival_s + rng.uniform(-1.5, 1.5)),
            )
            for env in envelopes
        ]
    raise ValueError(f"unknown chaos mode {mode!r} (known: {CHAOS_MODES})")


def damage_journal(path: str, mode: str, seed: int) -> int:
    """Damage a journal tail; returns the number of bytes affected.

    Truncation chops mid-record (a torn final write); corruption XORs
    one byte in the tail region (never the header line), which the CRC
    check must catch.  Both leave a shorter *valid* prefix for recovery.
    """
    rng = random.Random(seed)
    size = os.path.getsize(path)
    with open(path, "rb") as handle:
        first_line_end = handle.readline().__len__()
    tail_room = size - first_line_end
    if tail_room <= 1:
        return 0
    if mode == "truncate-journal":
        cut = min(tail_room - 1, rng.randint(1, 120))
        os.truncate(path, size - cut)
        return cut
    if mode == "corrupt-journal":
        offset = size - rng.randint(2, min(120, tail_room))
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0xFF]))
        return 1
    raise ValueError(f"{mode!r} is not a journal-damage mode")


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosCell:
    """One ``(mode, crash index)`` experiment's verdict."""

    mode: str
    crash_at: int
    identical: bool
    replay_bounded: bool
    decisions_replayed: int
    checkpoint_seq: int
    truncated_lines: int
    commits_repaired: int
    duplicates_absorbed: int
    max_buffered: int

    @property
    def ok(self) -> bool:
        return self.identical and self.replay_bounded

    def to_dict(self) -> Dict:
        return {
            "mode": self.mode,
            "crash_at": self.crash_at,
            "identical": self.identical,
            "replay_bounded": self.replay_bounded,
            "decisions_replayed": self.decisions_replayed,
            "checkpoint_seq": self.checkpoint_seq,
            "truncated_lines": self.truncated_lines,
            "commits_repaired": self.commits_repaired,
            "duplicates_absorbed": self.duplicates_absorbed,
            "max_buffered": self.max_buffered,
        }


@dataclass
class ChaosReport:
    """Outcome of one full chaos matrix run."""

    platform_name: str
    seed: int
    checkpoint_interval: int
    n_decisions: int
    cells: List[ChaosCell] = field(default_factory=list)
    invariants: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Every cell bit-identical with a suffix-bounded replay."""
        return bool(self.cells) and all(cell.ok for cell in self.cells)

    @property
    def identical_cells(self) -> int:
        return sum(1 for cell in self.cells if cell.identical)

    @property
    def max_replayed(self) -> int:
        return max((cell.decisions_replayed for cell in self.cells), default=0)

    def to_dict(self) -> Dict:
        return {
            "schema": "rtmdm-chaos/1",
            "platform": self.platform_name,
            "seed": self.seed,
            "checkpoint_interval": self.checkpoint_interval,
            "n_decisions": self.n_decisions,
            "ok": self.ok,
            "cells": [cell.to_dict() for cell in self.cells],
            "identical_cells": self.identical_cells,
            "max_replayed": self.max_replayed,
            "invariants": dict(self.invariants),
        }


def _baseline(
    runtime: OnlineRuntime, trace: RequestTrace
) -> Tuple[List[Dict], List[Dict]]:
    """The uninterrupted run's decision log and final instance set."""
    report = runtime.serve(trace, simulate=False)
    return (
        [d.to_dict() for d in report.decisions],
        [inst.to_dict() for inst in report.instances],
    )


def run_cell(
    runtime: OnlineRuntime,
    trace: RequestTrace,
    baseline: Tuple[List[Dict], List[Dict]],
    mode: str,
    crash_at: int,
    journal_path: str,
    checkpoint_interval: int = 8,
    holdback: int = 16,
    seed: int = 1,
    monitor: bool = True,
) -> ChaosCell:
    """Crash at ``crash_at`` under ``mode``, recover, and compare."""
    cell_seed = seed * 1_000_003 + crash_at * 131 + CHAOS_MODES.index(mode)
    envelopes = perturb_envelopes(
        envelope_stream(trace), mode, cell_seed, holdback=holdback
    )
    try:
        serve_durable(
            runtime,
            envelopes,
            trace.duration_s,
            journal_path,
            checkpoint_interval=checkpoint_interval,
            holdback=holdback,
            monitor=monitor,
            crash_at=crash_at,
        )
    except InjectedCrash:
        pass
    if mode in JOURNAL_DAMAGE_MODES:
        damage_journal(journal_path, mode, cell_seed)
    recovered = serve_durable(
        runtime,
        envelopes,
        trace.duration_s,
        journal_path,
        checkpoint_interval=checkpoint_interval,
        holdback=holdback,
        monitor=monitor,
        restore=True,
    )
    decisions = [d.to_dict() for d in recovered.report.decisions]
    instances = [inst.to_dict() for inst in recovered.report.instances]
    identical = decisions == baseline[0] and instances == baseline[1]
    recovery = recovered.recovery
    bounded = (
        mode in JOURNAL_DAMAGE_MODES
        or recovery.decisions_replayed <= checkpoint_interval
    )
    return ChaosCell(
        mode=mode,
        crash_at=crash_at,
        identical=identical,
        replay_bounded=bounded,
        decisions_replayed=recovery.decisions_replayed,
        checkpoint_seq=recovery.checkpoint_seq,
        truncated_lines=recovery.truncated_lines,
        commits_repaired=recovery.commits_repaired,
        duplicates_absorbed=recovered.gate.duplicates + recovered.gate.stale,
        max_buffered=recovered.gate.max_buffered,
    )


def run_matrix(
    runtime: OnlineRuntime,
    trace: RequestTrace,
    modes: Sequence[str] = CHAOS_MODES,
    crash_stride: int = 1,
    checkpoint_interval: int = 8,
    holdback: int = 16,
    seed: int = 1,
    monitor: bool = True,
    journal_dir: Optional[str] = None,
) -> ChaosReport:
    """Run the full crash-index × perturbation-mode matrix.

    ``crash_stride`` thins the crash-index axis for smoke runs (CI uses
    a stride; the acceptance matrix runs stride 1).  All journals live
    under ``journal_dir`` (a fresh temp dir by default), one file per
    cell, left on disk for post-mortems when a cell fails.
    """
    for mode in modes:
        if mode not in CHAOS_MODES:
            raise ValueError(f"unknown chaos mode {mode!r} (known: {CHAOS_MODES})")
    if crash_stride < 1:
        raise ValueError(f"crash_stride must be >= 1, got {crash_stride}")
    base = _baseline(runtime, trace)
    n = len(base[0])
    report = ChaosReport(
        platform_name=runtime.platform.name,
        seed=seed,
        checkpoint_interval=checkpoint_interval,
        n_decisions=n,
    )
    if journal_dir is None:
        journal_dir = tempfile.mkdtemp(prefix="rtmdm-chaos-")
    invariants: Dict[str, int] = {}
    for mode in modes:
        for crash_at in range(0, max(n, 1), crash_stride):
            path = os.path.join(journal_dir, f"{mode}-{crash_at:04d}.jsonl")
            cell = run_cell(
                runtime,
                trace,
                base,
                mode,
                crash_at,
                path,
                checkpoint_interval=checkpoint_interval,
                holdback=holdback,
                seed=seed,
                monitor=monitor,
            )
            report.cells.append(cell)
    # Aggregate invariant-check counts from one final monitored pass so
    # the report can prove no check was skipped during the matrix.
    if monitor:
        from repro.online.durable import InvariantMonitor

        controller = runtime.controller()
        mon = InvariantMonitor(controller)
        for request in trace:
            controller.handle(request)
            mon.check(runtime.platform.mcu.seconds_to_cycles(request.time_s))
        invariants = dict(mon.counts)
    report.invariants = invariants
    return report


def quick_matrix(
    platform_key: str = "f746-qspi",
    duration_s: float = 5.0,
    rate_hz: float = 1.5,
    seed: int = 1,
    **kwargs,
) -> ChaosReport:
    """A seeded end-to-end matrix over a generated trace (CLI / smoke)."""
    from repro.hw.presets import get_platform

    runtime = OnlineRuntime(get_platform(platform_key))
    trace = poisson_trace(duration_s, rate_hz, seed=seed)
    return run_matrix(runtime, trace, seed=seed, **kwargs)


# ----------------------------------------------------------------------
# Fleet chaos: crash-point x shard-count x perturbation
# ----------------------------------------------------------------------

#: Delivery perturbations the fleet matrix sweeps.  The fleet ingress is
#: a renumbered arrival stream, so every mode produces a *valid* trace
#: (contiguous ``seq``, non-decreasing ``time_s``) and the baseline is
#: the uninterrupted run of the **same** perturbed trace — the matrix
#: isolates crash/recovery, not transport semantics.
FLEET_CHAOS_MODES: Tuple[str, ...] = ("none", "duplicate", "reorder", "skew")


class FleetInvariantError(AssertionError):
    """A fleet serving invariant was violated (bug, not chaos)."""


def perturb_fleet_trace(
    trace: "FleetTrace", mode: str, seed: int, holdback: int = 8
) -> "FleetTrace":
    """One adversarially-delivered version of a fleet trace.

    Displacement is bounded by ``holdback // 2`` delivery slots.  The
    result is renumbered (``seq`` = delivery order) with monotone
    ``time_s``, so it is a well-formed trace in its own right.
    """
    from repro.eval.fleet import FleetTrace

    rng = random.Random(seed)
    shift = max(1, holdback // 2)
    keyed: List[Tuple[float, int, object]] = []
    if mode == "none":
        ordered = list(trace.requests)
        times = [req.time_s for req in ordered]
    elif mode == "duplicate":
        # ~1/5 of requests are re-delivered a few slots later; the
        # duplicate is a genuine second request (an at-least-once admit
        # resolves to ``already-resident`` downstream).
        for pos, req in enumerate(trace.requests):
            keyed.append((float(pos), 0, req))
            if rng.random() < 0.2:
                keyed.append((pos + rng.uniform(0.5, shift), 1, req))
        keyed.sort(key=lambda item: (item[0], item[1]))
        ordered = [req for _, _, req in keyed]
        times = sorted(req.time_s for req in ordered)
    elif mode == "reorder":
        for pos, req in enumerate(trace.requests):
            slot = pos + (rng.uniform(0.0, shift) if rng.random() < 0.5 else 0.0)
            keyed.append((slot, pos, req))
        keyed.sort(key=lambda item: (item[0], item[1]))
        ordered = [req for _, _, req in keyed]
        times = sorted(req.time_s for req in ordered)
    elif mode == "skew":
        # Arrival clocks drift a little; order follows the skewed clock.
        for pos, req in enumerate(trace.requests):
            keyed.append((max(0.0, req.time_s + rng.uniform(-0.02, 0.02)), pos, req))
        keyed.sort(key=lambda item: (item[0], item[1]))
        ordered = [req for _, _, req in keyed]
        times = [slot for slot, _, _ in keyed]
    else:
        raise ValueError(
            f"unknown fleet chaos mode {mode!r} (known: {FLEET_CHAOS_MODES})"
        )
    requests = tuple(
        replace(req, seq=pos, time_s=times[pos])
        for pos, req in enumerate(ordered)
    )
    duration = max(trace.duration_s, times[-1] if times else 0.0)
    return FleetTrace(
        requests=requests,
        duration_s=duration,
        n_devices=trace.n_devices,
        cohorts=trace.cohorts,
        arrival=trace.arrival,
    )


def fleet_invariants(report, max_retries: int = 3) -> Dict[str, int]:
    """Check the fleet serving invariants on one report.

    Returns the number of checks performed per invariant; raises
    :class:`FleetInvariantError` on the first violation.  The invariants
    hold under *any* chaos — a violation is a service bug:

    * ``decision-dense`` — exactly one final decision per request seq.
    * ``counts-consistent`` — outcome counters sum to the request count.
    * ``retry-bounded`` — no request timed out more than ``max_retries``
      times (exactly-once: the retried request still gets one final).
    * ``degraded-screened`` — every degraded admit carries the
      screen-admission reason (it passed the RTA screen, never skipped).
    """
    counts: Dict[str, int] = {}
    seqs = [d.seq for d in report.decisions]
    if len(seqs) != len(set(seqs)) or sorted(seqs) != list(range(report.requests)):
        raise FleetInvariantError(
            f"decision-dense: {len(set(seqs))} unique finals for "
            f"{report.requests} requests"
        )
    counts["decision-dense"] = len(seqs)
    total = (
        report.admitted + report.rejected_sram + report.rejected_rta
        + report.removed + report.ignored + report.shed
    )
    if total != report.requests:
        raise FleetInvariantError(
            f"counts-consistent: outcomes sum to {total}, "
            f"expected {report.requests}"
        )
    counts["counts-consistent"] = 1
    retries: Dict[int, int] = {}
    for record in report.timeout_decisions:
        retries[record.seq] = retries.get(record.seq, 0) + 1
    finals = set(seqs)
    for seq, n in retries.items():
        if n > max_retries:
            raise FleetInvariantError(
                f"retry-bounded: seq {seq} timed out {n} > {max_retries} times"
            )
        if seq not in finals:
            raise FleetInvariantError(
                f"retry-bounded: retried seq {seq} never decided"
            )
    counts["retry-bounded"] = len(retries)
    degraded = 0
    for d in report.decisions:
        if d.outcome == "admitted" and d.mode not in ("", "full"):
            degraded += 1
            if d.reason != "rta-oblivious":
                raise FleetInvariantError(
                    f"degraded-screened: seq {d.seq} admitted in mode "
                    f"{d.mode!r} with reason {d.reason!r}"
                )
    counts["degraded-screened"] = degraded
    return counts


@dataclass(frozen=True)
class FleetChaosCell:
    """One ``(mode, shard count, crash fraction)`` experiment's verdict."""

    mode: str
    n_shards: int
    crash_frac: float
    crashes: int
    identical: bool
    replay_bounded: bool
    invariants_ok: bool
    max_replayed: int
    recovered: int
    shed: int

    @property
    def ok(self) -> bool:
        return self.identical and self.replay_bounded and self.invariants_ok

    def to_dict(self) -> Dict:
        return {
            "mode": self.mode,
            "n_shards": self.n_shards,
            "crash_frac": self.crash_frac,
            "crashes": self.crashes,
            "identical": self.identical,
            "replay_bounded": self.replay_bounded,
            "invariants_ok": self.invariants_ok,
            "max_replayed": self.max_replayed,
            "recovered": self.recovered,
            "shed": self.shed,
        }


@dataclass
class FleetChaosReport:
    """Outcome of one full fleet chaos matrix run."""

    n_devices: int
    requests: int
    seed: int
    batch_size: int
    checkpoint_interval: int
    cells: List[FleetChaosCell] = field(default_factory=list)
    invariants: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return bool(self.cells) and all(cell.ok for cell in self.cells)

    @property
    def identical_cells(self) -> int:
        return sum(1 for cell in self.cells if cell.identical)

    @property
    def max_replayed(self) -> int:
        return max((cell.max_replayed for cell in self.cells), default=0)

    def to_dict(self) -> Dict:
        return {
            "schema": "rtmdm-fleet-chaos/1",
            "n_devices": self.n_devices,
            "requests": self.requests,
            "seed": self.seed,
            "batch_size": self.batch_size,
            "checkpoint_interval": self.checkpoint_interval,
            "ok": self.ok,
            "cells": [cell.to_dict() for cell in self.cells],
            "identical_cells": self.identical_cells,
            "max_replayed": self.max_replayed,
            "invariants": dict(self.invariants),
        }


def run_fleet_matrix(
    trace: "FleetTrace",
    modes: Sequence[str] = FLEET_CHAOS_MODES,
    shard_counts: Sequence[int] = (1, 2, 4),
    crash_fracs: Sequence[float] = (0.25, 0.75),
    batch_size: int = 8,
    checkpoint_interval: int = 16,
    holdback: int = 8,
    seed: int = 1,
    journal_dir: Optional[str] = None,
) -> FleetChaosReport:
    """Run the fleet crash/recovery matrix over one trace.

    Each cell perturbs the trace, crashes **every** shard at
    ``int(frac * decided)`` of its own baseline decision count (the torn
    batch's intents are durable, its commits are not), recovers, and
    compares the full decision stream bit-for-bit against the
    uninterrupted run of the same perturbed trace.  Replay must stay
    within ``max(checkpoint_interval, batch_size)`` decisions.
    """
    from repro.eval.fleet import FleetConfig, FleetService, decision_identity

    for mode in modes:
        if mode not in FLEET_CHAOS_MODES:
            raise ValueError(
                f"unknown fleet chaos mode {mode!r} (known: {FLEET_CHAOS_MODES})"
            )
    report = FleetChaosReport(
        n_devices=trace.n_devices,
        requests=len(trace.requests),
        seed=seed,
        batch_size=batch_size,
        checkpoint_interval=checkpoint_interval,
    )
    if journal_dir is None:
        journal_dir = tempfile.mkdtemp(prefix="rtmdm-fleet-chaos-")
    replay_bound = max(checkpoint_interval, batch_size)
    invariants: Dict[str, int] = {}
    for mode_index, mode in enumerate(modes):
        ptrace = perturb_fleet_trace(
            trace, mode, seed * 9_176 + mode_index, holdback=holdback
        )
        for n_shards in shard_counts:
            base_cfg = FleetConfig(n_shards=n_shards, batch_size=batch_size)
            base = FleetService(
                cohorts=trace.cohorts, config=base_cfg
            ).run(ptrace)
            base_identity = decision_identity(base.all_decisions())
            decided = {s["shard"]: s["decided"] for s in base.shard_stats}
            for frac in crash_fracs:
                crash_at = tuple(
                    (shard, int(frac * decided[shard]))
                    for shard in range(n_shards)
                    if decided.get(shard, 0) > 0
                )
                cell_dir = os.path.join(
                    journal_dir, f"{mode}-s{n_shards}-f{int(frac * 100):03d}"
                )
                os.makedirs(cell_dir, exist_ok=True)
                cfg = FleetConfig(
                    n_shards=n_shards,
                    batch_size=batch_size,
                    journal_dir=cell_dir,
                    checkpoint_interval=checkpoint_interval,
                    crash_at=crash_at,
                )
                rep = FleetService(cohorts=trace.cohorts, config=cfg).run(ptrace)
                identical = (
                    decision_identity(rep.all_decisions()) == base_identity
                )
                replays = [
                    recovery["decisions_replayed"]
                    for stats in rep.shard_stats
                    for recovery in stats["recoveries"]
                ]
                invariants_ok = True
                try:
                    cell_counts = fleet_invariants(
                        rep, max_retries=cfg.max_retries
                    )
                except FleetInvariantError:
                    invariants_ok = False
                    cell_counts = {}
                for name, count in cell_counts.items():
                    invariants[name] = invariants.get(name, 0) + count
                report.cells.append(
                    FleetChaosCell(
                        mode=mode,
                        n_shards=n_shards,
                        crash_frac=frac,
                        crashes=len(crash_at),
                        identical=identical,
                        replay_bounded=all(r <= replay_bound for r in replays),
                        invariants_ok=invariants_ok,
                        max_replayed=max(replays, default=0),
                        recovered=rep.recovered,
                        shed=rep.shed,
                    )
                )
    report.invariants = invariants
    return report


def quick_fleet_matrix(
    n_devices: int = 24,
    duration_s: float = 1.5,
    rate_hz: float = 6.0,
    seed: int = 1,
    **kwargs,
) -> FleetChaosReport:
    """A seeded end-to-end fleet matrix over a generated trace."""
    from repro.eval.fleet import fleet_trace

    trace = fleet_trace(
        n_devices=n_devices,
        duration_s=duration_s,
        rate_per_device_hz=rate_hz,
        seed=seed,
    )
    return run_fleet_matrix(trace, seed=seed, **kwargs)
