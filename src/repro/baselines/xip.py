"""Execute-in-place (XIP) baseline: no staging at all.

Weights are fetched from external memory by the CPU as the kernels
consume them.  No SRAM staging buffers are needed (only activations),
but every weight byte pays the scatter-degraded external-bus rate — the
standard "just map the flash" deployment that RT-MDM's staging replaces.

Each layer remains a segment boundary (the scheduler can still switch
between tasks at layer granularity), with zero load legs.
"""

from __future__ import annotations

from typing import Optional

from repro.core import segcache
from repro.dnn.models import Model
from repro.dnn.quantization import INT8, Quantization
from repro.hw.platform import Platform
from repro.sched.task import PeriodicTask, Segment


def xip_segments(
    name: str,
    model: Model,
    platform: Platform,
    quant: Quantization = INT8,
) -> tuple:
    """Per-layer XIP segments of ``model`` (zero load legs), memoized.

    Shared by :func:`xip_task` and the fused struct-of-arrays packer in
    :mod:`repro.eval.systems`, so both derive from the same cache entry.
    """

    def build() -> tuple:
        return tuple(
            Segment(
                name=f"{name}/{layer.name}",
                load_cycles=0,
                compute_cycles=platform.xip_cycles(layer, quant.weight_bytes),
                load_bytes=0,
                xip_bytes=layer.param_bytes(quant),
            )
            for layer in model.layers
        )

    return segcache.cached_xip_segments(name, model, platform, quant, build)


def xip_task(
    name: str,
    model: Model,
    platform: Platform,
    period: int,
    deadline: Optional[int] = None,
    priority: int = 0,
    quant: Quantization = INT8,
) -> PeriodicTask:
    """Build the XIP version of a model as a periodic task (cycles)."""
    segments = xip_segments(name, model, platform, quant)
    return PeriodicTask(
        name=name,
        segments=segments,
        period=period,
        deadline=deadline if deadline is not None else period,
        priority=priority,
        buffers=1,
    )
