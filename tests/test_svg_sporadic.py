"""Unit tests for SVG trace export and sporadic releases."""

import random

import pytest

from conftest import make_task, random_taskset
from repro.core.analysis import analyze
from repro.hw.presets import get_platform
from repro.sched.policies import CpuPolicy
from repro.sched.simulator import SimConfig, simulate
from repro.sched.svg import trace_to_svg, write_svg
from repro.sched.task import TaskSet


def _traced(tasks, horizon, **kw):
    return simulate(TaskSet.of(tasks), SimConfig(horizon=horizon,
                                                 record_trace=True, **kw))


class TestSvg:
    def test_renders_lanes_and_intervals(self):
        result = _traced(
            [
                make_task("alpha", [(50, 100)], period=1000, priority=0),
                make_task("beta", [(30, 200)], period=1500, priority=1),
            ],
            horizon=5000,
        )
        svg = trace_to_svg(result.trace, mcu=get_platform().mcu)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "alpha/cpu" in svg and "beta/dma" in svg
        assert "<rect" in svg
        assert "ms</text>" in svg  # millisecond axis

    def test_cycles_axis_without_mcu(self):
        result = _traced([make_task("t", [(0, 100)], period=1000)], horizon=3000)
        svg = trace_to_svg(result.trace)
        assert "ms</text>" not in svg

    def test_misses_rendered(self):
        result = _traced([make_task("t", [(0, 1500)], period=1000)], horizon=3000)
        svg = trace_to_svg(result.trace)
        assert "deadline miss" in svg

    def test_empty_trace(self):
        from repro.sched.trace import Trace

        assert "(empty trace)" in trace_to_svg(Trace())

    def test_title_and_escaping(self):
        result = _traced([make_task("t", [(0, 100)], period=1000)], horizon=2000)
        svg = trace_to_svg(result.trace, title="a < b & c")
        assert "a &lt; b &amp; c" in svg

    def test_write_svg(self, tmp_path):
        result = _traced([make_task("t", [(0, 100)], period=1000)], horizon=2000)
        path = tmp_path / "trace.svg"
        write_svg(result.trace, str(path), title="x")
        assert path.read_text().startswith("<svg")


class TestSporadic:
    def test_inter_arrival_at_least_period(self):
        task = make_task("t", [(0, 10)], period=100)
        result = _traced([task], horizon=5000, sporadic_slack=0.5, seed=7)
        releases = [e.time for e in result.trace.points("release")]
        gaps = [b - a for a, b in zip(releases, releases[1:])]
        assert all(gap >= 100 for gap in gaps)
        assert any(gap > 100 for gap in gaps)  # some slack actually drawn

    def test_reproducible(self):
        task = make_task("t", [(0, 10)], period=100)
        a = _traced([task], horizon=5000, sporadic_slack=0.5, seed=3)
        b = _traced([task], horizon=5000, sporadic_slack=0.5, seed=3)
        ra = [e.time for e in a.trace.points("release")]
        rb = [e.time for e in b.trace.points("release")]
        assert ra == rb

    def test_different_seeds_differ(self):
        task = make_task("t", [(0, 10)], period=100)
        a = _traced([task], horizon=5000, sporadic_slack=0.9, seed=1)
        b = _traced([task], horizon=5000, sporadic_slack=0.9, seed=2)
        assert [e.time for e in a.trace.points("release")] != [
            e.time for e in b.trace.points("release")
        ]

    def test_zero_slack_is_periodic(self):
        task = make_task("t", [(0, 10)], period=100)
        result = _traced([task], horizon=1000, sporadic_slack=0.0)
        releases = [e.time for e in result.trace.points("release")]
        assert releases == list(range(0, 1000, 100))

    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError, match="sporadic_slack"):
            SimConfig(horizon=100, sporadic_slack=-0.1)

    @pytest.mark.parametrize("seed", range(10))
    def test_analysis_bounds_hold_under_sporadic_arrivals(self, seed):
        """Periods are minimum inter-arrivals: the periodic analysis must
        still dominate sporadic simulations."""
        rng = random.Random(900 + seed)
        ts = random_taskset(rng, n_tasks=3, util_target=0.4)
        result = analyze(ts, "rtmdm")
        if not result.schedulable:
            pytest.skip("analysis rejects this draw")
        sim = simulate(
            ts,
            SimConfig(
                policy=CpuPolicy.FP_NP,
                horizon=25 * max(t.period for t in ts),
                sporadic_slack=0.7,
                seed=seed,
            ),
        )
        assert sim.no_misses
        for task in ts:
            observed = sim.max_response(task.name)
            if observed is not None:
                assert observed <= result.wcrt[task.name]
