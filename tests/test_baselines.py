"""Unit tests for the baseline execution strategies."""


from conftest import make_task
from repro.baselines import sequentialize, single_buffered, whole_job, xip_task
from repro.core.pipeline import isolated_latency
from repro.dnn.quantization import INT8
from repro.dnn.zoo import build_model
from repro.hw.presets import get_platform
from repro.sched.simulator import SimConfig, simulate
from repro.sched.task import TaskSet

PLATFORM = get_platform("f746-qspi")


def _task():
    return make_task(
        "t", [(50, 100), (80, 120), (0, 60)], period=2000, deadline=1500,
        priority=3, buffers=2,
    )


class TestSequentialize:
    def test_folds_loads_into_compute(self):
        seq = sequentialize(_task())
        assert seq.total_load == 0
        assert seq.total_compute == _task().total_compute + _task().total_load
        assert seq.num_segments == _task().num_segments

    def test_preserves_timing_parameters(self):
        seq = sequentialize(_task())
        original = _task()
        assert (seq.period, seq.deadline, seq.priority, seq.phase) == (
            original.period, original.deadline, original.priority, original.phase,
        )

    def test_latency_equals_sum(self):
        seq = sequentialize(_task())
        assert isolated_latency(seq.segments, seq.buffers) == (
            _task().total_compute + _task().total_load
        )


class TestSingleBuffered:
    def test_only_buffers_change(self):
        sb = single_buffered(_task())
        assert sb.buffers == 1
        assert sb.segments == _task().segments

    def test_latency_no_better_than_double_buffered(self):
        task = _task()
        sb = single_buffered(task)
        assert isolated_latency(sb.segments, 1) >= isolated_latency(
            task.segments, task.buffers
        )


class TestWholeJob:
    def test_single_section_of_isolated_latency(self):
        wj = whole_job(_task())
        assert wj.num_segments == 1
        assert wj.total_load == 0
        assert wj.total_compute == isolated_latency(
            _task().segments, _task().buffers
        )

    def test_blocks_other_tasks_longer(self):
        # A whole-job lower task blocks a released-later high task for its
        # entire latency instead of one segment.
        hi = make_task("hi", [(0, 50)], period=5000, priority=0, phase=10)
        lo = _task().with_priority(1)
        seg_result = simulate(
            TaskSet.of([hi, lo]), SimConfig(horizon=10_000)
        )
        wj_result = simulate(
            TaskSet.of([hi, whole_job(lo)]), SimConfig(horizon=10_000)
        )
        assert wj_result.max_response("hi") > seg_result.max_response("hi")


class TestXip:
    def test_no_loads_and_layer_granularity(self):
        model = build_model("ds-cnn")
        task = xip_task("kws", model, PLATFORM, period=50_000_000)
        assert task.total_load == 0
        assert task.num_segments == model.num_layers

    def test_slower_than_staged_compute_for_weighted_models(self):
        model = build_model("autoencoder")
        task = xip_task("ae", model, PLATFORM, period=10**9)
        staged_compute = sum(
            PLATFORM.compute_cycles(layer, INT8.weight_bytes) for layer in model.layers
        )
        assert task.total_compute > staged_compute

    def test_deadline_defaults_to_period(self):
        task = xip_task("ae", build_model("tinyconv"), PLATFORM, period=10**6)
        assert task.deadline == task.period

    def test_explicit_parameters(self):
        task = xip_task(
            "ae", build_model("tinyconv"), PLATFORM, period=10**6,
            deadline=500_000, priority=7,
        )
        assert task.deadline == 500_000
        assert task.priority == 7
