"""Unit and integration tests for the RtMdm framework."""

import pytest

from repro.core.framework import RtMdm, TaskSpec
from repro.dnn.zoo import build_model
from repro.hw.presets import get_platform


def _doorbell(platform_key="f746-qspi", **kwargs):
    rt = RtMdm(get_platform(platform_key), **kwargs)
    rt.add_task("kws", build_model("ds-cnn"), period_s=0.200)
    rt.add_task("vww", build_model("mobilenet-v1-0.25"), period_s=1.000)
    rt.add_task("anomaly", build_model("autoencoder"), period_s=0.500)
    return rt


class TestTaskSpec:
    def test_validation(self):
        model = build_model("tinyconv")
        with pytest.raises(ValueError):
            TaskSpec("t", model, period_s=0.0)
        with pytest.raises(ValueError):
            TaskSpec("t", model, period_s=0.1, deadline_s=0.2)
        TaskSpec("t", model, period_s=0.1, deadline_s=0.1)


class TestConfigure:
    def test_case_study_is_admitted(self):
        config = _doorbell().configure()
        assert config.feasible
        assert config.admitted
        assert config.sram_plan.fits
        config.sram_plan.verify_disjoint()

    def test_report_rows_complete(self):
        config = _doorbell().configure()
        rows = config.report_rows()
        assert {r["task"] for r in rows} == {"kws", "vww", "anomaly"}
        for row in rows:
            assert row["admitted"]
            assert row["wcrt_ms"] <= row["deadline_ms"]
            assert row["latency_ms"] > 0
            assert row["segments"] >= 1

    def test_simulation_validates_admission(self):
        config = _doorbell().configure()
        result = config.simulate()
        assert result.no_misses
        for task in config.taskset:
            assert result.max_response(task.name) <= config.analysis.wcrt[task.name]

    def test_infeasible_on_tiny_sram(self):
        rt = _doorbell()
        rt.platform = rt.platform.with_sram_bytes(24 * 1024)
        config = rt.configure()
        assert not config.feasible
        assert not config.admitted
        assert config.infeasible_reason
        with pytest.raises(RuntimeError, match="infeasible"):
            config.simulate()

    def test_duplicate_task_rejected(self):
        rt = _doorbell()
        with pytest.raises(ValueError, match="duplicate"):
            rt.add_task("kws", build_model("tinyconv"), period_s=0.1)

    def test_configure_without_tasks(self):
        rt = RtMdm(get_platform("f746-qspi"))
        with pytest.raises(RuntimeError, match="add at least one task"):
            rt.configure()

    def test_overloaded_periods_not_admitted(self):
        rt = RtMdm(get_platform("f746-qspi"))
        # DS-CNN takes ~30 ms on this platform; a 10 ms period overloads.
        rt.add_task("kws", build_model("ds-cnn"), period_s=0.010)
        config = rt.configure()
        assert config.feasible
        assert not config.admitted

    def test_buffers_knob(self):
        config1 = _doorbell(buffers=1).configure()
        config2 = _doorbell(buffers=2).configure()
        for name in ("kws", "vww", "anomaly"):
            lat1 = config1.segmented[name].isolated_latency()
            lat2 = config2.segmented[name].isolated_latency()
            assert lat2 <= lat1

    def test_analysis_method_knob(self):
        config = _doorbell(analysis_method="oblivious").configure()
        assert config.analysis.method == "oblivious"

    def test_faster_platform_admits_more(self):
        slow = _doorbell("f746-qspi").configure()
        fast = _doorbell("h743-octal").configure()
        assert fast.admitted
        for name in ("kws", "vww", "anomaly"):
            # Compare wall-clock (cycle counts are not comparable across
            # platforms with different clock rates).
            fast_s = fast.platform.mcu.cycles_to_seconds(
                fast.segmented[name].isolated_latency()
            )
            slow_s = slow.platform.mcu.cycles_to_seconds(
                slow.segmented[name].isolated_latency()
            )
            assert fast_s < slow_s

    def test_explicit_deadline_used(self):
        rt = RtMdm(get_platform("f746-qspi"))
        rt.add_task("kws", build_model("ds-cnn"), period_s=0.200, deadline_s=0.100)
        config = rt.configure()
        task = config.taskset.by_name("kws")
        assert task.deadline < task.period

    def test_simulate_with_phases_and_trace(self):
        config = _doorbell().configure()
        result = config.simulate(
            duration_s=2.0, phases=[100, 200, 300], record_trace=True
        )
        assert result.trace is not None
        result.trace.verify_no_overlap()
