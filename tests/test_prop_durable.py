"""Property-based tests for crash recovery (``repro.online.durable``).

The load-bearing property of the whole durable layer: **for any crash
point, any checkpoint interval and any bounded delivery perturbation,
journal-replay recovery reproduces the uninterrupted decision log
bit-for-bit and replays only the post-checkpoint suffix.**
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import segcache
from repro.hw.presets import get_platform
from repro.online.durable import (
    InjectedCrash,
    envelope_stream,
    serve_durable,
)
from repro.online.runtime import OnlineRuntime
from repro.robust.chaos import perturb_envelopes
from repro.workload.arrivals import poisson_trace

PLATFORM = get_platform("f746-qspi")

# One fixed trace for every example: hypothesis explores the crash/
# checkpoint/perturbation space, not the workload space (EXP-D1 and the
# soundness tests already sweep workloads).  Building it once keeps the
# plan cache warm across examples.
_TRACE = poisson_trace(5.0, 1.8, seed=11)


@pytest.fixture(scope="module", autouse=True)
def _module_caches():
    segcache.clear_all()
    yield
    segcache.clear_all()


@pytest.fixture(scope="module")
def baseline():
    runtime = OnlineRuntime(PLATFORM)
    report = runtime.serve(_TRACE, simulate=False)
    return (
        [d.to_dict() for d in report.decisions],
        [i.to_dict() for i in report.instances],
    )


@given(
    crash_at=st.integers(0, 40),
    checkpoint_interval=st.integers(1, 24),
    fsync_interval=st.integers(1, 12),
    mode=st.sampled_from(("none", "duplicate", "reorder", "drop", "skew")),
    perturb_seed=st.integers(0, 1_000),
)
@settings(max_examples=60, deadline=None)
def test_any_crash_point_recovers_bit_identical(
    baseline, tmp_path_factory, crash_at, checkpoint_interval,
    fsync_interval, mode, perturb_seed,
):
    path = str(tmp_path_factory.mktemp("prop") / "journal.jsonl")
    runtime = OnlineRuntime(PLATFORM)
    envelopes = perturb_envelopes(
        envelope_stream(_TRACE), mode, perturb_seed, holdback=16
    )
    crashed = True
    try:
        serve_durable(
            runtime,
            envelopes,
            _TRACE.duration_s,
            path,
            checkpoint_interval=checkpoint_interval,
            fsync_interval=fsync_interval,
            holdback=16,
            crash_at=crash_at,
        )
        crashed = False  # crash index past the stream: nothing injected
    except InjectedCrash as crash:
        assert crash.seq == crash_at
    result = serve_durable(
        runtime,
        envelopes,
        _TRACE.duration_s,
        path,
        checkpoint_interval=checkpoint_interval,
        fsync_interval=fsync_interval,
        holdback=16,
        restore=True,
    )
    assert [d.to_dict() for d in result.report.decisions] == baseline[0]
    assert [i.to_dict() for i in result.report.instances] == baseline[1]
    recovery = result.recovery
    assert recovery.decisions_replayed <= checkpoint_interval
    if crashed:
        # The journal holds intents 0..crash_at; everything past the
        # last checkpoint (at the largest multiple of the interval
        # <= crash_at) replays, nothing more.
        expected = (
            crash_at + 1
            - (crash_at // checkpoint_interval) * checkpoint_interval
        )
        assert recovery.decisions_replayed == expected
    assert recovery.truncated_lines == 0
    # The recovered run monitored every decision it processed inline
    # (recovery replay itself is covered by the commit verification;
    # with no crash the whole stream is stale redelivery).
    fresh = len(baseline[0]) - (crash_at + 1) if crashed else 0
    assert all(count == fresh for count in result.invariants.values())
