"""Chaos-injection harness for the crash-tolerant serving layer.

Drives :mod:`repro.online.durable` through everything the real world
throws at a single-controller admission service — and asserts that none
of it can change a single decision:

* **Controller crashes** at every decision index (the
  :class:`~repro.online.durable.InjectedCrash` hook fires after the
  intent record is journaled, before the decision commits — the worst
  possible point).
* **Journal damage**: torn tails (truncation mid-record) and flipped
  bytes (CRC-detected corruption), both forcing recovery back to an
  earlier durable prefix.
* **Adversarial delivery**: duplicated, reordered, and
  dropped-then-retransmitted envelopes (at-least-once transport), plus
  transport clock skew — all absorbed by the ingress gate.

Every cell of the matrix recovers from the journal, re-offers the whole
perturbed stream, and compares the final decision log and admitted task
set **bit-for-bit** against the uninterrupted baseline, while also
asserting the recovery replayed only the journal suffix past the last
checkpoint.  Determinism note: all randomness is seeded per cell, so a
failing cell reproduces exactly from ``(seed, mode, crash_at)``.
"""

from __future__ import annotations

import os
import random
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.online.durable import (
    Envelope,
    InjectedCrash,
    envelope_stream,
    serve_durable,
)
from repro.online.events import RequestTrace
from repro.online.runtime import OnlineRuntime
from repro.workload.arrivals import poisson_trace

#: Delivery/journal perturbation modes the matrix sweeps.  ``none`` is
#: the control column; the journal-damage modes deliver canonically but
#: damage the journal tail after the crash.
CHAOS_MODES: Tuple[str, ...] = (
    "none",
    "duplicate",
    "reorder",
    "drop",
    "skew",
    "truncate-journal",
    "corrupt-journal",
)

#: Modes that damage the journal file itself (recovery may fall back
#: past the newest checkpoint, so the suffix-only replay bound does not
#: apply to them).
JOURNAL_DAMAGE_MODES: Tuple[str, ...] = ("truncate-journal", "corrupt-journal")


# ----------------------------------------------------------------------
# Delivery-stream perturbations
# ----------------------------------------------------------------------


def perturb_envelopes(
    envelopes: Sequence[Envelope],
    mode: str,
    seed: int,
    holdback: int = 16,
) -> List[Envelope]:
    """One adversarially-delivered version of a canonical stream.

    All displacement is bounded by ``holdback // 2``, so the ingress
    gate's bounded-holdback buffer (sized ``holdback``) provably absorbs
    the perturbation without a :class:`~repro.online.durable.StreamError`.
    """
    rng = random.Random(seed)
    shift = max(1, holdback // 2)
    if mode in ("none",) + JOURNAL_DAMAGE_MODES:
        return list(envelopes)
    if mode == "duplicate":
        # ~1/3 of deliveries repeat a few slots later (at-least-once).
        out: List[Tuple[float, int, Envelope]] = []
        for pos, env in enumerate(envelopes):
            out.append((float(pos), 0, env))
            if rng.random() < 0.34:
                out.append((pos + rng.uniform(0.5, shift), 1, env))
        out.sort(key=lambda item: (item[0], item[1]))
        return [env for _, _, env in out]
    if mode == "reorder":
        # Bounded random displacement; stable sort keeps ties canonical.
        keyed = [
            (
                pos + (rng.uniform(0.0, shift) if rng.random() < 0.5 else 0.0),
                pos,
                env,
            )
            for pos, env in enumerate(envelopes)
        ]
        keyed.sort(key=lambda item: (item[0], item[1]))
        return [env for _, _, env in keyed]
    if mode == "drop":
        # First delivery lost; the retransmit lands a few slots later,
        # and a second (duplicate) retransmit follows — the full
        # at-least-once failure mode.
        out = []
        for pos, env in enumerate(envelopes):
            if rng.random() < 0.25:
                delay = rng.uniform(1.0, shift)
                out.append((pos + delay, 0, env))
                out.append((pos + delay + rng.uniform(0.5, shift / 2), 1, env))
            else:
                out.append((float(pos), 0, env))
        out.sort(key=lambda item: (item[0], item[1]))
        return [env for _, _, env in out]
    if mode == "skew":
        # Transport clocks drift; delivery order and request bodies are
        # untouched, so the gate must ignore arrival timestamps.
        return [
            Envelope(
                seq=env.seq,
                request_id=env.request_id,
                request=env.request,
                arrival_s=max(0.0, env.arrival_s + rng.uniform(-1.5, 1.5)),
            )
            for env in envelopes
        ]
    raise ValueError(f"unknown chaos mode {mode!r} (known: {CHAOS_MODES})")


def damage_journal(path: str, mode: str, seed: int) -> int:
    """Damage a journal tail; returns the number of bytes affected.

    Truncation chops mid-record (a torn final write); corruption XORs
    one byte in the tail region (never the header line), which the CRC
    check must catch.  Both leave a shorter *valid* prefix for recovery.
    """
    rng = random.Random(seed)
    size = os.path.getsize(path)
    with open(path, "rb") as handle:
        first_line_end = handle.readline().__len__()
    tail_room = size - first_line_end
    if tail_room <= 1:
        return 0
    if mode == "truncate-journal":
        cut = min(tail_room - 1, rng.randint(1, 120))
        os.truncate(path, size - cut)
        return cut
    if mode == "corrupt-journal":
        offset = size - rng.randint(2, min(120, tail_room))
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0xFF]))
        return 1
    raise ValueError(f"{mode!r} is not a journal-damage mode")


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosCell:
    """One ``(mode, crash index)`` experiment's verdict."""

    mode: str
    crash_at: int
    identical: bool
    replay_bounded: bool
    decisions_replayed: int
    checkpoint_seq: int
    truncated_lines: int
    commits_repaired: int
    duplicates_absorbed: int
    max_buffered: int

    @property
    def ok(self) -> bool:
        return self.identical and self.replay_bounded

    def to_dict(self) -> Dict:
        return {
            "mode": self.mode,
            "crash_at": self.crash_at,
            "identical": self.identical,
            "replay_bounded": self.replay_bounded,
            "decisions_replayed": self.decisions_replayed,
            "checkpoint_seq": self.checkpoint_seq,
            "truncated_lines": self.truncated_lines,
            "commits_repaired": self.commits_repaired,
            "duplicates_absorbed": self.duplicates_absorbed,
            "max_buffered": self.max_buffered,
        }


@dataclass
class ChaosReport:
    """Outcome of one full chaos matrix run."""

    platform_name: str
    seed: int
    checkpoint_interval: int
    n_decisions: int
    cells: List[ChaosCell] = field(default_factory=list)
    invariants: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Every cell bit-identical with a suffix-bounded replay."""
        return bool(self.cells) and all(cell.ok for cell in self.cells)

    @property
    def identical_cells(self) -> int:
        return sum(1 for cell in self.cells if cell.identical)

    @property
    def max_replayed(self) -> int:
        return max((cell.decisions_replayed for cell in self.cells), default=0)

    def to_dict(self) -> Dict:
        return {
            "schema": "rtmdm-chaos/1",
            "platform": self.platform_name,
            "seed": self.seed,
            "checkpoint_interval": self.checkpoint_interval,
            "n_decisions": self.n_decisions,
            "ok": self.ok,
            "cells": [cell.to_dict() for cell in self.cells],
            "identical_cells": self.identical_cells,
            "max_replayed": self.max_replayed,
            "invariants": dict(self.invariants),
        }


def _baseline(
    runtime: OnlineRuntime, trace: RequestTrace
) -> Tuple[List[Dict], List[Dict]]:
    """The uninterrupted run's decision log and final instance set."""
    report = runtime.serve(trace, simulate=False)
    return (
        [d.to_dict() for d in report.decisions],
        [inst.to_dict() for inst in report.instances],
    )


def run_cell(
    runtime: OnlineRuntime,
    trace: RequestTrace,
    baseline: Tuple[List[Dict], List[Dict]],
    mode: str,
    crash_at: int,
    journal_path: str,
    checkpoint_interval: int = 8,
    holdback: int = 16,
    seed: int = 1,
    monitor: bool = True,
) -> ChaosCell:
    """Crash at ``crash_at`` under ``mode``, recover, and compare."""
    cell_seed = seed * 1_000_003 + crash_at * 131 + CHAOS_MODES.index(mode)
    envelopes = perturb_envelopes(
        envelope_stream(trace), mode, cell_seed, holdback=holdback
    )
    try:
        serve_durable(
            runtime,
            envelopes,
            trace.duration_s,
            journal_path,
            checkpoint_interval=checkpoint_interval,
            holdback=holdback,
            monitor=monitor,
            crash_at=crash_at,
        )
    except InjectedCrash:
        pass
    if mode in JOURNAL_DAMAGE_MODES:
        damage_journal(journal_path, mode, cell_seed)
    recovered = serve_durable(
        runtime,
        envelopes,
        trace.duration_s,
        journal_path,
        checkpoint_interval=checkpoint_interval,
        holdback=holdback,
        monitor=monitor,
        restore=True,
    )
    decisions = [d.to_dict() for d in recovered.report.decisions]
    instances = [inst.to_dict() for inst in recovered.report.instances]
    identical = decisions == baseline[0] and instances == baseline[1]
    recovery = recovered.recovery
    bounded = (
        mode in JOURNAL_DAMAGE_MODES
        or recovery.decisions_replayed <= checkpoint_interval
    )
    return ChaosCell(
        mode=mode,
        crash_at=crash_at,
        identical=identical,
        replay_bounded=bounded,
        decisions_replayed=recovery.decisions_replayed,
        checkpoint_seq=recovery.checkpoint_seq,
        truncated_lines=recovery.truncated_lines,
        commits_repaired=recovery.commits_repaired,
        duplicates_absorbed=recovered.gate.duplicates + recovered.gate.stale,
        max_buffered=recovered.gate.max_buffered,
    )


def run_matrix(
    runtime: OnlineRuntime,
    trace: RequestTrace,
    modes: Sequence[str] = CHAOS_MODES,
    crash_stride: int = 1,
    checkpoint_interval: int = 8,
    holdback: int = 16,
    seed: int = 1,
    monitor: bool = True,
    journal_dir: Optional[str] = None,
) -> ChaosReport:
    """Run the full crash-index × perturbation-mode matrix.

    ``crash_stride`` thins the crash-index axis for smoke runs (CI uses
    a stride; the acceptance matrix runs stride 1).  All journals live
    under ``journal_dir`` (a fresh temp dir by default), one file per
    cell, left on disk for post-mortems when a cell fails.
    """
    for mode in modes:
        if mode not in CHAOS_MODES:
            raise ValueError(f"unknown chaos mode {mode!r} (known: {CHAOS_MODES})")
    if crash_stride < 1:
        raise ValueError(f"crash_stride must be >= 1, got {crash_stride}")
    base = _baseline(runtime, trace)
    n = len(base[0])
    report = ChaosReport(
        platform_name=runtime.platform.name,
        seed=seed,
        checkpoint_interval=checkpoint_interval,
        n_decisions=n,
    )
    if journal_dir is None:
        journal_dir = tempfile.mkdtemp(prefix="rtmdm-chaos-")
    invariants: Dict[str, int] = {}
    for mode in modes:
        for crash_at in range(0, max(n, 1), crash_stride):
            path = os.path.join(journal_dir, f"{mode}-{crash_at:04d}.jsonl")
            cell = run_cell(
                runtime,
                trace,
                base,
                mode,
                crash_at,
                path,
                checkpoint_interval=checkpoint_interval,
                holdback=holdback,
                seed=seed,
                monitor=monitor,
            )
            report.cells.append(cell)
    # Aggregate invariant-check counts from one final monitored pass so
    # the report can prove no check was skipped during the matrix.
    if monitor:
        from repro.online.durable import InvariantMonitor

        controller = runtime.controller()
        mon = InvariantMonitor(controller)
        for request in trace:
            controller.handle(request)
            mon.check(runtime.platform.mcu.seconds_to_cycles(request.time_s))
        invariants = dict(mon.counts)
    report.invariants = invariants
    return report


def quick_matrix(
    platform_key: str = "f746-qspi",
    duration_s: float = 5.0,
    rate_hz: float = 1.5,
    seed: int = 1,
    **kwargs,
) -> ChaosReport:
    """A seeded end-to-end matrix over a generated trace (CLI / smoke)."""
    from repro.hw.presets import get_platform

    runtime = OnlineRuntime(get_platform(platform_key))
    trace = poisson_trace(duration_s, rate_hz, seed=seed)
    return run_matrix(runtime, trace, seed=seed, **kwargs)
