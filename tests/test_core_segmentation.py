"""Unit tests for the segmentation planner."""

import itertools

import pytest

from repro.core.segmentation import (
    SegmentationError,
    coarsest_feasible_segments,
    min_max_weight_partition,
    search_segmentation,
    segment_model,
)
from repro.dnn.models import refine_model
from repro.dnn.quantization import INT8
from repro.dnn.zoo import build_model
from repro.hw.presets import get_platform

PLATFORM = get_platform("f746-qspi")


def _brute_force_min_max(weights, k):
    """Exhaustive optimum of the min-max contiguous partition."""
    n = len(weights)
    best = None
    for cuts in itertools.combinations(range(1, n), k - 1):
        edges = [0, *cuts, n]
        worst = max(
            sum(weights[edges[i]:edges[i + 1]]) for i in range(k)
        )
        best = worst if best is None else min(best, worst)
    return best


class TestMinMaxPartition:
    @pytest.mark.parametrize("weights,k", [
        ([5, 1, 4, 2, 8], 2),
        ([5, 1, 4, 2, 8], 3),
        ([1, 1, 1, 1], 4),
        ([9, 1, 1, 1, 9], 3),
        ([3, 7, 2, 5, 4, 6], 4),
    ])
    def test_optimal_vs_brute_force(self, weights, k):
        boundaries = min_max_weight_partition(weights, k)
        achieved = max(sum(weights[s:e]) for s, e in boundaries)
        assert achieved == _brute_force_min_max(weights, k)

    def test_returns_exactly_k_contiguous_parts(self):
        weights = [2, 2, 2, 2, 2, 2]
        for k in range(1, 7):
            boundaries = min_max_weight_partition(weights, k)
            assert len(boundaries) == k
            assert boundaries[0][0] == 0 and boundaries[-1][1] == 6
            for (s1, e1), (s2, e2) in zip(boundaries, boundaries[1:]):
                assert e1 == s2

    def test_handles_zero_weights(self):
        boundaries = min_max_weight_partition([0, 5, 0, 5], 2)
        assert max(sum([0, 5, 0, 5][s:e]) for s, e in boundaries) == 5

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            min_max_weight_partition([1, 2], 0)
        with pytest.raises(ValueError):
            min_max_weight_partition([1, 2], 3)


class TestCoarsestFeasible:
    def test_large_budget_gives_one_segment(self):
        model = build_model("ds-cnn")
        seg = coarsest_feasible_segments(model, PLATFORM, 10**9, INT8, buffers=2)
        assert seg.num_segments == 1

    def test_budget_constrains_segment_count(self):
        model = build_model("ds-cnn")
        act = model.peak_activation_bytes(INT8)
        weights = model.total_param_bytes(INT8)
        tight = coarsest_feasible_segments(
            model, PLATFORM, act + weights // 2, INT8, buffers=2
        )
        assert tight.num_segments > 1
        assert tight.sram_need_bytes() <= act + weights // 2

    def test_impossible_budget_raises(self):
        model = build_model("ds-cnn")
        with pytest.raises(SegmentationError, match="cannot fit"):
            coarsest_feasible_segments(model, PLATFORM, 4096, INT8, buffers=2)

    def test_compute_cap_increases_granularity(self):
        model = build_model("resnet8")
        free = coarsest_feasible_segments(model, PLATFORM, 10**9, INT8, 2)
        capped = coarsest_feasible_segments(
            model, PLATFORM, 10**9, INT8, 2, max_segment_compute=2_000_000
        )
        assert capped.num_segments > free.num_segments
        worst = max(s.compute_cycles for s in capped.segments())
        floor = max(
            PLATFORM.compute_cycles(l, 1.0) for l in model.layers
        )
        assert worst <= max(2_000_000, floor)


class TestSearchSegmentation:
    def test_feasible_and_no_worse_than_coarsest(self):
        model = refine_model(build_model("mobilenet-v1-0.25"), INT8, 24 * 1024)
        budget = 160 * 1024
        found = search_segmentation(model, PLATFORM, budget, INT8, buffers=2)
        coarse = coarsest_feasible_segments(model, PLATFORM, budget, INT8, 2)
        assert found.sram_need_bytes() <= budget
        assert found.isolated_latency() <= coarse.isolated_latency() * 1.02 + 1

    def test_respects_compute_cap(self):
        model = refine_model(build_model("resnet8"), INT8, 32 * 1024, 500_000)
        cap = 2_000_000
        found = search_segmentation(
            model, PLATFORM, 200 * 1024, INT8, 2, max_segment_compute=cap
        )
        floor = max(PLATFORM.compute_cycles(l, 1.0) for l in model.layers)
        assert max(s.compute_cycles for s in found.segments()) <= max(cap, floor)

    def test_single_layer_model(self):
        from repro.dnn.layers import Dense
        from repro.dnn.models import Model

        model = Model.sequential(
            "one", [Dense(name="d", input_shape=(64,), out_features=32)]
        )
        seg = search_segmentation(model, PLATFORM, 10**6, INT8, 2)
        assert seg.num_segments == 1

    def test_impossible_budget_raises(self):
        model = build_model("autoencoder")
        with pytest.raises(SegmentationError):
            search_segmentation(model, PLATFORM, 1024, INT8, 2)

    def test_deterministic(self):
        model = build_model("ds-cnn")
        a = search_segmentation(model, PLATFORM, 64 * 1024, INT8, 2)
        b = search_segmentation(model, PLATFORM, 64 * 1024, INT8, 2)
        assert a.boundaries == b.boundaries


class TestSegmentModelHelper:
    def test_explicit_boundaries(self):
        model = build_model("tinyconv")
        seg = segment_model(model, PLATFORM, [(0, 2), (2, 4)], INT8, 2)
        assert seg.num_segments == 2
