"""Property-based tests (hypothesis) for segmentation and buffers."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segmentation import _greedy_parts_needed, min_max_weight_partition

weights_strategy = st.lists(st.integers(0, 1000), min_size=1, max_size=14).filter(
    lambda w: max(w) > 0
)


@given(weights_strategy, st.data())
def test_partition_covers_and_is_contiguous(weights, data):
    k = data.draw(st.integers(1, len(weights)))
    boundaries = min_max_weight_partition(weights, k)
    assert len(boundaries) == k
    assert boundaries[0][0] == 0
    assert boundaries[-1][1] == len(weights)
    for (s1, e1), (s2, e2) in zip(boundaries, boundaries[1:]):
        assert e1 == s2
        assert e2 > s2


@given(weights_strategy, st.data())
@settings(max_examples=60)
def test_partition_is_minmax_optimal(weights, data):
    """Cross-check against brute force for small inputs."""
    if len(weights) > 9:
        weights = weights[:9]
    k = data.draw(st.integers(1, len(weights)))
    boundaries = min_max_weight_partition(weights, k)
    achieved = max(sum(weights[s:e]) for s, e in boundaries)
    best = min(
        max(
            sum(weights[edges[i]:edges[i + 1]]) for i in range(k)
        )
        for cuts in itertools.combinations(range(1, len(weights)), k - 1)
        for edges in [[0, *cuts, len(weights)]]
    )
    assert achieved == best


@given(weights_strategy.filter(lambda w: len(w) >= 2), st.data())
def test_more_parts_never_increase_bottleneck(weights, data):
    k = data.draw(st.integers(1, len(weights) - 1))
    coarse = min_max_weight_partition(weights, k)
    fine = min_max_weight_partition(weights, k + 1)
    worst = lambda b: max(sum(weights[s:e]) for s, e in b)  # noqa: E731
    assert worst(fine) <= worst(coarse)


@given(weights_strategy, st.integers(1, 4000))
def test_greedy_parts_consistent_with_partition(weights, cap):
    needed = _greedy_parts_needed(weights, cap)
    if needed is None:
        assert max(weights) > cap
        return
    boundaries = min_max_weight_partition(weights, min(needed, len(weights)))
    assert max(sum(weights[s:e]) for s, e in boundaries) <= cap
