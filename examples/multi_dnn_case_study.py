#!/usr/bin/env python3
"""Case study: a smart-doorbell node running three DNNs concurrently.

* ``kws`` — DS-CNN keyword spotting every 200 ms,
* ``vww`` — MobileNet-v1 0.25x visual wake word at 1 Hz,
* ``anomaly`` — dense autoencoder on microphone features every 500 ms,

on an STM32F746 whose weights live in QSPI NOR flash.  The script plans
the deployment with RT-MDM, compares it against the sequential
(busy-wait staging) baseline, and renders a Gantt excerpt of the actual
two-resource schedule.

Run with::

    python examples/multi_dnn_case_study.py
"""

from repro import RtMdm, get_platform
from repro.baselines import sequentialize
from repro.core.analysis import analyze
from repro.sched.task import TaskSet
from repro.workload.scenarios import get_scenario


def main() -> None:
    scenario = get_scenario("doorbell")
    platform = get_platform(scenario.platform_key)
    rt = RtMdm(platform)
    for spec in scenario.specs():
        rt.add_task(spec.name, spec.model, spec.period_s, spec.deadline_s)
    config = rt.configure()
    ms = platform.mcu.cycles_to_ms

    print(f"=== {scenario.description} on {platform.name} ===\n")
    print(f"{'task':8s} {'prio':>4s} {'T(ms)':>8s} {'segs':>5s} "
          f"{'SRAM(KiB)':>10s} {'lat(ms)':>8s} {'WCRT(ms)':>9s}")
    for row in config.report_rows():
        print(
            f"{row['task']:8s} {row['priority']:4d} {row['period_ms']:8.0f} "
            f"{row['segments']:5d} {row['sram_kib']:10.1f} "
            f"{row['latency_ms']:8.2f} {row['wcrt_ms']:9.2f}"
        )
    plan = config.sram_plan
    print(f"\nSRAM plan: {plan.used / 1024:.1f} / {plan.capacity / 1024:.1f} KiB "
          f"({plan.free_bytes / 1024:.1f} KiB free)")
    print(f"admitted by analysis: {config.admitted}")

    # --- the sequential baseline on the same workload -------------------
    sequential = TaskSet.of(sequentialize(t) for t in config.taskset)
    seq_result = analyze(sequential, "rtmdm")
    print("\nsequential (busy-wait staging) baseline bounds:")
    for task in sequential.sorted_by_priority():
        bound = seq_result.wcrt[task.name]
        rtmdm_bound = config.analysis.wcrt[task.name]
        if bound is None:
            print(f"  {task.name:8s} UNBOUNDED (RT-MDM: {ms(rtmdm_bound):.2f} ms)")
        else:
            print(
                f"  {task.name:8s} {ms(bound):8.2f} ms "
                f"(RT-MDM: {ms(rtmdm_bound):8.2f} ms, "
                f"{bound / rtmdm_bound:4.2f}x)"
            )

    # --- simulate and draw the schedule ---------------------------------
    result = config.simulate(duration_s=4.0, record_trace=True)
    print(f"\nsimulated 4 s: {result.total_misses} misses, "
          f"CPU busy {100 * result.cpu_busy / result.end_time:.1f}%, "
          f"DMA busy {100 * result.dma_busy / result.end_time:.1f}%\n")
    window = platform.mcu.seconds_to_cycles(1.0)
    print(result.trace.gantt(until=window, width=100))


if __name__ == "__main__":
    main()
