"""Benchmark for EXP-T2 (see DESIGN.md section 4)."""

from conftest import bench_experiment


def test_t2_platforms(benchmark):
    bench_experiment(benchmark, "EXP-T2")
