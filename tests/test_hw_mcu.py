"""Unit tests for the MCU model."""


import pytest

from repro.hw.mcu import McuSpec, SramRegion


def _mcu(**kwargs):
    defaults = dict(
        name="test",
        clock_hz=100_000_000,
        sram_bytes=256 * 1024,
        flash_bytes=1024 * 1024,
    )
    defaults.update(kwargs)
    return McuSpec(**defaults)


class TestMcuSpec:
    def test_usable_sram_subtracts_reserve(self):
        mcu = _mcu(sram_reserved_bytes=32 * 1024)
        assert mcu.usable_sram_bytes == 224 * 1024

    def test_seconds_to_cycles_rounds_up(self):
        mcu = _mcu(clock_hz=3)
        assert mcu.seconds_to_cycles(1.0) == 3
        assert mcu.seconds_to_cycles(0.5) == 2  # ceil(1.5)

    def test_cycles_to_seconds_roundtrip(self):
        mcu = _mcu()
        cycles = mcu.seconds_to_cycles(0.125)
        assert mcu.cycles_to_seconds(cycles) == pytest.approx(0.125, rel=1e-6)

    def test_cycles_to_ms(self):
        mcu = _mcu(clock_hz=1_000_000)
        assert mcu.cycles_to_ms(1000) == pytest.approx(1.0)

    def test_zero_seconds_is_zero_cycles(self):
        assert _mcu().seconds_to_cycles(0.0) == 0

    @pytest.mark.parametrize("field,value", [
        ("clock_hz", 0),
        ("clock_hz", -1),
        ("sram_bytes", 0),
        ("flash_bytes", -1),
    ])
    def test_invalid_spec_rejected(self, field, value):
        with pytest.raises(ValueError):
            _mcu(**{field: value})

    def test_reserve_must_be_below_sram(self):
        with pytest.raises(ValueError):
            _mcu(sram_bytes=1024, sram_reserved_bytes=1024)

    def test_negative_conversions_rejected(self):
        mcu = _mcu()
        with pytest.raises(ValueError):
            mcu.seconds_to_cycles(-1.0)
        with pytest.raises(ValueError):
            mcu.cycles_to_seconds(-1)

    def test_frozen(self):
        with pytest.raises(Exception):
            _mcu().clock_hz = 1


class TestSramRegion:
    def test_end(self):
        assert SramRegion("r", offset=100, size=50).end == 150

    def test_overlap_detection(self):
        a = SramRegion("a", 0, 100)
        b = SramRegion("b", 50, 100)
        c = SramRegion("c", 100, 10)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)
        assert not c.overlaps(a)

    def test_zero_size_never_overlaps(self):
        a = SramRegion("a", 10, 0)
        b = SramRegion("b", 0, 100)
        assert not a.overlaps(b)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SramRegion("r", -1, 10)
        with pytest.raises(ValueError):
            SramRegion("r", 0, -10)
