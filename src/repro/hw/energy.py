"""Energy model: per-deployment energy accounting.

DAC-style evaluations report energy per inference alongside latency.
The model is the standard three-component MCU budget:

* **CPU active** — core current while kernels run;
* **external memory transfer** — controller + device current while the
  DMA moves weights (charged per transferred byte plus the rail's active
  time);
* **idle/sleep** — residual current while waiting (WFI with peripherals
  clocked).

Staging beats XIP on energy whenever the external device's per-byte read
energy exceeds the SRAM's, because XIP re-reads weights from the device
on *every* inference, while staging pays bus energy once per job but
enables the CPU to race-to-idle.

All coefficients are datasheet-representative constants; as with timing,
the reproduction targets relative orderings, not microjoule-exact
absolutes (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hw.mcu import McuSpec
from repro.hw.platform import Platform
from repro.sched.simulator import SimResult


@dataclass(frozen=True)
class PowerModel:
    """Current/energy coefficients of a platform.

    Attributes:
        cpu_active_mw: Core + SRAM power while executing kernels, in mW.
        idle_mw: Power while waiting (sleep with wakeup sources), in mW.
        dma_active_mw: Controller-side power during a transfer, in mW
            (added on top of idle/CPU power for the transfer duration).
        ext_read_nj_per_byte: Device-side energy per byte read from the
            external memory, in nJ/byte.
    """

    cpu_active_mw: float = 90.0
    idle_mw: float = 4.0
    dma_active_mw: float = 12.0
    ext_read_nj_per_byte: float = 1.8

    def __post_init__(self) -> None:
        if min(
            self.cpu_active_mw, self.idle_mw, self.dma_active_mw,
            self.ext_read_nj_per_byte,
        ) < 0:
            raise ValueError(f"power coefficients must be non-negative: {self}")


#: Representative coefficients per MCU family (datasheet run-mode figures
#: at full clock, typical supply).
POWER_MODELS: Dict[str, PowerModel] = {
    "STM32F446": PowerModel(cpu_active_mw=65.0, idle_mw=3.0),
    "STM32F746": PowerModel(cpu_active_mw=100.0, idle_mw=5.0),
    "STM32H743": PowerModel(cpu_active_mw=230.0, idle_mw=9.0),
    "STM32L4R5": PowerModel(cpu_active_mw=22.0, idle_mw=1.2),
    "Apollo4": PowerModel(cpu_active_mw=12.0, idle_mw=0.6),
}


def power_model_for(mcu: McuSpec) -> PowerModel:
    """The power model of an MCU (family default when unknown)."""
    return POWER_MODELS.get(mcu.name, PowerModel())


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy consumed over one simulated interval, in millijoules.

    Attributes:
        cpu_mj: CPU active energy.
        dma_mj: Transfer-controller energy.
        ext_mj: External-device read energy (per transferred byte).
        idle_mj: Idle/sleep energy over the remaining time.
        duration_s: Interval length in seconds.
    """

    cpu_mj: float
    dma_mj: float
    ext_mj: float
    idle_mj: float
    duration_s: float

    @property
    def total_mj(self) -> float:
        """Total energy of the interval."""
        return self.cpu_mj + self.dma_mj + self.ext_mj + self.idle_mj

    @property
    def average_mw(self) -> float:
        """Average power over the interval."""
        if self.duration_s <= 0:
            return 0.0
        return self.total_mj / self.duration_s


def energy_of_run(
    result: SimResult,
    taskset,
    platform: Platform,
    model: PowerModel = None,
) -> EnergyBreakdown:
    """Energy of a simulation run under a platform's power model.

    External-device read bytes are counted exactly: each completed job of
    a task reads its segments' ``load_bytes`` (staged) plus ``xip_bytes``
    (execute-in-place fetches folded into compute).
    """
    pm = model or power_model_for(platform.mcu)
    mcu = platform.mcu
    duration_s = mcu.cycles_to_seconds(result.end_time)
    cpu_s = mcu.cycles_to_seconds(result.cpu_busy)
    dma_s = mcu.cycles_to_seconds(result.dma_busy)
    transferred_bytes = 0
    for task in taskset:
        per_job = sum(s.load_bytes + s.xip_bytes for s in task.segments)
        transferred_bytes += per_job * len(result.stats[task.name].responses)
    cpu_mj = pm.cpu_active_mw * cpu_s
    dma_mj = pm.dma_active_mw * dma_s
    ext_mj = pm.ext_read_nj_per_byte * transferred_bytes * 1e-6
    idle_s = max(0.0, duration_s - cpu_s)
    idle_mj = pm.idle_mw * idle_s
    return EnergyBreakdown(
        cpu_mj=cpu_mj,
        dma_mj=dma_mj,
        ext_mj=ext_mj,
        idle_mj=idle_mj,
        duration_s=duration_s,
    )


def energy_per_inference_mj(
    result: SimResult, taskset, platform: Platform, model: PowerModel = None
) -> float:
    """Marginal (above-idle) energy per completed job, averaged.

    The idle floor is excluded so the figure reflects what one inference
    *adds* to the system's energy bill — the quantity that differs across
    execution strategies.
    """
    breakdown = energy_of_run(result, taskset, platform, model)
    jobs = sum(len(s.responses) for s in result.stats.values())
    if jobs == 0:
        raise ValueError("no completed jobs in this run")
    marginal = breakdown.cpu_mj + breakdown.dma_mj + breakdown.ext_mj
    return marginal / jobs
