"""Deterministic fault models for the discrete-event simulator.

The nominal simulator executes exact WCETs and perfect QSPI transfers.
Real MCU deployments do not: CMSIS-NN kernels overrun their measured
WCET under cache/flash-wait-state variation, QSPI/DMA transfers fail CRC
checks and are retried, and a shared external bus adds per-transfer
jitter.  This module packages those effects as a seeded, reproducible
fault source:

* **Execution-time overrun** — each compute burst is inflated by a
  factor drawn per (job, segment): a fixed factor, a uniform draw in
  ``[1, factor]``, or a rare spike (factor with probability
  ``spike_prob``, else nominal).
* **DMA transfer faults** — a transfer fails with probability
  ``dma_fault_prob`` and is retried up to ``dma_max_retries`` times;
  every retry re-pays the full transfer cycles plus a CRC-recheck
  overhead.  A transfer whose final attempt *also* fails is reported
  honestly (``exhausted=True``): the cycles were spent but the data did
  not arrive, and the simulator escalates to the recovery ladder
  (:mod:`repro.robust.recovery`) — or quarantines the task — instead of
  assuming success.
* **External-memory contention jitter** — additive per-transfer latency
  noise ``U{0, .., jitter_cycles}`` modeling unrelated masters on the
  shared QSPI/AHB bus.

All draws come from one dedicated ``random.Random(seed)`` owned by the
:class:`FaultInjector`, consumed in event order — simulations with the
same seed and workload reproduce bit-for-bit.  A null configuration
(:attr:`FaultConfig.is_null`) never perturbs any duration, so nominal
runs stay bit-identical to a simulator without fault hooks.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass
from typing import Tuple


class InflationModel(enum.Enum):
    """How per-burst WCET inflation factors are drawn.

    * ``NONE`` — no inflation (nominal WCETs).
    * ``FIXED`` — every burst runs for ``inflation_factor * C``.
    * ``UNIFORM`` — per-burst factor uniform in ``[1, inflation_factor]``.
    * ``SPIKE`` — nominal, except with probability ``spike_prob`` the
      burst spikes to ``inflation_factor * C`` (rare pathological input).
    """

    NONE = "none"
    FIXED = "fixed"
    UNIFORM = "uniform"
    SPIKE = "spike"


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection parameters (all deterministic given ``seed``).

    Attributes:
        inflation: WCET inflation model for compute bursts.
        inflation_factor: Inflation factor (``>= 1``); its meaning
            depends on ``inflation`` (see :class:`InflationModel`).
        spike_prob: Per-burst spike probability (``SPIKE`` model only).
        dma_fault_prob: Probability one transfer attempt fails CRC.
        dma_max_retries: Retry budget per transfer.
        dma_crc_overhead: Extra engine-busy cycles per retry (CRC
            recheck of the re-read block).
        jitter_cycles: Maximum additive bus-contention jitter per
            transfer (uniform integer in ``[0, jitter_cycles]``).
        seed: Seed of the injector's dedicated random source.
    """

    inflation: InflationModel = InflationModel.NONE
    inflation_factor: float = 1.0
    spike_prob: float = 0.0
    dma_fault_prob: float = 0.0
    dma_max_retries: int = 3
    dma_crc_overhead: int = 0
    jitter_cycles: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.inflation_factor < 1.0:
            raise ValueError(
                f"inflation_factor must be >= 1, got {self.inflation_factor}"
            )
        if not 0.0 <= self.spike_prob <= 1.0:
            raise ValueError(f"spike_prob must be in [0, 1], got {self.spike_prob}")
        if not 0.0 <= self.dma_fault_prob <= 1.0:
            raise ValueError(
                f"dma_fault_prob must be in [0, 1], got {self.dma_fault_prob}"
            )
        if self.dma_max_retries < 0:
            raise ValueError(
                f"dma_max_retries must be >= 0, got {self.dma_max_retries}"
            )
        if self.dma_crc_overhead < 0:
            raise ValueError(
                f"dma_crc_overhead must be >= 0, got {self.dma_crc_overhead}"
            )
        if self.jitter_cycles < 0:
            raise ValueError(
                f"jitter_cycles must be >= 0, got {self.jitter_cycles}"
            )

    @property
    def is_null(self) -> bool:
        """True iff this configuration can never perturb a duration."""
        inflates = (
            self.inflation is not InflationModel.NONE
            and self.inflation_factor > 1.0
            and (self.inflation is not InflationModel.SPIKE or self.spike_prob > 0)
        )
        # dma_fault_prob > 0 perturbs even with a zero retry budget: the
        # single attempt can fail and surface as a budget exhaustion.
        faults = self.dma_fault_prob > 0
        return not inflates and not faults and self.jitter_cycles == 0


class FaultInjector:
    """Stateful fault source the simulator consults for every burst.

    Draws are consumed in simulation-event order, which is itself
    deterministic, so one ``(workload, SimConfig)`` pair reproduces
    exactly.  The injector only ever *lengthens* durations — faults
    never make work finish early.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self.transfers = 0
        self.retries = 0
        self.overruns = 0

    # ------------------------------------------------------------------
    # Compute-side faults
    # ------------------------------------------------------------------
    def compute_cycles(self, nominal: int) -> int:
        """Actual cycles of a compute burst with nominal WCET ``nominal``."""
        cfg = self.config
        if cfg.inflation is InflationModel.NONE or cfg.inflation_factor <= 1.0:
            return nominal
        if cfg.inflation is InflationModel.FIXED:
            factor = cfg.inflation_factor
        elif cfg.inflation is InflationModel.UNIFORM:
            factor = self._rng.uniform(1.0, cfg.inflation_factor)
        else:  # SPIKE
            if cfg.spike_prob <= 0 or self._rng.random() >= cfg.spike_prob:
                return nominal
            factor = cfg.inflation_factor
        actual = max(nominal, math.ceil(nominal * factor))
        if actual > nominal:
            self.overruns += 1
        return actual

    # ------------------------------------------------------------------
    # Transfer-side faults
    # ------------------------------------------------------------------
    def transfer_cycles(self, nominal: int) -> Tuple[int, int, bool]:
        """Actual engine-busy cycles for a transfer of ``nominal`` cycles.

        Returns ``(total_cycles, retries, exhausted)``.  ``exhausted``
        is True when the final attempt after the retry budget *also*
        failed: the cycles were spent but the data never arrived, and
        the caller must escalate (the old model silently assumed
        success here).  Zero-byte transfers never touch the DMA and are
        returned untouched.

        Draw-sequence note: each attempt draws exactly one fault
        variate, so a transfer whose budget is *not* exhausted consumes
        the same draws as the pre-escalation model — nominal and
        non-exhausted faulty runs reproduce bit-for-bit.
        """
        if nominal == 0:
            return 0, 0, False
        cfg = self.config
        total = nominal
        if cfg.jitter_cycles > 0:
            total += self._rng.randrange(cfg.jitter_cycles + 1)
        retries = 0
        exhausted = False
        if cfg.dma_fault_prob > 0:
            failed = self._rng.random() < cfg.dma_fault_prob
            while failed and retries < cfg.dma_max_retries:
                retries += 1
                total += nominal + cfg.dma_crc_overhead
                failed = self._rng.random() < cfg.dma_fault_prob
            exhausted = failed
        self.transfers += 1
        self.retries += retries
        return total, retries, exhausted
