"""Unit tests for the fleet-scale sharded admission service."""

from __future__ import annotations

import pytest

from repro.core import segcache
from repro.eval.fleet import (
    DEFAULT_COHORTS,
    CohortSpec,
    FleetConfig,
    FleetService,
    decision_identity,
    fleet_trace,
    shard_of,
)
from repro.online.durable import scan_journal
from repro.online.events import RequestKind


@pytest.fixture(autouse=True)
def fresh_caches():
    segcache.clear_all()
    yield
    segcache.clear_all()


def small_trace(arrival="poisson", n_devices=600, duration_s=2.0, seed=7):
    return fleet_trace(
        n_devices, duration_s, 0.35, seed=seed, arrival=arrival
    )


class TestFleetTrace:
    def test_deterministic_and_ordered(self):
        trace = small_trace()
        again = small_trace()
        assert trace == again
        assert small_trace(seed=8) != trace
        times = [r.time_s for r in trace.requests]
        assert times == sorted(times)
        assert [r.seq for r in trace.requests] == list(range(len(times)))

    def test_device_naming_and_cohort_assignment(self):
        trace = small_trace()
        for request in trace.requests:
            assert request.device.startswith("d")
            index = int(request.device[1:])
            assert 0 <= index < trace.n_devices
        # Cohorts partition the fleet by index modulo.
        assert trace.cohorts == DEFAULT_COHORTS

    def test_admit_tasks_unique_per_device(self):
        trace = small_trace()
        seen = set()
        for request in trace.requests:
            if request.kind is RequestKind.ADMIT:
                key = (request.device, request.task)
                assert key not in seen
                seen.add(key)

    def test_bursty_arrival_model(self):
        trace = small_trace(arrival="bursty")
        assert trace.arrival == "bursty"
        assert trace != small_trace()
        with pytest.raises(ValueError, match="arrival"):
            fleet_trace(10, 1.0, 1.0, seed=1, arrival="uniform")

    def test_validation(self):
        with pytest.raises(ValueError, match="n_devices"):
            fleet_trace(0, 1.0, 1.0, seed=1)
        with pytest.raises(ValueError, match="duration_s"):
            fleet_trace(10, 0.0, 1.0, seed=1)
        with pytest.raises(ValueError, match="rate_per_device"):
            fleet_trace(10, 1.0, 0.0, seed=1)
        with pytest.raises(ValueError, match="cohorts"):
            fleet_trace(10, 1.0, 1.0, seed=1, cohorts=())


class TestSharding:
    def test_shard_of_is_stable_and_in_range(self):
        for n_shards in (1, 3, 8):
            for index in range(50):
                shard = shard_of(f"d{index:07d}", n_shards)
                assert 0 <= shard < n_shards
                assert shard == shard_of(f"d{index:07d}", n_shards)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="n_shards"):
            FleetConfig(n_shards=0)
        with pytest.raises(ValueError, match="batch_size"):
            FleetConfig(batch_size=0)
        with pytest.raises(ValueError, match="max_queue_depth"):
            FleetConfig(max_queue_depth=0)
        with pytest.raises(ValueError, match="service_us"):
            FleetConfig(service_us=0.0)


class TestIdentity:
    """Sharded decisions must be bit-identical to the serial run."""

    def test_identity_across_shard_counts_and_batches(self):
        trace = small_trace()
        oracle = None
        for n_shards, batch_size in ((1, 64), (2, 64), (5, 64), (8, 7), (3, 1)):
            report = FleetService(
                config=FleetConfig(n_shards=n_shards, batch_size=batch_size)
            ).run(trace)
            assert report.shed == 0
            identity = decision_identity(report.decisions)
            if oracle is None:
                oracle = identity
            else:
                assert identity == oracle

    def test_identity_under_bursty_arrivals(self):
        trace = small_trace(arrival="bursty")
        serial = FleetService(config=FleetConfig(n_shards=1)).run(trace)
        sharded = FleetService(config=FleetConfig(n_shards=6)).run(trace)
        assert serial.shed == sharded.shed == 0
        assert decision_identity(sharded.decisions) == decision_identity(
            serial.decisions
        )

    def test_per_device_decision_order_preserved(self):
        trace = small_trace()
        report = FleetService(config=FleetConfig(n_shards=4)).run(trace)
        per_device = {}
        for decision in report.decisions:
            per_device.setdefault(decision.device, []).append(decision.seq)
        for seqs in per_device.values():
            assert seqs == sorted(seqs)


class TestService:
    def test_counts_are_consistent(self):
        trace = small_trace()
        report = FleetService(config=FleetConfig(n_shards=4)).run(trace)
        assert report.requests == len(trace.requests)
        assert report.requests == (
            report.admitted + report.rejected_sram + report.rejected_rta
            + report.removed + report.ignored + report.shed
        )
        assert report.decided == report.requests - report.shed
        assert len(report.decisions) == report.decided
        assert report.admitted > 0
        assert report.removed > 0
        assert sum(s["decided"] for s in report.shard_stats) == report.decided

    def test_backpressure_sheds_and_bounds_depth(self):
        trace = small_trace()
        depth = 5
        report = FleetService(
            config=FleetConfig(
                n_shards=1,
                batch_size=4,
                max_queue_depth=depth,
                service_us=200_000.0,  # 0.2 s/decision: shard saturates
            )
        ).run(trace)
        assert report.shed > 0
        assert report.peak_queue_depth <= depth
        assert report.requests == report.decided + report.shed

    def test_cohort_sram_shapes_rejections(self):
        trace = fleet_trace(
            200, 2.0, 0.6, seed=3,
            cohorts=(CohortSpec("tiny", "f746-qspi", sram_kib=48),),
        )
        tiny = FleetService(
            cohorts=(CohortSpec("tiny", "f746-qspi", sram_kib=48),),
            config=FleetConfig(n_shards=2),
        ).run(trace)
        roomy = FleetService(
            cohorts=(CohortSpec("roomy", "f746-qspi", sram_kib=320),),
            config=FleetConfig(n_shards=2),
        ).run(trace)
        assert tiny.rejected_sram > roomy.rejected_sram
        assert roomy.admitted > tiny.admitted

    def test_report_dict_shape(self):
        trace = small_trace(n_devices=120)
        report = FleetService(config=FleetConfig(n_shards=2)).run(trace)
        payload = report.to_dict()
        assert payload["schema"] == "rtmdm-fleet/1"
        assert payload["n_shards"] == 2
        assert "decisions" not in payload
        assert set(payload["queueing_latency_ms"]) == {
            "n", "mean", "p50", "p95", "p99", "max",
        }
        assert len(payload["shards"]) == 2
        with_decisions = report.to_dict(include_decisions=True)
        assert len(with_decisions["decisions"]) == report.decided

    def test_virtual_queueing_is_deterministic(self):
        trace = small_trace(n_devices=300)
        config = FleetConfig(n_shards=3)
        first = FleetService(config=config).run(trace)
        second = FleetService(config=config).run(trace)
        assert first.queueing_latency_ms == second.queueing_latency_ms
        assert first.shard_stats == second.shard_stats


class TestJournals:
    def test_per_shard_journals_round_trip(self, tmp_path):
        trace = small_trace(n_devices=200)
        config = FleetConfig(n_shards=3, journal_dir=str(tmp_path))
        report = FleetService(config=config).run(trace)
        total = 0
        for stats in report.shard_stats:
            path = tmp_path / f"shard{stats['shard']:03d}.journal"
            assert path.exists()
            scan = scan_journal(str(path))
            assert scan.truncated_lines == 0
            assert scan.header["config"]["shard"] == stats["shard"]
            intents = [r for r in scan.records if r["type"] == "intent"]
            commits = [r for r in scan.records if r["type"] == "commit"]
            assert len(intents) == len(commits) == stats["decided"]
            # records_written counts the header line; scan.records doesn't.
            assert stats["journal_records"] == len(scan.records) + 1
            total += len(intents)
        assert total == report.decided


def storm_trace():
    return fleet_trace(60, 2.0, 20.0, seed=11, arrival="bursty")


TIGHT = dict(
    n_shards=2, batch_size=4, max_queue_depth=8, service_us=400.0
)


class TestCrashRecovery:
    def test_crash_recovery_identity_and_bounded_replay(self, tmp_path):
        trace = small_trace(n_devices=150)
        base = FleetService(config=FleetConfig(n_shards=3)).run(trace)
        config = FleetConfig(
            n_shards=3, journal_dir=str(tmp_path), checkpoint_interval=16,
            crash_at=((0, 3), (1, 10), (2, 7)),
        )
        report = FleetService(config=config).run(trace)
        assert report.recovered == 3
        assert decision_identity(report.all_decisions()) == decision_identity(
            base.all_decisions()
        )
        bound = max(config.checkpoint_interval, config.batch_size)
        for stats in report.shard_stats:
            assert stats["recovered"] == 1
            for recovery in stats["recoveries"]:
                assert recovery["decisions_replayed"] <= bound
                assert not recovery["startup"]

    def test_crash_at_requires_journal_dir(self):
        with pytest.raises(ValueError, match="journal_dir"):
            FleetConfig(crash_at=((0, 1),))
        with pytest.raises(ValueError, match="crash_at"):
            FleetConfig(
                n_shards=2, journal_dir="/tmp/x", crash_at=((5, 1),)
            )

    def test_restart_resumes_journal_not_clobbers(self, tmp_path):
        # Regression: journals used to be re-created (truncated) on every
        # run, so a restarted service could never replay its history.
        trace = small_trace(n_devices=100)
        config = FleetConfig(n_shards=2, journal_dir=str(tmp_path))
        first = FleetService(config=config).run(trace)
        records_before = {
            s["shard"]: s["journal_records"] for s in first.shard_stats
        }
        second = FleetService(config=config).run(trace)
        assert second.recovered == 2  # startup recovery on both shards
        for stats in second.shard_stats:
            assert all(rec["startup"] for rec in stats["recoveries"])
            path = tmp_path / f"shard{stats['shard']:03d}.journal"
            scan = scan_journal(str(path))
            # Appended past run one's history, never truncated.
            assert len(scan.records) + 1 > records_before[stats["shard"]]

    def test_restart_rejects_changed_config(self, tmp_path):
        from repro.online.durable import JournalError

        trace = small_trace(n_devices=100)
        FleetService(
            config=FleetConfig(n_shards=2, journal_dir=str(tmp_path))
        ).run(trace)
        with pytest.raises(JournalError, match="config"):
            FleetService(
                config=FleetConfig(
                    n_shards=2, batch_size=32, journal_dir=str(tmp_path)
                )
            ).run(trace)

    def test_cold_process_replay_is_reason_stable(self, tmp_path):
        # Regression: segcache collapses every byte-infeasible SRAM
        # budget onto one canonical negative entry, and used to cache
        # the first minter's message (with *its* budget numbers baked
        # in).  A warm process then journaled reasons a cold restart
        # could never re-derive, so startup recovery tripped its
        # replay-divergence check on perfectly good journals.  Reasons
        # must be a pure function of the decision inputs.
        # Two shards share one process-wide segcache (the canonical
        # entry's minter can live on the *other* shard), and a small
        # checkpoint interval keeps the original minter out of the
        # replayed suffix — the two ways a cold process is forced to
        # re-render a message the warm process got from its cache.
        segcache.clear_all()
        trace = fleet_trace(100, 1.5, 6.0, seed=3)
        config = FleetConfig(
            n_shards=2, batch_size=4, service_us=150.0,
            journal_dir=str(tmp_path), checkpoint_interval=16,
        )
        first = FleetService(config=config).run(trace)
        sram_rejects = [
            d for d in first.all_decisions()
            if d.reason.startswith("sram:")
        ]
        assert len(sram_rejects) > 50  # the collision-prone shape
        # Simulate a fresh process: cold caches, same journals.
        # Startup recovery re-decides each shard's journal suffix and
        # verifies it against the warm process's commits — which used
        # to raise JournalError the moment a canonical "cannot fit"
        # message embedded the first minter's budget instead of the
        # deciding caller's.
        segcache.clear_all()
        second = FleetService(config=config).run(trace)
        assert second.recovered == 2
        for stats in second.shard_stats:
            assert all(
                rec["commits_repaired"] == 0 for rec in stats["recoveries"]
            )

    def test_shed_events_journaled_and_reconciled(self, tmp_path):
        trace = small_trace()
        config = FleetConfig(
            n_shards=1, batch_size=4, max_queue_depth=5,
            service_us=200_000.0, journal_dir=str(tmp_path),
            checkpoint_interval=4,
        )
        first = FleetService(config=config).run(trace)
        assert first.shed > 0
        path = tmp_path / "shard000.journal"
        scan = scan_journal(str(path))
        sheds = [
            r for r in scan.records
            if r["type"] == "event" and r["kind"] == "shed"
        ]
        assert len(sheds) == first.shed
        # A restarted service reconciles the cumulative count from the
        # journal: its run-scoped counter starts at zero, and any
        # checkpoint it writes carries first-run sheds too.
        second = FleetService(config=config).run(trace)
        assert second.shard_stats[0]["shed"] == second.shed
        scan = scan_journal(str(path))
        sheds = [
            r for r in scan.records
            if r["type"] == "event" and r["kind"] == "shed"
        ]
        assert len(sheds) == first.shed + second.shed
        checkpoints = [
            r for r in scan.records if r["type"] == "checkpoint"
        ]
        assert checkpoints[-1]["state"]["shed"] >= first.shed


class TestTimeouts:
    def test_backoff_delays_double_up_to_cap(self):
        from repro.robust.recovery import ExponentialBackoff

        backoff = ExponentialBackoff(base_ms=2.0, cap_ms=64.0)
        delays = [backoff.delay_ms(attempt) for attempt in range(8)]
        assert delays == [2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 64.0, 64.0]
        assert backoff.delay_s(0) == pytest.approx(0.002)
        with pytest.raises(ValueError, match="base_ms"):
            ExponentialBackoff(base_ms=0.0)
        with pytest.raises(ValueError, match="cap_ms"):
            ExponentialBackoff(base_ms=4.0, cap_ms=2.0)

    def test_timeouts_retry_then_decide_exactly_once(self):
        config = FleetConfig(
            n_shards=2, batch_size=4, service_us=2000.0,
            timeout_ms=2.0, max_retries=2,
        )
        report = FleetService(config=config).run(storm_trace())
        assert report.timeout_retries > 0
        assert report.timeout_retries == len(report.timeout_decisions)
        # Exactly-once: every request still gets exactly one final.
        seqs = [d.seq for d in report.decisions]
        assert sorted(seqs) == list(range(report.requests))
        retries = {}
        for record in report.timeout_decisions:
            assert record.outcome == "timeout"
            retries[record.seq] = retries.get(record.seq, 0) + 1
        assert max(retries.values()) <= config.max_retries
        assert set(retries) <= set(seqs)
        # Timeout records interleave into the full stream by attempt.
        stream = report.all_decisions()
        assert [d.seq for d in stream] == sorted(d.seq for d in stream)

    def test_timeout_validation(self):
        with pytest.raises(ValueError, match="timeout_ms"):
            FleetConfig(timeout_ms=0.0)
        with pytest.raises(ValueError, match="max_retries"):
            FleetConfig(max_retries=-1)


class TestDegradeLadder:
    def test_ladder_strictly_reduces_shed(self):
        trace = storm_trace()
        off = FleetService(config=FleetConfig(**TIGHT)).run(trace)
        on = FleetService(
            config=FleetConfig(**TIGHT, degrade_watermark=4)
        ).run(trace)
        assert off.shed > 0
        assert on.shed < off.shed
        assert on.degraded_admits > 0
        modes = set()
        for d in on.decisions:
            if d.outcome == "admitted" and d.mode != "full":
                assert d.reason == "rta-oblivious"
                assert d.mode.startswith(("rate/", "variant"))
                modes.add(d.mode)
        assert modes
        payload = on.to_dict()
        assert payload["degraded_admits"] == on.degraded_admits
        assert payload["timeout_retries"] == on.timeout_retries
        assert payload["recovered"] == 0

    def test_watermark_validation(self):
        with pytest.raises(ValueError, match="degrade_watermark"):
            FleetConfig(max_queue_depth=4, degrade_watermark=5)
        with pytest.raises(ValueError, match="stretch factors"):
            FleetConfig(degrade_watermark=4, stretch_factors=(0.5,))
        with pytest.raises(ValueError, match="degrade_factor"):
            FleetConfig(degrade_watermark=4, degrade_factor=0.0)

    def test_resilience_counters_ride_segcache(self):
        before = segcache.snapshot()
        report = FleetService(
            config=FleetConfig(**TIGHT, degrade_watermark=4, timeout_ms=5.0)
        ).run(storm_trace())
        delta = segcache.delta_since(before)
        assert "fleet.resilience" in delta
        names = ("degraded_admits", "timeout_retries", "recovered", "crashes")
        vals = dict(zip(names, delta["fleet.resilience"]))
        assert vals["degraded_admits"] == report.degraded_admits
        assert vals["timeout_retries"] == report.timeout_retries
        assert vals["recovered"] == 0
