"""Bit-identity regression matrix for the SoA simulator core.

:mod:`repro.sched.simcore` replays the scalar event loop on flat
arrays — fused scheduling passes, heap-tuple events, lone/dominant-task
fast-forward — and is not allowed to change a single field of any
:class:`~repro.sched.simulator.SimResult`.  This module pins that down
as a matrix: SoA vs scalar (``REPRO_VEC_SIM``) x every CPU policy x
both DMA arbitrations x fold on/off, over random segmented sets and the
scenario zoo's planned deployments, plus the overrun-policy family.

Unsupported configurations must *stand down*: the dispatcher falls back
to the scalar path (results trivially identical) while the telemetry
records the fallback and no SoA run.  A hypothesis property test sweeps
random unsupported-feature combinations to pin that contract.
"""

from __future__ import annotations

import dataclasses
import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_taskset
from repro.core.framework import RtMdm
from repro.hw.dma import DmaArbitration
from repro.hw.presets import get_platform
from repro.robust.overload import DegradeConfig, OverrunPolicy
from repro.sched import simcore
from repro.sched.policies import CpuPolicy
from repro.sched.simulator import SimConfig, simulate
from repro.sched.task import TaskSet
from repro.workload.scenarios import get_scenario

MATRIX = sorted(
    itertools.product(CpuPolicy, DmaArbitration),
    key=lambda pair: (pair[0].value, pair[1].value),
)

#: Deterministic overrun policies (DEGRADE needs a degrade config and
#: stands the SoA core down; it is covered by the stand-down tests).
OVERRUNS = (
    OverrunPolicy.CONTINUE,
    OverrunPolicy.ABORT_AT_DEADLINE,
    OverrunPolicy.SKIP_NEXT,
)

ZOO = ("doorbell", "wearable")

pytestmark = pytest.mark.skipif(
    not simcore.available(), reason="numpy unavailable: SoA core inert"
)


def _zoo_taskset(key: str) -> TaskSet:
    scenario = get_scenario(key)
    rt = RtMdm(get_platform(scenario.platform_key))
    for spec in scenario.specs():
        rt.add_task(spec.name, spec.model, spec.period_s, spec.deadline_s)
    config = rt.configure()
    assert config.feasible and config.taskset is not None
    return config.taskset


def _random_set(seed: int) -> TaskSet:
    rng = random.Random(seed)
    return random_taskset(
        rng, n_tasks=rng.randint(2, 4), util_target=rng.choice((0.5, 0.8))
    )


def _config(taskset: TaskSet, policy, arb, overrun=OverrunPolicy.CONTINUE):
    hyper = max(t.period for t in taskset)
    return SimConfig(
        policy=policy, dma_arbitration=arb, horizon=8 * hyper, overrun=overrun
    )


def _both(taskset, config, monkeypatch):
    """(soa, scalar) results for one case, via the kill switch."""
    monkeypatch.setenv("REPRO_VEC_SIM", "1")
    soa = simulate(taskset, config)
    monkeypatch.setenv("REPRO_VEC_SIM", "0")
    scalar = simulate(taskset, config)
    return dataclasses.asdict(soa), dataclasses.asdict(scalar)


@pytest.mark.parametrize("policy,arb", MATRIX)
def test_soa_identical_random_sets(policy, arb, monkeypatch):
    for seed in (11, 12, 13):
        taskset = _random_set(seed)
        soa, scalar = _both(taskset, _config(taskset, policy, arb), monkeypatch)
        assert soa == scalar


@pytest.mark.parametrize("fold", ["1", "0"])
@pytest.mark.parametrize("key", ZOO)
def test_soa_identical_scenario_zoo(key, fold, monkeypatch):
    """Planned deployments, with and without steady-state folding
    composed on top — fold telemetry included in the comparison (the
    SoA core must fold exactly where the scalar loop folds)."""
    monkeypatch.setenv("REPRO_SIM_FOLD", fold)
    taskset = _zoo_taskset(key)
    for policy, arb in MATRIX:
        soa, scalar = _both(taskset, _config(taskset, policy, arb), monkeypatch)
        assert soa == scalar


@pytest.mark.parametrize("overrun", OVERRUNS)
def test_soa_identical_overrun_policies(overrun, monkeypatch):
    for seed in (21, 22):
        taskset = _random_set(seed)
        config = _config(
            taskset, CpuPolicy.FP_NP, DmaArbitration.PRIORITY, overrun
        )
        soa, scalar = _both(taskset, config, monkeypatch)
        assert soa == scalar


def test_soa_engine_engages(monkeypatch):
    """The matrix above is vacuous if the dispatcher silently used the
    scalar path both times; pin that supported configs run on the SoA
    core and that it processed real events."""
    monkeypatch.setenv("REPRO_VEC_SIM", "1")
    taskset = _random_set(11)
    before = simcore.soa_snapshot()
    simulate(taskset, _config(taskset, CpuPolicy.FP_NP, DmaArbitration.PRIORITY))
    runs, events, stand_downs = simcore.soa_delta_since(before)
    assert runs == 1
    assert events > 0
    assert stand_downs == 0


def test_kill_switch_bypasses_engine(monkeypatch):
    """REPRO_VEC_SIM=0 must not touch the SoA core at all — no run, no
    events, and no stand-down either (the kill switch is a bypass, not
    a fallback)."""
    monkeypatch.setenv("REPRO_VEC_SIM", "0")
    taskset = _random_set(12)
    before = simcore.soa_snapshot()
    simulate(taskset, _config(taskset, CpuPolicy.FP_NP, DmaArbitration.PRIORITY))
    assert simcore.soa_delta_since(before) == (0, 0, 0)


#: One strategy per unsupported feature: a SimConfig kwarg override that
#: must force a stand-down regardless of the rest of the config.
_UNSUPPORTED = st.sampled_from([
    {"record_trace": True},
    {"abort_on_miss": True},
    {"sporadic_slack": 0.2},
    {"dma_channels": 2},
    {"overrun": OverrunPolicy.DEGRADE,
     "degrade": DegradeConfig(fallbacks={})},
])


@settings(max_examples=40, deadline=None)
@given(
    overrides=st.lists(_UNSUPPORTED, min_size=1, max_size=3),
    seed=st.integers(min_value=1, max_value=50),
    policy=st.sampled_from(list(CpuPolicy)),
)
def test_unsupported_configs_stand_down(overrides, seed, policy):
    """Any config with at least one unsupported feature stands down:
    ``try_simulate`` returns ``None``, the stand-down is counted, and
    the run/event telemetry stays untouched."""
    taskset = _random_set(seed)
    kwargs = {}
    for override in overrides:
        kwargs.update(override)
    config = SimConfig(
        policy=policy, horizon=4 * max(t.period for t in taskset), **kwargs
    )
    before = simcore.soa_snapshot()
    assert simcore.try_simulate(taskset, config) is None
    runs, events, stand_downs = simcore.soa_delta_since(before)
    assert (runs, events) == (0, 0)
    assert stand_downs == 1
