"""Tests for the recovery ladder (repro.robust.recovery), its simulator
integration, the recovery metrics, and the online health monitor."""

import pytest

from repro.hw.presets import get_platform
from repro.online.events import Request, RequestKind, RequestTrace
from repro.online.runtime import OnlineRuntime
from repro.robust.escalation import (
    EscalationConfig,
    FaultKind,
    bad_region_span,
)
from repro.robust.metrics import (
    mean_recovery_latency,
    recovery_summary,
    sacrificed_releases,
    survival_miss_ratio,
)
from repro.robust.recovery import (
    RecoveryConfig,
    RecoveryManager,
    RecoveryProtocol,
)
from repro.sched.policies import CpuPolicy
from repro.sched.simulator import SimConfig, simulate
from repro.sched.task import PeriodicTask, Segment, TaskSet

FULL_LADDER = (
    RecoveryProtocol.REMAP,
    RecoveryProtocol.XIP_FALLBACK,
    RecoveryProtocol.DEGRADE,
)


def _task(name, pairs, period, priority=0, buffers=2, deadline=None):
    return PeriodicTask(
        name,
        tuple(Segment(f"{name}{i}", l, c) for i, (l, c) in enumerate(pairs)),
        period=period,
        deadline=deadline or period,
        priority=priority,
        buffers=buffers,
    )


def _taskset():
    return TaskSet.of([
        _task("a", [(100, 200), (150, 100)], 2000, 0),
        _task("b", [(0, 300), (80, 120)], 3000, 1),
    ])


def _all_bad(taskset, **kwargs):
    return EscalationConfig(
        bad_regions=(bad_region_span(taskset, 0.0, 1.0),),
        max_retries=1,
        **kwargs,
    )


# ----------------------------------------------------------------------
# RecoveryConfig
# ----------------------------------------------------------------------
@pytest.mark.parametrize("ladder", [
    (RecoveryProtocol.RETRY,),  # retry is the handler's job, not a rung
    (RecoveryProtocol.QUARANTINE,),  # quarantine is implicit, not a rung
    (RecoveryProtocol.XIP_FALLBACK, RecoveryProtocol.REMAP),  # wrong order
    (RecoveryProtocol.REMAP, RecoveryProtocol.REMAP),  # duplicates
])
def test_config_rejects_bad_ladders(ladder):
    with pytest.raises(ValueError):
        RecoveryConfig(ladder=ladder)


def test_empty_ladder_quarantines_immediately():
    mgr = RecoveryManager(RecoveryConfig(ladder=()))
    assert mgr.on_fault("a", 0, FaultKind.BAD_REGION) == "quarantine"
    assert mgr.is_quarantined("a")


@pytest.mark.parametrize("kwargs", [
    {"remap_overhead_cycles": -1},
    {"remap_slowdown": 0.5},
    {"xip_factor": 0.9},
    {"degrade_factor": 0.0},
    {"degrade_factor": 1.5},
])
def test_config_rejects_bad_costs(kwargs):
    with pytest.raises(ValueError):
        RecoveryConfig(**kwargs)


def test_for_platform_costs_from_memory_model():
    platform = get_platform("f746-qspi")
    config = RecoveryConfig.for_platform(platform)
    assert config.remap_overhead_cycles == platform.memory.setup_cycles(
        platform.mcu
    )
    assert config.xip_factor == pytest.approx(
        1.0 / platform.memory.xip_efficiency
    )
    # Overrides win.
    sub = RecoveryConfig.for_platform(
        platform, ladder=(RecoveryProtocol.REMAP,)
    )
    assert sub.ladder == (RecoveryProtocol.REMAP,)


def test_remap_and_xip_cost_models():
    config = RecoveryConfig(remap_overhead_cycles=50, remap_slowdown=1.2)
    assert config.remap_cycles(100) == 50 + 120
    assert config.remap_cycles(0) == 0  # nothing to re-fetch
    seg = Segment("s", 200, 80)
    assert config.xip_penalty(seg) == 500  # ceil(200 * 2.5)


# ----------------------------------------------------------------------
# RecoveryManager ladder walk
# ----------------------------------------------------------------------
def test_manager_walks_full_ladder_in_order():
    mgr = RecoveryManager(RecoveryConfig(ladder=FULL_LADDER))
    assert mgr.on_fault("a", 0, FaultKind.BAD_REGION) == "remap"
    assert mgr.source("a", 0) == "mirror"
    # Second terminal fault on the remapped segment climbs to XIP.
    assert mgr.on_fault("a", 0, FaultKind.BAD_REGION) == "xip-fallback"
    assert mgr.is_xip("a", 0)
    # Third climbs to degrade; segment modes reset, task becomes immune.
    assert mgr.on_fault("a", 0, FaultKind.BAD_REGION) == "degrade"
    assert mgr.is_degraded("a")
    assert mgr.region_immune("a")
    assert not mgr.is_xip("a", 0)
    # The variant is a fresh segmentation in healthy memory: a fault on
    # it re-enters the ladder at REMAP, but DEGRADE is spent — once
    # remap and XIP are exhausted again only quarantine remains.
    assert mgr.on_fault("a", 0, FaultKind.RETRY_EXHAUSTED) == "remap"
    assert mgr.on_fault("a", 0, FaultKind.RETRY_EXHAUSTED) == "xip-fallback"
    assert mgr.on_fault("a", 0, FaultKind.RETRY_EXHAUSTED) == "quarantine"
    assert mgr.is_quarantined("a")
    # Quarantine is terminal.
    assert mgr.on_fault("a", 1, FaultKind.BAD_REGION) == "quarantine"


def test_manager_skips_disallowed_rungs():
    mgr = RecoveryManager(
        RecoveryConfig(ladder=(RecoveryProtocol.XIP_FALLBACK,))
    )
    assert mgr.on_fault("a", 1, FaultKind.RETRY_EXHAUSTED) == "xip-fallback"
    assert mgr.on_fault("a", 1, FaultKind.RETRY_EXHAUSTED) == "quarantine"


def test_manager_modes_are_per_segment():
    mgr = RecoveryManager(RecoveryConfig(ladder=FULL_LADDER))
    mgr.on_fault("a", 0, FaultKind.BAD_REGION)
    assert mgr.source("a", 0) == "mirror"
    assert mgr.source("a", 1) == "primary"  # untouched sibling segment


def test_degraded_fallback_variant_is_cached_and_smaller():
    mgr = RecoveryManager(RecoveryConfig(ladder=(RecoveryProtocol.DEGRADE,)))
    task = _task("a", [(100, 200), (150, 100)], 2000)
    mgr.on_fault("a", 0, FaultKind.BAD_REGION)
    fallback = mgr.fallback_for(task)
    assert fallback is mgr.fallback_for(task)  # cached
    assert sum(s.compute_cycles for s in fallback) < sum(
        s.compute_cycles for s in task.segments
    )


# ----------------------------------------------------------------------
# Simulator integration
# ----------------------------------------------------------------------
def test_remap_recovers_all_jobs_without_misses():
    ts = _taskset()
    result = simulate(
        ts,
        SimConfig(
            policy=CpuPolicy.FP_NP,
            horizon=30_000,
            escalation=_all_bad(ts),
            recovery=RecoveryConfig(ladder=(RecoveryProtocol.REMAP,)),
            record_trace=True,
        ),
    )
    assert result.quarantined == ()
    assert result.total_misses == 0
    assert result.recovery_counts.get("remap", 0) > 0
    assert result.recovery_latencies  # surviving a fault takes extra time
    assert result.trace.points("remap")
    # The nominal run is strictly faster: remap costs extra cycles.
    nominal = simulate(ts, SimConfig(policy=CpuPolicy.FP_NP, horizon=30_000))
    assert result.dma_busy > nominal.dma_busy


def test_remap_is_sticky_one_fault_event_per_segment():
    ts = _taskset()
    result = simulate(
        ts,
        SimConfig(
            policy=CpuPolicy.FP_NP,
            horizon=30_000,
            escalation=_all_bad(ts),
            recovery=RecoveryConfig(ladder=(RecoveryProtocol.REMAP,)),
        ),
    )
    # Once remapped, later jobs read the mirror directly: exactly one
    # terminal fault per loading segment, ever.
    loading_segments = sum(
        1 for t in ts for s in t.segments if s.load_cycles > 0
    )
    assert len(result.fault_events) == loading_segments


def test_mirror_bad_escalates_past_remap_to_xip():
    ts = _taskset()
    result = simulate(
        ts,
        SimConfig(
            policy=CpuPolicy.FP_NP,
            horizon=30_000,
            escalation=_all_bad(ts, mirror_bad=True),
            recovery=RecoveryConfig(
                ladder=(RecoveryProtocol.REMAP, RecoveryProtocol.XIP_FALLBACK)
            ),
            record_trace=True,
        ),
    )
    assert result.quarantined == ()
    assert result.recovery_counts.get("xip-fallback", 0) > 0
    assert result.trace.points("xip-fallback")
    # XIP executes in place: once every loading segment has fallen back,
    # steady-state jobs stage nothing but still complete.
    for stats in result.stats.values():
        assert stats.jobs > 0
        assert stats.unfinished == 0


def test_degrade_keeps_task_running_on_fallback():
    ts = _taskset()
    result = simulate(
        ts,
        SimConfig(
            policy=CpuPolicy.FP_NP,
            horizon=30_000,
            escalation=_all_bad(ts, mirror_bad=True),
            recovery=RecoveryConfig(ladder=(RecoveryProtocol.DEGRADE,)),
        ),
    )
    assert result.quarantined == ()
    assert result.recovery_counts.get("degrade", 0) > 0
    for stats in result.stats.values():
        assert stats.degraded_jobs > 0


def test_recovery_runs_are_deterministic():
    ts = _taskset()
    cfg = SimConfig(
        policy=CpuPolicy.FP_NP,
        horizon=30_000,
        escalation=EscalationConfig(
            crc_fault_prob=0.3, max_retries=1, crc_overhead_cycles=10, seed=11
        ),
        recovery=RecoveryConfig(ladder=FULL_LADDER),
    )
    a, b = simulate(ts, cfg), simulate(ts, cfg)
    assert a.stats == b.stats
    assert a.fault_events == b.fault_events
    assert a.recovery_counts == b.recovery_counts
    assert a.recovery_latencies == b.recovery_latencies


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_survival_miss_ratio_charges_sacrificed_releases():
    ts = _taskset()
    quarantining = simulate(
        ts,
        SimConfig(
            policy=CpuPolicy.FP_NP, horizon=30_000, escalation=_all_bad(ts)
        ),
    )
    recovering = simulate(
        ts,
        SimConfig(
            policy=CpuPolicy.FP_NP,
            horizon=30_000,
            escalation=_all_bad(ts),
            recovery=RecoveryConfig(ladder=(RecoveryProtocol.REMAP,)),
        ),
    )
    assert sacrificed_releases(quarantining) > 0
    assert survival_miss_ratio(quarantining) > survival_miss_ratio(recovering)
    assert survival_miss_ratio(recovering) == 0.0
    summary = recovery_summary(quarantining)
    assert summary["quarantined_tasks"] == 2
    assert summary["sacrificed"] == sacrificed_releases(quarantining)
    assert mean_recovery_latency(quarantining) == 0.0  # nothing recovered


# ----------------------------------------------------------------------
# Online runtime: fault-injected serve + health monitor
# ----------------------------------------------------------------------
PLATFORM = get_platform("f746-qspi")


def _trace():
    return RequestTrace.of([
        Request(time_s=0.0, kind=RequestKind.ADMIT, task="kws",
                model="ds-cnn", period_s=0.4),
        Request(time_s=0.0, kind=RequestKind.ADMIT, task="wake",
                model="tinyconv", period_s=0.2),
    ], duration_s=2.0)


def test_serve_without_escalation_has_no_health_section():
    report = OnlineRuntime(PLATFORM).serve(_trace())
    assert report.health is None
    assert "health" not in report.to_dict(PLATFORM.mcu)


def test_serve_with_null_escalation_is_bit_identical():
    nominal = OnlineRuntime(PLATFORM).serve(_trace())
    nulled = OnlineRuntime(PLATFORM).serve(
        _trace(), escalation=EscalationConfig()
    )
    left = nulled.to_dict(PLATFORM.mcu)
    right = nominal.to_dict(PLATFORM.mcu)
    # decision_latency_us is wall-clock (report-only, non-deterministic);
    # everything else in the payload must be bit-identical.
    left.pop("decision_latency_us")
    right.pop("decision_latency_us")
    assert left == right


def test_health_monitor_reports_rates_and_reacts():
    escalation = EscalationConfig(
        crc_fault_prob=0.4, max_retries=1, backoff_slot_cycles=100,
        crc_overhead_cycles=50, seed=3,
    )
    runtime = OnlineRuntime(
        PLATFORM, retry_budget=1, fault_overhead_cycles=500
    )
    report = runtime.serve(
        _trace(),
        escalation=escalation,
        recovery=RecoveryConfig.for_platform(PLATFORM),
    )
    assert report.health is not None
    assert report.health["tolerance"] == 1
    tasks = report.health["tasks"]
    assert set(tasks) <= {"kws", "wake"}
    for entry in tasks.values():
        assert entry["action"] in (
            "ok", "over-budget", "rescaled", "removed", "quarantined"
        )
        if entry["jobs"]:
            assert entry["rate"] == pytest.approx(
                entry["faults"] / entry["jobs"], abs=1e-4
            )
    # Monitor actions go through the controller: any non-ok action has a
    # matching synthetic decision stamped at the horizon.
    reacted = [t for t, e in tasks.items() if e["action"] in ("rescaled", "removed")]
    synthetic = [d for d in report.decisions if d.time_s == 2.0]
    assert {d.task for d in synthetic} == set(reacted)
    payload = report.to_dict(PLATFORM.mcu)
    assert payload["health"]["tasks"] == tasks


def test_health_monitor_within_tolerance_takes_no_action():
    escalation = EscalationConfig(
        crc_fault_prob=0.4, max_retries=1, backoff_slot_cycles=100,
        crc_overhead_cycles=50, seed=3,
    )
    # A huge tolerated budget: observed rates stay within the guarantee,
    # so the monitor only reports.
    runtime = OnlineRuntime(PLATFORM, retry_budget=50)
    report = runtime.serve(
        _trace(),
        escalation=escalation,
        recovery=RecoveryConfig.for_platform(PLATFORM),
    )
    assert all(
        entry["action"] == "ok" for entry in report.health["tasks"].values()
    )
    assert len(report.decisions) == 2  # no synthetic requests appended


def test_retry_budget_validation():
    with pytest.raises(ValueError):
        OnlineRuntime(PLATFORM, retry_budget=-1).serve(_trace(), simulate=False)
    with pytest.raises(ValueError):
        OnlineRuntime(PLATFORM, fault_overhead_cycles=-5).serve(
            _trace(), simulate=False
        )
