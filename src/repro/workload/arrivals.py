"""Stochastic request-trace generation for the online runtime.

Arrivals follow a Poisson process (exponential inter-arrival times) —
the standard open-workload model for independent deployment requests.
Each arriving task draws a model from the pool, a period from a small
discrete ladder (discrete on purpose: recurring periods let repeated
admissions share plan-cache entries), and an exponential lifetime after
which it departs; some tasks additionally rescale once mid-life.

Generation is exactly reproducible from ``seed`` (plain
:class:`random.Random`, stable across supported Python versions) and
never consults the platform — the same trace can be replayed against
different SRAM budgets, which is what the EXP-D1 sweep does.
"""

from __future__ import annotations

import random
from typing import Sequence, Tuple

from repro.online.events import Request, RequestKind, RequestTrace
from repro.workload.taskset import DEFAULT_MODEL_POOL

#: Discrete request-period ladder in seconds.  Spans comfortably
#: admissible (pool latencies are ~1-170 ms on the default platform) to
#: clearly overloading, so sweeps exercise full admissions, degraded
#: admissions and both rejection kinds.
DEFAULT_PERIOD_LADDER_S: Tuple[float, ...] = (0.05, 0.1, 0.2, 0.4, 0.8)

#: Rescale factors (applied to the running period; < 1 = faster rate).
DEFAULT_RESCALE_FACTORS: Tuple[float, ...] = (0.5, 1.5, 2.0)


def poisson_trace(
    duration_s: float,
    rate_hz: float,
    seed: int,
    model_pool: Sequence[str] = DEFAULT_MODEL_POOL,
    period_ladder_s: Sequence[float] = DEFAULT_PERIOD_LADDER_S,
    mean_lifetime_s: float = 6.0,
    rescale_prob: float = 0.2,
) -> RequestTrace:
    """Draw one request trace.

    Args:
        duration_s: Trace horizon in seconds.
        rate_hz: Mean ADMIT arrival rate (Poisson).
        seed: RNG seed; traces are a pure function of all arguments.
        model_pool: Zoo names to draw from (with replacement).
        period_ladder_s: Candidate request periods (uniform choice).
        mean_lifetime_s: Mean of the exponential task lifetime; REMOVE
            events past the horizon are dropped (the task runs out the
            trace).
        rescale_prob: Probability a task issues one RESCALE at a uniform
            point within its (in-horizon) lifetime.
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    if rate_hz <= 0:
        raise ValueError(f"rate_hz must be > 0, got {rate_hz}")
    if mean_lifetime_s <= 0:
        raise ValueError(f"mean_lifetime_s must be > 0, got {mean_lifetime_s}")
    if not 0.0 <= rescale_prob <= 1.0:
        raise ValueError(f"rescale_prob must be in [0, 1], got {rescale_prob}")
    if not model_pool or not period_ladder_s:
        raise ValueError("model_pool and period_ladder_s must be non-empty")
    rng = random.Random(seed)
    requests = []
    time_s = 0.0
    index = 0
    while True:
        time_s += rng.expovariate(rate_hz)
        if time_s >= duration_s:
            break
        task = f"req{index}"
        index += 1
        model = rng.choice(list(model_pool))
        period_s = rng.choice(list(period_ladder_s))
        requests.append(
            Request(
                time_s=time_s,
                kind=RequestKind.ADMIT,
                task=task,
                model=model,
                period_s=period_s,
            )
        )
        lifetime_s = rng.expovariate(1.0 / mean_lifetime_s)
        end_s = time_s + lifetime_s
        in_horizon_end = min(end_s, duration_s)
        if rng.random() < rescale_prob and in_horizon_end - time_s > 1e-6:
            at_s = time_s + rng.random() * (in_horizon_end - time_s)
            factor = rng.choice(list(DEFAULT_RESCALE_FACTORS))
            requests.append(
                Request(
                    time_s=at_s,
                    kind=RequestKind.RESCALE,
                    task=task,
                    period_s=period_s * factor,
                )
            )
        if end_s < duration_s:
            requests.append(
                Request(time_s=end_s, kind=RequestKind.REMOVE, task=task)
            )
    return RequestTrace.of(requests, duration_s)
