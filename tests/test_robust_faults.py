"""Unit tests for the seeded fault models (repro.robust.faults)."""

import math

import pytest

from repro.robust import FaultConfig, FaultInjector, InflationModel
from repro.sched.policies import CpuPolicy
from repro.sched.simulator import SimConfig, simulate
from repro.sched.task import PeriodicTask, Segment, TaskSet


# ----------------------------------------------------------------------
# FaultConfig validation & null detection
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kwargs", [
    {"inflation_factor": 0.5},
    {"spike_prob": -0.1},
    {"spike_prob": 1.5},
    {"dma_fault_prob": 2.0},
    {"dma_max_retries": -1},
    {"dma_crc_overhead": -5},
    {"jitter_cycles": -1},
])
def test_config_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        FaultConfig(**kwargs)


@pytest.mark.parametrize("cfg,null", [
    (FaultConfig(), True),
    (FaultConfig(inflation=InflationModel.FIXED, inflation_factor=1.0), True),
    (FaultConfig(inflation=InflationModel.SPIKE, inflation_factor=3.0,
                 spike_prob=0.0), True),
    # A zero retry budget no longer makes faults null: the single
    # attempt can fail and must surface as a budget exhaustion.
    (FaultConfig(dma_fault_prob=0.5, dma_max_retries=0), False),
    (FaultConfig(inflation=InflationModel.FIXED, inflation_factor=1.5), False),
    (FaultConfig(dma_fault_prob=0.01), False),
    (FaultConfig(jitter_cycles=1), False),
])
def test_is_null(cfg, null):
    assert cfg.is_null is null


# ----------------------------------------------------------------------
# Compute inflation
# ----------------------------------------------------------------------
def test_none_model_never_inflates():
    inj = FaultInjector(FaultConfig(seed=1))
    assert [inj.compute_cycles(c) for c in (1, 7, 1000)] == [1, 7, 1000]
    assert inj.overruns == 0


def test_fixed_inflation_is_exact_ceiling():
    inj = FaultInjector(
        FaultConfig(inflation=InflationModel.FIXED, inflation_factor=1.3)
    )
    assert inj.compute_cycles(100) == 130
    assert inj.compute_cycles(7) == math.ceil(7 * 1.3)
    assert inj.overruns == 2


def test_uniform_inflation_is_bounded():
    inj = FaultInjector(
        FaultConfig(inflation=InflationModel.UNIFORM, inflation_factor=2.0,
                    seed=11)
    )
    for _ in range(200):
        actual = inj.compute_cycles(100)
        assert 100 <= actual <= 200


def test_spike_inflation_is_nominal_or_full():
    inj = FaultInjector(
        FaultConfig(inflation=InflationModel.SPIKE, inflation_factor=4.0,
                    spike_prob=0.5, seed=5)
    )
    values = {inj.compute_cycles(50) for _ in range(300)}
    assert values == {50, 200}  # nothing in between
    assert 0 < inj.overruns < 300


def test_inflation_never_shrinks_work():
    inj = FaultInjector(
        FaultConfig(inflation=InflationModel.UNIFORM, inflation_factor=1.01,
                    seed=3)
    )
    assert all(inj.compute_cycles(1) >= 1 for _ in range(50))


# ----------------------------------------------------------------------
# Transfer faults
# ----------------------------------------------------------------------
def test_zero_byte_transfer_untouched():
    inj = FaultInjector(FaultConfig(dma_fault_prob=1.0, jitter_cycles=100))
    assert inj.transfer_cycles(0) == (0, 0, False)
    assert inj.transfers == 0


def test_certain_faults_exhaust_retry_budget():
    inj = FaultInjector(
        FaultConfig(dma_fault_prob=1.0, dma_max_retries=3, dma_crc_overhead=4)
    )
    total, retries, exhausted = inj.transfer_cycles(100)
    assert retries == 3
    assert total == 100 + 3 * (100 + 4)
    assert exhausted  # the final attempt failed too: no silent success
    assert inj.transfers == 1
    assert inj.retries == 3


def test_fault_free_transfer_is_never_exhausted():
    inj = FaultInjector(FaultConfig(dma_fault_prob=0.0, seed=3))
    for _ in range(50):
        assert inj.transfer_cycles(100) == (100, 0, False)


def test_jitter_is_bounded_and_additive():
    inj = FaultInjector(FaultConfig(jitter_cycles=10, seed=2))
    seen = set()
    for _ in range(400):
        total, retries, exhausted = inj.transfer_cycles(50)
        assert retries == 0
        assert not exhausted
        assert 50 <= total <= 60
        seen.add(total - 50)
    assert seen == set(range(11))  # whole support reached


def test_injector_sequences_are_seed_deterministic():
    cfg = FaultConfig(inflation=InflationModel.UNIFORM, inflation_factor=2.0,
                      dma_fault_prob=0.3, dma_crc_overhead=7,
                      jitter_cycles=9, seed=42)
    a, b = FaultInjector(cfg), FaultInjector(cfg)
    for _ in range(100):
        assert a.compute_cycles(64) == b.compute_cycles(64)
        assert a.transfer_cycles(128) == b.transfer_cycles(128)
    assert (a.transfers, a.retries, a.overruns) == (
        b.transfers, b.retries, b.overruns
    )


# ----------------------------------------------------------------------
# Simulator integration
# ----------------------------------------------------------------------
def _taskset():
    return TaskSet.of([
        PeriodicTask(
            "t0",
            (Segment("t0a", 50, 200), Segment("t0b", 80, 150)),
            period=1000, deadline=1000, priority=0, buffers=2,
        ),
    ])


def test_simulation_with_faults_is_reproducible():
    cfg = SimConfig(
        policy=CpuPolicy.FP_NP,
        horizon=20000,
        faults=FaultConfig(inflation=InflationModel.UNIFORM,
                           inflation_factor=1.8, dma_fault_prob=0.2,
                           dma_crc_overhead=10, jitter_cycles=25, seed=9),
    )
    a = simulate(_taskset(), cfg)
    b = simulate(_taskset(), cfg)
    assert a.stats["t0"].responses == b.stats["t0"].responses
    assert (a.cpu_busy, a.dma_busy, a.dma_retries) == (
        b.cpu_busy, b.dma_busy, b.dma_retries
    )


def test_simulation_counts_dma_retries():
    result = simulate(
        _taskset(),
        SimConfig(horizon=20000,
                  faults=FaultConfig(dma_fault_prob=1.0, dma_max_retries=2)),
    )
    # Certain faults exhaust the very first transfer's budget; with no
    # recovery configured the exhaustion is terminal and the task is
    # quarantined — it must NOT silently complete as if the last retry
    # had worked.
    stats = result.stats["t0"]
    assert stats.responses == []
    assert stats.aborts == 1
    assert result.dma_retries == 2
    assert result.quarantined == ("t0",)
    assert len(result.fault_events) == 1
    # All 19 later releases were suppressed by the quarantine and are
    # accounted as sacrificed, not dropped on the floor.
    assert stats.quarantined_releases == 19


def test_faulty_run_is_never_faster_than_nominal():
    # Seed 17 exhausts one retry budget near the end of the horizon and
    # quarantines t0 there; every job completed before that point must
    # still be pairwise no faster than its nominal counterpart.
    nominal = simulate(_taskset(), SimConfig(horizon=20000))
    faulty = simulate(
        _taskset(),
        SimConfig(horizon=20000,
                  faults=FaultConfig(inflation=InflationModel.FIXED,
                                     inflation_factor=1.5,
                                     dma_fault_prob=0.3, dma_crc_overhead=12,
                                     jitter_cycles=40, seed=17)),
    )
    for slow, fast in zip(faulty.stats["t0"].responses,
                          nominal.stats["t0"].responses):
        assert slow >= fast
    assert faulty.cpu_busy >= nominal.cpu_busy
    assert faulty.dma_busy >= nominal.dma_busy
