"""Unit tests for model graphs and the zoo."""

import pytest

from repro.dnn.layers import Add, Conv2D, Dense, Flatten
from repro.dnn.models import Model
from repro.dnn.quantization import INT8
from repro.dnn.zoo import build_model, list_models


def _chain():
    c1 = Conv2D(name="c1", input_shape=(8, 8, 3), out_channels=4, kernel=3)
    c2 = Conv2D(name="c2", input_shape=c1.output_shape, out_channels=4, kernel=3)
    add = Add(name="add", input_shape=c2.output_shape)
    flat = Flatten(name="f", input_shape=add.output_shape)
    fc = Dense(name="fc", input_shape=flat.output_shape, out_features=10)
    return [c1, c2, add, flat, fc]


class TestModel:
    def test_valid_chain(self):
        model = Model.sequential("m", _chain(), skips=[(0, 2)])
        assert model.num_layers == 5
        assert model.output_shape == (10,)

    def test_shape_mismatch_rejected(self):
        layers = _chain()
        bad = Dense(name="bad", input_shape=(7,), out_features=3)
        with pytest.raises(ValueError, match="expects input"):
            Model.sequential("m", layers[:2] + [bad])

    def test_skip_must_target_add(self):
        with pytest.raises(ValueError, match="expected add"):
            Model.sequential("m", _chain(), skips=[(0, 1)])

    def test_skip_shape_mismatch_rejected(self):
        c1 = Conv2D(name="c1", input_shape=(8, 8, 3), out_channels=4, kernel=3)
        c2 = Conv2D(name="c2", input_shape=c1.output_shape, out_channels=4,
                    kernel=3, stride=2)
        add = Add(name="add", input_shape=c2.output_shape)
        with pytest.raises(ValueError, match="shape"):
            # c1 produces 8x8x4 but the add consumes 4x4x4.
            Model.sequential("m", [c1, c2, add], skips=[(0, 2)])

    def test_skip_ordering_enforced(self):
        with pytest.raises(ValueError, match="bad skip"):
            Model.sequential("m", _chain(), skips=[(2, 2)])

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError, match="no layers"):
            Model.sequential("m", [])

    def test_totals(self):
        model = Model.sequential("m", _chain())
        assert model.total_macs == sum(l.macs for l in _chain())
        assert model.total_params == sum(l.param_count for l in _chain())

    def test_skip_extends_liveness(self):
        plain = Model.sequential("m", _chain())
        skipped = Model.sequential("m", _chain(), skips=[(0, 2)])
        # The skip tensor (8*8*4 elements) is live during layers 1..2.
        assert (
            skipped.layer_working_elements(1)
            == plain.layer_working_elements(1) + 8 * 8 * 4
        )

    def test_peak_activation_positive(self):
        model = Model.sequential("m", _chain())
        assert model.peak_activation_bytes(INT8) > 0

    def test_summary_rows(self):
        model = Model.sequential("m", _chain())
        rows = model.summary_rows(INT8)
        assert len(rows) == model.num_layers
        assert rows[0]["kind"] == "conv2d"
        assert all(row["working_act_bytes"] > 0 for row in rows)


class TestZoo:
    def test_all_models_build(self):
        for name in list_models():
            model = build_model(name)
            assert model.num_layers > 0
            assert model.total_macs > 0

    def test_unknown_model_lists_options(self):
        with pytest.raises(KeyError, match="available"):
            build_model("gpt4")

    # Reference statistics (MLPerf-Tiny class; exact values computed from
    # the reimplemented topologies and pinned here as regressions).
    def test_ds_cnn_matches_reference_class(self):
        model = build_model("ds-cnn")
        assert 20_000 <= model.total_params <= 30_000
        assert 2.0e6 <= model.total_macs <= 3.5e6

    def test_autoencoder_matches_reference_class(self):
        model = build_model("autoencoder")
        assert 260_000 <= model.total_params <= 280_000
        assert all(l.kind == "dense" for l in model.layers)

    def test_mobilenet_v1_025_matches_reference_class(self):
        model = build_model("mobilenet-v1-0.25")
        assert 200_000 <= model.total_params <= 230_000
        assert model.input_shape == (96, 96, 3)
        assert model.output_shape == (2,)

    def test_resnet8_has_three_residual_stages(self):
        model = build_model("resnet8")
        assert len(model.skips) == 3

    def test_mobilenet_half_is_the_big_one(self):
        sizes = {
            name: build_model(name).total_param_bytes(INT8) for name in list_models()
        }
        assert max(sizes, key=sizes.get) == "mobilenet-v1-0.5"
        assert sizes["mobilenet-v1-0.5"] > 700 * 1024

    def test_kws_cnn_reference_class(self):
        model = build_model("kws-cnn")
        assert 380_000 <= model.total_params <= 480_000
        assert model.input_shape == (49, 10, 1)

    def test_residual_models_validate_skips(self):
        for name in ("resnet8", "mcunet-vww", "mobilenet-v2-0.35"):
            model = build_model(name)
            for producer, consumer in model.skips:
                assert model.layers[consumer].kind == "add"
